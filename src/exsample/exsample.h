#ifndef EXSAMPLE_EXSAMPLE_H_
#define EXSAMPLE_EXSAMPLE_H_

/// \file
/// \brief Umbrella header for the ExSample library.
///
/// Pulls in the full public API: the ExSample strategy (core/), the baseline
/// strategies (samplers/), the simulated video/detection substrate (video/,
/// scene/, detect/, track/), the shared query runner (query/), the offline
/// optimal-weights benchmark (opt/), the probabilistic simulation model
/// (sim/), the cross-query result-reuse layer (reuse/), and the six dataset
/// emulations (datasets/).

#include "common/format.h"
#include "common/geometry.h"
#include "common/hash.h"
#include "common/math_util.h"
#include "common/permutation.h"
#include "common/rng.h"
#include "common/span.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/adaptive_exsample.h"
#include "core/belief_policy.h"
#include "core/chunk_stats.h"
#include "core/estimator.h"
#include "core/exsample.h"
#include "core/frame_sampler.h"
#include "datasets/presets.h"
#include "detect/detection.h"
#include "detect/detector.h"
#include "detect/proxy.h"
#include "engine/query_session.h"
#include "engine/search_engine.h"
#include "opt/optimal_weights.h"
#include "opt/simplex.h"
#include "query/curves.h"
#include "query/detector_service.h"
#include "query/prefetch.h"
#include "query/runner.h"
#include "query/scheduler.h"
#include "query/shard_dispatch.h"
#include "query/shard_trace.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "query/trace_io.h"
#include "query/transport.h"
#include "query/wire.h"
#include "reuse/belief_bank.h"
#include "reuse/detection_cache.h"
#include "reuse/reuse.h"
#include "reuse/reuse_key.h"
#include "reuse/scanned_sketch.h"
#include "samplers/hybrid_strategy.h"
#include "samplers/proxy_strategy.h"
#include "samplers/random_strategy.h"
#include "scene/generator.h"
#include "scene/ground_truth.h"
#include "scene/interval_index.h"
#include "scene/skew.h"
#include "scene/trajectory.h"
#include "sim/bernoulli_model.h"
#include "stats/aggregate.h"
#include "stats/gamma_belief.h"
#include "stats/histogram.h"
#include "stats/running_stat.h"
#include "stats/special_functions.h"
#include "track/discriminator.h"
#include "track/iou_discriminator.h"
#include "track/matching.h"
#include "track/oracle_discriminator.h"
#include "video/chunking.h"
#include "video/decode.h"
#include "video/repository.h"
#include "video/sharded_repository.h"

#endif  // EXSAMPLE_EXSAMPLE_H_
