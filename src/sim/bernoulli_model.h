#ifndef EXSAMPLE_SIM_BERNOULLI_MODEL_H_
#define EXSAMPLE_SIM_BERNOULLI_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace exsample {
namespace sim {

/// \brief State of a simulated sampling sequence at a query point.
struct OccupancyRecord {
  /// Frames sampled so far.
  uint64_t n = 0;
  /// Instances seen exactly once after n samples.
  uint64_t n1 = 0;
  /// The true R(n+1) = sum of p_i over instances not yet seen — the quantity
  /// the Gamma belief of Eq. III.4 models.
  double r_next = 0.0;
};

/// \brief The paper's Sec. III-D simulation model: N instances, instance i
/// present in any sampled frame independently with probability p_i.
///
/// Rather than tossing N coins for each of up to 180,000 samples (1.8e11
/// draws for the paper's setup), each run draws only the first and second
/// hit times of every instance — geometric variables — and sweeps them
/// against the query points. Distributionally identical for the tracked
/// quantities (N1 and the unseen mass) at a tiny fraction of the cost.
class BernoulliOccupancyModel {
 public:
  /// `probs` are the per-instance per-frame presence probabilities p_i,
  /// each in (0, 1].
  explicit BernoulliOccupancyModel(std::vector<double> probs);

  /// \brief Simulates one sampling sequence, reporting the state at each of
  /// `query_points` (must be sorted ascending).
  std::vector<OccupancyRecord> RunAtPoints(const std::vector<uint64_t>& query_points,
                                           common::Rng& rng) const;

  /// \brief Exact E[N1(n)] = sum_i n p_i (1-p_i)^{n-1} (proof of Eq. III.2).
  double ExpectedN1(uint64_t n) const;

  /// \brief Exact E[R(n+1)] = sum_i p_i (1-p_i)^n.
  double ExpectedRNext(uint64_t n) const;

  /// \brief Exact Var[N1(n)] = sum_i pi1(1 - pi1), pi1 = n p_i (1-p_i)^{n-1}
  /// (under the independence assumption of Eq. III.3's proof).
  double ExactVarianceN1(uint64_t n) const;

  /// \brief Population descriptors used by the paper's bias bound.
  double SumP() const { return sum_p_; }
  double MaxP() const { return max_p_; }
  double MeanP() const;
  double StdDevP() const;
  size_t NumInstances() const { return probs_.size(); }
  const std::vector<double>& Probs() const { return probs_; }

 private:
  std::vector<double> probs_;
  double sum_p_ = 0.0;
  double max_p_ = 0.0;
};

/// \brief Draws `count` LogNormal probabilities with the given arithmetic
/// mean and standard deviation, clamped to (0, max_p] — the paper's Fig. 2
/// population (mean 3e-3, stddev 8e-3, max 0.15).
std::vector<double> LogNormalProbabilities(size_t count, double mean, double stddev,
                                           double max_p, common::Rng& rng);

}  // namespace sim
}  // namespace exsample

#endif  // EXSAMPLE_SIM_BERNOULLI_MODEL_H_
