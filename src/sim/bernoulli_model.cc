#include "sim/bernoulli_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "common/math_util.h"

namespace exsample {
namespace sim {

BernoulliOccupancyModel::BernoulliOccupancyModel(std::vector<double> probs)
    : probs_(std::move(probs)) {
  for (double p : probs_) {
    assert(p > 0.0 && p <= 1.0);
    sum_p_ += p;
    max_p_ = std::max(max_p_, p);
  }
}

std::vector<OccupancyRecord> BernoulliOccupancyModel::RunAtPoints(
    const std::vector<uint64_t>& query_points, common::Rng& rng) const {
  assert(std::is_sorted(query_points.begin(), query_points.end()));

  // Draw (first hit, second hit, p) per instance; sort by first hit. An
  // instance contributes to N1 on [t1, t2) and leaves the unseen mass at t1.
  struct Hit {
    uint64_t t1;
    uint64_t t2;
    double p;
  };
  std::vector<Hit> hits;
  hits.reserve(probs_.size());
  for (double p : probs_) {
    const uint64_t t1 = rng.GeometricTrials(p);
    const uint64_t t2 = t1 + rng.GeometricTrials(p);
    hits.push_back(Hit{t1, t2, p});
  }
  std::sort(hits.begin(), hits.end(),
            [](const Hit& a, const Hit& b) { return a.t1 < b.t1; });

  std::vector<OccupancyRecord> records;
  records.reserve(query_points.size());
  // Min-heap of second-hit times for instances currently seen exactly once.
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>> once;
  size_t next_hit = 0;
  double unseen_mass = sum_p_;
  for (uint64_t n : query_points) {
    while (next_hit < hits.size() && hits[next_hit].t1 <= n) {
      unseen_mass -= hits[next_hit].p;
      once.push(hits[next_hit].t2);
      ++next_hit;
    }
    while (!once.empty() && once.top() <= n) once.pop();
    records.push_back(OccupancyRecord{n, once.size(), std::max(0.0, unseen_mass)});
  }
  return records;
}

double BernoulliOccupancyModel::ExpectedN1(uint64_t n) const {
  if (n == 0) return 0.0;
  const double dn = static_cast<double>(n);
  double total = 0.0;
  for (double p : probs_) {
    total += dn * p * common::PowOneMinus(p, dn - 1.0);
  }
  return total;
}

double BernoulliOccupancyModel::ExpectedRNext(uint64_t n) const {
  const double dn = static_cast<double>(n);
  double total = 0.0;
  for (double p : probs_) total += p * common::PowOneMinus(p, dn);
  return total;
}

double BernoulliOccupancyModel::ExactVarianceN1(uint64_t n) const {
  if (n == 0) return 0.0;
  const double dn = static_cast<double>(n);
  double total = 0.0;
  for (double p : probs_) {
    const double pi1 = dn * p * common::PowOneMinus(p, dn - 1.0);
    total += pi1 * (1.0 - pi1);
  }
  return total;
}

double BernoulliOccupancyModel::MeanP() const {
  if (probs_.empty()) return 0.0;
  return sum_p_ / static_cast<double>(probs_.size());
}

double BernoulliOccupancyModel::StdDevP() const {
  return common::SampleStdDev(probs_);
}

std::vector<double> LogNormalProbabilities(size_t count, double mean, double stddev,
                                           double max_p, common::Rng& rng) {
  assert(mean > 0.0 && stddev > 0.0 && max_p > 0.0);
  // Match the LogNormal's first two moments to (mean, stddev):
  // sigma^2 = ln(1 + (stddev/mean)^2), mu = ln(mean) - sigma^2/2.
  const double ratio = stddev / mean;
  const double sigma2 = std::log1p(ratio * ratio);
  const double sigma = std::sqrt(sigma2);
  const double mu = std::log(mean) - sigma2 / 2.0;
  std::vector<double> probs(count);
  for (double& p : probs) {
    p = common::Clamp(rng.LogNormal(mu, sigma), 1e-12, max_p);
  }
  return probs;
}

}  // namespace sim
}  // namespace exsample
