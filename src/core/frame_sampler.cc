#include "core/frame_sampler.h"

#include <cassert>

#include "common/hash.h"

namespace exsample {
namespace core {

UniformFrameSampler::UniformFrameSampler(video::FrameId begin, video::FrameId end,
                                         uint64_t key)
    : begin_(begin), size_(end - begin), perm_(end - begin, key) {
  assert(end > begin);
}

std::optional<video::FrameId> UniformFrameSampler::Next(common::Rng& /*rng*/) {
  if (cursor_ >= size_) return std::nullopt;
  return begin_ + perm_(cursor_++);
}

StratifiedFrameSampler::StratifiedFrameSampler(video::FrameId begin, video::FrameId end,
                                               uint64_t key)
    : begin_(begin), size_(end - begin), key_(key) {
  assert(end > begin);
  level_perm_ = std::make_unique<common::RandomPermutation>(1, key_);
}

uint64_t StratifiedFrameSampler::StratumBegin(uint64_t stratum) const {
  // Proportional split avoids empty leading strata when size_ is not a
  // multiple of the stratum count. Computed in 128 bits to avoid overflow
  // for large repositories.
  return static_cast<uint64_t>((static_cast<__uint128_t>(size_) * stratum) /
                               level_size_);
}

bool StratifiedFrameSampler::StratumHasSample(uint64_t stratum_begin,
                                              uint64_t stratum_end) const {
  auto it = sampled_.lower_bound(stratum_begin);
  return it != sampled_.end() && *it < stratum_end;
}

void StratifiedFrameSampler::DescendLevel() {
  ++level_;
  level_size_ = level_size_ << 1;
  level_cursor_ = 0;
  level_perm_ = std::make_unique<common::RandomPermutation>(
      level_size_, common::HashCombine(key_, level_));
}

std::optional<video::FrameId> StratifiedFrameSampler::Next(common::Rng& rng) {
  if (sampled_.size() >= size_) return std::nullopt;
  for (;;) {
    if (level_cursor_ >= level_size_) {
      DescendLevel();
      continue;
    }
    const uint64_t stratum = (*level_perm_)(level_cursor_++);
    const uint64_t stratum_begin = StratumBegin(stratum);
    const uint64_t stratum_end = StratumBegin(stratum + 1);
    if (stratum_end <= stratum_begin) continue;  // Empty stratum (level > log2 n).
    if (StratumHasSample(stratum_begin, stratum_end)) continue;
    // The stratum holds no samples, so any frame inside it is fresh.
    const uint64_t offset = stratum_begin + rng.NextBounded(stratum_end - stratum_begin);
    sampled_.insert(offset);
    return begin_ + offset;
  }
}

std::unique_ptr<FrameSampler> MakeFrameSampler(WithinChunkSampling kind,
                                               video::FrameId begin, video::FrameId end,
                                               uint64_t key) {
  switch (kind) {
    case WithinChunkSampling::kStratified:
      return std::make_unique<StratifiedFrameSampler>(begin, end, key);
    case WithinChunkSampling::kUniform:
      return std::make_unique<UniformFrameSampler>(begin, end, key);
  }
  return nullptr;
}

}  // namespace core
}  // namespace exsample
