#include "core/chunk_stats.h"

#include <cassert>

namespace exsample {
namespace core {

void ChunkStatsTable::Update(size_t chunk, size_t new_results, size_t once_matched) {
  assert(chunk < states_.size());
  ChunkState& state = states_[chunk];
  state.n1 += static_cast<int64_t>(new_results) - static_cast<int64_t>(once_matched);
  state.n += 1;
  total_samples_ += 1;
}

uint64_t ChunkStatsTable::N1NonNegative(size_t chunk) const {
  const int64_t n1 = states_[chunk].n1;
  return n1 > 0 ? static_cast<uint64_t>(n1) : 0;
}

uint64_t ChunkStatsTable::TotalN1() const {
  uint64_t total = 0;
  for (size_t j = 0; j < states_.size(); ++j) total += N1NonNegative(j);
  return total;
}

}  // namespace core
}  // namespace exsample
