#include "core/estimator.h"

#include <algorithm>
#include <cmath>

namespace exsample {
namespace core {

double PointEstimate(uint64_t n1, uint64_t n) {
  if (n == 0) return 0.0;
  return static_cast<double>(n1) / static_cast<double>(n);
}

stats::GammaBelief MakeBelief(uint64_t n1, uint64_t n, const BeliefParams& params) {
  return stats::GammaBelief(static_cast<double>(n1) + params.alpha0,
                            static_cast<double>(n) + params.beta0);
}

double BiasUpperBound(double max_p, uint64_t num_instances, double mean_p,
                      double stddev_p) {
  const double cauchy_schwartz =
      std::sqrt(static_cast<double>(num_instances)) * (mean_p + stddev_p);
  return std::min(max_p, cauchy_schwartz);
}

}  // namespace core
}  // namespace exsample
