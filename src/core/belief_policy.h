#ifndef EXSAMPLE_CORE_BELIEF_POLICY_H_
#define EXSAMPLE_CORE_BELIEF_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/chunk_stats.h"
#include "core/estimator.h"

namespace exsample {
namespace core {

/// \brief Chooses which chunk to sample next from the per-chunk statistics
/// (Algorithm 1, lines 3–6 abstracted).
///
/// `eligible[j]` marks chunks that still have unsampled frames; policies must
/// never return an ineligible chunk (at least one must be eligible).
class ChunkPolicy {
 public:
  virtual ~ChunkPolicy() = default;

  /// \brief Picks the next chunk index.
  virtual size_t PickChunk(const ChunkStatsTable& stats,
                           const std::vector<bool>& eligible, common::Rng& rng) = 0;

  /// \brief Policy name for reports.
  virtual std::string name() const = 0;
};

/// \brief Thompson sampling over Gamma beliefs (the paper's method,
/// Sec. III-C): draw R_j ~ Gamma(N1_j + alpha0, n_j + beta0) for every chunk
/// and take the argmax. Ties are broken by the randomness of the draws; on
/// the first iteration all beliefs are identical, so the pick is uniform.
class ThompsonPolicy : public ChunkPolicy {
 public:
  explicit ThompsonPolicy(BeliefParams params = {}) : params_(params) {}
  size_t PickChunk(const ChunkStatsTable& stats, const std::vector<bool>& eligible,
                   common::Rng& rng) override;
  std::string name() const override { return "thompson"; }

 private:
  BeliefParams params_;
};

/// \brief Bayes-UCB (Kaufmann): use the upper 1 - 1/t quantile of the same
/// Gamma belief instead of a random draw. The paper reports results
/// indistinguishable from Thompson sampling (Sec. III-C).
class BayesUcbPolicy : public ChunkPolicy {
 public:
  explicit BayesUcbPolicy(BeliefParams params = {}) : params_(params) {}
  size_t PickChunk(const ChunkStatsTable& stats, const std::vector<bool>& eligible,
                   common::Rng& rng) override;
  std::string name() const override { return "bayes-ucb"; }

 private:
  BeliefParams params_;
};

/// \brief Greedy point-estimate policy: argmax of (N1+alpha0)/(n+beta0) with
/// random tie-breaking. Included as the ablation the paper warns about: a raw
/// point estimate "could get stuck sampling chunks with an early lucky result
/// and ignore better chunks with unlucky early results" (Sec. III-B).
class GreedyPolicy : public ChunkPolicy {
 public:
  explicit GreedyPolicy(BeliefParams params = {}) : params_(params) {}
  size_t PickChunk(const ChunkStatsTable& stats, const std::vector<bool>& eligible,
                   common::Rng& rng) override;
  std::string name() const override { return "greedy"; }

 private:
  BeliefParams params_;
};

/// \brief Uniform-random chunk choice (reduces ExSample to chunk-stratified
/// random sampling; with one chunk it is exactly random sampling).
class UniformChunkPolicy : public ChunkPolicy {
 public:
  size_t PickChunk(const ChunkStatsTable& stats, const std::vector<bool>& eligible,
                   common::Rng& rng) override;
  std::string name() const override { return "uniform-chunk"; }
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_BELIEF_POLICY_H_
