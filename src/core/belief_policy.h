#ifndef EXSAMPLE_CORE_BELIEF_POLICY_H_
#define EXSAMPLE_CORE_BELIEF_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/chunk_stats.h"
#include "core/estimator.h"

namespace exsample {
namespace core {

/// \brief Chooses which chunk to sample next from the per-chunk statistics
/// (Algorithm 1, lines 3–6 abstracted).
///
/// `eligible[j]` marks chunks that still have unsampled frames; policies must
/// never return an ineligible chunk (at least one must be eligible).
class ChunkPolicy {
 public:
  virtual ~ChunkPolicy() = default;

  /// \brief Picks the next chunk index.
  virtual size_t PickChunk(const ChunkStatsTable& stats,
                           const std::vector<bool>& eligible, common::Rng& rng) = 0;

  /// \brief Policy name for reports.
  virtual std::string name() const = 0;
};

/// \brief Shared base of the Gamma-belief policies: holds the flat prior and
/// optional *per-chunk* prior overrides.
///
/// Per-chunk priors are the cross-query warm-start seam
/// (`reuse::BeliefBank`): a later query for the same class seeds chunk j's
/// belief from earlier queries' accumulated posterior counts instead of the
/// flat (alpha0, beta0). This is a pure prior substitution — the update math
/// (Algorithm 1 lines 11–12, Eq. III.4) and the policy's scoring rule are
/// untouched, and with no overrides set behavior is bit-identical to before
/// the seam existed.
class BeliefChunkPolicy : public ChunkPolicy {
 public:
  explicit BeliefChunkPolicy(BeliefParams params) : params_(params) {}

  /// \brief Installs per-chunk prior overrides. `priors[j]` replaces the flat
  /// prior for chunk j; the vector's size must match the stats table the
  /// policy is used with (checked at pick time). Empty reverts to the flat
  /// prior.
  void SetChunkPriors(std::vector<BeliefParams> priors) {
    chunk_priors_ = std::move(priors);
  }

  /// \brief True when per-chunk priors are installed.
  bool HasChunkPriors() const { return !chunk_priors_.empty(); }

 protected:
  /// The prior belief of chunk `j`.
  const BeliefParams& PriorFor(size_t j) const {
    return chunk_priors_.empty() ? params_ : chunk_priors_[j];
  }
  /// Fatal when installed priors disagree with the table's chunk count.
  void CheckPriors(const ChunkStatsTable& stats) const;

  BeliefParams params_;
  std::vector<BeliefParams> chunk_priors_;
};

/// \brief Thompson sampling over Gamma beliefs (the paper's method,
/// Sec. III-C): draw R_j ~ Gamma(N1_j + alpha0, n_j + beta0) for every chunk
/// and take the argmax. Ties are broken by the randomness of the draws; on
/// the first iteration all beliefs are identical, so the pick is uniform.
class ThompsonPolicy : public BeliefChunkPolicy {
 public:
  explicit ThompsonPolicy(BeliefParams params = {}) : BeliefChunkPolicy(params) {}
  size_t PickChunk(const ChunkStatsTable& stats, const std::vector<bool>& eligible,
                   common::Rng& rng) override;
  std::string name() const override { return "thompson"; }
};

/// \brief Bayes-UCB (Kaufmann): use the upper 1 - 1/t quantile of the same
/// Gamma belief instead of a random draw. The paper reports results
/// indistinguishable from Thompson sampling (Sec. III-C).
class BayesUcbPolicy : public BeliefChunkPolicy {
 public:
  explicit BayesUcbPolicy(BeliefParams params = {}) : BeliefChunkPolicy(params) {}
  size_t PickChunk(const ChunkStatsTable& stats, const std::vector<bool>& eligible,
                   common::Rng& rng) override;
  std::string name() const override { return "bayes-ucb"; }
};

/// \brief Greedy point-estimate policy: argmax of (N1+alpha0)/(n+beta0) with
/// random tie-breaking. Included as the ablation the paper warns about: a raw
/// point estimate "could get stuck sampling chunks with an early lucky result
/// and ignore better chunks with unlucky early results" (Sec. III-B).
class GreedyPolicy : public BeliefChunkPolicy {
 public:
  explicit GreedyPolicy(BeliefParams params = {}) : BeliefChunkPolicy(params) {}
  size_t PickChunk(const ChunkStatsTable& stats, const std::vector<bool>& eligible,
                   common::Rng& rng) override;
  std::string name() const override { return "greedy"; }
};

/// \brief Uniform-random chunk choice (reduces ExSample to chunk-stratified
/// random sampling; with one chunk it is exactly random sampling).
class UniformChunkPolicy : public ChunkPolicy {
 public:
  size_t PickChunk(const ChunkStatsTable& stats, const std::vector<bool>& eligible,
                   common::Rng& rng) override;
  std::string name() const override { return "uniform-chunk"; }
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_BELIEF_POLICY_H_
