#include "core/belief_policy.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace exsample {
namespace core {

namespace {

// Shared scan: returns the eligible index with the highest score; random
// tie-breaking via reservoir sampling over exact ties.
template <typename ScoreFn>
size_t ArgmaxEligible(size_t num_chunks, const std::vector<bool>& eligible,
                      common::Rng& rng, ScoreFn&& score) {
  double best = -std::numeric_limits<double>::infinity();
  size_t best_idx = num_chunks;  // Sentinel: no eligible chunk seen yet.
  uint64_t ties = 0;
  for (size_t j = 0; j < num_chunks; ++j) {
    if (!eligible[j]) continue;
    const double s = score(j);
    if (s > best) {
      best = s;
      best_idx = j;
      ties = 1;
    } else if (s == best) {
      // Reservoir: replace with probability 1/ties so exact ties are uniform.
      ++ties;
      if (rng.NextBounded(ties) == 0) best_idx = j;
    }
  }
  assert(best_idx < num_chunks && "PickChunk requires at least one eligible chunk");
  return best_idx;
}

}  // namespace

void BeliefChunkPolicy::CheckPriors(const ChunkStatsTable& stats) const {
  common::Check(chunk_priors_.empty() || chunk_priors_.size() == stats.NumChunks(),
                "BeliefChunkPolicy: per-chunk priors disagree with chunk count");
}

size_t ThompsonPolicy::PickChunk(const ChunkStatsTable& stats,
                                 const std::vector<bool>& eligible, common::Rng& rng) {
  CheckPriors(stats);
  return ArgmaxEligible(stats.NumChunks(), eligible, rng, [&](size_t j) {
    return MakeBelief(stats.N1NonNegative(j), stats.State(j).n, PriorFor(j)).Sample(rng);
  });
}

size_t BayesUcbPolicy::PickChunk(const ChunkStatsTable& stats,
                                 const std::vector<bool>& eligible, common::Rng& rng) {
  CheckPriors(stats);
  // Quantile level 1 - 1/t grows toward 1 as evidence accumulates, shrinking
  // the exploration bonus (Kaufmann's Bayes-UCB index).
  const double t = static_cast<double>(stats.TotalSamples()) + 1.0;
  const double level = std::min(1.0 - 1.0 / t, 1.0 - 1e-12);
  return ArgmaxEligible(stats.NumChunks(), eligible, rng, [&](size_t j) {
    return MakeBelief(stats.N1NonNegative(j), stats.State(j).n, PriorFor(j))
        .Quantile(level);
  });
}

size_t GreedyPolicy::PickChunk(const ChunkStatsTable& stats,
                               const std::vector<bool>& eligible, common::Rng& rng) {
  CheckPriors(stats);
  return ArgmaxEligible(stats.NumChunks(), eligible, rng, [&](size_t j) {
    return MakeBelief(stats.N1NonNegative(j), stats.State(j).n, PriorFor(j)).Mean();
  });
}

size_t UniformChunkPolicy::PickChunk(const ChunkStatsTable& stats,
                                     const std::vector<bool>& eligible,
                                     common::Rng& rng) {
  return ArgmaxEligible(stats.NumChunks(), eligible, rng,
                        [](size_t) { return 0.0; });
}

}  // namespace core
}  // namespace exsample
