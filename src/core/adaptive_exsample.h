#ifndef EXSAMPLE_CORE_ADAPTIVE_EXSAMPLE_H_
#define EXSAMPLE_CORE_ADAPTIVE_EXSAMPLE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/estimator.h"
#include "core/frame_sampler.h"
#include "query/strategy.h"
#include "video/repository.h"

namespace exsample {
namespace core {

/// \brief Options for the adaptive-chunking ExSample variant.
struct AdaptiveExSampleOptions {
  /// Gamma prior of the chunk beliefs.
  BeliefParams belief;
  /// Number of equal chunks to start from.
  size_t initial_chunks = 8;
  /// A chunk splits in half once it has received this many samples (and both
  /// halves would still hold at least `min_chunk_frames`).
  uint64_t split_threshold = 32;
  /// Fraction of the parent's (n, N1) evidence each child inherits (applied
  /// after halving). Small values make the post-split beliefs wide so a few
  /// fresh samples quickly separate the hot child from the cold one; 1.0
  /// would keep the parent's confidence and slow adaptation down.
  double inherit_fraction = 0.25;
  /// Minimum chunk span in frames; prevents splitting into slivers.
  uint64_t min_chunk_frames = 1024;
  /// Hard cap on the number of chunks (safety bound on state).
  size_t max_chunks = 4096;
  /// Seed of the strategy's random stream.
  uint64_t seed = 1;
};

/// \brief Automated chunking (the paper's Sec. VII first future-work item):
/// instead of fixing the chunk partition up front, start coarse and split
/// chunks as evidence accumulates.
///
/// Sec. IV-C shows the chunk-count dilemma: few chunks cap the exploitable
/// skew, many chunks dilute the statistics. Adaptive splitting resolves it —
/// a chunk that has been sampled `split_threshold` times has enough evidence
/// to justify a finer view, so it is halved and its (n, N1) statistics are
/// divided between the children. Sampling then localizes the productive
/// region at progressively finer scales while cold regions stay coarse.
///
/// Frames already emitted by a parent chunk are never re-emitted after a
/// split (a global emitted-set guards without-replacement semantics).
class AdaptiveExSampleStrategy : public query::SearchStrategy {
 public:
  AdaptiveExSampleStrategy(uint64_t total_frames,
                           AdaptiveExSampleOptions options = {});

  std::optional<video::FrameId> NextFrame() override;
  void Observe(video::FrameId frame, size_t new_results, size_t once_matched) override;
  std::string name() const override { return "exsample-adaptive"; }

  /// \brief Current number of chunks (grows over the run).
  size_t NumChunks() const { return chunks_.size(); }

  /// \brief Total splits performed.
  uint64_t Splits() const { return splits_; }

 private:
  struct DynChunk {
    video::FrameId begin = 0;
    video::FrameId end = 0;
    uint64_t n = 0;
    int64_t n1 = 0;
    bool eligible = true;
    std::unique_ptr<FrameSampler> sampler;
  };

  size_t ChunkOfFrame(video::FrameId frame) const;
  void MaybeSplit(size_t index);
  std::unique_ptr<FrameSampler> MakeSampler(video::FrameId begin, video::FrameId end);

  uint64_t total_frames_;
  AdaptiveExSampleOptions options_;
  common::Rng rng_;
  std::vector<DynChunk> chunks_;  // Kept sorted by begin.
  size_t eligible_count_;
  std::unordered_set<video::FrameId> emitted_;
  uint64_t sampler_counter_ = 0;
  uint64_t splits_ = 0;
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_ADAPTIVE_EXSAMPLE_H_
