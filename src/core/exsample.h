#ifndef EXSAMPLE_CORE_EXSAMPLE_H_
#define EXSAMPLE_CORE_EXSAMPLE_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/belief_policy.h"
#include "core/chunk_stats.h"
#include "core/frame_sampler.h"
#include "query/strategy.h"
#include "video/chunking.h"

namespace exsample {
namespace core {

/// \brief Configuration of the ExSample strategy.
struct ExSampleOptions {
  /// Prior pseudo-counts alpha0/beta0 of the Gamma belief (Eq. III.4).
  BeliefParams belief;

  /// Chunk-selection policy.
  enum class Policy {
    kThompson,  ///< The paper's method (Sec. III-C).
    kBayesUcb,  ///< Quantile-index alternative the paper also evaluated.
    kGreedy,    ///< Point-estimate argmax (ablation; can get stuck).
    kUniform,   ///< Uniform chunk choice (chunk-stratified random).
  };
  Policy policy = Policy::kThompson;

  /// How frames are drawn inside the selected chunk. The paper uses random+
  /// ("we also use random+ to sample within a chunk", Sec. III-F).
  WithinChunkSampling within_chunk = WithinChunkSampling::kStratified;

  /// Batched sampling (Sec. III-F): draw B chunk choices per belief refresh
  /// so GPU inference can run on image batches. 1 = Algorithm 1 verbatim.
  /// Drives the single-frame `NextFrame` adapter's internal refill; when the
  /// strategy runs on the batch pipeline, `SearchEngine` maps this onto the
  /// runner's `RunnerOptions::batch_size` (equivalent semantics).
  size_t batch_size = 1;

  /// Seed of the strategy's private random stream.
  uint64_t seed = 1;

  /// Optional per-chunk prior overrides (cross-query warm start,
  /// `reuse::BeliefBank`): `chunk_priors[j]` replaces `belief` as chunk j's
  /// prior pseudo-counts. Must be empty or sized to the chunking's chunk
  /// count. A pure prior change — the update math is untouched, and empty
  /// (the default) is bit-identical to the pre-warm-start strategy. Ignored
  /// by the kUniform policy, which holds no beliefs.
  std::vector<BeliefParams> chunk_priors;
};

/// \brief ExSample (Algorithm 1): adaptive chunk-based sampling for distinct
/// object limit queries.
///
/// Maintains per-chunk (n, N1) statistics, models the per-chunk rate of new
/// results as Gamma(N1 + alpha0, n + beta0), Thompson-samples a chunk, draws
/// a frame within it (random+ by default), and updates the statistics with
/// the discriminator feedback |d0| - |d1| after each processed frame.
///
/// The heavy steps of Algorithm 1 (decode, detect, discriminate) live in
/// `query::QueryRunner`, shared with every baseline; this class is only the
/// sampling brain — which is the paper's contribution.
class ExSampleStrategy : public query::SearchStrategy {
 public:
  ExSampleStrategy(const video::Chunking* chunking, ExSampleOptions options = {});

  std::optional<video::FrameId> NextFrame() override;
  void Observe(video::FrameId frame, size_t new_results, size_t once_matched) override;

  /// \brief The batched Thompson draw of Sec. III-F as a first-class API:
  /// up to `max_frames` chunk choices are drawn against the *current* chunk
  /// beliefs (no intervening feedback), so GPU inference can run on the whole
  /// batch. `NextBatch(1)` is one Algorithm 1 pick. Any frames still pending
  /// from the legacy single-frame adapter are drained first.
  std::vector<video::FrameId> NextBatch(size_t max_frames) override;

  // ObserveBatch: base-class adapter (sequential per-frame Observe calls).
  // Updates to (n, N1) are additive, so batched bookkeeping matches
  // unbatched bookkeeping exactly.

  std::string name() const override;

  /// \brief Read access to the per-chunk statistics (for inspection, tests,
  /// and the bench harness's skew reports).
  const ChunkStatsTable& Stats() const { return stats_; }

  // Posterior export for cross-query warm starts (reuse::BeliefBank).
  const ChunkStatsTable* ChunkStatistics() const override { return &stats_; }

  /// \brief Number of chunks still holding unsampled frames.
  size_t EligibleChunks() const { return eligible_count_; }

 private:
  FrameSampler* SamplerFor(size_t chunk);
  /// One Thompson pick + within-chunk draw; nullopt when no chunk has frames
  /// left. This is Algorithm 1 lines 6–7.
  std::optional<video::FrameId> DrawOne();
  bool FillBatch();

  const video::Chunking* chunking_;
  ExSampleOptions options_;
  common::Rng rng_;
  ChunkStatsTable stats_;
  std::unique_ptr<ChunkPolicy> policy_;
  std::vector<std::unique_ptr<FrameSampler>> samplers_;
  std::vector<bool> eligible_;
  size_t eligible_count_;
  std::deque<video::FrameId> pending_;
};

/// \brief Constructs the chunk policy object for an options value (exposed so
/// benches can reuse policy construction).
std::unique_ptr<ChunkPolicy> MakeChunkPolicy(ExSampleOptions::Policy policy,
                                             BeliefParams params);

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_EXSAMPLE_H_
