#ifndef EXSAMPLE_CORE_FRAME_SAMPLER_H_
#define EXSAMPLE_CORE_FRAME_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/permutation.h"
#include "common/rng.h"
#include "video/repository.h"

namespace exsample {
namespace core {

/// \brief Draws frames from one frame range [begin, end) without replacement.
///
/// Implementations back Algorithm 1's `chunks[j*].sample()` (line 7). They
/// must eventually emit every frame in the range exactly once.
class FrameSampler {
 public:
  virtual ~FrameSampler() = default;

  /// \brief Next frame, or nullopt when every frame has been emitted.
  virtual std::optional<video::FrameId> Next(common::Rng& rng) = 0;

  /// \brief Frames not yet emitted.
  virtual uint64_t Remaining() const = 0;
};

/// \brief Uniform sampling without replacement, in O(1) memory, by walking a
/// keyed pseudo-random permutation of the range.
class UniformFrameSampler : public FrameSampler {
 public:
  UniformFrameSampler(video::FrameId begin, video::FrameId end, uint64_t key);

  std::optional<video::FrameId> Next(common::Rng& rng) override;
  uint64_t Remaining() const override { return size_ - cursor_; }

 private:
  video::FrameId begin_;
  uint64_t size_;
  uint64_t cursor_ = 0;
  common::RandomPermutation perm_;
};

/// \brief The paper's "random+" sampler (Sec. III-F): stratified sampling
/// that deliberately avoids frames temporally near previous samples.
///
/// Level k partitions the range into 2^k equal strata. Within a level the
/// strata are visited in pseudo-random order; a stratum that already contains
/// a sample (from a coarser level) is skipped, and one uniformly random
/// not-yet-sampled frame is drawn from each remaining stratum. When strata
/// shrink to single frames the process degenerates into plain without-
/// replacement sampling, so the full range is eventually covered.
class StratifiedFrameSampler : public FrameSampler {
 public:
  StratifiedFrameSampler(video::FrameId begin, video::FrameId end, uint64_t key);

  std::optional<video::FrameId> Next(common::Rng& rng) override;
  uint64_t Remaining() const override { return size_ - sampled_.size(); }

  /// \brief The current stratification level (exposed for tests).
  uint32_t level() const { return level_; }

 private:
  // Stratum s at the current level covers offsets
  // [floor(size*s/2^level), floor(size*(s+1)/2^level)).
  uint64_t StratumBegin(uint64_t stratum) const;
  bool StratumHasSample(uint64_t stratum_begin, uint64_t stratum_end) const;
  void DescendLevel();

  video::FrameId begin_;
  uint64_t size_;
  uint64_t key_;
  uint32_t level_ = 0;
  uint64_t level_size_ = 1;    // 2^level_, capped at size_ semantics.
  uint64_t level_cursor_ = 0;  // Next stratum visit index at this level.
  std::unique_ptr<common::RandomPermutation> level_perm_;
  std::set<uint64_t> sampled_;  // Offsets already emitted (ordered for range
                                // emptiness checks).
};

/// \brief Factory selector for within-chunk sampling.
enum class WithinChunkSampling {
  kStratified,  // random+ (the paper's default inside ExSample)
  kUniform,     // plain without-replacement
};

/// \brief Creates a sampler of the given kind over [begin, end).
std::unique_ptr<FrameSampler> MakeFrameSampler(WithinChunkSampling kind,
                                               video::FrameId begin, video::FrameId end,
                                               uint64_t key);

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_FRAME_SAMPLER_H_
