#include "core/adaptive_exsample.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "stats/gamma_belief.h"

namespace exsample {
namespace core {

AdaptiveExSampleStrategy::AdaptiveExSampleStrategy(uint64_t total_frames,
                                                   AdaptiveExSampleOptions options)
    : total_frames_(total_frames), options_(options), rng_(options.seed) {
  assert(total_frames_ > 0);
  const size_t m = std::max<size_t>(1, std::min<uint64_t>(options_.initial_chunks,
                                                          total_frames_));
  chunks_.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    DynChunk chunk;
    chunk.begin = total_frames_ * i / m;
    chunk.end = total_frames_ * (i + 1) / m;
    chunk.sampler = MakeSampler(chunk.begin, chunk.end);
    chunks_.push_back(std::move(chunk));
  }
  eligible_count_ = chunks_.size();
}

std::unique_ptr<FrameSampler> AdaptiveExSampleStrategy::MakeSampler(
    video::FrameId begin, video::FrameId end) {
  return std::make_unique<StratifiedFrameSampler>(
      begin, end, common::HashCombine(options_.seed, ++sampler_counter_));
}

size_t AdaptiveExSampleStrategy::ChunkOfFrame(video::FrameId frame) const {
  // Last chunk whose begin <= frame (chunks_ sorted by begin, contiguous).
  size_t lo = 0, hi = chunks_.size();
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (chunks_[mid].begin <= frame) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<video::FrameId> AdaptiveExSampleStrategy::NextFrame() {
  while (eligible_count_ > 0) {
    // Thompson step over the dynamic chunk list.
    double best_draw = -1.0;
    size_t best = chunks_.size();
    for (size_t j = 0; j < chunks_.size(); ++j) {
      if (!chunks_[j].eligible) continue;
      const uint64_t n1 =
          chunks_[j].n1 > 0 ? static_cast<uint64_t>(chunks_[j].n1) : 0;
      const double draw =
          MakeBelief(n1, chunks_[j].n, options_.belief).Sample(rng_);
      if (draw > best_draw || best == chunks_.size()) {
        best_draw = draw;
        best = j;
      }
    }
    DynChunk& chunk = chunks_[best];

    // Draw until we find a frame no ancestor chunk already emitted.
    for (;;) {
      const std::optional<video::FrameId> frame = chunk.sampler->Next(rng_);
      if (!frame.has_value()) {
        chunk.eligible = false;
        --eligible_count_;
        break;  // Re-pick another chunk.
      }
      if (emitted_.insert(*frame).second) {
        if (chunk.sampler->Remaining() == 0) {
          chunk.eligible = false;
          --eligible_count_;
        }
        return frame;
      }
    }
  }
  return std::nullopt;
}

void AdaptiveExSampleStrategy::MaybeSplit(size_t index) {
  DynChunk& chunk = chunks_[index];
  if (chunk.n < options_.split_threshold) return;
  if (chunks_.size() >= options_.max_chunks) return;
  const uint64_t span = chunk.end - chunk.begin;
  if (span < 2 * options_.min_chunk_frames) return;

  const video::FrameId mid = chunk.begin + span / 2;
  DynChunk left, right;
  left.begin = chunk.begin;
  left.end = mid;
  right.begin = mid;
  right.end = chunk.end;
  // Without per-frame bookkeeping we do not know which half earned which
  // results; give each child a *discounted* share of the evidence. The rate
  // estimate carries over, but the widened belief lets a handful of fresh
  // samples separate the hot child from the cold one (the "adapt" in
  // adaptive).
  const double share = 0.5 * options_.inherit_fraction;
  left.n = static_cast<uint64_t>(static_cast<double>(chunk.n) * share);
  right.n = left.n;
  left.n1 = static_cast<int64_t>(static_cast<double>(chunk.n1) * share);
  right.n1 = left.n1;
  left.sampler = MakeSampler(left.begin, left.end);
  right.sampler = MakeSampler(right.begin, right.end);

  // Two eligible children replace the parent (which counted 1 if eligible,
  // 0 if its sampler had exhausted).
  const bool parent_eligible = chunk.eligible;
  chunks_[index] = std::move(left);
  chunks_.insert(chunks_.begin() + static_cast<ptrdiff_t>(index) + 1,
                 std::move(right));
  eligible_count_ += 2 - (parent_eligible ? 1 : 0);
  ++splits_;
}

void AdaptiveExSampleStrategy::Observe(video::FrameId frame, size_t new_results,
                                       size_t once_matched) {
  const size_t index = ChunkOfFrame(frame);
  DynChunk& chunk = chunks_[index];
  chunk.n1 += static_cast<int64_t>(new_results) - static_cast<int64_t>(once_matched);
  chunk.n += 1;
  MaybeSplit(index);
}

}  // namespace core
}  // namespace exsample
