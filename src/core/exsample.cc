#include "core/exsample.h"

#include "common/hash.h"

namespace exsample {
namespace core {

std::unique_ptr<ChunkPolicy> MakeChunkPolicy(ExSampleOptions::Policy policy,
                                             BeliefParams params) {
  switch (policy) {
    case ExSampleOptions::Policy::kThompson:
      return std::make_unique<ThompsonPolicy>(params);
    case ExSampleOptions::Policy::kBayesUcb:
      return std::make_unique<BayesUcbPolicy>(params);
    case ExSampleOptions::Policy::kGreedy:
      return std::make_unique<GreedyPolicy>(params);
    case ExSampleOptions::Policy::kUniform:
      return std::make_unique<UniformChunkPolicy>();
  }
  // Out-of-range enum values (e.g. a miscast integer) must not silently
  // produce a null policy that later dereferences or corrupts statistics.
  common::FatalError("MakeChunkPolicy: out-of-range ExSampleOptions::Policy value");
}

ExSampleStrategy::ExSampleStrategy(const video::Chunking* chunking,
                                   ExSampleOptions options)
    : chunking_(chunking),
      options_(options),
      rng_(options.seed),
      stats_(chunking->NumChunks()),
      policy_(MakeChunkPolicy(options.policy, options.belief)),
      samplers_(chunking->NumChunks()),
      eligible_(chunking->NumChunks(), true),
      eligible_count_(chunking->NumChunks()) {
  common::Check(options_.batch_size >= 1, "ExSampleOptions: batch_size must be >= 1");
  if (!options_.chunk_priors.empty()) {
    common::Check(options_.chunk_priors.size() == chunking->NumChunks(),
                  "ExSampleOptions: chunk_priors must match the chunk count");
    // Warm start: the belief-based policies accept per-chunk priors; the
    // uniform policy holds no beliefs, so overrides are meaningless there.
    if (auto* belief_policy = dynamic_cast<BeliefChunkPolicy*>(policy_.get())) {
      belief_policy->SetChunkPriors(options_.chunk_priors);
    }
  }
}

FrameSampler* ExSampleStrategy::SamplerFor(size_t chunk) {
  if (samplers_[chunk] == nullptr) {
    const video::Chunk& c = chunking_->GetChunk(chunk);
    samplers_[chunk] = MakeFrameSampler(options_.within_chunk, c.begin, c.end,
                                        common::HashCombine(options_.seed, chunk));
  }
  return samplers_[chunk].get();
}

std::optional<video::FrameId> ExSampleStrategy::DrawOne() {
  if (eligible_count_ == 0) return std::nullopt;
  const size_t chunk = policy_->PickChunk(stats_, eligible_, rng_);
  FrameSampler* sampler = SamplerFor(chunk);
  const std::optional<video::FrameId> frame = sampler->Next(rng_);
  common::Check(frame.has_value(),
                "ExSampleStrategy: eligible chunk returned no frame");
  if (sampler->Remaining() == 0) {
    eligible_[chunk] = false;
    --eligible_count_;
  }
  return frame;
}

bool ExSampleStrategy::FillBatch() {
  for (size_t b = 0; b < options_.batch_size; ++b) {
    const std::optional<video::FrameId> frame = DrawOne();
    if (!frame.has_value()) break;
    pending_.push_back(*frame);
  }
  return !pending_.empty();
}

std::optional<video::FrameId> ExSampleStrategy::NextFrame() {
  if (pending_.empty() && !FillBatch()) return std::nullopt;
  const video::FrameId frame = pending_.front();
  pending_.pop_front();
  return frame;
}

std::vector<video::FrameId> ExSampleStrategy::NextBatch(size_t max_frames) {
  std::vector<video::FrameId> batch;
  batch.reserve(max_frames);
  // Frames already drawn by the single-frame adapter come first (mixed use).
  while (batch.size() < max_frames && !pending_.empty()) {
    batch.push_back(pending_.front());
    pending_.pop_front();
  }
  while (batch.size() < max_frames) {
    const std::optional<video::FrameId> frame = DrawOne();
    if (!frame.has_value()) break;
    batch.push_back(*frame);
  }
  return batch;
}

void ExSampleStrategy::Observe(video::FrameId frame, size_t new_results,
                               size_t once_matched) {
  const auto chunk = chunking_->ChunkOfFrame(frame);
  // A frame outside the chunking would mis-attribute evidence; that must be
  // loud in release builds too.
  common::CheckOk(chunk.status(), "ExSampleStrategy::Observe: frame outside chunking");
  stats_.Update(chunk.value(), new_results, once_matched);
}

std::string ExSampleStrategy::name() const {
  std::string name = "exsample";
  switch (options_.policy) {
    case ExSampleOptions::Policy::kThompson:
      break;
    case ExSampleOptions::Policy::kBayesUcb:
      name += "-ucb";
      break;
    case ExSampleOptions::Policy::kGreedy:
      name += "-greedy";
      break;
    case ExSampleOptions::Policy::kUniform:
      name += "-uniformchunk";
      break;
  }
  if (options_.within_chunk == WithinChunkSampling::kUniform) name += "+unif";
  if (options_.batch_size > 1) name += "+b" + std::to_string(options_.batch_size);
  return name;
}

}  // namespace core
}  // namespace exsample
