#include "core/exsample.h"

#include <cassert>

#include "common/hash.h"

namespace exsample {
namespace core {

std::unique_ptr<ChunkPolicy> MakeChunkPolicy(ExSampleOptions::Policy policy,
                                             BeliefParams params) {
  switch (policy) {
    case ExSampleOptions::Policy::kThompson:
      return std::make_unique<ThompsonPolicy>(params);
    case ExSampleOptions::Policy::kBayesUcb:
      return std::make_unique<BayesUcbPolicy>(params);
    case ExSampleOptions::Policy::kGreedy:
      return std::make_unique<GreedyPolicy>(params);
    case ExSampleOptions::Policy::kUniform:
      return std::make_unique<UniformChunkPolicy>();
  }
  return nullptr;
}

ExSampleStrategy::ExSampleStrategy(const video::Chunking* chunking,
                                   ExSampleOptions options)
    : chunking_(chunking),
      options_(options),
      rng_(options.seed),
      stats_(chunking->NumChunks()),
      policy_(MakeChunkPolicy(options.policy, options.belief)),
      samplers_(chunking->NumChunks()),
      eligible_(chunking->NumChunks(), true),
      eligible_count_(chunking->NumChunks()) {
  assert(options_.batch_size >= 1);
}

FrameSampler* ExSampleStrategy::SamplerFor(size_t chunk) {
  if (samplers_[chunk] == nullptr) {
    const video::Chunk& c = chunking_->GetChunk(chunk);
    samplers_[chunk] = MakeFrameSampler(options_.within_chunk, c.begin, c.end,
                                        common::HashCombine(options_.seed, chunk));
  }
  return samplers_[chunk].get();
}

bool ExSampleStrategy::FillBatch() {
  for (size_t b = 0; b < options_.batch_size; ++b) {
    if (eligible_count_ == 0) break;
    const size_t chunk = policy_->PickChunk(stats_, eligible_, rng_);
    FrameSampler* sampler = SamplerFor(chunk);
    const std::optional<video::FrameId> frame = sampler->Next(rng_);
    assert(frame.has_value() && "eligible chunk must have frames left");
    if (frame.has_value()) pending_.push_back(*frame);
    if (sampler->Remaining() == 0) {
      eligible_[chunk] = false;
      --eligible_count_;
    }
  }
  return !pending_.empty();
}

std::optional<video::FrameId> ExSampleStrategy::NextFrame() {
  if (pending_.empty() && !FillBatch()) return std::nullopt;
  const video::FrameId frame = pending_.front();
  pending_.pop_front();
  return frame;
}

void ExSampleStrategy::Observe(video::FrameId frame, size_t new_results,
                               size_t once_matched) {
  const auto chunk = chunking_->ChunkOfFrame(frame);
  assert(chunk.ok());
  if (chunk.ok()) stats_.Update(chunk.value(), new_results, once_matched);
}

std::string ExSampleStrategy::name() const {
  std::string name = "exsample";
  switch (options_.policy) {
    case ExSampleOptions::Policy::kThompson:
      break;
    case ExSampleOptions::Policy::kBayesUcb:
      name += "-ucb";
      break;
    case ExSampleOptions::Policy::kGreedy:
      name += "-greedy";
      break;
    case ExSampleOptions::Policy::kUniform:
      name += "-uniformchunk";
      break;
  }
  if (options_.within_chunk == WithinChunkSampling::kUniform) name += "+unif";
  if (options_.batch_size > 1) name += "+b" + std::to_string(options_.batch_size);
  return name;
}

}  // namespace core
}  // namespace exsample
