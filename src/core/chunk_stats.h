#ifndef EXSAMPLE_CORE_CHUNK_STATS_H_
#define EXSAMPLE_CORE_CHUNK_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace exsample {
namespace core {

/// \brief Per-chunk sufficient statistics of ExSample (Algorithm 1 state).
struct ChunkState {
  /// Frames sampled from this chunk so far (n_j).
  uint64_t n = 0;
  /// Results seen exactly once, as maintained by line 11 of Algorithm 1:
  /// N1 += |d0| - |d1|. Kept as a signed value because the update can
  /// transiently drive it negative when a noisy discriminator reports more
  /// second sightings than first sightings; belief construction clamps at 0.
  int64_t n1 = 0;
};

/// \brief The table of per-chunk (n, N1) statistics.
class ChunkStatsTable {
 public:
  explicit ChunkStatsTable(size_t num_chunks) : states_(num_chunks) {}

  /// \brief Applies Algorithm 1 lines 11–12 for one processed frame:
  /// N1[j] += new_results - once_matched; n[j] += 1.
  void Update(size_t chunk, size_t new_results, size_t once_matched);

  /// \brief Number of chunks (M).
  size_t NumChunks() const { return states_.size(); }

  /// \brief Per-chunk state.
  const ChunkState& State(size_t chunk) const { return states_[chunk]; }

  /// \brief N1 clamped at zero (the value used for belief construction).
  uint64_t N1NonNegative(size_t chunk) const;

  /// \brief Total frames sampled across all chunks.
  uint64_t TotalSamples() const { return total_samples_; }

  /// \brief Sum of clamped N1 across chunks.
  uint64_t TotalN1() const;

 private:
  std::vector<ChunkState> states_;
  uint64_t total_samples_ = 0;
};

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_CHUNK_STATS_H_
