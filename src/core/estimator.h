#ifndef EXSAMPLE_CORE_ESTIMATOR_H_
#define EXSAMPLE_CORE_ESTIMATOR_H_

#include <cstdint>

#include "stats/gamma_belief.h"

namespace exsample {
namespace core {

/// \brief Prior pseudo-counts of the Gamma belief (paper Eq. III.4).
///
/// alpha0/beta0 keep the belief defined when N1 = 0 (at the start, when
/// objects are rare, or when few objects remain) and make Thompson sampling
/// keep exploring such chunks. The paper uses alpha0 = 0.1, beta0 = 1 and
/// reports no strong sensitivity to the choice.
struct BeliefParams {
  double alpha0 = 0.1;
  double beta0 = 1.0;
};

/// \brief The point estimate R̂(n+1) = N1(n) / n of Eq. III.1 — the expected
/// number of *new* results in the next frame sampled from a chunk.
///
/// A Good–Turing style estimator: results seen exactly once estimate the
/// probability mass of results not yet seen. Returns 0 when n = 0.
double PointEstimate(uint64_t n1, uint64_t n);

/// \brief The full belief over R(n+1): Gamma(N1 + alpha0, n + beta0).
///
/// Mean matches Eq. III.1 (up to the prior) and variance matches the bound
/// of Eq. III.3: Var ≈ E/n.
stats::GammaBelief MakeBelief(uint64_t n1, uint64_t n, const BeliefParams& params);

/// \brief Theoretical bias bound of Eq. III.2: E[R̂ - R] / R̂ <= max p_i, and
/// also <= sqrt(N) (mu_p + sigma_p). Returns the tighter of the two given the
/// population parameters (used by validation tests, not by the algorithm).
double BiasUpperBound(double max_p, uint64_t num_instances, double mean_p,
                      double stddev_p);

}  // namespace core
}  // namespace exsample

#endif  // EXSAMPLE_CORE_ESTIMATOR_H_
