#ifndef EXSAMPLE_SCENE_GROUND_TRUTH_H_
#define EXSAMPLE_SCENE_GROUND_TRUTH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "scene/interval_index.h"
#include "scene/trajectory.h"

namespace exsample {
namespace scene {

/// \brief The hidden object population of a repository: every distinct
/// instance with its visibility interval and box motion.
///
/// Only the simulated detector and the evaluation harness see this; the
/// sampling algorithms never do (mirroring the paper, where p_i and N are
/// unknown to ExSample and used only for analysis).
class GroundTruth {
 public:
  /// \brief Builds ground truth over `total_frames` frames. Trajectory
  /// instance ids are reassigned to their index in the stored vector.
  GroundTruth(std::vector<Trajectory> trajectories, uint64_t total_frames);

  /// \brief All trajectories.
  const std::vector<Trajectory>& Trajectories() const { return trajectories_; }

  /// \brief Trajectory by instance id.
  const Trajectory& Get(InstanceId id) const { return trajectories_[id]; }

  /// \brief Total frames in the underlying repository.
  uint64_t TotalFrames() const { return total_frames_; }

  /// \brief Number of distinct instances of `class_id` (N in the paper);
  /// pass `kAllClasses` for the overall count.
  uint64_t NumInstances(int32_t class_id) const;

  /// \brief Sentinel accepted by class-filtered queries.
  static constexpr int32_t kAllClasses = -1;

  /// \brief Calls `fn(const Trajectory&)` for every instance visible in
  /// `frame` (all classes; filter inside `fn` if needed).
  template <typename Fn>
  void ForEachVisible(video::FrameId frame, Fn&& fn) const {
    index_.ForEachVisible(frame,
                          [this, &fn](uint32_t id) { fn(trajectories_[id]); });
  }

  /// \brief Collects ids of instances of `class_id` visible in `frame`.
  void VisibleInstances(video::FrameId frame, int32_t class_id,
                        std::vector<InstanceId>* out) const;

  /// \brief Per-class instance counts.
  const std::map<int32_t, uint64_t>& ClassCounts() const { return class_counts_; }

 private:
  std::vector<Trajectory> trajectories_;
  uint64_t total_frames_;
  IntervalIndex index_;
  std::map<int32_t, uint64_t> class_counts_;
};

}  // namespace scene
}  // namespace exsample

#endif  // EXSAMPLE_SCENE_GROUND_TRUTH_H_
