#ifndef EXSAMPLE_SCENE_SKEW_H_
#define EXSAMPLE_SCENE_SKEW_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "scene/trajectory.h"
#include "video/chunking.h"

namespace exsample {
namespace scene {

/// \brief Number of instances (of `class_id`, or all for
/// GroundTruth::kAllClasses) whose mid-frame falls in each chunk.
std::vector<uint64_t> ChunkInstanceCounts(const std::vector<Trajectory>& trajectories,
                                          const video::Chunking& chunking,
                                          int32_t class_id);

/// \brief The paper's Fig. 6 skew metric S.
///
/// The paper does not give a closed form; consistent with the figure caption
/// ("blue bars are the minimum set of chunks that cover half the instances"),
/// we define S = M / (2 * K50) where K50 is the size of that minimum set and
/// M the number of chunks. Uniformly spread instances give S ~= 1; all
/// instances in one chunk give S = M/2. Returns 1.0 when there are no
/// instances.
double SkewMetric(const std::vector<uint64_t>& chunk_counts);

/// \brief Minimum number of chunks (taken in decreasing count order) covering
/// at least half of all instances (K50 above; the paper's blue bars).
size_t MinChunksCoveringHalf(const std::vector<uint64_t>& chunk_counts);

/// \brief Constructs per-chunk placement weights whose skew metric is close
/// to `target_s`.
///
/// Uses an exponential concentration profile w_i proportional to r^i over a
/// randomly permuted chunk order, with r binary-searched so the weight mass
/// itself has S(target). `target_s` is clamped to the feasible range
/// [1, num_chunks / 2].
std::vector<double> MakeSkewedChunkWeights(size_t num_chunks, double target_s,
                                           common::Rng& rng);

}  // namespace scene
}  // namespace exsample

#endif  // EXSAMPLE_SCENE_SKEW_H_
