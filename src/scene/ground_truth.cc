#include "scene/ground_truth.h"

namespace exsample {
namespace scene {

namespace {

std::vector<std::pair<video::FrameId, video::FrameId>> ExtractSpans(
    const std::vector<Trajectory>& trajectories) {
  std::vector<std::pair<video::FrameId, video::FrameId>> spans;
  spans.reserve(trajectories.size());
  for (const Trajectory& t : trajectories) {
    spans.emplace_back(t.start_frame, t.end_frame);
  }
  return spans;
}

}  // namespace

GroundTruth::GroundTruth(std::vector<Trajectory> trajectories, uint64_t total_frames)
    : trajectories_(std::move(trajectories)),
      total_frames_(total_frames),
      index_(ExtractSpans(trajectories_), total_frames) {
  for (size_t i = 0; i < trajectories_.size(); ++i) {
    trajectories_[i].instance_id = static_cast<InstanceId>(i);
    ++class_counts_[trajectories_[i].class_id];
  }
}

uint64_t GroundTruth::NumInstances(int32_t class_id) const {
  if (class_id == kAllClasses) return trajectories_.size();
  auto it = class_counts_.find(class_id);
  return it == class_counts_.end() ? 0 : it->second;
}

void GroundTruth::VisibleInstances(video::FrameId frame, int32_t class_id,
                                   std::vector<InstanceId>* out) const {
  out->clear();
  ForEachVisible(frame, [&](const Trajectory& t) {
    if (class_id == kAllClasses || t.class_id == class_id) {
      out->push_back(t.instance_id);
    }
  });
}

}  // namespace scene
}  // namespace exsample
