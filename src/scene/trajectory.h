#ifndef EXSAMPLE_SCENE_TRAJECTORY_H_
#define EXSAMPLE_SCENE_TRAJECTORY_H_

#include <cstdint>

#include "common/geometry.h"
#include "video/repository.h"

namespace exsample {
namespace scene {

/// \brief Identifier of a distinct object instance in the ground truth.
using InstanceId = uint64_t;

/// \brief Sentinel for "no instance" (e.g., a false-positive detection).
inline constexpr InstanceId kNoInstance = ~InstanceId{0};

/// \brief One distinct object instance: the interval of frames where it is
/// visible and a parametric motion model for its bounding box.
///
/// Storing motion parametrically (constant velocity + exponential scale
/// change) rather than per-frame boxes keeps 16M-frame scenes cheap while
/// still giving the IoU tracker realistic, smoothly moving boxes.
struct Trajectory {
  InstanceId instance_id = 0;
  int32_t class_id = 0;
  /// First frame (global id) where the instance is visible.
  video::FrameId start_frame = 0;
  /// One past the last visible frame.
  video::FrameId end_frame = 0;
  /// Bounding box at `start_frame`.
  common::Box box0;
  /// Per-frame translation of the box center.
  double dx_per_frame = 0.0;
  double dy_per_frame = 0.0;
  /// Per-frame multiplicative size change (1.0 = constant size).
  double scale_per_frame = 1.0;

  /// \brief Number of frames the instance is visible.
  uint64_t DurationFrames() const { return end_frame - start_frame; }

  /// \brief True when the instance is visible in `frame`.
  bool VisibleAt(video::FrameId frame) const {
    return frame >= start_frame && frame < end_frame;
  }

  /// \brief Frame at the middle of the visibility interval (used to assign
  /// an instance to a chunk for skew accounting).
  video::FrameId MidFrame() const { return start_frame + DurationFrames() / 2; }

  /// \brief The instance's bounding box in `frame` (must be visible).
  common::Box BoxAt(video::FrameId frame) const;
};

}  // namespace scene
}  // namespace exsample

#endif  // EXSAMPLE_SCENE_TRAJECTORY_H_
