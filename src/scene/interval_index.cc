#include "scene/interval_index.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace scene {

namespace {

// Picks a bucket width near the median interval length, clamped so that the
// bucket directory stays small relative to the data (at most ~4M buckets) and
// never degenerates to zero.
uint64_t ChooseBucketWidth(
    const std::vector<std::pair<video::FrameId, video::FrameId>>& intervals,
    uint64_t total_frames) {
  if (total_frames == 0) return 1;
  std::vector<uint64_t> lengths;
  lengths.reserve(intervals.size());
  for (const auto& span : intervals) {
    if (span.second > span.first) lengths.push_back(span.second - span.first);
  }
  uint64_t width = 64;
  if (!lengths.empty()) {
    const size_t mid = lengths.size() / 2;
    std::nth_element(lengths.begin(), lengths.begin() + mid, lengths.end());
    width = std::max<uint64_t>(1, lengths[mid]);
  }
  const uint64_t min_width = std::max<uint64_t>(1, total_frames / (1ull << 22));
  return std::max(width, min_width);
}

}  // namespace

IntervalIndex::IntervalIndex(
    const std::vector<std::pair<video::FrameId, video::FrameId>>& intervals,
    uint64_t total_frames)
    : spans_(intervals), total_frames_(total_frames) {
  bucket_width_ = ChooseBucketWidth(spans_, total_frames_);
  const uint64_t num_buckets =
      total_frames_ == 0 ? 0 : (total_frames_ + bucket_width_ - 1) / bucket_width_;
  offsets_.assign(num_buckets + 1, 0);
  if (num_buckets == 0) return;

  auto bucket_range = [&](const std::pair<video::FrameId, video::FrameId>& span,
                          uint64_t* first, uint64_t* last) {
    // Clamp to the indexed domain; half-open interval end maps to the bucket
    // of its last contained frame.
    const video::FrameId lo = std::min<video::FrameId>(span.first, total_frames_);
    const video::FrameId hi = std::min<video::FrameId>(span.second, total_frames_);
    if (hi <= lo) return false;
    *first = lo / bucket_width_;
    *last = (hi - 1) / bucket_width_;
    return true;
  };

  // Pass 1: count entries per bucket.
  for (const auto& span : spans_) {
    uint64_t first, last;
    if (!bucket_range(span, &first, &last)) continue;
    for (uint64_t b = first; b <= last; ++b) ++offsets_[b + 1];
  }
  for (size_t b = 1; b < offsets_.size(); ++b) offsets_[b] += offsets_[b - 1];

  // Pass 2: fill entries.
  entries_.resize(offsets_.back());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t id = 0; id < spans_.size(); ++id) {
    uint64_t first, last;
    if (!bucket_range(spans_[id], &first, &last)) continue;
    for (uint64_t b = first; b <= last; ++b) entries_[cursor[b]++] = id;
  }
}

void IntervalIndex::VisibleAt(video::FrameId frame, std::vector<uint32_t>* out) const {
  out->clear();
  ForEachVisible(frame, [out](uint32_t id) { out->push_back(id); });
}

}  // namespace scene
}  // namespace exsample
