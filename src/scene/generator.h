#ifndef EXSAMPLE_SCENE_GENERATOR_H_
#define EXSAMPLE_SCENE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "scene/ground_truth.h"
#include "video/chunking.h"

namespace exsample {
namespace scene {

/// \brief Distribution of instance durations (the paper's p_i, up to the
/// 1/total_frames factor): LogNormal with a target arithmetic mean.
///
/// Sec. III-D and IV-B both use LogNormal durations ("to ensure there is skew
/// in the p"); `sigma_log` controls that skew.
struct DurationSpec {
  /// Target mean duration in frames.
  double mean_frames = 700.0;
  /// Sigma of the underlying normal (paper's Fig. 3 setup yields roughly a
  /// 50..5000-frame spread around a 700-frame mean, matching sigma ~= 0.8).
  double sigma_log = 0.8;
  /// Durations are clamped below at this value.
  double min_frames = 1.0;
};

/// \brief Where instances appear along the timeline.
struct PlacementSpec {
  enum class Kind {
    /// Instance centers uniform over the dataset (the "no skew" rows).
    kUniform,
    /// Instance centers Normal(center of dataset, sigma) with sigma chosen so
    /// that 95% of instances land in the middle `center_fraction95` of the
    /// timeline (Fig. 3's "skewed toward 1/32 of dataset").
    kNormalCenter,
    /// Instance centers drawn per-chunk with the given weights, then uniform
    /// within the chunk (used by the dataset emulations to hit a target skew
    /// metric S).
    kChunkWeights,
  };

  Kind kind = Kind::kUniform;
  /// For kNormalCenter: the central fraction that holds 95% of instances.
  double center_fraction95 = 1.0;
  /// For kChunkWeights: per-chunk probabilities (normalized internally).
  std::vector<double> chunk_weights;

  /// \brief Uniform placement.
  static PlacementSpec Uniform();
  /// \brief 95% of instances within the middle `fraction` of the timeline.
  static PlacementSpec NormalCenter(double fraction);
  /// \brief Chunk-weighted placement.
  static PlacementSpec ChunkWeights(std::vector<double> weights);
};

/// \brief Box appearance parameters for a class.
struct BoxSpec {
  /// Mean box side length in normalized image coordinates.
  double mean_size = 0.08;
  /// LogNormal sigma of the size.
  double size_sigma_log = 0.35;
  /// Std-dev of per-frame center motion.
  double motion_sigma = 0.0015;
};

/// \brief One object class population to generate.
struct ClassPopulationSpec {
  int32_t class_id = 0;
  std::string name;
  uint64_t instance_count = 0;
  DurationSpec duration;
  PlacementSpec placement;
  BoxSpec box;
};

/// \brief A full synthetic scene: the timeline length plus one or more class
/// populations.
struct SceneSpec {
  uint64_t total_frames = 0;
  std::vector<ClassPopulationSpec> classes;
};

/// \brief Generates ground truth for `spec`.
///
/// `chunking` is required (non-null) iff any placement uses kChunkWeights.
/// Returns InvalidArgument for inconsistent specs (zero frames, weight vector
/// size mismatch, non-positive durations).
common::Result<GroundTruth> GenerateScene(const SceneSpec& spec,
                                          const video::Chunking* chunking,
                                          common::Rng& rng);

/// \brief Generates the trajectories of a single class population (appended
/// to `out`); exposed for tests and custom scene assembly.
common::Status GeneratePopulation(const ClassPopulationSpec& spec, uint64_t total_frames,
                                  const video::Chunking* chunking, common::Rng& rng,
                                  std::vector<Trajectory>* out);

}  // namespace scene
}  // namespace exsample

#endif  // EXSAMPLE_SCENE_GENERATOR_H_
