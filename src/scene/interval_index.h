#ifndef EXSAMPLE_SCENE_INTERVAL_INDEX_H_
#define EXSAMPLE_SCENE_INTERVAL_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "video/repository.h"

namespace exsample {
namespace scene {

/// \brief Static point-stabbing index over frame intervals.
///
/// Built once from a set of half-open intervals [start, end); answers "which
/// intervals contain frame f" in time proportional to the answer size. The
/// query loop calls this for every sampled frame, so it uses a flat CSR
/// (bucketed) layout rather than a pointer-based interval tree: frames are
/// grouped into fixed-width buckets (width chosen near the median interval
/// length) and each bucket lists the intervals overlapping it.
class IntervalIndex {
 public:
  /// \brief Builds the index. `intervals[i]` is [start, end) with end > start;
  /// degenerate intervals are permitted but never match. `total_frames` bounds
  /// the queryable domain.
  IntervalIndex(const std::vector<std::pair<video::FrameId, video::FrameId>>& intervals,
                uint64_t total_frames);

  /// \brief Appends the ids of intervals containing `frame` to `out`
  /// (cleared first). Frames outside [0, total_frames) yield an empty result.
  void VisibleAt(video::FrameId frame, std::vector<uint32_t>* out) const;

  /// \brief Calls `fn(interval_id)` for each interval containing `frame`.
  template <typename Fn>
  void ForEachVisible(video::FrameId frame, Fn&& fn) const {
    if (frame >= total_frames_ || bucket_width_ == 0) return;
    const uint64_t bucket = frame / bucket_width_;
    const uint32_t* begin = entries_.data() + offsets_[bucket];
    const uint32_t* end = entries_.data() + offsets_[bucket + 1];
    for (const uint32_t* it = begin; it != end; ++it) {
      const auto& span = spans_[*it];
      if (frame >= span.first && frame < span.second) fn(*it);
    }
  }

  /// \brief Number of indexed intervals.
  size_t NumIntervals() const { return spans_.size(); }

  /// \brief Bucket width chosen by the builder (exposed for tests).
  uint64_t BucketWidth() const { return bucket_width_; }

 private:
  std::vector<std::pair<video::FrameId, video::FrameId>> spans_;
  std::vector<uint64_t> offsets_;   // CSR: per-bucket start into entries_.
  std::vector<uint32_t> entries_;   // Interval ids, bucket-major.
  uint64_t total_frames_ = 0;
  uint64_t bucket_width_ = 0;
};

}  // namespace scene
}  // namespace exsample

#endif  // EXSAMPLE_SCENE_INTERVAL_INDEX_H_
