#include "scene/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace exsample {
namespace scene {

namespace {

// Two-sided 95% coverage of a Normal corresponds to +/- 1.96 sigma.
constexpr double kZ95 = 1.959963984540054;

// Draws an instance center frame according to the placement spec.
video::FrameId DrawCenter(const PlacementSpec& placement, uint64_t total_frames,
                          const video::Chunking* chunking, common::Rng& rng) {
  const double total = static_cast<double>(total_frames);
  switch (placement.kind) {
    case PlacementSpec::Kind::kUniform:
      return rng.NextBounded(total_frames);
    case PlacementSpec::Kind::kNormalCenter: {
      const double sigma = total * placement.center_fraction95 / (2.0 * kZ95);
      // Resample out-of-range draws so exactly the requested count lands in
      // the dataset (clamping would pile mass at the edges).
      for (;;) {
        const double draw = rng.Normal(total / 2.0, sigma);
        if (draw >= 0.0 && draw < total) return static_cast<video::FrameId>(draw);
      }
    }
    case PlacementSpec::Kind::kChunkWeights: {
      assert(chunking != nullptr);
      const auto& weights = placement.chunk_weights;
      double sum = 0.0;
      for (double w : weights) sum += w;
      double u = rng.NextDouble() * sum;
      size_t pick = weights.size() - 1;
      for (size_t j = 0; j < weights.size(); ++j) {
        u -= weights[j];
        if (u <= 0.0) {
          pick = j;
          break;
        }
      }
      const video::Chunk& chunk = chunking->GetChunk(pick);
      return chunk.begin + rng.NextBounded(chunk.Size());
    }
  }
  return 0;
}

}  // namespace

PlacementSpec PlacementSpec::Uniform() { return PlacementSpec{}; }

PlacementSpec PlacementSpec::NormalCenter(double fraction) {
  PlacementSpec spec;
  spec.kind = Kind::kNormalCenter;
  spec.center_fraction95 = fraction;
  return spec;
}

PlacementSpec PlacementSpec::ChunkWeights(std::vector<double> weights) {
  PlacementSpec spec;
  spec.kind = Kind::kChunkWeights;
  spec.chunk_weights = std::move(weights);
  return spec;
}

common::Status GeneratePopulation(const ClassPopulationSpec& spec,
                                  uint64_t total_frames,
                                  const video::Chunking* chunking, common::Rng& rng,
                                  std::vector<Trajectory>* out) {
  if (total_frames == 0) {
    return common::Status::InvalidArgument("scene must have at least one frame");
  }
  if (!(spec.duration.mean_frames > 0.0)) {
    return common::Status::InvalidArgument("mean duration must be positive");
  }
  if (spec.placement.kind == PlacementSpec::Kind::kNormalCenter &&
      !(spec.placement.center_fraction95 > 0.0 &&
        spec.placement.center_fraction95 <= 1.0)) {
    return common::Status::InvalidArgument("center_fraction95 must be in (0, 1]");
  }
  if (spec.placement.kind == PlacementSpec::Kind::kChunkWeights) {
    if (chunking == nullptr) {
      return common::Status::InvalidArgument(
          "chunk-weight placement requires a chunking");
    }
    if (spec.placement.chunk_weights.size() != chunking->NumChunks()) {
      return common::Status::InvalidArgument(
          "chunk weight vector size must match chunk count");
    }
    double sum = 0.0;
    for (double w : spec.placement.chunk_weights) {
      if (w < 0.0) return common::Status::InvalidArgument("chunk weights must be >= 0");
      sum += w;
    }
    if (!(sum > 0.0)) {
      return common::Status::InvalidArgument("chunk weights must not all be zero");
    }
  }

  const double mu_log =
      common::LogNormalMuForMean(spec.duration.mean_frames, spec.duration.sigma_log);
  out->reserve(out->size() + spec.instance_count);
  for (uint64_t i = 0; i < spec.instance_count; ++i) {
    Trajectory traj;
    traj.class_id = spec.class_id;

    double duration = rng.LogNormal(mu_log, spec.duration.sigma_log);
    duration = common::Clamp(duration, spec.duration.min_frames,
                             static_cast<double>(total_frames));
    const uint64_t dur = std::max<uint64_t>(1, static_cast<uint64_t>(duration));

    const video::FrameId center = DrawCenter(spec.placement, total_frames, chunking, rng);
    const uint64_t half = dur / 2;
    video::FrameId start = center > half ? center - half : 0;
    if (start + dur > total_frames) start = total_frames - dur;
    traj.start_frame = start;
    traj.end_frame = start + dur;

    const double size = common::Clamp(
        rng.LogNormal(common::LogNormalMuForMean(spec.box.mean_size,
                                                 spec.box.size_sigma_log),
                      spec.box.size_sigma_log),
        0.01, 0.6);
    const double aspect = rng.Uniform(0.6, 1.7);
    const double w = size * std::sqrt(aspect);
    const double h = size / std::sqrt(aspect);
    traj.box0 = common::Box{rng.Uniform(0.0, std::max(1e-6, 1.0 - w)),
                            rng.Uniform(0.0, std::max(1e-6, 1.0 - h)), w, h};
    traj.dx_per_frame = rng.Normal(0.0, spec.box.motion_sigma);
    traj.dy_per_frame = rng.Normal(0.0, spec.box.motion_sigma);
    traj.scale_per_frame = std::exp(rng.Normal(0.0, 5e-4));
    out->push_back(traj);
  }
  return common::Status::OK();
}

common::Result<GroundTruth> GenerateScene(const SceneSpec& spec,
                                          const video::Chunking* chunking,
                                          common::Rng& rng) {
  std::vector<Trajectory> trajectories;
  for (const ClassPopulationSpec& cls : spec.classes) {
    common::Status status =
        GeneratePopulation(cls, spec.total_frames, chunking, rng, &trajectories);
    if (!status.ok()) return status;
  }
  return GroundTruth(std::move(trajectories), spec.total_frames);
}

}  // namespace scene
}  // namespace exsample
