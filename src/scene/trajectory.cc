#include "scene/trajectory.h"

#include <cassert>
#include <cmath>

namespace exsample {
namespace scene {

common::Box Trajectory::BoxAt(video::FrameId frame) const {
  assert(VisibleAt(frame));
  const double t = static_cast<double>(frame - start_frame);
  common::Box box = box0.Translated(t * dx_per_frame, t * dy_per_frame);
  if (scale_per_frame != 1.0) {
    box = box.ScaledAboutCenter(std::pow(scale_per_frame, t));
  }
  return box;
}

}  // namespace scene
}  // namespace exsample
