#include "scene/skew.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace exsample {
namespace scene {

std::vector<uint64_t> ChunkInstanceCounts(const std::vector<Trajectory>& trajectories,
                                          const video::Chunking& chunking,
                                          int32_t class_id) {
  std::vector<uint64_t> counts(chunking.NumChunks(), 0);
  for (const Trajectory& t : trajectories) {
    if (class_id >= 0 && t.class_id != class_id) continue;
    auto chunk = chunking.ChunkOfFrame(t.MidFrame());
    if (chunk.ok()) ++counts[chunk.value()];
  }
  return counts;
}

size_t MinChunksCoveringHalf(const std::vector<uint64_t>& chunk_counts) {
  uint64_t total = 0;
  for (uint64_t c : chunk_counts) total += c;
  if (total == 0) return 0;
  std::vector<uint64_t> sorted(chunk_counts);
  std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
  // Use 2*covered >= total to avoid integer-division rounding on odd totals.
  uint64_t covered = 0;
  for (size_t k = 0; k < sorted.size(); ++k) {
    covered += sorted[k];
    if (2 * covered >= total) return k + 1;
  }
  return sorted.size();
}

double SkewMetric(const std::vector<uint64_t>& chunk_counts) {
  const size_t k50 = MinChunksCoveringHalf(chunk_counts);
  if (k50 == 0) return 1.0;
  return static_cast<double>(chunk_counts.size()) / (2.0 * static_cast<double>(k50));
}

namespace {

// Number of top chunks needed to cover half the mass of the geometric weight
// profile w_i = r^i over m chunks (r in (0,1]).
double GeometricK50(double r, size_t m) {
  if (r >= 1.0 - 1e-12) return static_cast<double>(m) / 2.0;
  const double total = (1.0 - std::pow(r, static_cast<double>(m))) / (1.0 - r);
  // Solve (1 - r^k)/(1 - r) = total/2 for a real-valued k.
  const double k = std::log1p(-(0.5 * total) * (1.0 - r)) / std::log(r);
  return std::max(1.0, k);
}

}  // namespace

std::vector<double> MakeSkewedChunkWeights(size_t num_chunks, double target_s,
                                           common::Rng& rng) {
  assert(num_chunks > 0);
  const double max_s = static_cast<double>(num_chunks) / 2.0;
  target_s = std::min(std::max(target_s, 1.0), max_s);
  const double target_k50 = static_cast<double>(num_chunks) / (2.0 * target_s);

  // Binary search the geometric ratio r: smaller r => more concentration =>
  // smaller K50. K50(r) is increasing in r.
  double lo = 1e-6, hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (GeometricK50(mid, num_chunks) < target_k50) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double r = 0.5 * (lo + hi);

  std::vector<double> weights(num_chunks);
  double w = 1.0, sum = 0.0;
  for (size_t i = 0; i < num_chunks; ++i) {
    weights[i] = w;
    sum += w;
    w *= r;
    if (w < 1e-300) w = 1e-300;
  }
  for (double& v : weights) v /= sum;
  // Scatter the hot chunks across the timeline: the algorithm is insensitive
  // to chunk order, but real data does not sort its busy periods first.
  rng.Shuffle(&weights);
  return weights;
}

}  // namespace scene
}  // namespace exsample
