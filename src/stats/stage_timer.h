#ifndef EXSAMPLE_STATS_STAGE_TIMER_H_
#define EXSAMPLE_STATS_STAGE_TIMER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "stats/histogram.h"

namespace exsample {
namespace stats {

/// \brief Pipeline stages with latency histograms.
///
/// The first six are the per-step execution pipeline in order
/// (pick → classify → decode → detect → discriminate → observe); the last
/// two are service-side: one transport round-trip and the full
/// submit→grant latency of a detector-service ticket.
enum class Stage {
  kPick = 0,
  kClassify,
  kDecode,
  kDetect,
  kDiscriminate,
  kObserve,
  kTransport,
  kSubmitToGrant,
};

constexpr size_t kNumStages = 8;

/// Stable lowercase name used in JSON export ("pick", "classify", ...).
const char* StageName(Stage stage);

/// \brief Per-stage latency histograms over log10(seconds).
///
/// Each stage keeps a fixed-bin `Histogram` over log10(seconds) in
/// [-7, 2) — 100ns to 100s at 1/10th-decade resolution — plus exact count
/// and total-seconds tallies. Values outside the range land in the
/// histogram's under/overflow buckets (and a zero-duration sample's
/// log10(0) = -inf lands in the non-finite bucket), so nothing is lost.
///
/// Not internally synchronized: a StageTimer has a single owner (a query
/// session's coordinator thread, or a component that records under its own
/// lock) and is aggregated by `Merge` on the reader's side.
class StageTimer {
 public:
  StageTimer();

  /// Records one sample of `seconds` spent in `stage`.
  void Record(Stage stage, double seconds);

  /// Number of samples recorded for `stage`.
  uint64_t Count(Stage stage) const;
  /// Sum of all recorded durations for `stage`, in seconds.
  double TotalSeconds(Stage stage) const;
  /// The log10-seconds histogram for `stage`.
  const Histogram& StageHistogram(Stage stage) const;

  /// Approximate q-quantile (q in [0, 1]) of the stage's latency in
  /// seconds, estimated from the log10 histogram by linear interpolation
  /// within the containing bin. Returns 0 if the stage has no in-range
  /// samples.
  double ApproxQuantileSeconds(Stage stage, double q) const;

  /// Adds `other`'s tallies and histogram bins into this timer. Used to
  /// aggregate per-session timers into an engine-wide view.
  void Merge(const StageTimer& other);

  /// \brief RAII helper: records the scope's wall-clock duration on exit.
  ///
  /// A null timer makes the scope a no-op, so call sites stay unconditional
  /// when stats collection is disabled.
  class Scoped {
   public:
    Scoped(StageTimer* timer, Stage stage)
        : timer_(timer), stage_(stage) {
      if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~Scoped() {
      if (timer_ == nullptr) return;
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      timer_->Record(stage_,
                     std::chrono::duration<double>(elapsed).count());
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    StageTimer* timer_;
    Stage stage_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  struct PerStage {
    uint64_t count = 0;
    double total_seconds = 0.0;
  };
  std::array<PerStage, kNumStages> tallies_;
  std::array<Histogram, kNumStages> histograms_;
};

/// Null-safe record helper, mirroring `SlabAdd`.
inline void TimerRecord(StageTimer* timer, Stage stage, double seconds) {
  if (timer != nullptr) timer->Record(stage, seconds);
}

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_STAGE_TIMER_H_
