#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace exsample {
namespace stats {

common::Result<Histogram> Histogram::Make(double lo, double hi, size_t bins) {
  if (!(lo < hi)) {
    return common::Status::InvalidArgument("Histogram requires lo < hi");
  }
  if (bins == 0) {
    return common::Status::InvalidArgument("Histogram requires at least one bin");
  }
  return Histogram(lo, hi, bins);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {}

void Histogram::Add(double value) {
  if (!std::isfinite(value)) {
    // NaN compares false against both range checks below and would reach the
    // size_t cast (UB); +/-inf would overflow the cast the same way.
    ++non_finite_;
    return;
  }
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  size_t idx = static_cast<size_t>((value - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // FP edge guard.
  ++counts_[idx];
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = underflow_ + overflow_ + non_finite_;
  for (uint64_t c : counts_) total += c;
  return total;
}

uint64_t Histogram::InRangeCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts_) total += c;
  return total;
}

double Histogram::BinLeft(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::Density(size_t i) const {
  const uint64_t in_range = InRangeCount();
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(in_range) * width_);
}

std::string Histogram::ToAscii(size_t max_bar_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  char label[64];
  for (size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(label, sizeof(label), "%11.4g | ", BinLeft(i));
    os << label;
    const size_t bar = static_cast<size_t>(
        std::llround(static_cast<double>(counts_[i]) * static_cast<double>(max_bar_width) /
                     static_cast<double>(peak)));
    os << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace stats
}  // namespace exsample
