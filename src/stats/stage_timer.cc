#include "stats/stage_timer.h"

#include <cmath>

#include "common/status.h"

namespace exsample {
namespace stats {

namespace {

// 100ns .. 100s at 1/10th-decade resolution.
constexpr double kLogLo = -7.0;
constexpr double kLogHi = 2.0;
constexpr size_t kLogBins = 90;

Histogram MakeLogHistogram() {
  auto result = Histogram::Make(kLogLo, kLogHi, kLogBins);
  common::CheckOk(result.status(), "stage histogram construction");
  return std::move(result).value();
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kPick:
      return "pick";
    case Stage::kClassify:
      return "classify";
    case Stage::kDecode:
      return "decode";
    case Stage::kDetect:
      return "detect";
    case Stage::kDiscriminate:
      return "discriminate";
    case Stage::kObserve:
      return "observe";
    case Stage::kTransport:
      return "transport";
    case Stage::kSubmitToGrant:
      return "submit_to_grant";
  }
  return "unknown";
}

StageTimer::StageTimer()
    : histograms_{MakeLogHistogram(), MakeLogHistogram(), MakeLogHistogram(),
                  MakeLogHistogram(), MakeLogHistogram(), MakeLogHistogram(),
                  MakeLogHistogram(), MakeLogHistogram()} {}

void StageTimer::Record(Stage stage, double seconds) {
  PerStage& tally = tallies_[static_cast<size_t>(stage)];
  ++tally.count;
  tally.total_seconds += seconds;
  // log10(0) = -inf and log10(negative) = NaN both land in the histogram's
  // non-finite bucket rather than skewing a bin.
  histograms_[static_cast<size_t>(stage)].Add(std::log10(seconds));
}

uint64_t StageTimer::Count(Stage stage) const {
  return tallies_[static_cast<size_t>(stage)].count;
}

double StageTimer::TotalSeconds(Stage stage) const {
  return tallies_[static_cast<size_t>(stage)].total_seconds;
}

const Histogram& StageTimer::StageHistogram(Stage stage) const {
  return histograms_[static_cast<size_t>(stage)];
}

double StageTimer::ApproxQuantileSeconds(Stage stage, double q) const {
  const Histogram& hist = histograms_[static_cast<size_t>(stage)];
  const uint64_t in_range = hist.InRangeCount();
  if (in_range == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(in_range);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < hist.NumBins(); ++i) {
    const uint64_t bin = hist.BinCount(i);
    if (static_cast<double>(cumulative + bin) >= target && bin > 0) {
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(bin);
      const double log_value = hist.BinLeft(i) + hist.BinWidth() * fraction;
      return std::pow(10.0, log_value);
    }
    cumulative += bin;
  }
  // All mass consumed without crossing the target (q == 1 with trailing
  // zero bins): report the top of the last occupied bin.
  for (size_t i = hist.NumBins(); i > 0; --i) {
    if (hist.BinCount(i - 1) > 0) {
      return std::pow(10.0, hist.BinLeft(i - 1) + hist.BinWidth());
    }
  }
  return 0.0;
}

void StageTimer::Merge(const StageTimer& other) {
  for (size_t s = 0; s < kNumStages; ++s) {
    tallies_[s].count += other.tallies_[s].count;
    tallies_[s].total_seconds += other.tallies_[s].total_seconds;
    for (size_t b = 0; b < histograms_[s].NumBins(); ++b) {
      histograms_[s].AddBinCount(b, other.histograms_[s].BinCount(b));
    }
    histograms_[s].AddOutOfRange(other.histograms_[s].Underflow(),
                                 other.histograms_[s].Overflow(),
                                 other.histograms_[s].NonFinite());
  }
}

}  // namespace stats
}  // namespace exsample
