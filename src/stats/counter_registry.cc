#include "stats/counter_registry.h"

#include "common/status.h"

namespace exsample {
namespace stats {

CounterSlab::CounterSlab(std::string scope)
    : scope_(std::move(scope)), counters_(kMaxMetrics), gauges_(kMaxMetrics) {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

MetricId CounterRegistry::RegisterLocked(const std::string& name,
                                         MetricKind kind) {
  auto& ids = (kind == MetricKind::kCounter) ? counter_ids_ : gauge_ids_;
  auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  const MetricId id = ids.size();
  common::Check(id < CounterSlab::kMaxMetrics,
                "CounterRegistry metric capacity exhausted");
  ids.emplace(name, id);
  return id;
}

MetricId CounterRegistry::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, MetricKind::kCounter);
}

MetricId CounterRegistry::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, MetricKind::kGauge);
}

CounterSlab* CounterRegistry::AcquireSlab(const std::string& scope) {
  std::lock_guard<std::mutex> lock(mu_);
  slabs_.push_back(std::make_unique<CounterSlab>(scope));
  return slabs_.back().get();
}

StatsSnapshot CounterRegistry::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snapshot;
  snapshot.sync_sequence = ++sync_sequence_;
  for (const auto& [name, id] : counter_ids_) {
    uint64_t total = 0;
    for (const auto& slab : slabs_) total += slab->CounterValue(id);
    snapshot.counters.emplace(name, total);
  }
  for (const auto& [name, id] : gauge_ids_) {
    double total = 0.0;
    for (const auto& slab : slabs_) total += slab->GaugeValue(id);
    snapshot.gauges.emplace(name, total);
  }
  return snapshot;
}

size_t CounterRegistry::NumCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_ids_.size();
}

size_t CounterRegistry::NumGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauge_ids_.size();
}

}  // namespace stats
}  // namespace exsample
