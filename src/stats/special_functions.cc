#include "stats/special_functions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace exsample {
namespace stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// Series representation of P(a, x), valid (fast-converging) for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction representation of Q(a, x), valid for x >= a + 1
// (modified Lentz algorithm).
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 0.0;
  if (std::isinf(x)) return 1.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 1.0;
  if (std::isinf(x)) return 0.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double InverseRegularizedGammaP(double a, double p) {
  assert(a > 0.0);
  assert(p >= 0.0 && p < 1.0);
  if (p == 0.0) return 0.0;

  // Wilson–Hilferty: the cube root of a Gamma variate is approximately
  // normal. z is the standard-normal quantile of p (Acklam-lite rational
  // approximation is overkill here; use a crude bisection-free estimate and
  // let Newton clean it up).
  const double z = [](double q) {
    // Beasley–Springer–Moro style inverse-normal approximation.
    static const double a1 = -39.69683028665376, a2 = 220.9460984245205,
                        a3 = -275.9285104469687, a4 = 138.3577518672690,
                        a5 = -30.66479806614716, a6 = 2.506628277459239;
    static const double b1 = -54.47609879822406, b2 = 161.5858368580409,
                        b3 = -155.6989798598866, b4 = 66.80131188771972,
                        b5 = -13.28068155288572;
    static const double c1 = -0.007784894002430293, c2 = -0.3223964580411365,
                        c3 = -2.400758277161838, c4 = -2.549732539343734,
                        c5 = 4.374664141464968, c6 = 2.938163982698783;
    static const double d1 = 0.007784695709041462, d2 = 0.3224671290700398,
                        d3 = 2.445134137142996, d4 = 3.754408661907416;
    const double p_low = 0.02425;
    if (q < p_low) {
      const double r = std::sqrt(-2.0 * std::log(q));
      return (((((c1 * r + c2) * r + c3) * r + c4) * r + c5) * r + c6) /
             ((((d1 * r + d2) * r + d3) * r + d4) * r + 1.0);
    }
    if (q <= 1.0 - p_low) {
      const double r = q - 0.5;
      const double s = r * r;
      return (((((a1 * s + a2) * s + a3) * s + a4) * s + a5) * s + a6) * r /
             (((((b1 * s + b2) * s + b3) * s + b4) * s + b5) * s + 1.0);
    }
    const double r = std::sqrt(-2.0 * std::log(1.0 - q));
    return -(((((c1 * r + c2) * r + c3) * r + c4) * r + c5) * r + c6) /
           ((((d1 * r + d2) * r + d3) * r + d4) * r + 1.0);
  }(p);

  const double t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
  double x = a * t * t * t;
  if (x <= 0.0 || !std::isfinite(x)) x = a * std::exp((std::log(p) + std::lgamma(a + 1.0)) / a);
  if (x <= 0.0 || !std::isfinite(x)) x = kTiny;

  // Safeguarded Newton on f(x) = P(a, x) - p with bracketing fallback. For
  // small shapes the root can sit at extreme scales (e.g. 1e-21 for a = 0.1,
  // p = 0.01), so the fallback bisects *geometrically*, which resolves any
  // double-precision magnitude in ~60 steps.
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 300; ++iter) {
    const double f = RegularizedGammaP(a, x) - p;
    if (std::fabs(f) < 1e-12) break;
    if (f > 0.0) {
      hi = std::min(hi, x);
    } else {
      lo = std::max(lo, x);
    }
    const double log_pdf = -x + (a - 1.0) * std::log(x) - std::lgamma(a);
    const double pdf = std::exp(log_pdf);
    double next;
    if (pdf > 0.0 && std::isfinite(pdf)) {
      next = x - f / pdf;
    } else {
      next = std::numeric_limits<double>::quiet_NaN();
    }
    if (!(next > lo && next < hi) || !std::isfinite(next)) {
      if (std::isinf(hi)) {
        next = x * 2.0;
      } else if (lo <= 0.0) {
        next = hi / 2.0;
      } else {
        next = std::sqrt(lo * hi);
      }
    }
    if (next == x) break;
    x = next;
  }
  return x;
}

}  // namespace stats
}  // namespace exsample
