#ifndef EXSAMPLE_STATS_STATS_JSON_H_
#define EXSAMPLE_STATS_STATS_JSON_H_

#include <string>

#include "stats/counter_registry.h"
#include "stats/stage_timer.h"

namespace exsample {
namespace stats {

/// Schema version stamped into every exported snapshot. Bump when the JSON
/// shape changes incompatibly; consumers key parsing off this field.
constexpr int kStatsJsonVersion = 1;

/// \brief Renders a snapshot (and optional stage timer) as versioned JSON.
///
/// Output is deterministic for a given input: keys come from ordered maps,
/// stages are emitted in enum order, and doubles use a fixed shortest
/// round-trip format — so a golden test can compare byte-for-byte. Shape:
///
/// {
///   "version": 1,
///   "sync_sequence": N,
///   "counters": {"name": N, ...},
///   "gauges": {"name": X, ...},
///   "stages": {
///     "pick": {"count": N, "total_seconds": X, "p50_seconds": X,
///              "p95_seconds": X, "p99_seconds": X},
///     ...
///   }
/// }
///
/// `stages` is an empty object when `stages == nullptr`.
std::string WriteStatsJson(const StatsSnapshot& snapshot,
                           const StageTimer* stages);

/// Formats a double as its shortest representation that round-trips
/// (JSON-safe: no inf/nan — those render as 0). Exposed for tests.
std::string JsonDouble(double value);

/// Escapes a string for inclusion in JSON (quotes, backslash, control
/// characters).
std::string JsonEscape(const std::string& raw);

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_STATS_JSON_H_
