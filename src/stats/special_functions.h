#ifndef EXSAMPLE_STATS_SPECIAL_FUNCTIONS_H_
#define EXSAMPLE_STATS_SPECIAL_FUNCTIONS_H_

namespace exsample {
namespace stats {

/// \brief Regularized lower incomplete gamma function P(a, x).
///
/// P(a, x) = gamma(a, x) / Gamma(a), for a > 0 and x >= 0. This is the CDF of
/// a Gamma(shape=a, rate=1) random variable evaluated at x. Uses the series
/// expansion for x < a + 1 and the Lentz continued fraction otherwise
/// (Numerical Recipes `gammp`/`gammq`), accurate to ~1e-12.
double RegularizedGammaP(double a, double x);

/// \brief Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// \brief Inverse of `RegularizedGammaP` in x: returns x such that
/// P(a, x) = p, for p in [0, 1).
///
/// Wilson–Hilferty initial guess refined with safeguarded Newton iterations.
double InverseRegularizedGammaP(double a, double p);

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_SPECIAL_FUNCTIONS_H_
