#include "stats/running_stat.h"

#include <algorithm>
#include <cmath>

namespace exsample {
namespace stats {

void RunningStat::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

}  // namespace stats
}  // namespace exsample
