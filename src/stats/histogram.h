#ifndef EXSAMPLE_STATS_HISTOGRAM_H_
#define EXSAMPLE_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace exsample {
namespace stats {

/// \brief Fixed-bin histogram over [lo, hi) with under/overflow buckets.
///
/// Used by the Fig. 2 belief-validation bench to histogram the true R(n+1)
/// values observed in simulation and compare their shape against the
/// Gamma belief density.
class Histogram {
 public:
  /// Constructs a histogram with `bins` equal-width bins spanning [lo, hi).
  /// Requires lo < hi and bins >= 1 (validated via `Make`).
  static common::Result<Histogram> Make(double lo, double hi, size_t bins);

  /// \brief Records one value (out-of-range values go to the under/overflow
  /// counters; NaN and +/-inf go to the non-finite counter).
  void Add(double value);

  /// \brief Number of recorded values, including under/overflow and
  /// non-finite samples.
  uint64_t TotalCount() const;

  /// \brief Number of recorded values that landed in a bin (excludes
  /// under/overflow and non-finite samples).
  uint64_t InRangeCount() const;

  /// \brief Count in bin `i`.
  uint64_t BinCount(size_t i) const { return counts_[i]; }
  /// \brief Number of bins.
  size_t NumBins() const { return counts_.size(); }
  /// \brief Left edge of bin `i`.
  double BinLeft(size_t i) const;
  /// \brief Bin width.
  double BinWidth() const { return width_; }
  /// \brief Count of values below `lo`.
  uint64_t Underflow() const { return underflow_; }
  /// \brief Count of values at or above `hi`.
  uint64_t Overflow() const { return overflow_; }
  /// \brief Count of NaN / +/-inf samples.
  uint64_t NonFinite() const { return non_finite_; }

  /// \brief Adds `count` directly into bin `i` (merge support).
  void AddBinCount(size_t i, uint64_t count) { counts_[i] += count; }
  /// \brief Adds directly to the out-of-range counters (merge support).
  void AddOutOfRange(uint64_t underflow, uint64_t overflow,
                     uint64_t non_finite) {
    underflow_ += underflow;
    overflow_ += overflow;
    non_finite_ += non_finite;
  }

  /// \brief Normalized density of bin `i` (count / (in_range * width)), so
  /// the in-range densities integrate to 1 and are comparable to a pdf even
  /// when out-of-range samples exist.
  double Density(size_t i) const;

  /// \brief Renders a compact ASCII bar chart, one line per bin.
  std::string ToAscii(size_t max_bar_width = 40) const;

 private:
  Histogram(double lo, double hi, size_t bins);

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t non_finite_ = 0;
};

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_HISTOGRAM_H_
