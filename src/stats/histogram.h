#ifndef EXSAMPLE_STATS_HISTOGRAM_H_
#define EXSAMPLE_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace exsample {
namespace stats {

/// \brief Fixed-bin histogram over [lo, hi) with under/overflow buckets.
///
/// Used by the Fig. 2 belief-validation bench to histogram the true R(n+1)
/// values observed in simulation and compare their shape against the
/// Gamma belief density.
class Histogram {
 public:
  /// Constructs a histogram with `bins` equal-width bins spanning [lo, hi).
  /// Requires lo < hi and bins >= 1 (validated via `Make`).
  static common::Result<Histogram> Make(double lo, double hi, size_t bins);

  /// \brief Records one value (out-of-range values go to the under/overflow
  /// counters).
  void Add(double value);

  /// \brief Number of recorded values, including under/overflow.
  uint64_t TotalCount() const;

  /// \brief Count in bin `i`.
  uint64_t BinCount(size_t i) const { return counts_[i]; }
  /// \brief Number of bins.
  size_t NumBins() const { return counts_.size(); }
  /// \brief Left edge of bin `i`.
  double BinLeft(size_t i) const;
  /// \brief Bin width.
  double BinWidth() const { return width_; }
  /// \brief Count of values below `lo`.
  uint64_t Underflow() const { return underflow_; }
  /// \brief Count of values at or above `hi`.
  uint64_t Overflow() const { return overflow_; }

  /// \brief Normalized density of bin `i` (count / (total * width)), so the
  /// histogram integrates to (in-range mass) and is comparable to a pdf.
  double Density(size_t i) const;

  /// \brief Renders a compact ASCII bar chart, one line per bin.
  std::string ToAscii(size_t max_bar_width = 40) const;

 private:
  Histogram(double lo, double hi, size_t bins);

  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_HISTOGRAM_H_
