#include "stats/gamma_belief.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "stats/special_functions.h"

namespace exsample {
namespace stats {

GammaBelief::GammaBelief(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  assert(alpha_ > 0.0);
  assert(beta_ > 0.0);
}

common::Result<GammaBelief> GammaBelief::Make(double alpha, double beta) {
  if (!(alpha > 0.0) || !(beta > 0.0)) {
    return common::Status::InvalidArgument(
        "GammaBelief requires alpha > 0 and beta > 0");
  }
  return GammaBelief(alpha, beta);
}

double GammaBelief::Sample(common::Rng& rng) const { return rng.Gamma(alpha_, beta_); }

double GammaBelief::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (alpha_ < 1.0) return std::numeric_limits<double>::infinity();
    if (alpha_ == 1.0) return beta_;
    return 0.0;
  }
  return std::exp(LogPdf(x));
}

double GammaBelief::LogPdf(double x) const {
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  return alpha_ * std::log(beta_) + (alpha_ - 1.0) * std::log(x) - beta_ * x -
         std::lgamma(alpha_);
}

double GammaBelief::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(alpha_, beta_ * x);
}

double GammaBelief::Quantile(double q) const {
  assert(q >= 0.0 && q < 1.0);
  return InverseRegularizedGammaP(alpha_, q) / beta_;
}

}  // namespace stats
}  // namespace exsample
