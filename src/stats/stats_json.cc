#include "stats/stats_json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace exsample {
namespace stats {

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "0";
  // Shortest representation that round-trips: try increasing precision
  // until strtod gives the value back. %.17g always round-trips, so the
  // loop terminates; most values exit at %.15g or earlier.
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return std::string(buf);
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string WriteStatsJson(const StatsSnapshot& snapshot,
                           const StageTimer* stages) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"version\": " << kStatsJsonVersion << ",\n";
  os << "  \"sync_sequence\": " << snapshot.sync_sequence << ",\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "\n" : ",\n");
    os << "    \"" << JsonEscape(name) << "\": " << value;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    os << (first ? "\n" : ",\n");
    os << "    \"" << JsonEscape(name) << "\": " << JsonDouble(value);
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");

  os << "  \"stages\": {";
  first = true;
  if (stages != nullptr) {
    for (size_t s = 0; s < kNumStages; ++s) {
      const Stage stage = static_cast<Stage>(s);
      os << (first ? "\n" : ",\n");
      os << "    \"" << StageName(stage) << "\": {"
         << "\"count\": " << stages->Count(stage)
         << ", \"total_seconds\": " << JsonDouble(stages->TotalSeconds(stage))
         << ", \"p50_seconds\": "
         << JsonDouble(stages->ApproxQuantileSeconds(stage, 0.5))
         << ", \"p95_seconds\": "
         << JsonDouble(stages->ApproxQuantileSeconds(stage, 0.95))
         << ", \"p99_seconds\": "
         << JsonDouble(stages->ApproxQuantileSeconds(stage, 0.99)) << "}";
      first = false;
    }
  }
  os << (first ? "}\n" : "\n  }\n");
  os << "}\n";
  return os.str();
}

}  // namespace stats
}  // namespace exsample
