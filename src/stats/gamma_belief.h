#ifndef EXSAMPLE_STATS_GAMMA_BELIEF_H_
#define EXSAMPLE_STATS_GAMMA_BELIEF_H_

#include "common/rng.h"
#include "common/status.h"

namespace exsample {
namespace stats {

/// \brief Gamma(alpha, beta) distribution used as the belief over a chunk's
/// future-result rate R (paper Eq. III.4).
///
/// Shape/rate parameterization: mean = alpha / beta, variance = alpha / beta².
/// ExSample instantiates this with alpha = N1_j + alpha0 and beta = n_j +
/// beta0, matching the point estimate R̂ = N1/n (Eq. III.1) in expectation and
/// the variance bound Var[R̂] <= E[R̂]/n (Eq. III.3) in spread.
class GammaBelief {
 public:
  /// Constructs the belief. Both parameters must be > 0 (asserted).
  GammaBelief(double alpha, double beta);

  /// \brief Validated factory; returns InvalidArgument for non-positive
  /// parameters.
  static common::Result<GammaBelief> Make(double alpha, double beta);

  /// \brief Shape parameter.
  double alpha() const { return alpha_; }
  /// \brief Rate parameter.
  double beta() const { return beta_; }
  /// \brief Mean alpha / beta.
  double Mean() const { return alpha_ / beta_; }
  /// \brief Variance alpha / beta².
  double Variance() const { return alpha_ / (beta_ * beta_); }

  /// \brief Draws one sample (the Thompson-sampling primitive).
  double Sample(common::Rng& rng) const;

  /// \brief Probability density at x (0 for x < 0).
  double Pdf(double x) const;

  /// \brief Natural log of `Pdf` (-inf for x <= 0 unless alpha == 1).
  double LogPdf(double x) const;

  /// \brief Cumulative distribution function at x.
  double Cdf(double x) const;

  /// \brief Quantile function (inverse CDF) for q in [0, 1).
  ///
  /// Bayes-UCB uses the upper quantile of this belief in place of Thompson
  /// samples.
  double Quantile(double q) const;

 private:
  double alpha_;
  double beta_;
};

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_GAMMA_BELIEF_H_
