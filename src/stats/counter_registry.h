#ifndef EXSAMPLE_STATS_COUNTER_REGISTRY_H_
#define EXSAMPLE_STATS_COUNTER_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace exsample {
namespace stats {

/// Dense id assigned by `CounterRegistry::RegisterCounter` /
/// `RegisterGauge`. Ids index directly into per-thread slab slots.
using MetricId = size_t;

/// \brief Metric flavors held by the registry.
///
/// Counters are monotonic sums (events, frames, bytes); gauges are
/// level-style values (queue depth, lookahead) where the per-slab value is
/// "last written" and the global value is the sum across slabs (each slab
/// owns a disjoint share of the level, e.g. one shard's queue).
enum class MetricKind { kCounter, kGauge };

/// \brief Fixed-capacity block of per-writer metric slots.
///
/// Modeled on Suricata's per-thread counter arrays: the hot path mutates a
/// slot owned by exactly one writer thread with plain relaxed loads/stores —
/// no locked read-modify-write, no mutex — and a reader (`CounterRegistry::
/// Sync`) aggregates all slabs with relaxed loads. Relaxed atomics on a
/// single-writer slot compile to ordinary mov instructions on x86/ARM, so
/// the increment is as cheap as a plain `++` while staying defined behavior
/// (and TSan-clean) against the concurrent sync.
///
/// Slots are pre-sized to `kMaxMetrics` so registration and slab acquisition
/// can interleave freely; ids from a registry are always in range for every
/// slab of that registry.
class CounterSlab {
 public:
  // Sized for the multi-tenant serving layer: every tenant registers its own
  // `tenant.<id>.*` metric family (~8 names), on top of the engine's fixed
  // session/service/transport/reuse names. Registration past the cap is a
  // fatal `Check` in `CounterRegistry::RegisterLocked`, never a silent wrap.
  static constexpr size_t kMaxMetrics = 512;

  explicit CounterSlab(std::string scope);

  CounterSlab(const CounterSlab&) = delete;
  CounterSlab& operator=(const CounterSlab&) = delete;

  /// Adds `delta` to a counter slot. Single-writer: only the owning thread
  /// may call this for a given slab.
  void Add(MetricId id, uint64_t delta = 1) {
    std::atomic<uint64_t>& slot = counters_[id];
    slot.store(slot.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }

  /// Overwrites a gauge slot. Single-writer, same contract as `Add`.
  void SetGauge(MetricId id, double value) {
    gauges_[id].store(value, std::memory_order_relaxed);
  }

  /// Current value of a counter slot (relaxed read; exact when quiescent).
  uint64_t CounterValue(MetricId id) const {
    return counters_[id].load(std::memory_order_relaxed);
  }
  /// Current value of a gauge slot (relaxed read).
  double GaugeValue(MetricId id) const {
    return gauges_[id].load(std::memory_order_relaxed);
  }

  /// Scope label the slab was acquired under (e.g. "session/0", "service").
  const std::string& scope() const { return scope_; }

 private:
  std::string scope_;
  std::vector<std::atomic<uint64_t>> counters_;
  std::vector<std::atomic<double>> gauges_;
};

/// Null-safe helpers: components hold a `CounterSlab*` that is nullptr when
/// stats collection is off, and tick through these so the hot path stays a
/// single branch in the disabled case.
inline void SlabAdd(CounterSlab* slab, MetricId id, uint64_t delta = 1) {
  if (slab != nullptr) slab->Add(id, delta);
}
inline void SlabSetGauge(CounterSlab* slab, MetricId id, double value) {
  if (slab != nullptr) slab->SetGauge(id, value);
}

/// \brief Point-in-time aggregate of every slab, keyed by metric name.
///
/// Maps are ordered so JSON export is deterministic.
struct StatsSnapshot {
  uint64_t sync_sequence = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
};

/// \brief Engine-wide registry of named counters/gauges and their slabs.
///
/// Registration and slab acquisition are mutex-guarded (cold path, engine
/// setup); increments touch only the acquired slab (lock-free, see
/// `CounterSlab`); `Sync` walks every slab under the mutex and sums slots
/// into a `StatsSnapshot`. Slabs are owned by the registry and live until
/// the registry dies, so a component may keep its raw pointer for its whole
/// lifetime (the engine owns the registry and outlives its components).
class CounterRegistry {
 public:
  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Registers (or looks up) a monotonic counter. Re-registering the same
  /// name returns the existing id, so independent components can share a
  /// metric without coordination.
  MetricId RegisterCounter(const std::string& name);

  /// Registers (or looks up) a gauge.
  MetricId RegisterGauge(const std::string& name);

  /// Acquires a new slab for one writer thread / component. The returned
  /// pointer is valid for the registry's lifetime.
  CounterSlab* AcquireSlab(const std::string& scope);

  /// Aggregates all slabs into a named snapshot and bumps the sync
  /// sequence number. Safe to call while writers are ticking slabs
  /// (values are relaxed reads, each slot internally consistent).
  StatsSnapshot Sync();

  /// Number of registered metrics of each kind (for tests / capacity
  /// monitoring).
  size_t NumCounters() const;
  size_t NumGauges() const;

 private:
  MetricId RegisterLocked(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  // name -> id, per kind. Ids are dense per kind: counters and gauges index
  // separate slot arrays in the slab.
  std::map<std::string, MetricId> counter_ids_;
  std::map<std::string, MetricId> gauge_ids_;
  std::vector<std::unique_ptr<CounterSlab>> slabs_;
  uint64_t sync_sequence_ = 0;
};

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_COUNTER_REGISTRY_H_
