#ifndef EXSAMPLE_STATS_AGGREGATE_H_
#define EXSAMPLE_STATS_AGGREGATE_H_

#include <cstddef>
#include <vector>

namespace exsample {
namespace stats {

/// \brief A median trajectory with a percentile band, aggregated across runs.
///
/// Figures 3 and 4 of the paper plot the median curve over 21 runs with a
/// shaded 25th–75th percentile band; this is the data container for those.
struct QuantileBand {
  std::vector<double> median;
  std::vector<double> q25;
  std::vector<double> q75;
};

/// \brief Aggregates aligned per-run series into median/quartile bands.
///
/// `runs` is a list of equally-long series (one per run, same x grid).
/// Shorter runs are treated as truncated: positions beyond a run's length are
/// aggregated over the runs that do reach them. Returns empty vectors when
/// `runs` is empty.
QuantileBand AggregateRuns(const std::vector<std::vector<double>>& runs);

/// \brief Median of per-run scalar values (convenience over common::Median
/// for symmetry with AggregateRuns).
double MedianScalar(std::vector<double> values);

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_AGGREGATE_H_
