#ifndef EXSAMPLE_STATS_RUNNING_STAT_H_
#define EXSAMPLE_STATS_RUNNING_STAT_H_

#include <cstdint>
#include <limits>

namespace exsample {
namespace stats {

/// \brief Single-pass mean/variance/min/max accumulator (Welford's method).
///
/// Numerically stable for long streams; supports merging partial accumulators
/// (Chan et al.) so per-run statistics can be combined across experiments.
class RunningStat {
 public:
  /// \brief Adds one observation.
  void Add(double value);

  /// \brief Merges another accumulator into this one.
  void Merge(const RunningStat& other);

  /// \brief Number of observations.
  uint64_t Count() const { return count_; }
  /// \brief Arithmetic mean (0 when empty).
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// \brief Unbiased sample variance (0 when count < 2).
  double Variance() const;
  /// \brief Square root of `Variance`.
  double StdDev() const;
  /// \brief Smallest observation (+inf when empty).
  double Min() const { return min_; }
  /// \brief Largest observation (-inf when empty).
  double Max() const { return max_; }
  /// \brief Sum of all observations.
  double Sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stats
}  // namespace exsample

#endif  // EXSAMPLE_STATS_RUNNING_STAT_H_
