#include "stats/aggregate.h"

#include <algorithm>

#include "common/math_util.h"

namespace exsample {
namespace stats {

QuantileBand AggregateRuns(const std::vector<std::vector<double>>& runs) {
  QuantileBand band;
  size_t max_len = 0;
  for (const auto& run : runs) max_len = std::max(max_len, run.size());
  band.median.reserve(max_len);
  band.q25.reserve(max_len);
  band.q75.reserve(max_len);
  std::vector<double> column;
  for (size_t i = 0; i < max_len; ++i) {
    column.clear();
    for (const auto& run : runs) {
      if (i < run.size()) column.push_back(run[i]);
    }
    band.median.push_back(common::Quantile(column, 0.5));
    band.q25.push_back(common::Quantile(column, 0.25));
    band.q75.push_back(common::Quantile(column, 0.75));
  }
  return band;
}

double MedianScalar(std::vector<double> values) {
  return common::Median(std::move(values));
}

}  // namespace stats
}  // namespace exsample
