#include "reuse/detection_cache.h"

#include "common/status.h"

namespace exsample {
namespace reuse {

DetectionCache::DetectionCache(DetectionCacheOptions options) : options_(options) {
  common::Check(options_.budget_frames >= 1,
                "DetectionCache: budget must hold at least one frame");
}

bool DetectionCache::Lookup(const ReuseKey& key, video::FrameId frame,
                            detect::Detections* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(FrameKey{key, frame});
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *out = it->second.detections;
  return true;
}

void DetectionCache::EvictOneLocked() {
  // Oldest empty entry first; non-empty entries go only when no empty entry
  // remains. Stale tickets (their entry was refreshed under a newer seq) are
  // popped and ignored — the entry's live ticket is further back.
  for (std::deque<Ticket>* queue : {&empty_queue_, &nonempty_queue_}) {
    while (!queue->empty()) {
      const Ticket ticket = queue->front();
      queue->pop_front();
      const auto it = entries_.find(ticket.frame_key);
      if (it == entries_.end() || it->second.seq != ticket.seq) continue;
      const bool was_empty = it->second.detections.empty();
      if (was_empty) {
        ++stats_.evicted_empty;
      } else {
        ++stats_.evicted_nonempty;
        --nonempty_entries_;
      }
      entries_.erase(it);
      return;
    }
  }
  common::FatalError("DetectionCache: eviction found no live entry");
}

void DetectionCache::Insert(const ReuseKey& key, video::FrameId frame,
                            const detect::Detections& detections) {
  std::lock_guard<std::mutex> lock(mu_);
  const FrameKey frame_key{key, frame};
  Entry& entry = entries_[frame_key];
  const bool fresh = entry.seq == 0;
  if (!fresh && !entry.detections.empty()) --nonempty_entries_;
  entry.detections = detections;
  entry.seq = next_seq_++;
  ++stats_.insertions;
  if (!detections.empty()) ++nonempty_entries_;
  if (detections.empty()) {
    empty_queue_.push_back(Ticket{frame_key, entry.seq});
  } else {
    nonempty_queue_.push_back(Ticket{frame_key, entry.seq});
  }
  if (fresh && entries_.size() > options_.budget_frames) EvictOneLocked();
}

DetectionCacheStats DetectionCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DetectionCacheStats stats = stats_;
  stats.entries = entries_.size();
  stats.nonempty_entries = nonempty_entries_;
  return stats;
}

}  // namespace reuse
}  // namespace exsample
