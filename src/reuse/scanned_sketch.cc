#include "reuse/scanned_sketch.h"

#include "common/status.h"

namespace exsample {
namespace reuse {

ScannedSketch::ScannedSketch(ScannedSketchOptions options) : options_(options) {
  common::Check(options_.bloom_bits >= 64, "ScannedSketch: bloom needs >= 64 bits");
  common::Check(options_.num_hashes >= 1, "ScannedSketch: needs >= 1 hash");
  bloom_.assign((options_.bloom_bits + 63) / 64, 0);
}

bool ScannedSketch::BloomMayContainLocked(uint64_t hash) const {
  // Double hashing: bit_i = h1 + i * h2 (Kirsch–Mitzenmacher), h2 forced odd
  // so the probe sequence covers the table.
  const uint64_t h1 = hash;
  const uint64_t h2 = common::Mix64(hash) | 1;
  const uint64_t bits = bloom_.size() * 64;
  for (size_t i = 0; i < options_.num_hashes; ++i) {
    const uint64_t bit = (h1 + i * h2) % bits;
    if ((bloom_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

void ScannedSketch::BloomInsertLocked(uint64_t hash) {
  const uint64_t h1 = hash;
  const uint64_t h2 = common::Mix64(hash) | 1;
  const uint64_t bits = bloom_.size() * 64;
  for (size_t i = 0; i < options_.num_hashes; ++i) {
    const uint64_t bit = (h1 + i * h2) % bits;
    bloom_[bit / 64] |= uint64_t{1} << (bit % 64);
  }
}

void ScannedSketch::RecordScan(const ReuseKey& key, video::FrameId frame,
                               bool found_empty, uint64_t total_frames) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t>& bitmap = scanned_[key];
  if (bitmap.empty()) bitmap.assign((total_frames + 63) / 64, 0);
  common::Check(frame / 64 < bitmap.size(),
                "ScannedSketch: frame past the keyed repository's end");
  bitmap[frame / 64] |= uint64_t{1} << (frame % 64);
  const FrameKey frame_key{key, frame};
  if (found_empty) {
    BloomInsertLocked(frame_key.Hash());
    ++stats_.recorded_empty;
  } else {
    nonempty_.insert(frame_key);
    ++stats_.recorded_nonempty;
  }
}

bool ScannedSketch::KnownEmpty(const ReuseKey& key, video::FrameId frame) {
  std::lock_guard<std::mutex> lock(mu_);
  const FrameKey frame_key{key, frame};
  if (!BloomMayContainLocked(frame_key.Hash())) return false;
  // Bloom says "maybe scanned empty" — consult the exact guards before
  // letting anyone act on it.
  const auto it = scanned_.find(key);
  const bool really_scanned = it != scanned_.end() && frame / 64 < it->second.size() &&
                              (it->second[frame / 64] & (uint64_t{1} << (frame % 64)));
  if (!really_scanned || nonempty_.count(frame_key) != 0) {
    ++stats_.guard_rejects;
    return false;
  }
  ++stats_.known_empty;
  return true;
}

ScannedSketchStats ScannedSketch::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace reuse
}  // namespace exsample
