#include "reuse/belief_bank.h"

#include "common/status.h"

namespace exsample {
namespace reuse {

uint64_t ChunkingSignature(const video::Chunking& chunking) {
  uint64_t h = common::HashCombine(0x43484b53u /* "SKHC" */, chunking.NumChunks());
  for (const video::Chunk& chunk : chunking.Chunks()) {
    h = common::HashCombine(h, chunk.begin);
    h = common::HashCombine(h, chunk.end);
  }
  return common::HashCombine(h, chunking.TotalFrames());
}

void BeliefBank::RecordPosterior(const ReuseKey& key, uint64_t chunking_signature,
                                 const core::ChunkStatsTable& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ChunkEvidence>& evidence = bank_[BankKey{key, chunking_signature}];
  if (evidence.empty()) evidence.resize(stats.NumChunks());
  common::Check(evidence.size() == stats.NumChunks(),
                "BeliefBank: posterior table size changed under one signature");
  for (size_t j = 0; j < stats.NumChunks(); ++j) {
    evidence[j].n += stats.State(j).n;
    evidence[j].n1 += stats.N1NonNegative(j);
  }
  ++stats_.posteriors_recorded;
}

std::vector<core::BeliefParams> BeliefBank::WarmPriors(const ReuseKey& key,
                                                       uint64_t chunking_signature,
                                                       const core::BeliefParams& base,
                                                       double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = bank_.find(BankKey{key, chunking_signature});
  if (it == bank_.end()) return {};
  std::vector<core::BeliefParams> priors;
  priors.reserve(it->second.size());
  for (const ChunkEvidence& evidence : it->second) {
    core::BeliefParams prior = base;
    prior.alpha0 += weight * static_cast<double>(evidence.n1);
    prior.beta0 += weight * static_cast<double>(evidence.n);
    priors.push_back(prior);
  }
  ++stats_.warm_starts;
  return priors;
}

BeliefBankStats BeliefBank::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace reuse
}  // namespace exsample
