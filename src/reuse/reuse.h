#ifndef EXSAMPLE_REUSE_REUSE_H_
#define EXSAMPLE_REUSE_REUSE_H_

#include <cstdint>
#include <memory>

#include "detect/detection.h"
#include "reuse/belief_bank.h"
#include "reuse/detection_cache.h"
#include "reuse/reuse_key.h"
#include "reuse/scanned_sketch.h"
#include "video/repository.h"

namespace exsample {
namespace reuse {

/// \brief Which reuse pieces are active, and their budgets
/// (`EngineConfig::reuse`).
struct ReuseOptions {
  /// Consult/populate the exact `DetectionCache` in the detect stage.
  bool cache = false;
  /// Consult/populate the `ScannedSketch`; lets the runner skip frames a
  /// prior query scanned and found empty even after their cache entries were
  /// evicted.
  bool sketch = false;
  /// Warm-start chunk beliefs from the `BeliefBank`'s persisted posteriors.
  bool warm_start = false;

  /// Eviction budget of the detection cache, in cached frames.
  size_t cache_budget_frames = size_t{1} << 20;
  /// Sketch sizing.
  ScannedSketchOptions sketch_options;
  /// Weight of persisted posterior counts in a warm prior (1 = exact
  /// Bayesian accumulation; smaller values discount old evidence).
  double warm_start_weight = 1.0;

  bool AnyEnabled() const { return cache || sketch || warm_start; }

  /// \brief Everything on at default budgets.
  static ReuseOptions All() {
    ReuseOptions options;
    options.cache = true;
    options.sketch = true;
    options.warm_start = true;
    return options;
  }
};

/// \brief Per-session reuse tallies, mirroring `SessionSchedulerStats`:
/// filled in by the runner as the session's batches consult the shared
/// cache/sketch. All zeros when reuse is off.
struct ReuseSessionStats {
  /// Frames answered from the detection cache (bit-identical, zero detector
  /// seconds charged).
  uint64_t cache_hits = 0;
  /// Frames that went to the detector (and were then inserted).
  uint64_t cache_misses = 0;
  /// Frames skipped via the scanned sketch's proven-empty record.
  uint64_t sketch_skips = 0;
  /// Detector seconds *not* charged thanks to hits and skips (each saved
  /// frame valued at its shard's `SecondsPerFrame`).
  double saved_detector_seconds = 0.0;
  /// Detector seconds actually charged (the misses).
  double charged_detector_seconds = 0.0;
  /// True when this session's chunk beliefs were warm-started from the bank.
  bool warm_started = false;
};

/// \brief The engine-owned cross-query reuse state: one detection cache, one
/// scanned sketch, and one belief bank, shared by every session the engine
/// runs — concurrent (`RunConcurrent`) and consecutive alike.
///
/// The manager is deliberately dumb: all policy (what to consult, what to
/// charge) lives in the runner and engine seams; components are keyed by
/// `ReuseKey`, so one manager safely serves sessions of different classes
/// and detector configs side by side.
class ReuseManager {
 public:
  explicit ReuseManager(ReuseOptions options);

  const ReuseOptions& options() const { return options_; }
  DetectionCache& cache() { return cache_; }
  ScannedSketch& sketch() { return sketch_; }
  BeliefBank& beliefs() { return beliefs_; }

 private:
  ReuseOptions options_;
  DetectionCache cache_;
  ScannedSketch sketch_;
  BeliefBank beliefs_;
};

/// \brief One session's binding to the shared `ReuseManager`: key, repository
/// extent, and the session's stats sink. This is what `RunnerOptions::reuse`
/// points at — the runner stays ignorant of engines and keys.
class SessionReuse {
 public:
  /// How a picked frame resolves against the reuse layer before the detect
  /// stage.
  enum class Outcome : uint8_t {
    kMiss = 0,      ///< Not reusable: detect for real (then record).
    kCacheHit = 1,  ///< Exact detections served from the cache.
    kSketchSkip = 2,  ///< Proven scanned-empty: substitute an empty list.
  };

  /// `manager` and `stats` must outlive this object. `total_frames` is the
  /// keyed repository's extent (sizes the sketch's exact guard).
  SessionReuse(ReuseManager* manager, const ReuseKey& key, uint64_t total_frames,
               ReuseSessionStats* stats);

  /// \brief Classifies one picked frame. On `kCacheHit`, `*cached` holds the
  /// stored detections; on `kSketchSkip` it is cleared (the proven-empty
  /// list); on `kMiss` it is untouched.
  Outcome Classify(video::FrameId frame, detect::Detections* cached);

  /// \brief Records the outcome of a real detect call on a missed frame,
  /// charging `seconds_per_frame` to the session's tally.
  void RecordDetected(video::FrameId frame, const detect::Detections& detections,
                      double seconds_per_frame);

  /// \brief Credits one reused frame's avoided detector cost.
  void RecordSaved(double seconds_per_frame);

  const ReuseKey& key() const { return key_; }
  const ReuseSessionStats& stats() const { return *stats_; }

 private:
  ReuseManager* manager_;
  ReuseKey key_;
  uint64_t total_frames_;
  ReuseSessionStats* stats_;
};

}  // namespace reuse
}  // namespace exsample

#endif  // EXSAMPLE_REUSE_REUSE_H_
