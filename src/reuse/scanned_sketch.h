#ifndef EXSAMPLE_REUSE_SCANNED_SKETCH_H_
#define EXSAMPLE_REUSE_SCANNED_SKETCH_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "reuse/reuse_key.h"
#include "video/repository.h"

namespace exsample {
namespace reuse {

/// \brief Sizing of the scanned-space sketch.
struct ScannedSketchOptions {
  /// Bits in the Bloom filter recording scanned-and-found-empty (key, frame)
  /// pairs. The default (4 Mbit = 512 KiB) keeps the false-positive rate
  /// well under 1% for a million recorded frames at 4 hashes.
  size_t bloom_bits = size_t{1} << 22;
  /// Hash functions per Bloom insert/query (double hashing).
  size_t num_hashes = 4;
};

/// \brief Counters of one `ScannedSketch` (all keys, all sessions).
struct ScannedSketchStats {
  /// Frames recorded as scanned-and-empty (Bloom inserts).
  uint64_t recorded_empty = 0;
  /// Frames recorded as scanned-and-non-empty (registry inserts).
  uint64_t recorded_nonempty = 0;
  /// `KnownEmpty` queries answered true — each is a safe skip.
  uint64_t known_empty = 0;
  /// Bloom positives rejected by the exact scanned guard: these are exactly
  /// the Bloom false positives that would have skipped a never-scanned frame
  /// — the reason a skip can be advertised as false-positive-*safe*.
  uint64_t guard_rejects = 0;
};

/// \brief Compact record of the scanned outcome space: which (frame, class)
/// pairs earlier queries already detected on and found *empty*.
///
/// The primary structure is a Bloom filter over (key, frame) — constant
/// memory however much video has been scanned, in the spirit of
/// Bloom-filter-backed video retrieval indexes. A raw Bloom answer, though,
/// is only "maybe": acting on a false positive would skip a frame a cold run
/// detects on, and could therefore change answers — unacceptable under this
/// repo's bit-identity contract. The sketch therefore pairs the filter with
/// two exact guards:
///
///  - a per-key scanned bitmap (1 bit per repository frame, allocated per
///    key on first record): `KnownEmpty` answers true only for frames that
///    were *really* scanned, so a Bloom false positive on a never-scanned
///    frame is caught (`guard_rejects`);
///  - an exact registry of scanned-and-non-empty frames: a frame whose scan
///    found detections is never reported empty, however the Bloom bits fall.
///
/// A true `KnownEmpty` is thus a proof, not a bet: the frame was scanned
/// under this exact key and its detection list was empty, so skipping the
/// detector and substituting the empty list reproduces the cold run's bytes.
/// This is the recovery path for cache-evicted empty outcomes — the
/// detection cache evicts empty entries first precisely because the sketch
/// can stand in for them at a fraction of the memory. The exact guards are
/// what the planned persistent/on-disk variant would relax (spilling the
/// bitmap, keeping the filter resident).
///
/// Thread-safe: concurrent sessions record and query under a mutex.
class ScannedSketch {
 public:
  explicit ScannedSketch(ScannedSketchOptions options = {});

  /// \brief Records the outcome of a real detect call on `frame`.
  /// `total_frames` sizes the key's exact scanned bitmap on first use and
  /// must be the keyed repository's `TotalFrames()` (stable per key).
  void RecordScan(const ReuseKey& key, video::FrameId frame, bool found_empty,
                  uint64_t total_frames);

  /// \brief True iff `frame` was scanned under `key` and found empty — safe
  /// to skip detection and substitute an empty detection list.
  bool KnownEmpty(const ReuseKey& key, video::FrameId frame);

  ScannedSketchStats Stats() const;

 private:
  bool BloomMayContainLocked(uint64_t hash) const;
  void BloomInsertLocked(uint64_t hash);

  ScannedSketchOptions options_;
  mutable std::mutex mu_;
  std::vector<uint64_t> bloom_;
  // Exact guards, addressed by full key (never by its hash alone).
  std::unordered_map<ReuseKey, std::vector<uint64_t>, ReuseKeyHash> scanned_;
  std::unordered_set<FrameKey, FrameKeyHash> nonempty_;
  ScannedSketchStats stats_;
};

}  // namespace reuse
}  // namespace exsample

#endif  // EXSAMPLE_REUSE_SCANNED_SKETCH_H_
