#ifndef EXSAMPLE_REUSE_BELIEF_BANK_H_
#define EXSAMPLE_REUSE_BELIEF_BANK_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/chunk_stats.h"
#include "core/estimator.h"
#include "reuse/reuse_key.h"
#include "video/chunking.h"

namespace exsample {
namespace reuse {

/// \brief Stable 64-bit hash of a chunking's layout (chunk begin/end pairs
/// and total frames). Persisted posteriors are only meaningful against the
/// chunk grid they were accumulated on, so the belief bank keys by this next
/// to the `ReuseKey`.
uint64_t ChunkingSignature(const video::Chunking& chunking);

/// \brief Counters of one `BeliefBank`.
struct BeliefBankStats {
  /// Posterior tables recorded by finished queries.
  uint64_t posteriors_recorded = 0;
  /// Queries whose priors were warm-started from the bank.
  uint64_t warm_starts = 0;
};

/// \brief Persisted per-chunk posterior evidence for warm-starting later
/// queries' chunk beliefs.
///
/// When a query finishes, its strategy's per-chunk `(n, N1)` table — the
/// sufficient statistics of the Gamma posterior Gamma(N1 + alpha0, n + beta0)
/// — is accumulated here under (reuse key, chunking signature). A later query
/// for the same class over the same chunk grid seeds its *prior* from that
/// summary: chunk j starts from BeliefParams{alpha0 + w·ΣN1_j, beta0 + w·Σn_j}
/// instead of the flat {alpha0, beta0}. This is a pure prior change — the
/// paper's update math (Algorithm 1 lines 11–12, Eq. III.4) is untouched;
/// with weight w = 1 it is exactly Bayesian updating, as if the new query's
/// belief had also observed the earlier queries' samples. Chunks that earlier
/// queries found fruitful are therefore sampled first, and chunks scanned dry
/// are deprioritized from the very first Thompson draw.
///
/// Thread-safe. The bank stores plain counts, not belief objects, so it is
/// trivially serializable — the hook the persistent/on-disk follow-on builds
/// on.
class BeliefBank {
 public:
  /// \brief Accumulates a finished query's posterior table. `stats` must be
  /// the per-chunk table of a strategy that ran over the chunking hashed by
  /// `chunking_signature`.
  void RecordPosterior(const ReuseKey& key, uint64_t chunking_signature,
                       const core::ChunkStatsTable& stats);

  /// \brief Builds warm per-chunk priors from the accumulated evidence,
  /// scaled by `weight` on top of the flat prior `base`. Returns an empty
  /// vector when the bank holds nothing for (key, signature) — the caller
  /// then keeps its cold prior.
  std::vector<core::BeliefParams> WarmPriors(const ReuseKey& key,
                                             uint64_t chunking_signature,
                                             const core::BeliefParams& base,
                                             double weight);

  BeliefBankStats Stats() const;

 private:
  struct BankKey {
    ReuseKey key;
    uint64_t chunking_signature = 0;
    friend bool operator==(const BankKey& a, const BankKey& b) {
      return a.key == b.key && a.chunking_signature == b.chunking_signature;
    }
  };
  struct BankKeyHash {
    size_t operator()(const BankKey& k) const {
      return static_cast<size_t>(common::HashCombine(k.key.Hash(), k.chunking_signature));
    }
  };
  struct ChunkEvidence {
    uint64_t n = 0;
    uint64_t n1 = 0;  // Clamped at 0 per chunk, as belief construction does.
  };

  mutable std::mutex mu_;
  std::unordered_map<BankKey, std::vector<ChunkEvidence>, BankKeyHash> bank_;
  BeliefBankStats stats_;
};

}  // namespace reuse
}  // namespace exsample

#endif  // EXSAMPLE_REUSE_BELIEF_BANK_H_
