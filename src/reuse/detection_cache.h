#ifndef EXSAMPLE_REUSE_DETECTION_CACHE_H_
#define EXSAMPLE_REUSE_DETECTION_CACHE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "detect/detection.h"
#include "reuse/reuse_key.h"
#include "video/repository.h"

namespace exsample {
namespace reuse {

/// \brief Budget of the exact detection cache.
struct DetectionCacheOptions {
  /// Maximum number of cached frames (entries) across all keys. Exceeding
  /// the budget evicts deterministically: the oldest *empty* entry first,
  /// and only when no empty entry remains the oldest non-empty one —
  /// non-empty detections are the rare, expensive outcomes worth pinning,
  /// while evicted empty outcomes stay recoverable through the scanned
  /// sketch's compact record.
  size_t budget_frames = size_t{1} << 20;
};

/// \brief Aggregate counters of one `DetectionCache` (all keys, all sessions).
struct DetectionCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evicted_empty = 0;
  uint64_t evicted_nonempty = 0;
  size_t entries = 0;
  size_t nonempty_entries = 0;
};

/// \brief Exact cross-query detection store: per-(key, frame) `Detections`
/// lists, bit-identical to what a real detect call would return.
///
/// The cache is *exact*, never approximate: a hit returns the stored list
/// verbatim (simulated detection is a pure per-frame function of (truth,
/// detector options, frame), and the key pins both the repository and the
/// detector config, so the stored list equals what any session with the same
/// key would compute). This is what lets the runner charge zero detector
/// seconds for a hit without perturbing a single downstream byte —
/// discriminator matching, strategy feedback, and traces all see exactly the
/// cold-run values.
///
/// Thread-safe: sessions of a concurrent workload share one cache under a
/// mutex. Eviction is deterministic for a fixed insertion sequence (FIFO
/// within the empty and non-empty classes); under concurrent insertion the
/// interleaving — and therefore which frames later hit — may vary, but hits
/// remain exact either way, so returned detections never depend on timing.
class DetectionCache {
 public:
  explicit DetectionCache(DetectionCacheOptions options = {});

  /// \brief Returns true and copies the stored detections into `*out` when
  /// (key, frame) is cached. Counts a hit or miss.
  bool Lookup(const ReuseKey& key, video::FrameId frame, detect::Detections* out);

  /// \brief Stores the outcome of a real detect call. Re-inserting an
  /// existing entry refreshes it in place (no duplicate eviction ticket).
  void Insert(const ReuseKey& key, video::FrameId frame,
              const detect::Detections& detections);

  DetectionCacheStats Stats() const;

 private:
  struct Entry {
    detect::Detections detections;
    uint64_t seq = 0;  // Insertion stamp; stale queue tickets are skipped.
  };
  struct Ticket {
    FrameKey frame_key;
    uint64_t seq = 0;
  };

  void EvictOneLocked();

  DetectionCacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<FrameKey, Entry, FrameKeyHash> entries_;
  // FIFO eviction queues per outcome class. Tickets are invalidated lazily:
  // a refreshed entry leaves its old ticket behind with a stale seq.
  std::deque<Ticket> empty_queue_;
  std::deque<Ticket> nonempty_queue_;
  uint64_t next_seq_ = 1;
  size_t nonempty_entries_ = 0;
  DetectionCacheStats stats_;
};

}  // namespace reuse
}  // namespace exsample

#endif  // EXSAMPLE_REUSE_DETECTION_CACHE_H_
