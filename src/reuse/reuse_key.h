#ifndef EXSAMPLE_REUSE_REUSE_KEY_H_
#define EXSAMPLE_REUSE_REUSE_KEY_H_

#include <cstdint>

#include "common/hash.h"
#include "video/repository.h"

namespace exsample {
namespace reuse {

/// \brief Identity of a reusable detection outcome space.
///
/// Detections are reusable across queries exactly when three things agree:
/// the repository's frame addressing (`VideoRepository::Fingerprint`, which
/// folds in clip names and frame rates so distinct repos with identical
/// layouts cannot collide), the detector configuration
/// (`detect::DetectorOptionsHash` — noise model, cost, and seed, since the
/// simulated detector is a pure per-frame function of (truth, options,
/// frame)), and the queried class. Everything in `src/reuse/` is keyed by
/// this triple; a second query with the same key gets bit-identical
/// detections back without paying detector seconds.
struct ReuseKey {
  /// `VideoRepository::Fingerprint()` of the repository being queried.
  uint64_t repo_fingerprint = 0;
  /// `detect::DetectorOptionsHash()` of the session's detector config.
  uint64_t detector_config = 0;
  /// Class the query searches for (folded into the detector's target class,
  /// but kept explicit so the key reads unambiguously).
  int32_t class_id = 0;

  friend bool operator==(const ReuseKey& a, const ReuseKey& b) {
    return a.repo_fingerprint == b.repo_fingerprint &&
           a.detector_config == b.detector_config && a.class_id == b.class_id;
  }
  friend bool operator!=(const ReuseKey& a, const ReuseKey& b) { return !(a == b); }

  uint64_t Hash() const {
    return common::HashCombine(
        common::HashCombine(repo_fingerprint, detector_config),
        static_cast<uint64_t>(static_cast<uint32_t>(class_id)));
  }
};

/// \brief A (ReuseKey, frame) pair — the unit both the detection cache and
/// the scanned sketch's exact guards are addressed by. Equality is exact
/// (full key, not its hash), so key-hash collisions can never alias entries.
struct FrameKey {
  ReuseKey key;
  video::FrameId frame = 0;

  friend bool operator==(const FrameKey& a, const FrameKey& b) {
    return a.key == b.key && a.frame == b.frame;
  }

  uint64_t Hash() const { return common::HashCombine(key.Hash(), frame); }
};

struct FrameKeyHash {
  size_t operator()(const FrameKey& k) const { return static_cast<size_t>(k.Hash()); }
};

struct ReuseKeyHash {
  size_t operator()(const ReuseKey& k) const { return static_cast<size_t>(k.Hash()); }
};

}  // namespace reuse
}  // namespace exsample

#endif  // EXSAMPLE_REUSE_REUSE_KEY_H_
