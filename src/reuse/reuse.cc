#include "reuse/reuse.h"

namespace exsample {
namespace reuse {

namespace {

DetectionCacheOptions CacheOptions(const ReuseOptions& options) {
  DetectionCacheOptions cache_options;
  cache_options.budget_frames = options.cache_budget_frames;
  return cache_options;
}

}  // namespace

ReuseManager::ReuseManager(ReuseOptions options)
    : options_(options),
      cache_(CacheOptions(options)),
      sketch_(options.sketch_options) {}

SessionReuse::SessionReuse(ReuseManager* manager, const ReuseKey& key,
                           uint64_t total_frames, ReuseSessionStats* stats)
    : manager_(manager), key_(key), total_frames_(total_frames), stats_(stats) {}

SessionReuse::Outcome SessionReuse::Classify(video::FrameId frame,
                                             detect::Detections* cached) {
  if (manager_->options().cache && manager_->cache().Lookup(key_, frame, cached)) {
    ++stats_->cache_hits;
    return Outcome::kCacheHit;
  }
  // The sketch is the fallback tier: consulted only on a cache miss, it
  // recovers the (common) scanned-and-empty outcomes whose exact entries the
  // cache has evicted — or never held, when only the sketch is enabled.
  if (manager_->options().sketch && manager_->sketch().KnownEmpty(key_, frame)) {
    ++stats_->sketch_skips;
    cached->clear();
    return Outcome::kSketchSkip;
  }
  ++stats_->cache_misses;
  return Outcome::kMiss;
}

void SessionReuse::RecordDetected(video::FrameId frame,
                                  const detect::Detections& detections,
                                  double seconds_per_frame) {
  if (manager_->options().cache) manager_->cache().Insert(key_, frame, detections);
  if (manager_->options().sketch) {
    manager_->sketch().RecordScan(key_, frame, detections.empty(), total_frames_);
  }
  stats_->charged_detector_seconds += seconds_per_frame;
}

void SessionReuse::RecordSaved(double seconds_per_frame) {
  stats_->saved_detector_seconds += seconds_per_frame;
}

}  // namespace reuse
}  // namespace exsample
