#include "query/shard_trace.h"

#include <limits>

namespace exsample {
namespace query {

common::Result<QueryTrace> MergeShardTraces(std::string strategy_name,
                                            uint64_t total_instances,
                                            common::Span<const ShardTracePart> parts) {
  QueryTrace trace;
  trace.strategy_name = std::move(strategy_name);
  trace.total_instances = total_instances;

  // K-way merge by sequence number. Parts are few (one per shard plus the
  // coordinator), so a linear scan per event beats heap bookkeeping.
  std::vector<size_t> cursor(parts.size(), 0);
  uint64_t last_seq = 0;
  bool first = true;
  DiscoveryPoint current;
  for (;;) {
    size_t best = parts.size();
    uint64_t best_seq = std::numeric_limits<uint64_t>::max();
    for (size_t p = 0; p < parts.size(); ++p) {
      if (cursor[p] >= parts[p].events.size()) continue;
      const uint64_t seq = parts[p].events[cursor[p]].seq;
      if (seq < best_seq) {
        best_seq = seq;
        best = p;
      }
    }
    if (best == parts.size()) break;
    if (!first && best_seq <= last_seq) {
      return common::Status::InvalidArgument(
          "shard trace events must have unique, per-part increasing sequence numbers");
    }
    const ShardTraceEvent& event = parts[best].events[cursor[best]++];
    last_seq = best_seq;
    first = false;

    // Replay the deltas in global order: the same additions, in the same
    // order, as the direct single-repository accumulation.
    current.seconds += event.seconds;
    current.samples += event.samples;
    current.reported_results += event.reported;
    current.true_distinct += event.distinct;
    if (event.emit_point) trace.points.push_back(current);
  }

  trace.final = current;
  if (trace.points.empty() || trace.points.back().samples != current.samples) {
    trace.points.push_back(current);
  }
  return trace;
}

bool TracesBitIdentical(const QueryTrace& a, const QueryTrace& b) {
  if (a.strategy_name != b.strategy_name) return false;
  if (a.total_instances != b.total_instances) return false;
  if (a.points.size() != b.points.size()) return false;
  auto same_point = [](const DiscoveryPoint& x, const DiscoveryPoint& y) {
    return x.samples == y.samples && x.seconds == y.seconds &&
           x.reported_results == y.reported_results && x.true_distinct == y.true_distinct;
  };
  for (size_t i = 0; i < a.points.size(); ++i) {
    if (!same_point(a.points[i], b.points[i])) return false;
  }
  return same_point(a.final, b.final);
}

}  // namespace query
}  // namespace exsample
