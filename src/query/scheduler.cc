#include "query/scheduler.h"

#include <algorithm>

#include "common/status.h"
#include "stats/gamma_belief.h"

namespace exsample {
namespace query {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFair:
      return "fair";
    case SchedulerKind::kPriority:
      return "priority";
    case SchedulerKind::kDeadline:
      return "deadline";
  }
  return "unknown";
}

std::optional<SchedulerKind> ParseSchedulerKind(const std::string& name) {
  if (name == "fair") return SchedulerKind::kFair;
  if (name == "priority") return SchedulerKind::kPriority;
  if (name == "deadline") return SchedulerKind::kDeadline;
  return std::nullopt;
}

void FairScheduler::PlanRound(common::Span<const SessionSchedulerInfo> sessions,
                              std::vector<size_t>* order) {
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (!sessions[i].done) order->push_back(i);
  }
}

PriorityScheduler::PriorityScheduler(SessionSchedulerOptions options)
    : options_(options), rng_(options.seed) {
  common::Check(options_.prior_alpha > 0.0 && options_.prior_beta > 0.0,
                "priority scheduler needs a proper Gamma prior");
  common::Check(options_.starvation_rounds >= 1,
                "starvation bound must be at least one round");
}

void PriorityScheduler::PlanRound(common::Span<const SessionSchedulerInfo> sessions,
                                  std::vector<size_t>* order) {
  if (rounds_waiting_.size() < sessions.size()) {
    rounds_waiting_.resize(sessions.size(), 0);
  }
  std::vector<size_t> live;
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (!sessions[i].done) live.push_back(i);
  }
  if (live.empty()) return;

  // Cold start: a session that has never been stepped is granted before any
  // priority is consulted — there is nothing to rank it by yet.
  size_t slots = live.size();
  for (const size_t i : live) {
    if (sessions[i].steps == 0 && slots > 0) {
      order->push_back(i);
      rounds_waiting_[i] = 0;
      --slots;
    }
  }

  // Starvation guard: any session that has waited out the bound is granted
  // next, whatever its sampled rate.
  for (const size_t i : live) {
    if (sessions[i].steps == 0) continue;  // Granted above.
    rounds_waiting_[i] += 1;
    if (rounds_waiting_[i] > options_.starvation_rounds && slots > 0) {
      order->push_back(i);
      rounds_waiting_[i] = 0;
      --slots;
    }
  }

  // Remaining slots go to the highest Thompson-sampled marginal result rate,
  // with result-less sessions outranking sessions that already reported
  // (first results carry the most marginal utility). One draw per live
  // session per slot: cheap at workload scale (dozens of sessions), and the
  // per-slot re-draw is what lets a lucky cold session win an exploratory
  // grant, exactly like ExSample's per-batch chunk draws.
  for (size_t slot = 0; slot < slots; ++slot) {
    size_t best = live[0];
    double best_rate = -1.0;
    bool best_resultless = false;
    for (const size_t i : live) {
      const stats::GammaBelief belief(
          options_.prior_alpha + static_cast<double>(sessions[i].reported_results),
          options_.prior_beta + sessions[i].seconds);
      const double rate = belief.Sample(rng_);
      const bool resultless = sessions[i].reported_results == 0;
      if ((resultless && !best_resultless) ||
          (resultless == best_resultless && rate > best_rate)) {
        best_rate = rate;
        best = i;
        best_resultless = resultless;
      }
    }
    order->push_back(best);
    rounds_waiting_[best] = 0;
  }
}

void DeadlineScheduler::PlanRound(common::Span<const SessionSchedulerInfo> sessions,
                                  std::vector<size_t>* order) {
  const size_t begin = order->size();
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (!sessions[i].done) order->push_back(i);
  }
  // Stable sort on (has-deadline, slack): deadline holders in ascending slack,
  // then everyone else in index order — deterministic, and a pure reordering
  // of the fair round.
  std::stable_sort(order->begin() + static_cast<ptrdiff_t>(begin), order->end(),
                   [&](size_t a, size_t b) {
                     const bool a_has = sessions[a].deadline_seconds > 0.0;
                     const bool b_has = sessions[b].deadline_seconds > 0.0;
                     if (a_has != b_has) return a_has;
                     if (!a_has) return false;  // Keep index order.
                     const double slack_a =
                         sessions[a].deadline_seconds - sessions[a].seconds;
                     const double slack_b =
                         sessions[b].deadline_seconds - sessions[b].seconds;
                     return slack_a < slack_b;
                   });
}

void PlanRoundForSubset(SessionScheduler* inner,
                        common::Span<const SessionSchedulerInfo> sessions,
                        common::Span<const size_t> subset,
                        std::vector<size_t>* order) {
  std::vector<SessionSchedulerInfo> compact;
  compact.reserve(subset.size());
  for (const size_t global : subset) {
    common::Check(global < sessions.size(),
                  "subset names an unknown session");
    compact.push_back(sessions[global]);
  }
  std::vector<size_t> local;
  inner->PlanRound(common::Span<const SessionSchedulerInfo>(compact.data(),
                                                            compact.size()),
                   &local);
  for (const size_t pos : local) {
    common::Check(pos < subset.size(), "inner scheduler planned out of range");
    order->push_back(subset[pos]);
  }
}

std::unique_ptr<SessionScheduler> MakeSessionScheduler(
    SchedulerKind kind, SessionSchedulerOptions options) {
  switch (kind) {
    case SchedulerKind::kFair:
      return std::make_unique<FairScheduler>();
    case SchedulerKind::kPriority:
      return std::make_unique<PriorityScheduler>(options);
    case SchedulerKind::kDeadline:
      return std::make_unique<DeadlineScheduler>();
  }
  common::FatalError("unknown scheduler kind");
  return nullptr;
}

}  // namespace query
}  // namespace exsample
