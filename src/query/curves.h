#ifndef EXSAMPLE_QUERY_CURVES_H_
#define EXSAMPLE_QUERY_CURVES_H_

#include <optional>
#include <vector>

#include "query/trace.h"

namespace exsample {
namespace query {

/// \brief Median over runs of samples-to-recall; nullopt when fewer than half
/// the runs reached the recall level.
std::optional<double> MedianSamplesToRecall(const std::vector<QueryTrace>& runs,
                                            double recall);

/// \brief Median over runs of seconds-to-recall.
std::optional<double> MedianSecondsToRecall(const std::vector<QueryTrace>& runs,
                                            double recall);

/// \brief Savings ratio baseline/this at a recall level, computed on the
/// medians (the paper's Fig. 5 bars). nullopt when either side never reached
/// the level in at least half its runs.
std::optional<double> SavingsRatio(const std::vector<QueryTrace>& baseline_runs,
                                   const std::vector<QueryTrace>& treatment_runs,
                                   double recall);

/// \brief Evaluates each run's true-distinct count at the given sample
/// counts; rows are runs, columns follow `sample_grid` (the Fig. 3/4 curve
/// matrix, ready for stats::AggregateRuns).
std::vector<std::vector<double>> DistinctAtSampleGrid(
    const std::vector<QueryTrace>& runs, const std::vector<uint64_t>& sample_grid);

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_CURVES_H_
