#include "query/runner.h"

#include <algorithm>

namespace exsample {
namespace query {

namespace {

/// Applies one frame's d0 detections to the recall counters. Shared between
/// the batch pipeline and the single-frame reference loop so their
/// bookkeeping cannot drift apart.
bool CountNewDistinct(const track::MatchResult& result, const RunnerOptions& options,
                      std::unordered_set<scene::InstanceId>* found,
                      DiscoveryPoint* current) {
  bool changed = false;
  for (const detect::Detection& det : result.d0) {
    if (!det.IsTruePositive()) continue;
    // Only instances of the recall class count toward true recall;
    // off-class detections can occur when the detector is not class-
    // filtered.
    if (options.recall_class != scene::GroundTruth::kAllClasses &&
        det.class_id != options.recall_class) {
      continue;
    }
    if (found->insert(det.source_instance).second) {
      ++current->true_distinct;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

QueryExecution::QueryExecution(const scene::GroundTruth* truth,
                               detect::ObjectDetector* detector,
                               track::Discriminator* discriminator,
                               SearchStrategy* strategy, RunnerOptions options)
    : truth_(truth),
      detector_(detector),
      discriminator_(discriminator),
      strategy_(strategy),
      options_(options) {
  trace_.strategy_name = strategy_->name();
  trace_.total_instances = truth_->NumInstances(options_.recall_class);
  current_.seconds = strategy_->UpfrontCostSeconds();
  trace_.points.push_back(current_);
}

bool QueryExecution::StopConditionHit() const {
  return current_.samples >= options_.max_samples ||
         current_.reported_results >= options_.result_limit ||
         current_.true_distinct >= options_.true_distinct_target;
}

bool QueryExecution::Step() {
  if (finished_) return false;
  if (StopConditionHit()) {
    finished_ = true;
    return false;
  }

  // Never draw past the sample cap: frames handed out by the strategy are
  // consumed (without-replacement), so over-drawing would waste them.
  const uint64_t samples_left = options_.max_samples - current_.samples;
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(std::max<size_t>(1, options_.batch_size), samples_left));
  const std::vector<video::FrameId> frames = strategy_->NextBatch(want);
  if (frames.empty()) {
    finished_ = true;
    return false;
  }

  // Charge any incremental strategy overhead (e.g. lazy proxy scoring)
  // accrued while choosing this batch.
  const double overhead = strategy_->CumulativeOverheadSeconds();
  current_.seconds += overhead - charged_overhead_;
  charged_overhead_ = overhead;

  // Decode stage. Charged up front for the whole batch (a real pipeline
  // prefetches the batch's frames before inference).
  if (options_.video_store != nullptr) {
    for (const video::FrameId frame : frames) {
      const double before = options_.video_store->Stats().total_seconds;
      options_.video_store->ReadAndDecode(frame);
      current_.seconds += options_.video_store->Stats().total_seconds - before;
    }
  }

  // Detect stage: per-frame-independent, fans out across the pool. Result i
  // belongs to frames[i] whatever the execution order.
  const std::vector<detect::Detections> detections =
      detector_->DetectBatch(frames, options_.thread_pool);

  // Discriminate stage: strictly sequential in batch order — matching is
  // stateful, and reproducibility requires a fixed observation order.
  feedback_.clear();
  for (size_t i = 0; i < frames.size(); ++i) {
    current_.seconds += detector_->SecondsPerFrame();
    const track::MatchResult result = discriminator_->Observe(frames[i], detections[i]);
    feedback_.push_back(FrameFeedback{frames[i], result.d0.size(), result.d1.size()});
    ++current_.samples;
    current_.reported_results += result.d0.size();
    const bool changed = CountNewDistinct(result, options_, &found_, &current_);
    if (changed || !result.d0.empty()) {
      trace_.points.push_back(current_);
    }
  }

  // Feedback stage: the strategy sees the whole batch's outcomes at once
  // (Sec. III-F — belief updates are delayed until the batch returns).
  strategy_->ObserveBatch(feedback_);

  // Keep `final` current so a live session's trace reads correctly mid-run.
  trace_.final = current_;
  return true;
}

QueryTrace QueryExecution::Finish() {
  while (Step()) {
  }
  if (!finalized_) {
    trace_.final = current_;
    if (trace_.points.empty() || trace_.points.back().samples != current_.samples) {
      trace_.points.push_back(current_);
    }
    finalized_ = true;
  }
  return trace_;
}

QueryRunner::QueryRunner(const scene::GroundTruth* truth,
                         detect::ObjectDetector* detector,
                         track::Discriminator* discriminator, RunnerOptions options)
    : truth_(truth),
      detector_(detector),
      discriminator_(discriminator),
      options_(options) {}

QueryTrace QueryRunner::Run(SearchStrategy* strategy) {
  QueryExecution execution(truth_, detector_, discriminator_, strategy, options_);
  return execution.Finish();
}

QueryTrace QueryRunner::RunSingleFrame(SearchStrategy* strategy) {
  QueryTrace trace;
  trace.strategy_name = strategy->name();
  trace.total_instances = truth_->NumInstances(options_.recall_class);

  std::unordered_set<scene::InstanceId> found;
  DiscoveryPoint current;
  current.seconds = strategy->UpfrontCostSeconds();
  trace.points.push_back(current);
  double charged_overhead = 0.0;

  while (current.samples < options_.max_samples &&
         current.reported_results < options_.result_limit &&
         current.true_distinct < options_.true_distinct_target) {
    const std::optional<video::FrameId> frame = strategy->NextFrame();
    if (!frame.has_value()) break;

    // Charge any incremental strategy overhead (e.g. lazy proxy scoring)
    // accrued while choosing this frame.
    const double overhead = strategy->CumulativeOverheadSeconds();
    current.seconds += overhead - charged_overhead;
    charged_overhead = overhead;

    if (options_.video_store != nullptr) {
      const double before = options_.video_store->Stats().total_seconds;
      options_.video_store->ReadAndDecode(*frame);
      current.seconds += options_.video_store->Stats().total_seconds - before;
    }
    current.seconds += detector_->SecondsPerFrame();

    const detect::Detections dets = detector_->Detect(*frame);
    const track::MatchResult result = discriminator_->Observe(*frame, dets);
    strategy->Observe(*frame, result.d0.size(), result.d1.size());

    ++current.samples;
    current.reported_results += result.d0.size();

    const bool changed = CountNewDistinct(result, options_, &found, &current);
    if (changed || !result.d0.empty()) {
      trace.points.push_back(current);
    }
  }
  trace.final = current;
  if (trace.points.empty() || trace.points.back().samples != current.samples) {
    trace.points.push_back(current);
  }
  return trace;
}

}  // namespace query
}  // namespace exsample
