#include "query/runner.h"

#include <algorithm>

namespace exsample {
namespace query {

namespace {

/// Applies one frame's d0 detections to the recall counters. Shared between
/// the batch pipeline and the single-frame reference loop so their
/// bookkeeping cannot drift apart.
bool CountNewDistinct(const track::MatchResult& result, const RunnerOptions& options,
                      std::unordered_set<scene::InstanceId>* found,
                      DiscoveryPoint* current) {
  bool changed = false;
  for (const detect::Detection& det : result.d0) {
    if (!det.IsTruePositive()) continue;
    // Only instances of the recall class count toward true recall;
    // off-class detections can occur when the detector is not class-
    // filtered.
    if (options.recall_class != scene::GroundTruth::kAllClasses &&
        det.class_id != options.recall_class) {
      continue;
    }
    if (found->insert(det.source_instance).second) {
      ++current->true_distinct;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

ExecutionStatsBinding ExecutionStatsBinding::Bind(stats::CounterRegistry* registry,
                                                  stats::CounterSlab* slab,
                                                  stats::StageTimer* timer) {
  ExecutionStatsBinding binding;
  binding.slab = slab;
  binding.timer = timer;
  binding.steps = registry->RegisterCounter("execution.steps");
  binding.frames_picked = registry->RegisterCounter("execution.frames_picked");
  binding.frames_reused = registry->RegisterCounter("execution.frames_reused");
  binding.frames_detected = registry->RegisterCounter("execution.frames_detected");
  binding.results_reported =
      registry->RegisterCounter("execution.results_reported");
  return binding;
}

QueryExecution::QueryExecution(const scene::GroundTruth* truth,
                               detect::ObjectDetector* detector,
                               track::Discriminator* discriminator,
                               SearchStrategy* strategy, RunnerOptions options)
    : truth_(truth),
      detector_(detector),
      discriminator_(discriminator),
      strategy_(strategy),
      options_(options) {
  common::Check(detector_ != nullptr || options_.shard_dispatcher != nullptr,
                "query execution needs a detector or a shard dispatcher");
  // Every decode call site routes through the prefetcher. Depth 0 keeps the
  // synchronous schedule (plan + perform inline, in batch order); depth >= 1
  // overlaps the decode work with the detect stage. Either way the charges
  // are planned in batch order, so the trace cannot depend on the depth.
  PrefetchOptions prefetch_options;
  prefetch_options.depth = options_.prefetch_depth;
  common::ThreadPool* decode_pool =
      options_.decode_pool != nullptr ? options_.decode_pool : options_.thread_pool;
  if (options_.shard_dispatcher != nullptr && options_.shard_dispatcher->HasStores()) {
    prefetcher_ = std::make_unique<DecodePrefetcher>(options_.shard_dispatcher,
                                                     decode_pool, prefetch_options);
  } else if (options_.video_store != nullptr) {
    prefetcher_ = std::make_unique<DecodePrefetcher>(options_.video_store,
                                                     decode_pool, prefetch_options);
  }
  trace_.strategy_name = strategy_->name();
  trace_.total_instances = truth_->NumInstances(options_.recall_class);
  current_.seconds = strategy_->UpfrontCostSeconds();
  trace_.points.push_back(current_);
  if (options_.shard_dispatcher != nullptr) {
    // Partial traces: part 0 is the coordinator, part 1 + s is shard s. The
    // upfront cost belongs to the coordinator (a proxy scan happens before
    // any frame is routed anywhere) and opens the trace, mirroring the
    // initial point pushed above.
    parts_.resize(1 + options_.shard_dispatcher->NumShards());
    parts_[0].shard_id = kCoordinatorShard;
    for (size_t s = 0; s < options_.shard_dispatcher->NumShards(); ++s) {
      parts_[1 + s].shard_id = static_cast<int32_t>(s);
    }
    RecordEvent(0, current_.seconds, 0, 0, 0, /*emit_point=*/true);
  }
}

void QueryExecution::RecordEvent(size_t part, double seconds, uint32_t samples,
                                 uint32_t reported, uint32_t distinct,
                                 bool emit_point) {
  ShardTraceEvent event;
  event.seq = next_seq_++;
  event.seconds = seconds;
  event.samples = samples;
  event.reported = reported;
  event.distinct = distinct;
  event.emit_point = emit_point;
  parts_[part].events.push_back(event);
}

std::vector<detect::Detections> QueryExecution::DetectStage(
    const std::vector<video::FrameId>& frames, const std::vector<uint32_t>& shards) {
  ShardDispatcher* dispatcher = options_.shard_dispatcher;
  const auto detect_range = [&](size_t begin, size_t count) {
    const common::Span<video::FrameId> sub(frames.data() + begin, count);
    return dispatcher != nullptr
               ? dispatcher->DetectBatch(
                     sub, common::Span<const uint32_t>(shards.data() + begin, count))
               : detector_->DetectBatch(sub, options_.thread_pool);
  };

  if (prefetcher_ == nullptr || prefetcher_->depth() == 0) {
    // No decode overlap configured: one full-batch detect call, as before.
    return detect_range(0, frames.size());
  }

  // Windowed consumption: wait for the next window of frames to be decoded,
  // detect them, repeat. While window w is in the detector, the prefetcher
  // decodes ahead (up to `depth` frames past the last-waited one) — waiting
  // on a frame opens the decode-ahead window past it. The window is never
  // smaller than the detect stage's parallelism: decode-ahead is bounded by
  // `depth` either way, but a too-small window would serialize latency-bound
  // detect calls the full-batch path fans out. Windowing never changes
  // results: detection is per-frame deterministic and result slots are
  // fixed, so this is the same output the single full-batch call produces.
  std::vector<detect::Detections> out(frames.size());
  size_t parallelism = 1;
  if (options_.thread_pool != nullptr) {
    parallelism = options_.thread_pool->NumThreads();
  }
  if (dispatcher != nullptr) {
    for (uint32_t s = 0; s < dispatcher->NumShards(); ++s) {
      common::ThreadPool* pool = dispatcher->Context(s).pool;
      if (pool != nullptr) parallelism = std::max(parallelism, pool->NumThreads());
    }
  }
  const size_t window = std::max(prefetcher_->depth(), parallelism);
  for (size_t begin = 0; begin < frames.size(); begin += window) {
    const size_t count = std::min(window, frames.size() - begin);
    for (size_t i = begin; i < begin + count; ++i) {
      prefetcher_->WaitFrame(i);
    }
    std::vector<detect::Detections> sub = detect_range(begin, count);
    for (size_t j = 0; j < count; ++j) {
      out[begin + j] = std::move(sub[j]);
    }
  }
  return out;
}

bool QueryExecution::StopConditionHit() const {
  return current_.samples >= options_.max_samples ||
         current_.reported_results >= options_.result_limit ||
         current_.true_distinct >= options_.true_distinct_target;
}

bool QueryExecution::BeginStep() {
  common::Check(!pending_detect_, "BeginStep while a step is already pending");
  if (finished_) return false;
  if (StopConditionHit()) {
    finished_ = true;
    return false;
  }

  // Never draw past the sample cap: frames handed out by the strategy are
  // consumed (without-replacement), so over-drawing would waste them.
  const uint64_t samples_left = options_.max_samples - current_.samples;
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(std::max<size_t>(1, options_.batch_size), samples_left));
  {
    stats::StageTimer::Scoped pick_timer(options_.stats.timer,
                                         stats::Stage::kPick);
    pending_frames_ = strategy_->NextBatch(want);
  }
  if (pending_frames_.empty()) {
    finished_ = true;
    return false;
  }
  stats::SlabAdd(options_.stats.slab, options_.stats.steps);
  stats::SlabAdd(options_.stats.slab, options_.stats.frames_picked,
                 pending_frames_.size());

  ShardDispatcher* dispatcher = options_.shard_dispatcher;

  // Resolve each frame's owning shard once per batch; decode attribution,
  // detect dispatch, and per-frame accounting below all reuse it.
  if (dispatcher != nullptr) {
    frame_shards_.clear();
    for (const video::FrameId frame : pending_frames_) {
      frame_shards_.push_back(dispatcher->ShardOfFrame(frame));
    }
  }

  // Charge any incremental strategy overhead (e.g. lazy proxy scoring)
  // accrued while choosing this batch. Overhead is the coordinator's: it is
  // paid choosing frames, before any shard is involved.
  const double overhead = strategy_->CumulativeOverheadSeconds();
  current_.seconds += overhead - charged_overhead_;
  if (dispatcher != nullptr) {
    RecordEvent(0, overhead - charged_overhead_, 0, 0, 0, false);
  }
  charged_overhead_ = overhead;

  // Cross-query reuse: classify the picked batch before anything is paid
  // for. Hits carry their exact cached detections and skips a proven-empty
  // list; only the remaining misses flow into the decode and detect stages
  // below. The *full* batch stays in `pending_frames_` — discrimination and
  // strategy feedback consume it in batch order in FinishStep, so reuse
  // changes which frames are paid for, never what any stage observes.
  const bool reusing = options_.reuse != nullptr;
  if (reusing) {
    stats::StageTimer::Scoped classify_timer(options_.stats.timer,
                                             stats::Stage::kClassify);
    reuse_outcomes_.clear();
    reuse_detections_.assign(pending_frames_.size(), detect::Detections());
    miss_frames_.clear();
    miss_shards_.clear();
    for (size_t i = 0; i < pending_frames_.size(); ++i) {
      const reuse::SessionReuse::Outcome outcome =
          options_.reuse->Classify(pending_frames_[i], &reuse_detections_[i]);
      reuse_outcomes_.push_back(outcome);
      if (outcome == reuse::SessionReuse::Outcome::kMiss) {
        miss_frames_.push_back(pending_frames_[i]);
        if (dispatcher != nullptr) miss_shards_.push_back(frame_shards_[i]);
      }
    }
    stats::SlabAdd(options_.stats.slab, options_.stats.frames_reused,
                   pending_frames_.size() - miss_frames_.size());
  }
  const std::vector<video::FrameId>& detect_frames =
      reusing ? miss_frames_ : pending_frames_;
  const std::vector<uint32_t>& detect_shards = reusing ? miss_shards_ : frame_shards_;

  // Decode stage, behind the prefetcher. Charged up front for the batch's
  // detect set (reused frames never decode: their outcome is already known):
  // the prefetcher plans every read now, in batch order — per-shard stores
  // plan on the owning shard (each shard keeps its own position state),
  // otherwise the query-global store is used and the cost is still
  // attributed to the owning shard's partial trace. The decode *work* runs
  // asynchronously while the detect stage consumes the batch — which, under
  // a shared service, happens only at flush time, so the decode-ahead window
  // spans the whole coalesce window instead of one session's detect windows.
  if (prefetcher_ != nullptr && !detect_frames.empty()) {
    stats::StageTimer::Scoped decode_timer(options_.stats.timer,
                                           stats::Stage::kDecode);
    const bool sharded_stores = dispatcher != nullptr && dispatcher->HasStores();
    const std::vector<double>& charges = prefetcher_->SubmitBatch(
        detect_frames, sharded_stores
                           ? common::Span<const uint32_t>(detect_shards.data(),
                                                          detect_shards.size())
                           : common::Span<const uint32_t>());
    for (size_t i = 0; i < detect_frames.size(); ++i) {
      current_.seconds += charges[i];
      if (dispatcher != nullptr) {
        RecordEvent(1 + detect_shards[i], charges[i], 0, 0, 0, false);
      }
    }
  }

  // Stage the detect work. With a shared service the batch's detect set is
  // *submitted* — merged with other sessions' pending frames into full
  // device batches at the next flush; without one it is held for
  // FinishStep's local detect stage. Either way the backing vector stays
  // stable until the step finishes (the service and the prefetcher hold
  // spans into it). A fully-reused batch submits nothing at all — that is
  // the whole point.
  if (options_.detector_service != nullptr && !detect_frames.empty()) {
    DetectorService::DetectRequest request;
    request.session_id = options_.service_session_id;
    request.frames = common::Span<const video::FrameId>(detect_frames.data(),
                                                        detect_frames.size());
    if (dispatcher != nullptr) {
      request.shards =
          common::Span<const uint32_t>(detect_shards.data(), detect_shards.size());
      request.dispatcher = dispatcher;
    } else {
      request.detector = detector_;
    }
    request.prefetcher = prefetcher_.get();
    request.session_stats = options_.session_stats;
    request.detector_options = options_.detector_options;
    pending_ticket_ = options_.detector_service->Submit(request);
    pending_ticket_valid_ = true;
  }
  pending_detect_ = true;
  return true;
}

void QueryExecution::FinishStep() {
  common::Check(pending_detect_, "FinishStep without a pending BeginStep");
  pending_detect_ = false;
  ShardDispatcher* dispatcher = options_.shard_dispatcher;
  const bool reusing = options_.reuse != nullptr;
  const std::vector<video::FrameId>& detect_frames =
      reusing ? miss_frames_ : pending_frames_;
  const std::vector<uint32_t>& detect_shards = reusing ? miss_shards_ : frame_shards_;

  // Detect stage over the batch's detect set (the misses, under reuse):
  // per-frame-independent, fans out across the pool — or, when the
  // repository is sharded, across the owning shards' detector contexts;
  // under a shared service the work already ran in coalesced device batches
  // and is collected here. Result i belongs to detect_frames[i] whatever the
  // execution order. A fully-reused batch has nothing to collect.
  std::vector<detect::Detections> miss_detections;
  {
    stats::StageTimer::Scoped detect_timer(options_.stats.timer,
                                           stats::Stage::kDetect);
    if (pending_ticket_valid_) {
      miss_detections = options_.detector_service->Take(pending_ticket_);
      pending_ticket_valid_ = false;
    } else if (options_.detector_service == nullptr && !detect_frames.empty()) {
      miss_detections = DetectStage(detect_frames, detect_shards);
    }
  }
  stats::SlabAdd(options_.stats.slab, options_.stats.frames_detected,
                 detect_frames.size());

  // Discriminate stage: strictly sequential in batch order — matching is
  // stateful, and reproducibility requires a fixed observation order. This is
  // the merge point of a sharded execution: whatever shard detected a frame,
  // its detections are observed here, in the coordinator's batch order —
  // and the merge point of reuse: cached/proven-empty detections interleave
  // with fresh ones in the same order a cold run would observe, byte-equal,
  // so everything downstream (matching, feedback, results) is unchanged.
  feedback_.clear();
  const uint64_t reported_before = current_.reported_results;
  std::chrono::steady_clock::time_point discriminate_start;
  if (options_.stats.timer != nullptr) {
    discriminate_start = std::chrono::steady_clock::now();
  }
  size_t miss_pos = 0;
  for (size_t i = 0; i < pending_frames_.size(); ++i) {
    const uint32_t shard = dispatcher != nullptr ? frame_shards_[i] : 0;
    const double seconds_per_frame = dispatcher != nullptr
                                         ? dispatcher->SecondsPerFrame(shard)
                                         : detector_->SecondsPerFrame();
    const bool reused =
        reusing && reuse_outcomes_[i] != reuse::SessionReuse::Outcome::kMiss;
    // Reused frames charge zero detector seconds — that cost was paid by
    // whichever query populated the cache; the avoided cost is credited to
    // the session's saved_detector_seconds instead.
    const double detect_seconds = reused ? 0.0 : seconds_per_frame;
    const detect::Detections& detections =
        reused ? reuse_detections_[i] : miss_detections[miss_pos];
    if (reused) {
      options_.reuse->RecordSaved(seconds_per_frame);
    } else {
      if (reusing) {
        options_.reuse->RecordDetected(pending_frames_[i], detections,
                                       seconds_per_frame);
      }
      ++miss_pos;
    }
    current_.seconds += detect_seconds;
    const track::MatchResult result =
        discriminator_->Observe(pending_frames_[i], detections);
    feedback_.push_back(
        FrameFeedback{pending_frames_[i], result.d0.size(), result.d1.size()});
    ++current_.samples;
    current_.reported_results += result.d0.size();
    const uint64_t distinct_before = current_.true_distinct;
    const bool changed = CountNewDistinct(result, options_, &found_, &current_);
    const bool emit = changed || !result.d0.empty();
    if (emit) {
      trace_.points.push_back(current_);
    }
    if (dispatcher != nullptr) {
      RecordEvent(1 + shard, detect_seconds, 1,
                  static_cast<uint32_t>(result.d0.size()),
                  static_cast<uint32_t>(current_.true_distinct - distinct_before),
                  emit);
    }
  }

  if (options_.stats.timer != nullptr) {
    options_.stats.timer->Record(
        stats::Stage::kDiscriminate,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      discriminate_start)
            .count());
  }
  stats::SlabAdd(options_.stats.slab, options_.stats.results_reported,
                 current_.reported_results - reported_before);

  // Feedback stage: the strategy sees the whole batch's outcomes at once
  // (Sec. III-F — belief updates are delayed until the batch returns).
  {
    stats::StageTimer::Scoped observe_timer(options_.stats.timer,
                                            stats::Stage::kObserve);
    strategy_->ObserveBatch(feedback_);
  }

  // Keep `final` current so a live session's trace reads correctly mid-run.
  trace_.final = current_;
}

void QueryExecution::AbortPendingStep() {
  if (pending_detect_) {
    pending_detect_ = false;
    // Stop the decode tasks holding spans into the abandoned batch before
    // releasing it.
    if (prefetcher_ != nullptr) prefetcher_->Drain();
    pending_frames_.clear();
    miss_frames_.clear();
    miss_shards_.clear();
    reuse_outcomes_.clear();
    reuse_detections_.clear();
    pending_ticket_ = 0;
    pending_ticket_valid_ = false;
  }
  // Unregister unconditionally, not just when a step was pending: an aborted
  // session's detectors die with it, and a directory (or remote worker) entry
  // left behind would let a later wire batch resolve to a dangling pointer.
  finished_ = true;
  if (options_.detector_service != nullptr) {
    options_.detector_service->UnregisterSession(options_.service_session_id);
  }
}

void QueryExecution::Terminate() {
  common::Check(!pending_detect_, "Terminate while a step is pending");
  finished_ = true;
  // Shed/cancelled sessions exit through here without Finish: withdraw the
  // wire registration so the session id can never again resolve to detectors
  // owned by this (about-to-die) execution.
  if (options_.detector_service != nullptr) {
    options_.detector_service->UnregisterSession(options_.service_session_id);
  }
}

bool QueryExecution::Step() {
  if (!BeginStep()) return false;
  // Standalone stepping under a shared service: flush inline (coalesce width
  // 1 for this session's frames; anything other sessions left pending rides
  // along, which coalescing guarantees is trace-neutral).
  if (options_.detector_service != nullptr) {
    options_.detector_service->Flush();
    // Standalone stepping has no error channel; concurrent workloads get the
    // status surfaced by `SearchEngine::RunConcurrent` instead of this stop.
    common::CheckOk(options_.detector_service->transport_status(),
                    "detect transport failed during a standalone step");
  }
  FinishStep();
  return true;
}

QueryTrace QueryExecution::Finish() {
  while (Step()) {
  }
  if (!finalized_) {
    trace_.final = current_;
    if (trace_.points.empty() || trace_.points.back().samples != current_.samples) {
      trace_.points.push_back(current_);
    }
    if (options_.shard_dispatcher != nullptr) {
      // A sharded run's trace is *assembled from the shards' partial traces*:
      // the merge replays the per-shard events in global sequence order. It
      // must reproduce the directly-accumulated trace bit for bit — a merge
      // that drifts means shard accounting lost information, which would
      // silently corrupt every cross-shard comparison, so it is fatal rather
      // than best-effort.
      auto merged = MergeShardTraces(
          trace_.strategy_name, trace_.total_instances,
          common::Span<const ShardTracePart>(parts_.data(), parts_.size()));
      common::CheckOk(merged.status(), "shard trace merge failed");
      common::Check(TracesBitIdentical(merged.value(), trace_),
                    "merged shard trace diverged from direct accumulation");
      trace_ = std::move(merged).value();
    }
    finalized_ = true;
    // The query is over: withdraw its wire registrations (the directory
    // holds raw pointers to detectors that die with this session). Done
    // here — never from the destructor — so a session object that outlives
    // its engine stays destructible; a session abandoned mid-query without
    // Finish leaves one never-again-resolved directory entry behind, which
    // is bounded by session count and harmless (ids are never reused).
    if (options_.detector_service != nullptr) {
      options_.detector_service->UnregisterSession(options_.service_session_id);
    }
  }
  return trace_;
}

QueryRunner::QueryRunner(const scene::GroundTruth* truth,
                         detect::ObjectDetector* detector,
                         track::Discriminator* discriminator, RunnerOptions options)
    : truth_(truth),
      detector_(detector),
      discriminator_(discriminator),
      options_(options) {}

QueryTrace QueryRunner::Run(SearchStrategy* strategy) {
  QueryExecution execution(truth_, detector_, discriminator_, strategy, options_);
  return execution.Finish();
}

QueryTrace QueryRunner::RunSingleFrame(SearchStrategy* strategy) {
  QueryTrace trace;
  trace.strategy_name = strategy->name();
  trace.total_instances = truth_->NumInstances(options_.recall_class);

  std::unordered_set<scene::InstanceId> found;
  DiscoveryPoint current;
  current.seconds = strategy->UpfrontCostSeconds();
  trace.points.push_back(current);
  double charged_overhead = 0.0;

  while (current.samples < options_.max_samples &&
         current.reported_results < options_.result_limit &&
         current.true_distinct < options_.true_distinct_target) {
    const std::optional<video::FrameId> frame = strategy->NextFrame();
    if (!frame.has_value()) break;

    // Charge any incremental strategy overhead (e.g. lazy proxy scoring)
    // accrued while choosing this frame.
    const double overhead = strategy->CumulativeOverheadSeconds();
    current.seconds += overhead - charged_overhead;
    charged_overhead = overhead;

    if (options_.video_store != nullptr) {
      // PlanRead returns this read's charge directly. The old form diffed
      // the store's cumulative `Stats().total_seconds` around the call,
      // which reads shared mutable state — racy when the store is shared
      // with concurrent sessions, and wrong (double-counted) even
      // single-threaded if anything else touches the store in between.
      const common::Result<video::ReadPlan> plan =
          options_.video_store->PlanRead(*frame);
      if (plan.ok()) {
        options_.video_store->PerformRead(plan.value());
        current.seconds += plan.value().seconds;
      }
    }
    current.seconds += detector_->SecondsPerFrame();

    const detect::Detections dets = detector_->Detect(*frame);
    const track::MatchResult result = discriminator_->Observe(*frame, dets);
    strategy->Observe(*frame, result.d0.size(), result.d1.size());

    ++current.samples;
    current.reported_results += result.d0.size();

    const bool changed = CountNewDistinct(result, options_, &found, &current);
    if (changed || !result.d0.empty()) {
      trace.points.push_back(current);
    }
  }
  trace.final = current;
  if (trace.points.empty() || trace.points.back().samples != current.samples) {
    trace.points.push_back(current);
  }
  return trace;
}

}  // namespace query
}  // namespace exsample
