#include "query/runner.h"

#include <unordered_set>

namespace exsample {
namespace query {

QueryRunner::QueryRunner(const scene::GroundTruth* truth,
                         detect::ObjectDetector* detector,
                         track::Discriminator* discriminator, RunnerOptions options)
    : truth_(truth),
      detector_(detector),
      discriminator_(discriminator),
      options_(options) {}

QueryTrace QueryRunner::Run(SearchStrategy* strategy) {
  QueryTrace trace;
  trace.strategy_name = strategy->name();
  trace.total_instances = truth_->NumInstances(options_.recall_class);

  std::unordered_set<scene::InstanceId> found;
  DiscoveryPoint current;
  current.seconds = strategy->UpfrontCostSeconds();
  trace.points.push_back(current);
  double charged_overhead = 0.0;

  while (current.samples < options_.max_samples &&
         current.reported_results < options_.result_limit &&
         current.true_distinct < options_.true_distinct_target) {
    const std::optional<video::FrameId> frame = strategy->NextFrame();
    if (!frame.has_value()) break;

    // Charge any incremental strategy overhead (e.g. lazy proxy scoring)
    // accrued while choosing this frame.
    const double overhead = strategy->CumulativeOverheadSeconds();
    current.seconds += overhead - charged_overhead;
    charged_overhead = overhead;

    if (options_.video_store != nullptr) {
      const double before = options_.video_store->Stats().total_seconds;
      options_.video_store->ReadAndDecode(*frame);
      current.seconds += options_.video_store->Stats().total_seconds - before;
    }
    current.seconds += detector_->SecondsPerFrame();

    const detect::Detections dets = detector_->Detect(*frame);
    const track::MatchResult result = discriminator_->Observe(*frame, dets);
    strategy->Observe(*frame, result.d0.size(), result.d1.size());

    ++current.samples;
    current.reported_results += result.d0.size();

    bool changed = false;
    for (const detect::Detection& det : result.d0) {
      if (!det.IsTruePositive()) continue;
      // Only instances of the recall class count toward true recall;
      // off-class detections can occur when the detector is not class-
      // filtered.
      if (options_.recall_class != scene::GroundTruth::kAllClasses &&
          det.class_id != options_.recall_class) {
        continue;
      }
      if (found.insert(det.source_instance).second) {
        ++current.true_distinct;
        changed = true;
      }
    }
    if (changed || !result.d0.empty()) {
      trace.points.push_back(current);
    }
  }
  trace.final = current;
  if (trace.points.empty() || trace.points.back().samples != current.samples) {
    trace.points.push_back(current);
  }
  return trace;
}

}  // namespace query
}  // namespace exsample
