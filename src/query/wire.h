#ifndef EXSAMPLE_QUERY_WIRE_H_
#define EXSAMPLE_QUERY_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "detect/detection.h"
#include "detect/detector.h"
#include "video/repository.h"

namespace exsample {
namespace query {

/// \file
/// \brief Serializable wire format of the distributed detect stage.
///
/// The `DetectorService`'s per-shard submission queues are the transport unit
/// the ROADMAP names for cross-machine execution: a remote shard runner
/// drains its queue's sliced device batches over RPC instead of a local
/// pool. Every message shares one framed envelope — the 8-byte header below,
/// whose kind byte separates *data* messages (a *detect request*: one sliced
/// device batch of (session, frame) slots; its *detect response*: per-slot
/// detection lists plus the detector seconds the runner charged) from
/// *control* messages (session registration shipping the detector
/// configuration a remote runner materializes its session state from, the
/// matching ack, unregistration, and heartbeats). Control and data parse
/// through the same bounds-checked reader; `PeekWireKind` dispatches a
/// received frame without trusting anything past the header.
///
/// The encoding is a versioned, deterministic binary layout: fixed-width
/// little-endian integers, doubles as raw IEEE-754 bit patterns (so a
/// detection box round-trips bit-identically — the loopback-equals-local
/// trace contract depends on it), length-prefixed repeated fields, no
/// padding. Serialization of the same message always yields the same bytes;
/// parsing is bounds-checked and returns `InvalidArgument` for truncated,
/// oversized, or trailing-garbage buffers and rejects unknown versions and
/// message kinds instead of guessing.

/// \brief Magic prefix of every wire message ("XSWM": eXSample Wire Message).
inline constexpr uint32_t kWireMagic = 0x4d575358;
/// \brief Current wire-format version. Parsers reject anything else: a shard
/// fleet is upgraded in lockstep before the coordinator starts speaking a new
/// version.
inline constexpr uint16_t kWireVersion = 1;

/// \brief Message kinds, tagged in the header byte after the version. Kinds
/// 1–2 are the data plane; 3–7 are the control plane a real transport needs
/// to deploy session state and probe liveness. Parsers reject kinds they do
/// not know: a frame from a newer coordinator fails cleanly, never silently.
enum class WireKind : uint8_t {
  kDetectRequest = 1,
  kDetectResponse = 2,
  kRegisterSession = 3,
  kSessionAck = 4,
  kHeartbeat = 5,
  kHeartbeatAck = 6,
  kUnregisterSession = 7,
};

/// \brief Outcome a shard runner reports for one wire batch.
enum class WireStatus : uint8_t {
  kOk = 0,
  /// The runner (or its machine) could not serve the batch. The service
  /// retries `max_retries` times, then requeues onto a surviving shard.
  kUnavailable = 1,
  /// The runner serves a different repository than the request was built
  /// against (fingerprint mismatch) — a deployment error, never retryable.
  kRepoMismatch = 2,
};

/// \brief One frame of a wire batch: which session's detector context serves
/// it (ids, not pointers — the runner resolves them in its own directory) and
/// the global frame to detect.
struct WireSlot {
  uint64_t session_id = 0;
  video::FrameId frame = 0;

  bool operator==(const WireSlot& other) const {
    return session_id == other.session_id && frame == other.frame;
  }
};

/// \brief One sliced device batch, addressed to a shard runner.
struct DetectRequestMsg {
  /// Coordinator-assigned id of this wire batch; the matching response echoes
  /// it, so completions may arrive in any order. Retries and requeues reuse
  /// the sequence number with a bumped `attempt`.
  uint64_t wire_seq = 0;
  /// The shard whose detector contexts serve these frames. Normally the
  /// runner the request is sent to; after a failure the batch is requeued
  /// onto a *surviving* runner with `origin_shard` unchanged, so the
  /// detections (and the session's per-shard accounting) are identical to
  /// the no-failure run.
  uint32_t origin_shard = 0;
  /// 0 on the first send; incremented per retry/requeue (observability).
  uint32_t attempt = 0;
  /// Fingerprint of the repository the coordinator is querying
  /// (`video::VideoRepository::Fingerprint`); 0 disables the check. A runner
  /// configured with a different expectation answers `kRepoMismatch`.
  uint64_t repo_fingerprint = 0;
  std::vector<WireSlot> slots;
};

/// \brief A shard runner's answer to one `DetectRequestMsg`.
struct DetectResponseMsg {
  uint64_t wire_seq = 0;
  uint32_t origin_shard = 0;
  /// Echo of the request's attempt counter.
  uint32_t attempt = 0;
  WireStatus status = WireStatus::kOk;
  /// Simulated detector seconds the runner charged for the batch (the
  /// shard-side half of the cost accounting; `kOk` only).
  double charged_seconds = 0.0;
  /// Per-slot detection lists, parallel to the request's `slots` (`kOk`
  /// only; empty on failure).
  std::vector<detect::Detections> detections;
};

/// \brief Serializes `msg` into the canonical byte layout. Deterministic:
/// equal messages yield equal bytes.
std::vector<uint8_t> SerializeDetectRequest(const DetectRequestMsg& msg);

/// \brief Parses a buffer produced by `SerializeDetectRequest`.
///
/// Returns `InvalidArgument` for short/truncated buffers, bad magic, version
/// or kind mismatches, implausible length prefixes, and trailing bytes.
common::Result<DetectRequestMsg> ParseDetectRequest(
    common::Span<const uint8_t> bytes);

/// \brief Serializes `msg` into the canonical byte layout.
std::vector<uint8_t> SerializeDetectResponse(const DetectResponseMsg& msg);

/// \brief Parses a buffer produced by `SerializeDetectResponse`; same error
/// contract as `ParseDetectRequest`.
common::Result<DetectResponseMsg> ParseDetectResponse(
    common::Span<const uint8_t> bytes);

/// \brief Control-plane message deploying one session's detector state to a
/// shard runner, sent once per (session, connection) before the first detect
/// batch that references the session.
///
/// Where the in-process directory shares detector *pointers*, this ships the
/// *configuration* a remote runner needs to materialize an equivalent
/// detector: `SimulatedDetector` is a pure per-frame function of (ground
/// truth, options), so the options (seed included) plus the repository
/// fingerprint — pinning which ground truth the runner must already hold —
/// fully determine the remote detector's output. That purity is what lets a
/// registration message replace shared memory without touching the
/// bit-identical trace contract.
struct RegisterSessionMsg {
  uint64_t session_id = 0;
  /// Fingerprint of the repository the session queries; a runner serving a
  /// different repository acks `kRepoMismatch` (0 disables the check).
  uint64_t repo_fingerprint = 0;
  detect::DetectorOptions detector_options;
};

/// \brief A runner's answer to one `RegisterSessionMsg` (status rides the
/// header's flags byte, like detect responses).
struct SessionAckMsg {
  uint64_t session_id = 0;
  WireStatus status = WireStatus::kOk;
};

/// \brief Control-plane message dropping one session's runner-side state; no
/// ack (the coordinator never blocks on teardown).
struct UnregisterSessionMsg {
  uint64_t session_id = 0;
};

/// \brief Liveness probe; the runner echoes the nonce in a `HeartbeatAckMsg`.
struct HeartbeatMsg {
  uint64_t nonce = 0;
};

struct HeartbeatAckMsg {
  uint64_t nonce = 0;
};

/// \brief Validates the framed header of a received buffer (magic, version,
/// known kind) and returns its kind without consuming the message — the
/// dispatch step of every runner/coordinator receive loop. `InvalidArgument`
/// for short buffers, bad magic, version mismatches, and unknown kinds.
common::Result<WireKind> PeekWireKind(common::Span<const uint8_t> bytes);

std::vector<uint8_t> SerializeRegisterSession(const RegisterSessionMsg& msg);
common::Result<RegisterSessionMsg> ParseRegisterSession(
    common::Span<const uint8_t> bytes);

std::vector<uint8_t> SerializeSessionAck(const SessionAckMsg& msg);
common::Result<SessionAckMsg> ParseSessionAck(common::Span<const uint8_t> bytes);

std::vector<uint8_t> SerializeUnregisterSession(const UnregisterSessionMsg& msg);
common::Result<UnregisterSessionMsg> ParseUnregisterSession(
    common::Span<const uint8_t> bytes);

std::vector<uint8_t> SerializeHeartbeat(const HeartbeatMsg& msg);
common::Result<HeartbeatMsg> ParseHeartbeat(common::Span<const uint8_t> bytes);

std::vector<uint8_t> SerializeHeartbeatAck(const HeartbeatAckMsg& msg);
common::Result<HeartbeatAckMsg> ParseHeartbeatAck(
    common::Span<const uint8_t> bytes);

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_WIRE_H_
