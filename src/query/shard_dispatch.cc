#include "query/shard_dispatch.h"

#include <thread>

namespace exsample {
namespace query {

ShardDispatcher::ShardDispatcher(const video::ShardedRepository* repo,
                                 std::vector<ShardContext> contexts,
                                 bool parallel_shards)
    : repo_(repo), contexts_(std::move(contexts)), parallel_shards_(parallel_shards) {
  common::Check(repo_ != nullptr, "ShardDispatcher needs a sharded repository");
  common::Check(contexts_.size() == repo_->NumShards(),
                "ShardDispatcher needs one context per shard");
  has_stores_ = true;
  for (uint32_t s = 0; s < contexts_.size(); ++s) {
    if (repo_->Shard(s).TotalFrames() == 0) continue;  // Empty shards idle.
    common::Check(contexts_[s].detector != nullptr,
                  "non-empty shard needs a detector context");
    if (contexts_[s].store == nullptr) has_stores_ = false;
  }
  stats_.resize(contexts_.size());
  shard_slots_.resize(contexts_.size());
  shard_frames_.resize(contexts_.size());
}

uint32_t ShardDispatcher::ShardOfFrame(video::FrameId frame) const {
  auto shard = repo_->ShardOfFrame(frame);
  common::CheckOk(shard.status(), "picked frame outside the sharded repository");
  return shard.value();
}

std::vector<detect::Detections> ShardDispatcher::DetectBatch(
    common::Span<video::FrameId> frames, common::Span<const uint32_t> shards) {
  common::Check(shards.empty() || shards.size() == frames.size(),
                "precomputed shard owners must cover the whole batch");
  std::vector<detect::Detections> out(frames.size());

  // Partition the batch by owning shard, preserving batch order within each
  // shard so a shard's detector sees its frames in the order the coordinator
  // picked them.
  for (auto& slots : shard_slots_) slots.clear();
  for (auto& sub : shard_frames_) sub.clear();
  for (size_t i = 0; i < frames.size(); ++i) {
    const uint32_t s = shards.empty() ? ShardOfFrame(frames[i]) : shards[i];
    shard_slots_[s].push_back(i);
    shard_frames_[s].push_back(frames[i]);
  }

  // Run each owning shard's sub-batch through its own detector context and
  // scatter results back into batch slots.
  auto run_shard = [&](uint32_t s) {
    std::vector<detect::Detections> dets =
        contexts_[s].detector->DetectBatch(shard_frames_[s], contexts_[s].pool);
    for (size_t j = 0; j < shard_slots_[s].size(); ++j) {
      out[shard_slots_[s][j]] = std::move(dets[j]);
    }
  };

  std::vector<uint32_t> active;
  for (uint32_t s = 0; s < contexts_.size(); ++s) {
    if (!shard_frames_[s].empty()) active.push_back(s);
  }
  if (parallel_shards_ && active.size() > 1) {
    // One dispatch thread per owning shard, each driving that shard's own
    // pool — the in-process stand-in for shards living on separate machines.
    std::vector<std::thread> threads;
    threads.reserve(active.size());
    for (const uint32_t s : active) threads.emplace_back([&, s] { run_shard(s); });
    for (std::thread& t : threads) t.join();
  } else {
    for (const uint32_t s : active) run_shard(s);
  }

  for (const uint32_t s : active) {
    stats_[s].frames_detected += shard_frames_[s].size();
    stats_[s].batches += 1;
    stats_[s].detect_seconds += static_cast<double>(shard_frames_[s].size()) *
                                contexts_[s].detector->SecondsPerFrame();
  }
  return out;
}

void ShardDispatcher::RecordServiceDetect(uint32_t shard, size_t frames) {
  common::Check(shard < contexts_.size() && contexts_[shard].detector != nullptr,
                "no detector context for shard");
  stats_[shard].frames_detected += frames;
  stats_[shard].batches += 1;
  stats_[shard].detect_seconds +=
      static_cast<double>(frames) * contexts_[shard].detector->SecondsPerFrame();
}

double ShardDispatcher::SecondsPerFrame(uint32_t shard) const {
  common::Check(shard < contexts_.size() && contexts_[shard].detector != nullptr,
                "no detector context for shard");
  return contexts_[shard].detector->SecondsPerFrame();
}

video::ReadPlan ShardDispatcher::PlanDecode(video::FrameId frame, uint32_t shard) {
  common::Check(shard < contexts_.size(), "unknown shard id");
  video::SimulatedVideoStore* store = contexts_[shard].store;
  common::Check(store != nullptr, "shard has no decode store");
  auto plan = store->PlanRead(frame);
  common::CheckOk(plan.status(), "sharded decode failed");
  stats_[shard].frames_decoded += 1;
  stats_[shard].decode_seconds += plan.value().seconds;
  return plan.value();
}

double ShardDispatcher::ChargeDecode(video::FrameId frame, uint32_t shard) {
  const video::ReadPlan plan = PlanDecode(frame, shard);
  contexts_[shard].store->PerformRead(plan);
  return plan.seconds;
}

}  // namespace query
}  // namespace exsample
