#ifndef EXSAMPLE_QUERY_PREFETCH_H_
#define EXSAMPLE_QUERY_PREFETCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/parking.h"
#include "common/ring_buffer.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "query/shard_dispatch.h"
#include "video/decode.h"
#include "video/repository.h"

namespace exsample {
namespace query {

/// \brief Decode-ahead configuration of a `DecodePrefetcher`.
struct PrefetchOptions {
  /// Maximum frames decoded (or decoding) ahead of the frame the detect
  /// stage last waited on — the bounded in-flight window. 0 disables
  /// overlap: every read is planned *and* performed inline at submit time,
  /// which is exactly the synchronous decode stage.
  size_t depth = 4;
};

/// \brief Running tallies of a prefetcher's work.
struct PrefetchStats {
  uint64_t batches = 0;
  uint64_t frames = 0;
  /// Reads handed to a pool worker (decode overlapped with detection).
  uint64_t async_reads = 0;
  /// Reads performed inline on the coordinator (depth 0, or no pool).
  uint64_t inline_reads = 0;
  /// Largest decode-ahead distance observed; never exceeds `depth`.
  size_t max_ahead = 0;
};

/// \brief Pipelined decode stage: decodes a picked batch's frames on a worker
/// pool while the detect stage consumes earlier frames of the batch.
///
/// The prefetcher is what lets the decoder work *ahead* of the detector
/// instead of idling during inference (EKO's observation that decode-side
/// work is a first-class bottleneck for adaptive sampling). It preserves the
/// library's determinism contract by splitting every read into the store's
/// `PlanRead` / `PerformRead` halves:
///
///  - **Accounting is synchronous.** `SubmitBatch` plans every read on the
///    coordinator thread, in batch order, against the owning store's
///    sequential position state — so the charged seconds (and the per-shard
///    attribution) are bit-identical to the synchronous decode loop, whatever
///    the pool does afterwards.
///  - **Work is asynchronous.** The planned reads are performed on the pool
///    (or each shard's private I/O pool) with at most `depth` frames in
///    flight beyond the detect stage's consumption cursor; decoded frames
///    land in a cache keyed by `FrameId` until the batch completes.
///
/// Consumption is strictly in batch order: `WaitFrame(i)` blocks until frame
/// `i` is decoded, advancing the window so later frames start decoding while
/// the caller runs detection on earlier ones. One coordinator thread drives
/// the prefetcher (submit/wait); only the decode tasks run elsewhere.
///
/// ## Completion path (lock-free producers)
///
/// A finished decode task pushes its slot index into a bounded MPSC
/// completion ring and wakes the coordinator through a waiter-counted
/// `Parker` — when nobody is blocked in `WaitFrame`/`Drain` (the common
/// case while detection is the bottleneck) a completion costs one ring
/// push and one fence, no mutex and no condition-variable syscall. The
/// ring can never overflow: in-order consumption bounds unconsumed
/// completions by the window depth. `mu_` survives only on the
/// coordinator/observer side (batch rebuild, `Cached`), where it is
/// uncontended by design.
///
/// A real decoder backend slots in behind the same seam: implement
/// `PlanRead` (index the container, price the read) and `PerformRead` (do
/// it) on the store, and the prefetcher overlaps real decode with real
/// inference unchanged.
class DecodePrefetcher {
 public:
  /// Unsharded: all reads are planned on and performed by `store`; decode
  /// tasks run on `pool`. A null `pool` (or `depth == 0`) degrades to
  /// synchronous inline decode — same charges, no overlap.
  DecodePrefetcher(video::SimulatedVideoStore* store, common::ThreadPool* pool,
                   PrefetchOptions options);

  /// Sharded with per-shard stores (`dispatcher->HasStores()`): each frame is
  /// planned on its owning shard's store (per-shard sequential position, as
  /// the synchronous path prices it) and performed on the shard's `io_pool`,
  /// falling back to `pool`.
  DecodePrefetcher(ShardDispatcher* dispatcher, common::ThreadPool* pool,
                   PrefetchOptions options);

  /// Drains any in-flight decode work.
  ~DecodePrefetcher();

  DecodePrefetcher(const DecodePrefetcher&) = delete;
  DecodePrefetcher& operator=(const DecodePrefetcher&) = delete;

  /// \brief Plans the whole batch (deterministic, batch-order accounting) and
  /// starts decoding up to `depth` frames ahead. Returns the per-frame
  /// charged seconds, parallel to `frames` — exactly what the synchronous
  /// loop would have charged, in the same order. For the sharded
  /// constructor, `shards` must hold each frame's owner. Any previous batch
  /// is drained first.
  const std::vector<double>& SubmitBatch(common::Span<video::FrameId> frames,
                                         common::Span<const uint32_t> shards = {});

  /// \brief Blocks until frame `index` of the current batch is decoded and
  /// opens the window one frame further. Frames must be waited on in batch
  /// order (the detect stage consumes in order; that order is load-bearing
  /// for the window bound).
  void WaitFrame(size_t index);

  /// \brief Waits for every frame of the current batch (detect consumed the
  /// whole batch, or the batch is being abandoned).
  void Drain();

  /// \brief True when `frame` belongs to the current batch and its decode has
  /// completed (it is present in the cache). Observability/test hook.
  bool Cached(video::FrameId frame) const;

  size_t depth() const { return options_.depth; }
  const PrefetchStats& stats() const { return stats_; }

 private:
  struct Slot {
    video::FrameId frame = 0;
    const video::SimulatedVideoStore* store = nullptr;  // Performs the read.
    common::ThreadPool* pool = nullptr;                 // Runs the read.
    video::ReadPlan plan;
    bool ready = false;  // Written under mu_ (inline decode or ring drain).
  };

  /// Starts decode tasks for every slot inside the window
  /// `[cursor_, cursor_ + depth)` not yet enqueued. Called with mu_ held.
  void EnqueueAheadLocked();

  /// Pops every queued completion and marks its slot ready. Called with
  /// mu_ held (pops themselves are lock-free; mu_ covers the ready bits).
  void DrainCompletionsLocked();

  /// Blocks until slots_[index] is ready: spin-drain the completion ring,
  /// then park on ready_parker_. Called with mu_ held via \p lock; the
  /// lock is released while parked so observers are never blocked behind
  /// a sleeping coordinator.
  void WaitReadyLocked(std::unique_lock<std::mutex>& lock, size_t index);

  video::SimulatedVideoStore* store_ = nullptr;  // Unsharded constructor.
  ShardDispatcher* dispatcher_ = nullptr;        // Sharded constructor.
  common::ThreadPool* pool_ = nullptr;
  PrefetchOptions options_;
  PrefetchStats stats_;

  std::vector<Slot> slots_;       // Current batch; stable while tasks run.
  std::vector<double> charges_;   // Per-frame seconds, returned to the caller.
  // Decoded-frame cache for the current batch: FrameId -> slot index. Entries
  // are inserted at plan time and looked up under mu_ together with the
  // slot's ready bit; the cache is bounded by the batch (plus never more than
  // `depth` frames decoded ahead of the consumer) and cleared on the next
  // SubmitBatch.
  std::unordered_map<video::FrameId, size_t> cache_;
  size_t enqueued_ = 0;  // Slots handed to a pool (prefix of the batch).
  size_t cursor_ = 0;    // First slot not yet waited on by the consumer.

  // Completion plumbing: decode tasks push their slot index here and wake
  // the parker; nothing on the producer side takes mu_. Capacity `depth + 1`
  // is an invariant, not a tuning knob: WaitFrame/Drain advance cursor_ and
  // enqueue ahead *before* draining the awaited slot, so the unpopped set
  // spans `[index, index + 1 + depth)` — at most `depth + 1` completions.
  // Every slot below the awaited index has had its completion popped already
  // (consumption is in order).
  std::unique_ptr<common::MpscRingBuffer<size_t>> completions_;
  common::Parker ready_parker_;
  // Decode tasks still touch the parker after their completion becomes
  // visible; the destructor waits for this to hit zero before tearing the
  // parker down.
  std::atomic<uint64_t> inflight_tasks_{0};

  mutable std::mutex mu_;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_PREFETCH_H_
