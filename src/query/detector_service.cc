#include "query/detector_service.h"

#include <algorithm>
#include <thread>

namespace exsample {
namespace query {

DetectorService::DetectorService(DetectorServiceOptions options, size_t num_shards,
                                 std::vector<common::ThreadPool*> pools,
                                 common::ThreadPool* default_pool)
    : options_(options), pools_(std::move(pools)), default_pool_(default_pool) {
  common::Check(options_.device_batch >= 1, "device batch must hold a frame");
  common::Check(num_shards >= 1, "detector service needs at least one shard queue");
  common::Check(pools_.empty() || pools_.size() == num_shards,
                "per-shard pools must cover every shard");
  queues_.resize(num_shards);
  slice_sessions_.resize(num_shards);
}

DetectorService::Ticket DetectorService::Submit(const DetectRequest& request) {
  common::Check(!request.frames.empty(), "empty detect request");
  common::Check(request.shards.empty() || request.shards.size() == request.frames.size(),
                "per-frame shard owners must cover the whole request");
  common::Check(request.dispatcher != nullptr || request.detector != nullptr,
                "detect request needs a detector or a dispatcher");

  const size_t request_index = pending_.size();
  pending_.emplace_back();
  PendingRequest& pr = pending_.back();
  pr.ticket = next_ticket_++;
  pr.request = request;
  pr.results.resize(request.frames.size());

  for (size_t i = 0; i < request.frames.size(); ++i) {
    const uint32_t shard = request.shards.empty() ? 0 : request.shards[i];
    common::Check(shard < queues_.size(), "frame routed past the shard queues");
    queues_[shard].push_back(QueueEntry{request_index, i});
  }
  pending_frames_ += request.frames.size();
  stats_.requests += 1;
  if (request.session_stats != nullptr) {
    request.session_stats->frames_submitted += request.frames.size();
  }
  return pr.ticket;
}

void DetectorService::RunShardQueue(uint32_t shard) {
  const std::vector<QueueEntry>& queue = queues_[shard];
  common::ThreadPool* pool =
      shard < pools_.size() && pools_[shard] != nullptr ? pools_[shard] : default_pool_;
  // Slice the merged queue into device batches and fan each across the
  // shard's pool. Results land in fixed per-request slots, so neither the
  // slicing nor the pool size can reorder what any session observes.
  for (size_t begin = 0; begin < queue.size(); begin += options_.device_batch) {
    const size_t count = std::min(options_.device_batch, queue.size() - begin);
    const auto detect_one = [&](size_t j) {
      const QueueEntry& entry = queue[begin + j];
      PendingRequest& pr = pending_[entry.request_index];
      detect::ObjectDetector* detector =
          pr.request.dispatcher != nullptr
              ? pr.request.dispatcher->Context(shard).detector
              : pr.request.detector;
      pr.results[entry.frame_index] =
          detector->Detect(pr.request.frames[entry.frame_index]);
    };
    if (pool != nullptr) {
      pool->ParallelFor(count, detect_one);
    } else {
      for (size_t j = 0; j < count; ++j) detect_one(j);
    }
  }
}

void DetectorService::Flush() {
  if (pending_.empty()) return;
  stats_.flushes += 1;

  // Decode barrier: every request's prefetcher has been decoding on the I/O
  // pools since its session submitted — the decode-ahead window spans the
  // whole coalesce window. Drain in ticket order before any detection runs
  // (plans were already charged, in batch order, at submit time).
  for (PendingRequest& pr : pending_) {
    if (pr.request.prefetcher != nullptr) pr.request.prefetcher->Drain();
  }

  std::vector<uint32_t> active;
  for (uint32_t s = 0; s < queues_.size(); ++s) {
    if (!queues_[s].empty()) active.push_back(s);
  }

  if (options_.parallel_shards && active.size() > 1) {
    // One dispatch thread per owning shard, each driving that shard's own
    // pool. A shard thread never touches the shared default pool: ParallelFor
    // is single-driver, so shards without a private pool run their slices
    // inline on their dispatch thread.
    common::ThreadPool* default_pool = default_pool_;
    default_pool_ = nullptr;
    std::vector<std::thread> threads;
    threads.reserve(active.size());
    for (const uint32_t s : active) {
      threads.emplace_back([this, s] { RunShardQueue(s); });
    }
    for (std::thread& t : threads) t.join();
    default_pool_ = default_pool;
  } else {
    for (const uint32_t s : active) RunShardQueue(s);
  }

  // Bookkeeping, on the coordinator after every slice completed. Slice
  // boundaries are a pure function of the queues, so the tallies are
  // deterministic whatever the shards' execution order was.
  for (const uint32_t s : active) {
    const std::vector<QueueEntry>& queue = queues_[s];
    for (size_t begin = 0; begin < queue.size(); begin += options_.device_batch) {
      const size_t count = std::min(options_.device_batch, queue.size() - begin);
      std::vector<size_t>& requests_in_slice = slice_sessions_[s];
      requests_in_slice.clear();
      for (size_t j = 0; j < count; ++j) {
        const size_t r = queue[begin + j].request_index;
        if (std::find(requests_in_slice.begin(), requests_in_slice.end(), r) ==
            requests_in_slice.end()) {
          requests_in_slice.push_back(r);
        }
      }
      bool shared = false;
      for (const size_t r : requests_in_slice) {
        if (pending_[r].request.session_id !=
            pending_[requests_in_slice.front()].request.session_id) {
          shared = true;
          break;
        }
      }
      stats_.device_batches += 1;
      stats_.frames += count;
      if (shared) stats_.shared_batches += 1;
      for (const size_t r : requests_in_slice) {
        SessionSchedulerStats* session = pending_[r].request.session_stats;
        if (session == nullptr) continue;
        session->device_batches += 1;
        if (shared) {
          session->batches_shared += 1;
          for (size_t j = 0; j < count; ++j) {
            if (queue[begin + j].request_index == r) session->frames_coalesced += 1;
          }
        }
      }
    }
    // Per-session dispatcher stats: book each request's frames on this shard
    // as one service-detected batch, mirroring what the session's own
    // `ShardDispatcher::DetectBatch` call would have recorded.
    for (size_t r = 0; r < pending_.size(); ++r) {
      if (pending_[r].request.dispatcher == nullptr) continue;
      size_t frames_on_shard = 0;
      for (const QueueEntry& entry : queue) {
        if (entry.request_index == r) ++frames_on_shard;
      }
      if (frames_on_shard > 0) {
        pending_[r].request.dispatcher->RecordServiceDetect(s, frames_on_shard);
      }
    }
  }

  for (PendingRequest& pr : pending_) {
    ready_.emplace(pr.ticket, std::move(pr.results));
  }
  pending_.clear();
  for (auto& queue : queues_) queue.clear();
  pending_frames_ = 0;
}

bool DetectorService::Ready(Ticket ticket) const {
  return ready_.find(ticket) != ready_.end();
}

std::vector<detect::Detections> DetectorService::Take(Ticket ticket) {
  const auto it = ready_.find(ticket);
  common::Check(it != ready_.end(), "taking a detect result that is not ready");
  std::vector<detect::Detections> results = std::move(it->second);
  ready_.erase(it);
  return results;
}

double DetectorService::FillRate() const {
  if (stats_.device_batches == 0) return 0.0;
  return static_cast<double>(stats_.frames) /
         (static_cast<double>(stats_.device_batches) *
          static_cast<double>(options_.device_batch));
}

}  // namespace query
}  // namespace exsample
