#include "query/detector_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace exsample {
namespace query {

namespace {

/// Monotonic wall clock in seconds (ticket latency, flush deadlines). Wall
/// clock never feeds the trace — simulated seconds do — so reading it here
/// cannot perturb determinism.
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServiceStatsBinding ServiceStatsBinding::Bind(stats::CounterRegistry* registry,
                                              stats::CounterSlab* slab,
                                              stats::StageTimer* timer) {
  ServiceStatsBinding binding;
  binding.slab = slab;
  binding.timer = timer;
  binding.submits = registry->RegisterCounter("service.submits");
  binding.frames = registry->RegisterCounter("service.frames");
  binding.device_batches = registry->RegisterCounter("service.device_batches");
  binding.shared_batches = registry->RegisterCounter("service.shared_batches");
  binding.flushes = registry->RegisterCounter("service.flushes");
  binding.wire_batches = registry->RegisterCounter("service.wire_batches");
  binding.queue_depth = registry->RegisterGauge("service.queue_depth");
  return binding;
}

DetectorService::DetectorService(DetectorServiceOptions options, size_t num_shards,
                                 std::vector<common::ThreadPool*> pools,
                                 common::ThreadPool* default_pool)
    : options_(options), pools_(std::move(pools)), default_pool_(default_pool) {
  common::Check(options_.device_batch >= 1, "device batch must hold a frame");
  common::Check(num_shards >= 1, "detector service needs at least one shard queue");
  common::Check(pools_.empty() || pools_.size() == num_shards,
                "per-shard pools must cover every shard");
  queues_.resize(num_shards);
  shard_down_.assign(num_shards, false);
  if (options_.transport != nullptr) {
    options_.transport->BindLocalResolver(&directory_);
  }
}

DetectorService::Ticket DetectorService::Submit(const DetectRequest& request) {
  common::Check(!request.frames.empty(), "empty detect request");
  common::Check(request.shards.empty() || request.shards.size() == request.frames.size(),
                "per-frame shard owners must cover the whole request");
  common::Check(request.dispatcher != nullptr || request.detector != nullptr,
                "detect request needs a detector or a dispatcher");

  // First submit of a session over a transport: deploy its detector state to
  // the runners before any wire batch can reference it. Two halves — publish
  // the in-process detector pointers in the local directory (what the bound
  // resolver serves local/loopback runners), and ship the session's
  // `RegisterSessionMsg` through the transport's control plane (what a
  // remote runner materializes an equivalent detector from).
  if (options_.transport != nullptr &&
      registered_sessions_.insert(request.session_id).second) {
    if (request.dispatcher != nullptr) {
      for (uint32_t s = 0; s < request.dispatcher->NumShards(); ++s) {
        detect::ObjectDetector* detector = request.dispatcher->Context(s).detector;
        if (detector != nullptr) directory_.Register(request.session_id, s, detector);
      }
    } else {
      // A dispatcher-less session serves every one of its frames with the
      // one detector, whatever shard owns them (the in-process path does
      // exactly that) — register it under every shard id a wire slot could
      // name.
      for (uint32_t s = 0; s < queues_.size(); ++s) {
        directory_.Register(request.session_id, s, request.detector);
      }
    }
    RegisterSessionMsg reg;
    reg.session_id = request.session_id;
    reg.repo_fingerprint = options_.repo_fingerprint;
    reg.detector_options = request.detector_options;
    const common::Status deployed = options_.transport->RegisterSession(reg);
    if (!deployed.ok() && transport_status_.ok()) {
      // A rejected registration (repository mismatch, unrecoverable control
      // failure) poisons the fleet the same way a failed flush does: sticky,
      // so the driver surfaces it instead of queueing work that can never
      // execute.
      transport_status_ = deployed;
      CancelPending();
    }
  }

  const Ticket ticket = next_ticket_++;
  PendingRequest& pr = pending_[ticket];
  pr.ticket = ticket;
  pr.request = request;
  pr.results.resize(request.frames.size());
  pr.remaining = request.frames.size();
  pr.submit_seconds = NowSeconds();

  std::vector<uint32_t> touched;  // Distinct shards this request routed to.
  for (size_t i = 0; i < request.frames.size(); ++i) {
    const uint32_t shard = request.shards.empty() ? 0 : request.shards[i];
    common::Check(shard < queues_.size(), "frame routed past the shard queues");
    queues_[shard].push_back(QueueEntry{ticket, i});
    if (std::find(touched.begin(), touched.end(), shard) == touched.end()) {
      touched.push_back(shard);
    }
  }
  pending_frames_ += request.frames.size();
  stats_.requests += 1;
  stats::SlabAdd(stats_binding_.slab, stats_binding_.submits);
  stats::SlabSetGauge(stats_binding_.slab, stats_binding_.queue_depth,
                      static_cast<double>(pending_frames_));
  if (request.session_stats != nullptr) {
    request.session_stats->frames_submitted += request.frames.size();
  }

  // Latency-aware fill trigger: a shard whose queue now holds a full wire
  // batch ships it immediately — the batch cannot get any fuller, so
  // waiting for the round barrier would only add latency. Partial tails
  // keep waiting (for the deadline or the barrier). Only shards this
  // request routed frames to can have newly filled.
  if (options_.flush_policy == FlushPolicy::kLatencyAware) {
    std::vector<uint32_t> full;
    for (const uint32_t s : touched) {
      if (queues_[s].size() >= options_.device_batch) full.push_back(s);
    }
    if (!full.empty()) {
      std::sort(full.begin(), full.end());  // Deterministic flush order.
      FlushShards(full, /*only_full_slices=*/true, FlushReason::kFill);
    }
  }
  return ticket;
}

void DetectorService::Poll() {
  if (options_.flush_policy != FlushPolicy::kLatencyAware) return;
  if (options_.flush_deadline_seconds <= 0.0) return;
  if (!transport_status_.ok()) return;
  const double now = NowSeconds();
  std::vector<uint32_t> due;
  for (uint32_t s = 0; s < queues_.size(); ++s) {
    if (queues_[s].empty()) continue;
    const PendingRequest& oldest = pending_.at(queues_[s].front().ticket);
    if (now - oldest.submit_seconds >= options_.flush_deadline_seconds) {
      due.push_back(s);
    }
  }
  if (!due.empty()) {
    FlushShards(due, /*only_full_slices=*/false, FlushReason::kDeadline);
  }
}

void DetectorService::Flush() {
  std::vector<uint32_t> active;
  for (uint32_t s = 0; s < queues_.size(); ++s) {
    if (!queues_[s].empty()) active.push_back(s);
  }
  if (active.empty()) return;
  stats_.flushes += 1;
  stats::SlabAdd(stats_binding_.slab, stats_binding_.flushes);
  FlushShards(active, /*only_full_slices=*/false, FlushReason::kBarrier);
}

void DetectorService::FlushShards(const std::vector<uint32_t>& shards,
                                  bool only_full_slices, FlushReason reason) {
  if (!transport_status_.ok()) return;  // Sticky-failed: nothing can execute.

  // Extract the work: the whole queue per shard, or only whole device-batch
  // slices for the fill trigger. Each frame's pending request is resolved
  // here, once, on the coordinator.
  std::vector<ShardWork> work;
  for (const uint32_t s : shards) {
    std::vector<QueueEntry>& queue = queues_[s];
    size_t count = queue.size();
    if (only_full_slices) {
      count = (count / options_.device_batch) * options_.device_batch;
    }
    if (count == 0) continue;
    std::vector<WorkItem> entries;
    entries.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      entries.push_back(
          WorkItem{queue[i].ticket, queue[i].frame_index, &pending_.at(queue[i].ticket)});
    }
    queue.erase(queue.begin(), queue.begin() + static_cast<ptrdiff_t>(count));
    pending_frames_ -= count;
    work.emplace_back(s, std::move(entries));
  }
  if (work.empty()) return;
  if (reason == FlushReason::kFill) stats_.fill_flushes += 1;
  if (reason == FlushReason::kDeadline) stats_.deadline_flushes += 1;
  stats::SlabSetGauge(stats_binding_.slab, stats_binding_.queue_depth,
                      static_cast<double>(pending_frames_));

  // Decode barrier: drain the prefetcher of every request about to be
  // detected, in ticket order, before any detection runs (the charges were
  // already planned, in batch order, at submit time — the drain only waits
  // for the decode *work*).
  std::vector<Ticket> involved;
  for (const ShardWork& shard_work : work) {
    for (const WorkItem& entry : shard_work.second) {
      involved.push_back(entry.ticket);
    }
  }
  std::sort(involved.begin(), involved.end());
  involved.erase(std::unique(involved.begin(), involved.end()), involved.end());
  for (const Ticket ticket : involved) {
    const PendingRequest& pr = pending_.at(ticket);
    if (pr.request.prefetcher != nullptr) pr.request.prefetcher->Drain();
  }

  // Execution.
  if (options_.transport != nullptr) {
    SendAndCollect(work);
    if (!transport_status_.ok()) return;  // Everything pending was cancelled.
  } else if (options_.parallel_shards && work.size() > 1) {
    // One dispatch thread per owning shard, each driving that shard's own
    // pool. A shard thread never touches the shared default pool: ParallelFor
    // is single-driver, so shards without a private pool run their slices
    // inline on their dispatch thread.
    common::ThreadPool* default_pool = default_pool_;
    default_pool_ = nullptr;
    std::vector<std::thread> threads;
    threads.reserve(work.size());
    for (const ShardWork& shard_work : work) {
      const uint32_t shard = shard_work.first;
      const std::vector<WorkItem>* entries = &shard_work.second;
      threads.emplace_back([this, shard, entries] { RunShardEntries(shard, *entries); });
    }
    for (std::thread& t : threads) t.join();
    default_pool_ = default_pool;
  } else {
    for (const ShardWork& shard_work : work) {
      RunShardEntries(shard_work.first, shard_work.second);
    }
  }

  // Bookkeeping, on the coordinator after every slice completed. Slice
  // boundaries are a pure function of the extracted queues, so the tallies
  // are deterministic whatever the execution order was.
  for (const ShardWork& shard_work : work) {
    BookSlices(shard_work.first, shard_work.second);
  }

  // Completion: a request is done when its last frame — on any shard — has
  // been detected; partial flushes leave it pending until then.
  for (const ShardWork& shard_work : work) {
    for (const WorkItem& entry : shard_work.second) {
      common::Check(entry.request->remaining > 0, "detect slot completed twice");
      entry.request->remaining -= 1;
    }
  }
  const double now = NowSeconds();
  for (const Ticket ticket : involved) {
    const auto it = pending_.find(ticket);
    if (it == pending_.end() || it->second.remaining > 0) continue;
    if (ticket_latencies_.size() >= kTicketLatencyCap) {
      // Keep the most recent window (halving amortizes the shift to O(1)).
      ticket_latencies_.erase(
          ticket_latencies_.begin(),
          ticket_latencies_.begin() + static_cast<ptrdiff_t>(kTicketLatencyCap / 2));
    }
    ticket_latencies_.push_back(now - it->second.submit_seconds);
    stats::TimerRecord(stats_binding_.timer, stats::Stage::kSubmitToGrant,
                       now - it->second.submit_seconds);
    ready_.emplace(ticket, std::move(it->second.results));
    pending_.erase(it);
  }
}

void DetectorService::UnregisterSession(uint64_t session_id) {
  if (registered_sessions_.erase(session_id) > 0) {
    directory_.Unregister(session_id);
    if (options_.transport != nullptr) {
      options_.transport->UnregisterSession(session_id);
    }
  }
}

void DetectorService::RunShardEntries(uint32_t shard,
                                      const std::vector<WorkItem>& entries) {
  common::ThreadPool* pool =
      shard < pools_.size() && pools_[shard] != nullptr ? pools_[shard] : default_pool_;
  // Slice the extracted queue into device batches and fan each across the
  // shard's pool. Results land in fixed per-request slots, so neither the
  // slicing nor the pool size can reorder what any session observes.
  for (size_t begin = 0; begin < entries.size(); begin += options_.device_batch) {
    const size_t count = std::min(options_.device_batch, entries.size() - begin);
    const auto detect_one = [&](size_t j) {
      const WorkItem& entry = entries[begin + j];
      PendingRequest& pr = *entry.request;
      detect::ObjectDetector* detector =
          pr.request.dispatcher != nullptr
              ? pr.request.dispatcher->Context(shard).detector
              : pr.request.detector;
      pr.results[entry.frame_index] =
          detector->Detect(pr.request.frames[entry.frame_index]);
    };
    if (pool != nullptr) {
      pool->ParallelFor(count, detect_one);
    } else {
      for (size_t j = 0; j < count; ++j) detect_one(j);
    }
  }
}

void DetectorService::BookSlices(uint32_t shard,
                                 const std::vector<WorkItem>& entries) {
  std::vector<const PendingRequest*> in_slice;
  for (size_t begin = 0; begin < entries.size(); begin += options_.device_batch) {
    const size_t count = std::min(options_.device_batch, entries.size() - begin);
    in_slice.clear();
    for (size_t j = 0; j < count; ++j) {
      const PendingRequest* pr = entries[begin + j].request;
      if (std::find(in_slice.begin(), in_slice.end(), pr) == in_slice.end()) {
        in_slice.push_back(pr);
      }
    }
    bool shared = false;
    for (const PendingRequest* pr : in_slice) {
      if (pr->request.session_id != in_slice.front()->request.session_id) {
        shared = true;
        break;
      }
    }
    stats_.device_batches += 1;
    stats_.frames += count;
    if (shared) stats_.shared_batches += 1;
    stats::SlabAdd(stats_binding_.slab, stats_binding_.device_batches);
    stats::SlabAdd(stats_binding_.slab, stats_binding_.frames, count);
    if (shared) {
      stats::SlabAdd(stats_binding_.slab, stats_binding_.shared_batches);
    }
    for (const PendingRequest* pr : in_slice) {
      SessionSchedulerStats* session = pr->request.session_stats;
      if (session == nullptr) continue;
      session->device_batches += 1;
      if (shared) {
        session->batches_shared += 1;
        for (size_t j = 0; j < count; ++j) {
          if (entries[begin + j].request == pr) session->frames_coalesced += 1;
        }
      }
    }
  }
  // Per-session dispatcher stats: book each request's frames on this shard
  // as one service-detected batch, mirroring what the session's own
  // `ShardDispatcher::DetectBatch` call would have recorded. A request's
  // entries are contiguous and ticket-ascending (queues append per submit).
  size_t i = 0;
  while (i < entries.size()) {
    const Ticket ticket = entries[i].ticket;
    PendingRequest& pr = *entries[i].request;
    size_t frames_on_shard = 0;
    while (i < entries.size() && entries[i].ticket == ticket) {
      ++frames_on_shard;
      ++i;
    }
    if (pr.request.dispatcher != nullptr) {
      pr.request.dispatcher->RecordServiceDetect(shard, frames_on_shard);
    }
  }
}

bool DetectorService::RouteShard(uint32_t origin, uint32_t* runner) const {
  if (!shard_down_[origin]) {
    *runner = origin;
    return true;
  }
  for (uint32_t d = 1; d < queues_.size(); ++d) {
    const uint32_t s = (origin + d) % static_cast<uint32_t>(queues_.size());
    if (!shard_down_[s]) {
      *runner = s;
      return true;
    }
  }
  return false;
}

void DetectorService::SendAndCollect(const std::vector<ShardWork>& work) {
  ShardTransport* transport = options_.transport;
  struct InFlightSlice {
    uint32_t origin_shard = 0;
    uint32_t runner = 0;
    double send_seconds = 0.0;     // Wall clock at (re)send: round-trip stats.
    uint32_t attempt = 0;          // Cumulative across runners (wire field).
    uint32_t runner_attempts = 0;  // Failures on the *current* runner only:
                                   // the retry budget is per runner, so a
                                   // requeued batch gets a fresh budget on
                                   // its survivor — one transient blip there
                                   // must not cascade to marking it down.
    std::vector<WorkItem> entries;
  };
  std::unordered_map<uint64_t, InFlightSlice> inflight;

  const auto build_msg = [&](const InFlightSlice& slice, uint64_t seq) {
    DetectRequestMsg msg;
    msg.wire_seq = seq;
    msg.origin_shard = slice.origin_shard;
    msg.attempt = slice.attempt;
    msg.repo_fingerprint = options_.repo_fingerprint;
    msg.slots.reserve(slice.entries.size());
    for (const WorkItem& entry : slice.entries) {
      const PendingRequest& pr = *entry.request;
      msg.slots.push_back(
          WireSlot{pr.request.session_id, pr.request.frames[entry.frame_index]});
    }
    return msg;
  };

  // Ship every slice first — the runners work concurrently — then collect
  // completions in whatever order they arrive; the wire sequence number
  // matches each response back to its slice, and results land in fixed
  // ticket slots, so arrival order is irrelevant to the trace.
  bool all_down = false;
  for (const ShardWork& shard_work : work) {
    const uint32_t shard = shard_work.first;
    const std::vector<WorkItem>& entries = shard_work.second;
    for (size_t begin = 0; begin < entries.size() && !all_down;
         begin += options_.device_batch) {
      const size_t count = std::min(options_.device_batch, entries.size() - begin);
      InFlightSlice slice;
      slice.origin_shard = shard;
      slice.entries.assign(entries.begin() + static_cast<ptrdiff_t>(begin),
                           entries.begin() + static_cast<ptrdiff_t>(begin + count));
      if (!RouteShard(shard, &slice.runner)) {
        all_down = true;
        break;
      }
      const uint64_t seq = next_wire_seq_++;
      slice.send_seconds = NowSeconds();
      common::CheckOk(transport->Send(slice.runner, build_msg(slice, seq)),
                      "wire send failed");
      stats_.wire_batches += 1;
      stats::SlabAdd(stats_binding_.slab, stats_binding_.wire_batches);
      // Proactive reroute off a runner already known to be down: still a
      // first send, counted apart from failure-driven requeue resends.
      if (slice.runner != slice.origin_shard) stats_.wire_reroutes += 1;
      inflight.emplace(seq, std::move(slice));
    }
    if (all_down) break;
  }

  common::Status fatal;  // Non-availability failure: fail fast, by name.
  while (!inflight.empty()) {
    auto received = transport->Receive();
    common::CheckOk(received.status(), "wire receive failed");
    DetectResponseMsg response = std::move(received).value();
    const auto it = inflight.find(response.wire_seq);
    common::Check(it != inflight.end(), "wire response for an unknown batch");
    InFlightSlice& slice = it->second;

    if (response.status == WireStatus::kOk) {
      common::Check(response.detections.size() == slice.entries.size(),
                    "wire response slot count mismatch");
      // One transport round-trip, (re)send to completed response. Retried
      // batches time from their last send — the round trip the wire actually
      // served, not the cumulative wait.
      stats::TimerRecord(stats_binding_.timer, stats::Stage::kTransport,
                         NowSeconds() - slice.send_seconds);
      for (size_t i = 0; i < slice.entries.size(); ++i) {
        slice.entries[i].request->results[slice.entries[i].frame_index] =
            std::move(response.detections[i]);
      }
      stats_.wire_charged_seconds += response.charged_seconds;
      inflight.erase(it);
      continue;
    }

    // A repository mismatch is a deployment error, not an availability one:
    // every runner of the mis-deployed fleet would reject the same batch, so
    // requeuing it around — marking healthy runners down on the way — would
    // only bury the real diagnosis under "every runner failed". Fail fast,
    // by name.
    if (response.status == WireStatus::kRepoMismatch && fatal.ok()) {
      fatal = common::Status::FailedPrecondition(
          "shard runner rejected the batch: repository fingerprint mismatch "
          "(coordinator and runners serve different repositories)");
    }

    if (all_down || !fatal.ok()) {
      // Draining mode: the flush already failed; just consume what is still
      // in flight so the transport ends empty.
      inflight.erase(it);
      continue;
    }

    // Unavailability (the only failure reaching here): retried in place;
    // exhausted retries mark the runner down and requeue the batch onto a
    // surviving shard's runner. `origin_shard` never changes, so the
    // surviving runner resolves the *same* session/shard detector contexts
    // — detections, and the session's per-shard charged seconds, are
    // identical to the no-failure run.
    if (slice.runner_attempts < options_.max_retries) {
      slice.attempt += 1;
      slice.runner_attempts += 1;
      stats_.wire_retries += 1;
      slice.send_seconds = NowSeconds();
      common::CheckOk(transport->Send(slice.runner, build_msg(slice, response.wire_seq)),
                      "wire send failed");
      continue;
    }
    if (!shard_down_[slice.runner]) {
      shard_down_[slice.runner] = true;
      stats_.shards_down += 1;
    }
    uint32_t survivor = 0;
    if (!RouteShard(slice.origin_shard, &survivor)) {
      all_down = true;
      inflight.erase(it);
      continue;
    }
    slice.runner = survivor;
    slice.attempt += 1;
    slice.runner_attempts = 0;  // Fresh retry budget on the new runner.
    stats_.wire_requeues += 1;
    slice.send_seconds = NowSeconds();
    common::CheckOk(transport->Send(slice.runner, build_msg(slice, response.wire_seq)),
                    "wire send failed");
  }

  if (!fatal.ok()) {
    transport_status_ = fatal;
    CancelPending();
  } else if (all_down) {
    transport_status_ = common::Status::Internal(
        "detect transport failed permanently: every shard runner is down");
    CancelPending();
  }
}

void DetectorService::CancelPending() {
  pending_.clear();
  for (auto& queue : queues_) queue.clear();
  pending_frames_ = 0;
  ready_.clear();
}

bool DetectorService::Ready(Ticket ticket) const {
  return ready_.find(ticket) != ready_.end();
}

std::vector<detect::Detections> DetectorService::Take(Ticket ticket) {
  const auto it = ready_.find(ticket);
  common::Check(it != ready_.end(), "taking a detect result that is not ready");
  std::vector<detect::Detections> results = std::move(it->second);
  ready_.erase(it);
  return results;
}

double DetectorService::FillRate() const {
  if (stats_.device_batches == 0) return 0.0;
  // The constructor validates device_batch >= 1, but a ratio accessor must
  // not be able to divide by zero whatever state it is called in — guard the
  // denominator rather than trust a distant invariant.
  const double denominator =
      static_cast<double>(stats_.device_batches) *
      static_cast<double>(std::max<size_t>(size_t{1}, options_.device_batch));
  return static_cast<double>(stats_.frames) / denominator;
}

}  // namespace query
}  // namespace exsample
