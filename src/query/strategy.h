#ifndef EXSAMPLE_QUERY_STRATEGY_H_
#define EXSAMPLE_QUERY_STRATEGY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/span.h"
#include "core/chunk_stats.h"
#include "video/repository.h"

namespace exsample {
namespace query {

/// \brief Per-frame discriminator feedback delivered back to a strategy after
/// a batch has been detected and discriminated.
struct FrameFeedback {
  video::FrameId frame = 0;
  /// |d0|: detections that matched no previous result (new distinct objects).
  size_t new_results = 0;
  /// |d1|: detections that matched exactly one previous observation.
  size_t once_matched = 0;
};

/// \brief A frame-selection policy: the only thing that differs between
/// ExSample, random sampling, and proxy-guided search.
///
/// The `QueryRunner` owns the shared loop (detect, discriminate, account
/// cost); strategies only decide which frames come next and consume feedback.
/// Strategies own their randomness (seeded at construction) so runs are
/// reproducible.
///
/// The pipeline is batch-first (Sec. III-F: GPU inference amortizes over
/// frame batches): the runner calls `NextBatch` / `ObserveBatch`, and
/// `NextFrame` / `Observe` are the single-frame special case. A strategy may
/// implement either side; the default adapters bridge the two, and calling
/// `NextBatch(1)` must be indistinguishable from calling `NextFrame()` —
/// batch size 1 is Algorithm 1 verbatim.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// \brief Returns the next frame to process, or nullopt when the strategy
  /// has exhausted the repository.
  virtual std::optional<video::FrameId> NextFrame() = 0;

  /// \brief Feedback after the frame was processed: how many detections were
  /// new distinct results (|d0|) and how many matched exactly one previous
  /// observation (|d1|). Default ignores feedback (random, sequential, proxy).
  virtual void Observe(video::FrameId frame, size_t new_results, size_t once_matched) {
    (void)frame;
    (void)new_results;
    (void)once_matched;
  }

  /// \brief Returns up to `max_frames` frames to process as one batch. An
  /// empty result means the strategy has exhausted the repository. Frames are
  /// chosen *without* intervening feedback (the statistics the strategy holds
  /// at call time drive every pick in the batch — the paper's batched
  /// Thompson draw). The default adapter pulls `NextFrame` repeatedly;
  /// strategies with cheaper bulk paths override it.
  virtual std::vector<video::FrameId> NextBatch(size_t max_frames) {
    std::vector<video::FrameId> batch;
    batch.reserve(max_frames);
    while (batch.size() < max_frames) {
      const std::optional<video::FrameId> frame = NextFrame();
      if (!frame.has_value()) break;
      batch.push_back(*frame);
    }
    return batch;
  }

  /// \brief Delivers the feedback for one processed batch, in processing
  /// order. Updates must be sequential and deterministic (belief updates are
  /// order-sensitive); the default adapter forwards to `Observe` per frame.
  virtual void ObserveBatch(common::Span<FrameFeedback> feedback) {
    for (const FrameFeedback& fb : feedback) {
      Observe(fb.frame, fb.new_results, fb.once_matched);
    }
  }

  /// \brief One-time cost in seconds paid before the first frame can be
  /// chosen (proxy-based methods pay a full scoring scan here; everything
  /// else returns 0).
  virtual double UpfrontCostSeconds() const { return 0.0; }

  /// \brief Cumulative incremental overhead in seconds the strategy has spent
  /// *so far* beyond detector time — e.g. lazy proxy scoring of candidate
  /// frames (the Sec. VII "predictive scoring" extension). The runner charges
  /// the delta after each step. Default 0 for pure samplers.
  virtual double CumulativeOverheadSeconds() const { return 0.0; }

  /// \brief The per-chunk (n, N1) statistics driving this strategy's picks,
  /// or null for strategies without chunk beliefs (random, sequential,
  /// proxy). A finished query's table is the sufficient statistic of its
  /// Gamma posteriors — the cross-query warm-start seam harvests it into the
  /// `reuse::BeliefBank` so later queries for the same class can seed their
  /// priors from it.
  virtual const core::ChunkStatsTable* ChunkStatistics() const { return nullptr; }

  /// \brief Strategy name for reports.
  virtual std::string name() const = 0;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_STRATEGY_H_
