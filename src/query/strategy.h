#ifndef EXSAMPLE_QUERY_STRATEGY_H_
#define EXSAMPLE_QUERY_STRATEGY_H_

#include <optional>
#include <string>

#include "video/repository.h"

namespace exsample {
namespace query {

/// \brief A frame-selection policy: the only thing that differs between
/// ExSample, random sampling, and proxy-guided search.
///
/// The `QueryRunner` owns the shared loop (detect, discriminate, account
/// cost); strategies only decide which frame comes next and consume feedback.
/// Strategies own their randomness (seeded at construction) so runs are
/// reproducible.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// \brief Returns the next frame to process, or nullopt when the strategy
  /// has exhausted the repository.
  virtual std::optional<video::FrameId> NextFrame() = 0;

  /// \brief Feedback after the frame was processed: how many detections were
  /// new distinct results (|d0|) and how many matched exactly one previous
  /// observation (|d1|). Default ignores feedback (random, sequential, proxy).
  virtual void Observe(video::FrameId frame, size_t new_results, size_t once_matched) {
    (void)frame;
    (void)new_results;
    (void)once_matched;
  }

  /// \brief One-time cost in seconds paid before the first frame can be
  /// chosen (proxy-based methods pay a full scoring scan here; everything
  /// else returns 0).
  virtual double UpfrontCostSeconds() const { return 0.0; }

  /// \brief Cumulative incremental overhead in seconds the strategy has spent
  /// *so far* beyond detector time — e.g. lazy proxy scoring of candidate
  /// frames (the Sec. VII "predictive scoring" extension). The runner charges
  /// the delta after each step. Default 0 for pure samplers.
  virtual double CumulativeOverheadSeconds() const { return 0.0; }

  /// \brief Strategy name for reports.
  virtual std::string name() const = 0;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_STRATEGY_H_
