#ifndef EXSAMPLE_QUERY_SHARD_TRACE_H_
#define EXSAMPLE_QUERY_SHARD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "query/trace.h"

namespace exsample {
namespace query {

/// \brief Shard id of the coordinator's partial trace: costs not attributable
/// to any one shard (upfront scan, strategy overhead).
inline constexpr int32_t kCoordinatorShard = -1;

/// \brief One accounting event of a sharded query execution.
///
/// Events are the atoms a query trace is built from: each records the deltas
/// one accounting step applied to the discovery counters, plus the global
/// sequence number of that step. Sequence numbers are assigned by the
/// coordinator in execution order and are unique across all shards, so the
/// merged replay performs the exact same floating-point additions in the
/// exact same order as a single-repository run — which is what makes merged
/// traces bit-identical, not just approximately equal.
struct ShardTraceEvent {
  /// Global execution order of this event (unique across all parts).
  uint64_t seq = 0;
  /// Seconds charged by this event (decode, detect, overhead, upfront).
  double seconds = 0.0;
  /// Detector invocations this event accounts for (0 or 1).
  uint32_t samples = 0;
  /// Results reported for this frame (|d0|).
  uint32_t reported = 0;
  /// Ground-truth distinct instances newly covered by this frame.
  uint32_t distinct = 0;
  /// True when the single-repository run would record a discovery point
  /// after this event (a counter changed or results were returned).
  bool emit_point = false;
};

/// \brief The partial trace one shard (or the coordinator) accumulated over a
/// query: its events, in that shard's local execution order.
struct ShardTracePart {
  int32_t shard_id = kCoordinatorShard;
  std::vector<ShardTraceEvent> events;
};

/// \brief Merges per-shard partial traces into the global discovery trace.
///
/// Parts are k-way merged by sequence number (each part's events must be
/// strictly increasing; sequence numbers must be unique across parts) and the
/// counter deltas replayed in that global order. The result is bit-identical
/// to the trace a single-repository execution accumulates directly — the
/// deterministic-merge contract the shard equivalence suite enforces.
common::Result<QueryTrace> MergeShardTraces(std::string strategy_name,
                                            uint64_t total_instances,
                                            common::Span<const ShardTracePart> parts);

/// \brief True when two traces are exactly equal: same metadata, same points,
/// and bit-identical seconds (no tolerance — the merge and equivalence
/// contracts are exact, not approximate).
bool TracesBitIdentical(const QueryTrace& a, const QueryTrace& b);

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_SHARD_TRACE_H_
