#ifndef EXSAMPLE_QUERY_RUNNER_H_
#define EXSAMPLE_QUERY_RUNNER_H_

#include <cstdint>
#include <limits>

#include "detect/detector.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "scene/ground_truth.h"
#include "track/discriminator.h"
#include "video/decode.h"

namespace exsample {
namespace query {

/// \brief Default cost constants from the paper's measurements (Sec. V-B):
/// detector-bound sampling runs at ~20 fps; proxy scoring scans at ~100 fps
/// (bound by io+decode).
inline constexpr double kDetectorFps = 20.0;
inline constexpr double kProxyScanFps = 100.0;

/// \brief Stop conditions and bookkeeping options for a query execution.
struct RunnerOptions {
  /// Stop once the discriminator has returned this many results ("find 20
  /// traffic lights"). Counts *reported* results, as a real system would.
  uint64_t result_limit = std::numeric_limits<uint64_t>::max();
  /// Stop once this many ground-truth distinct instances have been found
  /// (used to measure time-to-recall; a real system cannot observe this).
  uint64_t true_distinct_target = std::numeric_limits<uint64_t>::max();
  /// Safety cap on detector invocations.
  uint64_t max_samples = std::numeric_limits<uint64_t>::max();
  /// Class whose instances define recall (kAllClasses = every instance).
  int32_t recall_class = scene::GroundTruth::kAllClasses;
  /// When non-null, frame reads are routed through this store and its decode
  /// cost is added to the trace's seconds.
  video::SimulatedVideoStore* video_store = nullptr;
};

/// \brief Executes one distinct-object query: the shared loop of Algorithm 1
/// (pick frame / detect / discriminate / update), parameterized by the
/// frame-selection strategy.
///
/// The runner is what makes comparisons fair: every strategy pays the same
/// detector cost per sampled frame and uses the same discriminator semantics;
/// only frame choice (and any upfront scan cost) differs.
class QueryRunner {
 public:
  QueryRunner(const scene::GroundTruth* truth, detect::ObjectDetector* detector,
              track::Discriminator* discriminator, RunnerOptions options);

  /// \brief Runs `strategy` until a stop condition triggers; returns the
  /// discovery trace.
  QueryTrace Run(SearchStrategy* strategy);

 private:
  const scene::GroundTruth* truth_;
  detect::ObjectDetector* detector_;
  track::Discriminator* discriminator_;
  RunnerOptions options_;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_RUNNER_H_
