#ifndef EXSAMPLE_QUERY_RUNNER_H_
#define EXSAMPLE_QUERY_RUNNER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "detect/detector.h"
#include "query/detector_service.h"
#include "query/prefetch.h"
#include "query/scheduler.h"
#include "query/shard_dispatch.h"
#include "query/shard_trace.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "reuse/reuse.h"
#include "scene/ground_truth.h"
#include "stats/counter_registry.h"
#include "stats/stage_timer.h"
#include "track/discriminator.h"
#include "video/decode.h"

namespace exsample {
namespace query {

/// \brief A query execution's binding to the engine-wide observability
/// registry: a single-writer counter slab, the session's stage-latency
/// timer, and the pre-registered metric ids the execution ticks.
///
/// All-null (the default) disables collection — every hot-path site then
/// costs one pointer test. The slab and timer must be written from the
/// session's coordinator thread only (the thread calling
/// `BeginStep`/`FinishStep`), which is the registry's single-writer
/// contract.
struct ExecutionStatsBinding {
  stats::CounterSlab* slab = nullptr;
  stats::StageTimer* timer = nullptr;
  stats::MetricId steps = 0;
  stats::MetricId frames_picked = 0;
  stats::MetricId frames_reused = 0;
  stats::MetricId frames_detected = 0;
  stats::MetricId results_reported = 0;

  /// Registers the execution metric names and returns a binding over
  /// `slab`/`timer` (either may be null to collect only the other half).
  static ExecutionStatsBinding Bind(stats::CounterRegistry* registry,
                                    stats::CounterSlab* slab,
                                    stats::StageTimer* timer);
};

/// \brief Default cost constants from the paper's measurements (Sec. V-B):
/// detector-bound sampling runs at ~20 fps; proxy scoring scans at ~100 fps
/// (bound by io+decode).
inline constexpr double kDetectorFps = 20.0;
inline constexpr double kProxyScanFps = 100.0;

/// \brief Stop conditions and bookkeeping options for a query execution.
struct RunnerOptions {
  /// Stop once the discriminator has returned this many results ("find 20
  /// traffic lights"). Counts *reported* results, as a real system would.
  uint64_t result_limit = std::numeric_limits<uint64_t>::max();
  /// Stop once this many ground-truth distinct instances have been found
  /// (used to measure time-to-recall; a real system cannot observe this).
  uint64_t true_distinct_target = std::numeric_limits<uint64_t>::max();
  /// Safety cap on detector invocations.
  uint64_t max_samples = std::numeric_limits<uint64_t>::max();
  /// Class whose instances define recall (kAllClasses = every instance).
  int32_t recall_class = scene::GroundTruth::kAllClasses;
  /// When non-null, frame reads are routed through this store and its decode
  /// cost is added to the trace's seconds.
  video::SimulatedVideoStore* video_store = nullptr;
  /// Frames pulled from the strategy (and pushed through the detector) per
  /// pipeline iteration (Sec. III-F). 1 reproduces the single-frame loop of
  /// Algorithm 1 exactly — including bit-identical cost accounting.
  size_t batch_size = 1;
  /// When non-null, `DetectBatch` fans the batch across this pool. Thread
  /// count affects wall-clock only, never the trace: simulated cost
  /// accounting stays per-frame and detection is per-frame deterministic.
  common::ThreadPool* thread_pool = nullptr;
  /// When non-null, the repository is sharded: the decode and detect stages
  /// route every picked frame to its owning shard's context (detector, store,
  /// pool) instead of the query-global `detector`/`video_store`/`thread_pool`
  /// above, and the execution records per-shard partial traces that `Finish`
  /// merges into the returned global trace. Detect routing never changes a
  /// trace (shard detectors are per-frame deterministic and discrimination
  /// stays sequential in batch order) — the shard equivalence suite enforces
  /// bit-identity against the unsharded run for the configurations
  /// `SearchEngine` wires up (no stores, or one shared `video_store`). The
  /// exception is *per-shard* stores (`ShardDispatcher::HasStores()`): each
  /// shard then keeps its own decode position state, which by design prices
  /// sequential-read locality per shard and so can change `seconds` relative
  /// to a single global store. The query-global `detector` may be null when a
  /// dispatcher is set.
  ShardDispatcher* shard_dispatcher = nullptr;
  /// Decode-ahead window of the pipelined decode stage (the pick → prefetch →
  /// detect → discriminate loop). Whenever a decode store is configured
  /// (`video_store`, or per-shard stores on the dispatcher), the execution
  /// routes every read through a `DecodePrefetcher`; with depth 0 (the
  /// default) the prefetcher runs synchronously — plan + perform inline
  /// before the detect stage, the legacy schedule. Depth d >= 1 performs the
  /// decode work on `decode_pool` while the detect stage consumes the batch
  /// in windows of d frames, keeping at most d frames decoded ahead — decode
  /// of window w+1 overlaps detection of window w. Like thread count, depth
  /// changes wall-clock only, never a trace: charges are planned in batch
  /// order on the coordinator (enforced bit-identical by the decode suite).
  size_t prefetch_depth = 0;
  /// Pool the prefetcher's decode work runs on. Null shares `thread_pool`.
  /// Sharded executions prefer each shard's `ShardContext::io_pool`.
  common::ThreadPool* decode_pool = nullptr;
  /// When non-null, the detect stage is *submitted* to this shared service
  /// instead of being executed by this session: `BeginStep` enqueues the
  /// picked batch (non-blocking) and `FinishStep` collects the detections
  /// after a `Flush` has coalesced every pending session's frames into full
  /// device batches. Like batch size and thread count, coalescing never
  /// changes a trace — detection stays per-frame deterministic per session
  /// and every order-sensitive stage stays on the coordinator in batch order
  /// (the `sched` suite enforces bit-identity against solo runs). `Step()`
  /// still works standalone: it submits, flushes, and finishes inline
  /// (coalesce width 1 — note the flush also executes whatever *other*
  /// sessions have pending, which is harmless for exactly this reason).
  DetectorService* detector_service = nullptr;
  /// Stable identity of this execution's session for the service's
  /// stats attribution (which device batches were shared across sessions).
  uint64_t service_session_id = 0;
  /// Detector configuration shipped to remote shard workers in this session's
  /// `RegisterSessionMsg` (first submit). In-process transports resolve
  /// detectors through the runner-side directory and ignore it; a socket
  /// transport materializes an equivalent detector on the worker from exactly
  /// these options, so they must match the detector the session was built
  /// with or remote traces diverge.
  detect::DetectorOptions detector_options;
  /// Optional scheduler/coalescing tallies for this session, filled in by
  /// the service at flush time (`frames_submitted`, `frames_coalesced`,
  /// `batches_shared`); the driver counts `steps_granted`.
  SessionSchedulerStats* session_stats = nullptr;
  /// When non-null, the detect stage consults cross-query reuse before
  /// paying for detection: every picked frame is classified against the
  /// shared `reuse::DetectionCache` (exact stored detections, bit-identical
  /// to a real call) and `reuse::ScannedSketch` (proof the frame was scanned
  /// and found empty). Hits and skips are charged *zero* detector seconds —
  /// credited to `ReuseSessionStats::saved_detector_seconds` instead — and
  /// only the remaining misses are decoded, submitted to the service, or
  /// detected locally; their fresh outcomes are recorded back. Everything
  /// order-sensitive is untouched: the full picked batch still flows through
  /// the discriminator and strategy feedback in batch order, with hit/skip
  /// detections byte-equal to what a cold run computes — so reused answers
  /// are bit-identical and only the charged seconds shrink. Null (the
  /// default) is the pre-reuse execution, bit for bit.
  reuse::SessionReuse* reuse = nullptr;
  /// Observability binding (counters + per-stage latency histograms). The
  /// default (all null) collects nothing; either way the trace is
  /// bit-identical — stats are tallied beside the pipeline, never inside
  /// its accounting (`bench_observability` exit-enforces both halves).
  ExecutionStatsBinding stats;
};

/// \brief Incremental execution state of one distinct-object query.
///
/// Runs Algorithm 1 as a batch pipeline: pick-batch (strategy) → prefetch
/// (async decode on the pool, bounded window) → parallel-detect (thread
/// pool), consuming the batch in windows so decode overlaps detection →
/// sequential-discriminate → feed back (`ObserveBatch`). One `Step` processes
/// one batch; interleaving `Step` calls of several executions is how the
/// engine serves concurrent queries over shared resources
/// (`SearchEngine::RunConcurrent`).
///
/// Cost accounting is simulated and sequential — each frame is charged
/// decode + detector seconds as if processed alone — so traces are
/// comparable across batch sizes and thread counts, and `batch_size=1`
/// matches the legacy single-frame loop bit for bit.
class QueryExecution {
 public:
  /// All pointees must outlive the execution. `detector` may be null only
  /// when `options.shard_dispatcher` is set (detection is then routed to the
  /// owning shards' detectors).
  QueryExecution(const scene::GroundTruth* truth, detect::ObjectDetector* detector,
                 track::Discriminator* discriminator, SearchStrategy* strategy,
                 RunnerOptions options);

  /// \brief Processes one batch. Returns false — without consuming anything —
  /// when the query is finished (stop condition hit or strategy exhausted).
  /// Equivalent to `BeginStep()` + (service flush) + `FinishStep()`.
  bool Step();

  /// \brief First half of a step: picks the next batch, charges strategy
  /// overhead and decode (planned in batch order), and stages the detect
  /// work — submitted to `options.detector_service` when one is set, held
  /// locally otherwise. Returns false — without consuming anything — when
  /// the query is finished. After a true return the execution is *pending*
  /// (`DetectPending()`): the caller must complete the step with
  /// `FinishStep` (after flushing the service) before beginning another.
  ///
  /// This is the yield point cross-session coalescing needs: a scheduler
  /// begins several sessions' steps, the shared service flushes them as full
  /// device batches, and each session then finishes its step.
  bool BeginStep();

  /// \brief Second half of a step: collects the batch's detections (from the
  /// service, which must have been flushed, or by running the local detect
  /// stage), discriminates in batch order, and feeds the strategy back.
  /// Fatal unless a `BeginStep` is pending.
  void FinishStep();

  /// \brief True between a successful `BeginStep` and its `FinishStep`.
  bool DetectPending() const { return pending_detect_; }

  /// \brief Abandons a begun step whose detections will never arrive — the
  /// shared service's transport failed permanently and cancelled its pending
  /// tickets. Drains the prefetcher (decode tasks hold spans into the
  /// abandoned batch) and marks the execution finished: the strategy already
  /// consumed the batch's frames, so the query cannot legally continue. The
  /// trace ends at the last completed step. No-op when nothing is pending.
  void AbortPendingStep();

  /// \brief Administrative termination between steps: marks the execution
  /// finished so no further `Step` begins work. The serving layer's load
  /// shedder uses this to cancel a best-effort query under detector
  /// saturation; the trace ends at the last completed step, and `Finish`
  /// still finalizes (and unregisters) normally. Fatal while a step is
  /// pending — a shedder must only cancel quiescent sessions (at wave
  /// boundaries nothing is pending), because a pending service ticket has no
  /// owner to collect it after termination.
  void Terminate();

  /// \brief True once no further `Step` will make progress.
  bool Done() const { return finished_; }

  /// \brief Runs to completion and returns the finalized trace.
  QueryTrace Finish();

  /// \brief The trace accumulated so far. `final` tracks the last completed
  /// batch; `Finish` appends the closing point.
  const QueryTrace& trace() const { return trace_; }

  /// \brief The per-shard partial traces of a sharded execution (empty when
  /// `options.shard_dispatcher` is null). Part 0 is the coordinator
  /// (`kCoordinatorShard`: upfront cost, strategy overhead); part 1 + s is
  /// shard s. `Finish` merges these into the returned trace.
  const std::vector<ShardTracePart>& ShardParts() const { return parts_; }

  /// \brief The execution's decode prefetcher, or null when no decode store
  /// is configured. Exposes decode-ahead stats for observability.
  const DecodePrefetcher* prefetcher() const { return prefetcher_.get(); }

 private:
  bool StopConditionHit() const;
  void RecordEvent(size_t part, double seconds, uint32_t samples, uint32_t reported,
                   uint32_t distinct, bool emit_point);
  /// Detect stage over `frames` (owners in `shards` when sharded): waits for
  /// prefetched windows and overlaps their detection with the decode of
  /// later windows. Under reuse, `frames` is the batch's miss subset.
  std::vector<detect::Detections> DetectStage(const std::vector<video::FrameId>& frames,
                                              const std::vector<uint32_t>& shards);

  const scene::GroundTruth* truth_;
  detect::ObjectDetector* detector_;
  track::Discriminator* discriminator_;
  SearchStrategy* strategy_;
  RunnerOptions options_;

  QueryTrace trace_;
  DiscoveryPoint current_;
  // Pipelined decode stage; null when the execution has no decode store.
  std::unique_ptr<DecodePrefetcher> prefetcher_;
  std::unordered_set<scene::InstanceId> found_;
  std::vector<FrameFeedback> feedback_;  // Reused per batch.
  std::vector<uint32_t> frame_shards_;   // Owner per batch frame; sharded only.
  std::vector<ShardTracePart> parts_;    // Sharded runs only.
  // The in-flight batch between BeginStep and FinishStep. `pending_frames_`
  // must stay stable while pending: the service (and the prefetcher) hold
  // spans into it.
  std::vector<video::FrameId> pending_frames_;
  // Reuse classification of the in-flight batch (`options_.reuse` only):
  // per-frame outcomes parallel to `pending_frames_`, the reused detections
  // for hits/skips, and the miss subset — which is what actually gets
  // decoded/submitted/detected. `miss_frames_` must stay span-stable while
  // pending, exactly like `pending_frames_`.
  std::vector<reuse::SessionReuse::Outcome> reuse_outcomes_;
  std::vector<detect::Detections> reuse_detections_;
  std::vector<video::FrameId> miss_frames_;
  std::vector<uint32_t> miss_shards_;
  DetectorService::Ticket pending_ticket_ = 0;
  bool pending_ticket_valid_ = false;
  bool pending_detect_ = false;
  uint64_t next_seq_ = 0;
  double charged_overhead_ = 0.0;
  bool finished_ = false;
  bool finalized_ = false;
};

/// \brief Executes one distinct-object query: the shared loop of Algorithm 1
/// (pick frames / detect / discriminate / update), parameterized by the
/// frame-selection strategy.
///
/// The runner is what makes comparisons fair: every strategy pays the same
/// detector cost per sampled frame and uses the same discriminator semantics;
/// only frame choice (and any upfront scan cost) differs.
class QueryRunner {
 public:
  QueryRunner(const scene::GroundTruth* truth, detect::ObjectDetector* detector,
              track::Discriminator* discriminator, RunnerOptions options);

  /// \brief Runs `strategy` until a stop condition triggers; returns the
  /// discovery trace. Uses the batch pipeline with `options.batch_size` /
  /// `options.thread_pool`.
  QueryTrace Run(SearchStrategy* strategy);

  /// \brief The pre-batching reference implementation: a strictly
  /// single-frame pull loop over `NextFrame`/`Observe`, ignoring
  /// `batch_size`/`thread_pool`. Kept as the equivalence baseline the batch
  /// pipeline is tested against (batch_size=1 must be bit-identical).
  QueryTrace RunSingleFrame(SearchStrategy* strategy);

 private:
  const scene::GroundTruth* truth_;
  detect::ObjectDetector* detector_;
  track::Discriminator* discriminator_;
  RunnerOptions options_;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_RUNNER_H_
