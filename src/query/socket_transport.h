#ifndef EXSAMPLE_QUERY_SOCKET_TRANSPORT_H_
#define EXSAMPLE_QUERY_SOCKET_TRANSPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/transport.h"
#include "query/wire.h"

namespace exsample {
namespace query {

/// \file
/// \brief The real-socket `ShardTransport`: wire frames over TCP to
/// `exsample_shardd` shard servers, with connect/reconnect, session
/// deployment replay, and timeout-based failure inference.

/// \brief Frame length-prefix width: every wire message crosses a socket as
/// a 4-byte little-endian payload length followed by the payload bytes.
inline constexpr size_t kFrameHeaderBytes = 4;

/// \brief Writes one length-prefixed frame to `fd` (blocking, EINTR-safe).
/// Fails on short writes and on payloads past `kMaxFrameBytes`.
common::Status WriteFrame(int fd, common::Span<const uint8_t> payload);

/// \brief Reads one length-prefixed frame from `fd` (blocking, EINTR-safe).
/// `InvalidArgument` for frames past `max_frame_bytes` (a corrupt or hostile
/// peer must not make us allocate unbounded memory); `Internal` ("connection
/// closed") on EOF or a read error, including mid-frame truncation.
common::Result<std::vector<uint8_t>> ReadFrame(int fd, size_t max_frame_bytes);

/// \brief Largest frame either side accepts. Generous: the coordinator's
/// device batches are a few KiB, responses a few hundred KiB at most.
inline constexpr size_t kMaxFrameBytes = 64ull << 20;

/// \brief Configuration of a `SocketTransport`.
struct SocketTransportOptions {
  /// One "host:port" endpoint per shard (`hosts[s]` runs shard `s`'s
  /// `exsample_shardd`). Size must equal the transport's shard count.
  std::vector<std::string> hosts;
  /// Per detect-request deadline: a batch unanswered this long is given up
  /// on (`kUnavailable` synthesized, the late answer dropped if it ever
  /// arrives) — the failure-inference half of the availability story, and
  /// the only signal that catches a server that is up but wedged.
  double request_deadline_seconds = 5.0;
  /// How long `RegisterSession` waits for a shard's ack before proceeding
  /// optimistically (an unreachable runner is the detect path's problem —
  /// registration is replayed on reconnect).
  double register_ack_deadline_seconds = 2.0;
  /// Per-connect timeout of the non-blocking connect + poll handshake.
  double connect_timeout_seconds = 1.0;
  /// Reconnect backoff: first retry after `reconnect_backoff_seconds`,
  /// doubling per failure up to the max. While a shard is inside its backoff
  /// window, sends to it fail fast (synthesized `kUnavailable`) instead of
  /// hammering connect().
  double reconnect_backoff_seconds = 0.02;
  double reconnect_backoff_max_seconds = 1.0;
};

/// \brief `ShardTransport` over real TCP sockets: one connection per shard
/// to an `exsample_shardd` server, a reader thread per connection, and the
/// `RegisterSessionMsg` control plane deploying session state.
///
/// ## Failure inference
///
/// A socket gives no positive failure signal — a dead server is silence.
/// Every environmental failure is therefore *inferred* and synthesized as a
/// `kUnavailable` completion for `Receive`, so the `DetectorService`'s
/// retry → requeue machinery sees exactly the signal an explicit runner
/// failure produces: a connect that fails (or is gated by backoff) fails the
/// batch immediately; a connection that drops fails everything in flight on
/// it; a batch unanswered past its deadline is given up on, and its late
/// response — recognized by sequence number and attempt echo — is dropped.
/// `Send` consequently never fails for environmental reasons (the interface
/// contract); a non-OK return is a caller bug.
///
/// ## Session deployment
///
/// `RegisterSession` ships the session's detector configuration to every
/// shard and waits briefly for acks (`kRepoMismatch` acks fail the
/// registration with `FailedPrecondition` — a mis-deployment, never
/// retryable). Every live session's registration frame is kept and
/// *replayed* on each (re)connect before any detect frame crosses, so a
/// restarted server is re-deployed transparently — TCP's in-order delivery
/// guarantees the runner materializes the session before any batch that
/// references it.
///
/// One coordinator thread drives Send/Receive/Register/Unregister; reader
/// threads only dispatch completions. All shared state sits under one mutex
/// (the hot path is dominated by syscalls, not the lock).
class SocketTransport : public ShardTransport {
 public:
  SocketTransport(size_t num_shards, SocketTransportOptions options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  const char* name() const override { return "socket"; }
  common::Status RegisterSession(const RegisterSessionMsg& msg) override;
  void UnregisterSession(uint64_t session_id) override;
  common::Status Send(uint32_t runner_shard,
                      const DetectRequestMsg& request) override;
  common::Result<DetectResponseMsg> Receive() override;
  size_t InFlight() const override;
  TransportStats Stats() const override;

  size_t NumShards() const { return conns_.size(); }
  const SocketTransportOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    int fd = -1;
    bool connected = false;
    bool ever_connected = false;
    /// Bumped on every state change so a reader blocked on an old fd can
    /// tell its observation is stale.
    uint64_t generation = 0;
    /// Backoff gate: no connect attempt before this instant.
    Clock::time_point next_attempt = Clock::time_point::min();
    double backoff_seconds = 0.0;
    std::thread reader;
    /// Acks the reader received that no waiter has consumed yet
    /// (session_id -> status); cleared on disconnect.
    std::unordered_map<uint64_t, WireStatus> pending_acks;
  };

  struct InFlightEntry {
    /// Shard the batch was sent to (where the failure, if inferred, lands).
    uint32_t shard = 0;
    /// Shard the batch was originally built for — preserved across requeues,
    /// echoed back on synthesized failures so the service's bookkeeping
    /// matches a real runner's response.
    uint32_t origin_shard = 0;
    uint32_t attempt = 0;
    Clock::time_point deadline;
  };

  /// Connects `shard` if disconnected and its backoff window allows,
  /// replaying every live session's registration on success. Returns whether
  /// the shard is connected afterwards.
  bool EnsureConnectedLocked(uint32_t shard, Clock::time_point now);
  /// Declares `shard`'s connection dead: wakes its reader via shutdown(),
  /// synthesizes `kUnavailable` completions for everything in flight on it,
  /// and drops its pending acks.
  void MarkDisconnectedLocked(uint32_t shard);
  /// Synthesizes a `kUnavailable` completion (failure inference).
  void SynthesizeFailureLocked(uint64_t wire_seq, const InFlightEntry& entry);
  void ReaderLoop(uint32_t shard);
  /// Routes one received frame (detect response or control ack). Returns
  /// false on a frame the protocol forbids — the caller drops the connection.
  bool DispatchFrameLocked(uint32_t shard, const std::vector<uint8_t>& frame);

  SocketTransportOptions options_;

  mutable std::mutex mu_;
  /// Signaled on: completion available, ack arrived, connection state change.
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Live sessions in registration order: serialized `RegisterSessionMsg`
  /// frames replayed to every fresh connection.
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> live_sessions_;
  /// Sent batches awaiting a response, by wire sequence number. A retry
  /// reuses the sequence number with a bumped attempt, so the attempt echo
  /// distinguishes the live attempt from a late predecessor.
  std::unordered_map<uint64_t, InFlightEntry> inflight_;
  std::deque<DetectResponseMsg> completed_;
  TransportStats stats_;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_SOCKET_TRANSPORT_H_
