#include "query/transport.h"

#include <chrono>
#include <utility>

#include "common/affinity.h"
#include "common/hash.h"

namespace exsample {
namespace query {

namespace {

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Deterministic uniform draw in [0, 1) keyed by the request's identity, so
/// fault injection and reordering are reproducible run to run.
double WireCoin(uint64_t seed, const DetectRequestMsg& msg, uint64_t salt) {
  uint64_t h = common::HashCombine(seed, msg.wire_seq);
  h = common::HashCombine(h, msg.attempt);
  h = common::HashCombine(h, salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

// --- SessionDirectory -------------------------------------------------------

void SessionDirectory::Register(uint64_t session_id, uint32_t shard,
                                detect::ObjectDetector* detector) {
  common::Check(detector != nullptr, "registering a null session detector");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<detect::ObjectDetector*>& per_shard = sessions_[session_id];
  if (per_shard.size() <= shard) per_shard.resize(shard + 1, nullptr);
  common::Check(per_shard[shard] == nullptr || per_shard[shard] == detector,
                "conflicting detector registered for a live session id");
  per_shard[shard] = detector;
}

detect::ObjectDetector* SessionDirectory::Resolve(uint64_t session_id,
                                                  uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end() || shard >= it->second.size()) return nullptr;
  return it->second[shard];
}

void SessionDirectory::Unregister(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

size_t SessionDirectory::NumSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// --- Runner-side execution --------------------------------------------------

DetectResponseMsg ExecuteWireRequest(const DetectRequestMsg& request,
                                     const SessionResolver& resolver,
                                     common::ThreadPool* pool,
                                     UnresolvedSlotPolicy policy) {
  DetectResponseMsg response;
  response.wire_seq = request.wire_seq;
  response.origin_shard = request.origin_shard;
  response.attempt = request.attempt;
  response.status = WireStatus::kOk;
  response.detections.resize(request.slots.size());

  // Resolve on the driving thread (the resolver lock is cheap, but taking
  // it from every pool worker would serialize the fan-out), then detect
  // data-parallel: slots are independent and results land in fixed indices,
  // so pool size cannot change the response.
  std::vector<detect::ObjectDetector*> detectors(request.slots.size(), nullptr);
  for (size_t i = 0; i < request.slots.size(); ++i) {
    detectors[i] =
        resolver.Resolve(request.slots[i].session_id, request.origin_shard);
    if (detectors[i] == nullptr) {
      if (policy == UnresolvedSlotPolicy::kUnavailable) {
        response.status = WireStatus::kUnavailable;
        response.charged_seconds = 0.0;
        response.detections.clear();
        return response;
      }
      common::Check(false,
                    "wire request names an unregistered (session, shard)");
    }
    response.charged_seconds += detectors[i]->SecondsPerFrame();
  }
  const auto detect_one = [&](size_t i) {
    response.detections[i] = detectors[i]->Detect(request.slots[i].frame);
  };
  if (pool != nullptr) {
    pool->ParallelFor(request.slots.size(), detect_one);
  } else {
    for (size_t i = 0; i < request.slots.size(); ++i) detect_one(i);
  }
  return response;
}

// --- LocalTransport ---------------------------------------------------------

LocalTransport::LocalTransport(size_t num_shards,
                               std::vector<common::ThreadPool*> pools,
                               common::ThreadPool* default_pool)
    : pools_(std::move(pools)), default_pool_(default_pool) {
  common::Check(num_shards >= 1, "transport needs at least one shard");
  common::Check(pools_.empty() || pools_.size() == num_shards,
                "per-shard pools must cover every shard");
  if (pools_.empty()) pools_.resize(num_shards, nullptr);
}

void LocalTransport::BindLocalResolver(const SessionResolver* resolver) {
  resolver_ = resolver;
}

common::Status LocalTransport::RegisterSession(const RegisterSessionMsg& msg) {
  registered_sessions_.insert(msg.session_id);
  stats_.control_messages += 1;
  return common::Status::OK();
}

void LocalTransport::UnregisterSession(uint64_t session_id) {
  registered_sessions_.erase(session_id);
  stats_.control_messages += 1;
}

common::Status LocalTransport::Send(uint32_t runner_shard,
                                    const DetectRequestMsg& request) {
  common::Check(resolver_ != nullptr, "transport used before BindLocalResolver");
  if (runner_shard >= pools_.size()) {
    return common::Status::InvalidArgument("wire batch sent past the shards");
  }
  // The control-plane contract holds even in-process: a batch naming a
  // session that was never deployed would be rejected by a remote runner, so
  // it must fail here too — loudly, because in-process it is a service bug.
  for (const WireSlot& slot : request.slots) {
    common::Check(registered_sessions_.count(slot.session_id) != 0,
                  "wire batch references a session never registered with "
                  "the transport");
  }
  common::ThreadPool* pool =
      pools_[runner_shard] != nullptr ? pools_[runner_shard] : default_pool_;
  completed_.push_back(ExecuteWireRequest(request, *resolver_, pool));
  stats_.requests += 1;
  return common::Status::OK();
}

common::Result<DetectResponseMsg> LocalTransport::Receive() {
  if (completed_.empty()) {
    return common::Status::FailedPrecondition("no wire batch in flight");
  }
  DetectResponseMsg response = std::move(completed_.front());
  completed_.pop_front();
  stats_.responses += 1;
  return response;
}

// --- LoopbackTransport ------------------------------------------------------

namespace {

/// Inbox/outbox ring capacities. Sized for the steady state (device batches
/// in flight per shard), not the worst case — bursts beyond them take the
/// overflow lock, which is exactly the old behavior for every message.
constexpr size_t kInboxRingCapacity = 256;
constexpr size_t kOutboxRingCapacity = 1024;

}  // namespace

void LoopbackTransport::SpillQueue::Push(std::vector<uint8_t> bytes) {
  // Once anything spilled, later messages follow it through the overflow
  // until a consumer drains it — keeps per-queue FIFO order cheap (one
  // relaxed load on the fast path).
  if (overflow_size.load(std::memory_order_acquire) == 0 &&
      ring.TryPush(std::move(bytes))) {
    return;
  }
  std::lock_guard<std::mutex> lock(overflow_mu);
  overflow.push_back(std::move(bytes));
  overflow_size.fetch_add(1, std::memory_order_release);
}

bool LoopbackTransport::SpillQueue::TryPop(std::vector<uint8_t>& out) {
  if (ring.TryPop(out)) return true;
  if (overflow_size.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(overflow_mu);
  if (overflow.empty()) return false;
  out = std::move(overflow.front());
  overflow.pop_front();
  overflow_size.fetch_sub(1, std::memory_order_release);
  return true;
}

bool LoopbackTransport::SpillQueue::Empty() const {
  return ring.Empty() && overflow_size.load(std::memory_order_acquire) == 0;
}

LoopbackTransport::LoopbackTransport(size_t num_shards,
                                     std::vector<common::ThreadPool*> pools,
                                     LoopbackTransportOptions options)
    : options_(std::move(options)),
      pools_(std::move(pools)),
      outbox_(kOutboxRingCapacity) {
  common::Check(num_shards >= 1, "transport needs at least one shard");
  common::Check(pools_.empty() || pools_.size() == num_shards,
                "per-shard pools must cover every shard");
  if (pools_.empty()) pools_.resize(num_shards, nullptr);
  runners_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    runners_.push_back(std::make_unique<Runner>(kInboxRingCapacity));
  }
  // Start the runner threads only after every Runner exists: a runner never
  // touches another's state, but keeping construction fully ordered is free.
  for (uint32_t s = 0; s < num_shards; ++s) {
    runners_[s]->thread = std::thread([this, s] { RunnerLoop(s); });
    if (!options_.runner_cpus.empty()) {
      (void)common::affinity::PinThread(
          runners_[s]->thread,
          options_.runner_cpus[s % options_.runner_cpus.size()]);
    }
  }
}

LoopbackTransport::~LoopbackTransport() {
  for (auto& runner : runners_) {
    runner->stop.store(true, std::memory_order_seq_cst);
    runner->parker.WakeAll();
  }
  for (auto& runner : runners_) {
    if (runner->thread.joinable()) runner->thread.join();
  }
}

void LoopbackTransport::BindLocalResolver(const SessionResolver* resolver) {
  resolver_ = resolver;
}

common::Status LoopbackTransport::RegisterSession(const RegisterSessionMsg& msg) {
  // Broadcast to every runner: requeues may route any session's batch to any
  // surviving runner, so all of them need the session deployed. FIFO inbox
  // order makes the registration visible before any later detect batch.
  const std::vector<uint8_t> bytes = SerializeRegisterSession(msg);
  for (auto& runner : runners_) {
    std::vector<uint8_t> copy = bytes;
    stats_.control_messages += 1;
    stats_.bytes_sent += copy.size();
    runner->inbox.Push(std::move(copy));
    runner->parker.WakeOne();
  }
  return common::Status::OK();
}

void LoopbackTransport::UnregisterSession(uint64_t session_id) {
  UnregisterSessionMsg msg;
  msg.session_id = session_id;
  const std::vector<uint8_t> bytes = SerializeUnregisterSession(msg);
  for (auto& runner : runners_) {
    std::vector<uint8_t> copy = bytes;
    stats_.control_messages += 1;
    stats_.bytes_sent += copy.size();
    runner->inbox.Push(std::move(copy));
    runner->parker.WakeOne();
  }
}

common::Status LoopbackTransport::Send(uint32_t runner_shard,
                                       const DetectRequestMsg& request) {
  common::Check(resolver_ != nullptr, "transport used before BindLocalResolver");
  if (runner_shard >= runners_.size()) {
    return common::Status::InvalidArgument("wire batch sent past the shards");
  }
  // The one serialization point on the send path: from here to the response
  // parse, the batch exists only as bytes.
  std::vector<uint8_t> bytes = SerializeDetectRequest(request);
  stats_.requests += 1;
  stats_.bytes_sent += bytes.size();
  in_flight_ += 1;
  Runner& runner = *runners_[runner_shard];
  runner.inbox.Push(std::move(bytes));
  runner.parker.WakeOne();  // Syscall only if the runner actually parked.
  return common::Status::OK();
}

common::Result<DetectResponseMsg> LoopbackTransport::Receive() {
  if (in_flight_ == 0) {
    return common::Status::FailedPrecondition("no wire batch in flight");
  }
  // A response is guaranteed to arrive (in_flight_ > 0 and runners answer
  // everything they accept): spin briefly, then park.
  std::vector<uint8_t> bytes;
  int idle_spins = 0;
  while (!outbox_.TryPop(bytes)) {
    if (++idle_spins < common::Parker::kSpinIterations) {
      std::this_thread::yield();
      continue;
    }
    idle_spins = 0;
    common::Parker::WaitGuard guard(out_parker_);
    if (outbox_.TryPop(bytes)) break;
    guard.Wait();
  }
  in_flight_ -= 1;
  stats_.responses += 1;
  stats_.bytes_received += bytes.size();
  auto response =
      ParseDetectResponse(common::Span<const uint8_t>(bytes.data(), bytes.size()));
  // In-process, an unparseable response is a wire-format bug, not weather.
  common::CheckOk(response.status(), "loopback response failed to parse");
  if (response.value().status != WireStatus::kOk) {
    // Every loopback failure is an injected one.
    stats_.failures_injected += 1;
  }
  return response;
}

void LoopbackTransport::RunnerLoop(uint32_t shard) {
  Runner& runner = *runners_[shard];
  int idle_spins = 0;
  while (true) {
    std::vector<uint8_t> bytes;
    while (!runner.inbox.TryPop(bytes)) {
      // Drain before exiting: a request accepted by Send is always answered,
      // so the coordinator can never block forever in Receive.
      if (runner.stop.load(std::memory_order_seq_cst)) return;
      if (++idle_spins < common::Parker::kSpinIterations) {
        std::this_thread::yield();
        continue;
      }
      idle_spins = 0;
      common::Parker::WaitGuard guard(runner.parker);
      if (!runner.inbox.Empty() ||
          runner.stop.load(std::memory_order_seq_cst)) {
        continue;  // Re-check via TryPop / the stop branch above.
      }
      guard.Wait();
    }
    idle_spins = 0;

    // One envelope, many kinds: control frames and detect batches share the
    // inbox, dispatched by the framed header — exactly what a socket server
    // does with the same helpers.
    const common::Span<const uint8_t> frame(bytes.data(), bytes.size());
    auto kind = PeekWireKind(frame);
    common::CheckOk(kind.status(), "loopback frame failed to parse");
    if (kind.value() == WireKind::kRegisterSession) {
      auto reg = ParseRegisterSession(frame);
      common::CheckOk(reg.status(), "loopback registration failed to parse");
      runner.registered_sessions.insert(reg.value().session_id);
      continue;
    }
    if (kind.value() == WireKind::kUnregisterSession) {
      auto unreg = ParseUnregisterSession(frame);
      common::CheckOk(unreg.status(), "loopback unregister failed to parse");
      runner.registered_sessions.erase(unreg.value().session_id);
      continue;
    }
    common::Check(kind.value() == WireKind::kDetectRequest,
                  "unexpected wire kind in a loopback runner inbox");
    auto parsed = ParseDetectRequest(frame);
    common::CheckOk(parsed.status(), "loopback request failed to parse");
    const DetectRequestMsg& request = parsed.value();
    // The control-plane contract: every slot's session must have been
    // deployed to this runner before the batch referencing it.
    for (const WireSlot& slot : request.slots) {
      common::Check(runner.registered_sessions.count(slot.session_id) != 0,
                    "wire batch references a session never registered with "
                    "this runner");
    }
    runner.requests_served += 1;

    SleepSeconds(options_.latency_seconds);

    DetectResponseMsg response;
    response.wire_seq = request.wire_seq;
    response.origin_shard = request.origin_shard;
    response.attempt = request.attempt;
    const bool fingerprint_mismatch =
        options_.expected_fingerprint != 0 && request.repo_fingerprint != 0 &&
        request.repo_fingerprint != options_.expected_fingerprint;
    const bool shard_dead =
        options_.fail_shard >= 0 &&
        shard == static_cast<uint32_t>(options_.fail_shard) &&
        runner.requests_served > options_.fail_after_requests;
    const bool transient_failure =
        options_.failure_rate > 0.0 &&
        WireCoin(options_.seed, request, shard) < options_.failure_rate;
    if (fingerprint_mismatch) {
      response.status = WireStatus::kRepoMismatch;
    } else if (shard_dead || transient_failure) {
      response.status = WireStatus::kUnavailable;
    } else {
      response = ExecuteWireRequest(request, *resolver_, pools_[shard]);
    }

    if (options_.reorder_jitter_seconds > 0.0) {
      SleepSeconds(WireCoin(options_.seed, request, 0x9e1u + shard) *
                   options_.reorder_jitter_seconds);
    }

    std::vector<uint8_t> out_bytes = SerializeDetectResponse(response);
    outbox_.Push(std::move(out_bytes));
    out_parker_.WakeOne();  // Syscall only if the coordinator parked.
  }
}

}  // namespace query
}  // namespace exsample
