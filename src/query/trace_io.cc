#include "query/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

namespace exsample {
namespace query {

namespace {

void WritePoints(const QueryTrace& trace, const std::string& prefix,
                 std::ostream& os) {
  char line[160];
  for (const DiscoveryPoint& p : trace.points) {
    std::snprintf(line, sizeof(line), "%s%" PRIu64 ",%.6f,%" PRIu64 ",%" PRIu64 "\n",
                  prefix.c_str(), p.samples, p.seconds, p.reported_results,
                  p.true_distinct);
    os << line;
  }
}

}  // namespace

void WriteTraceCsv(const QueryTrace& trace, std::ostream& os) {
  os << "# strategy=" << trace.strategy_name
     << " total_instances=" << trace.total_instances << "\n";
  os << "samples,seconds,reported_results,true_distinct\n";
  WritePoints(trace, "", os);
}

void WriteTracesCsv(const std::vector<QueryTrace>& traces, std::ostream& os) {
  os << "strategy,samples,seconds,reported_results,true_distinct\n";
  for (const QueryTrace& trace : traces) {
    WritePoints(trace, trace.strategy_name + ",", os);
  }
}

common::Result<QueryTrace> ReadTraceCsv(std::istream& is) {
  QueryTrace trace;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# strategy=NAME total_instances=N"
      const size_t strategy_pos = line.find("strategy=");
      const size_t total_pos = line.find("total_instances=");
      if (strategy_pos != std::string::npos) {
        const size_t begin = strategy_pos + 9;
        const size_t end = line.find(' ', begin);
        trace.strategy_name = line.substr(begin, end == std::string::npos
                                                     ? std::string::npos
                                                     : end - begin);
      }
      if (total_pos != std::string::npos) {
        trace.total_instances = std::strtoull(line.c_str() + total_pos + 16,
                                              nullptr, 10);
      }
      continue;
    }
    if (!saw_header && line.find("samples,") == 0) {
      saw_header = true;
      continue;
    }
    DiscoveryPoint point;
    if (std::sscanf(line.c_str(), "%" PRIu64 ",%lf,%" PRIu64 ",%" PRIu64,
                    &point.samples, &point.seconds, &point.reported_results,
                    &point.true_distinct) != 4) {
      return common::Status::InvalidArgument("malformed trace CSV row: " + line);
    }
    trace.points.push_back(point);
  }
  if (!trace.points.empty()) trace.final = trace.points.back();
  return trace;
}

}  // namespace query
}  // namespace exsample
