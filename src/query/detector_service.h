#ifndef EXSAMPLE_QUERY_DETECTOR_SERVICE_H_
#define EXSAMPLE_QUERY_DETECTOR_SERVICE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/thread_pool.h"
#include "detect/detector.h"
#include "query/prefetch.h"
#include "query/scheduler.h"
#include "query/shard_dispatch.h"
#include "video/repository.h"

namespace exsample {
namespace query {

/// \brief Coalescing configuration of a `DetectorService`.
struct DetectorServiceOptions {
  /// Target frames per coalesced device batch: a flush slices each shard's
  /// merged queue into `DetectBatch`-style calls of at most this many frames.
  /// The fill-rate statistic is measured against it ("how full were the
  /// device batches we paid for"). Must be >= 1.
  size_t device_batch = 32;
  /// Flush the shards' sliced device batches concurrently, one dispatch
  /// thread per owning shard (each driving its own shard's pool) — the same
  /// stand-in for per-machine shard detectors `ShardDispatcher` uses.
  bool parallel_shards = false;
};

/// \brief Aggregate tallies of a service's coalescing work.
struct DetectorServiceStats {
  /// Session submissions accepted (one per `QueryExecution` step).
  uint64_t requests = 0;
  /// Frames detected through the service.
  uint64_t frames = 0;
  /// Coalesced device batches executed (queue slices, per shard).
  uint64_t device_batches = 0;
  /// Of those, batches holding frames of at least two sessions.
  uint64_t shared_batches = 0;
  /// `Flush` calls that found work.
  uint64_t flushes = 0;
};

/// \brief Shared detect stage: coalesces pending frames from many query
/// sessions into full device batches.
///
/// ExSample's premise is that the detector is the scarce resource; under a
/// concurrent workload, per-session batching under-fills it — a session
/// stepping with batch 8 occupies a 64-frame device batch alone. The service
/// is the cross-session remedy: each session *submits* its picked batch
/// (`Submit`, non-blocking) and yields; once the scheduler has stepped the
/// other sessions of the round, `Flush` merges everything pending into
/// per-shard queues and executes them as device batches of up to
/// `device_batch` frames, routing each frame through *its own session's*
/// detector context (per-query noise streams stay per-query) and scattering
/// results back per request. Results are then collected per session
/// (`Take`), which discriminates and feeds back exactly as before.
///
/// Determinism contract: coalescing never changes a trace. Requests carry
/// monotonically increasing sequence numbers (tickets); within a flush, a
/// shard queue holds frames in (ticket, batch-position) order, results land
/// in fixed per-request slots, detection is per-frame deterministic per
/// session, and every order-sensitive stage (decode planning, discrimination,
/// belief updates) already ran or runs on the coordinator in session batch
/// order — so the service at any coalesce width is bit-identical to today's
/// per-session batching (width 1), which the `sched` suite enforces fatally.
///
/// The decode-ahead seam moves with the detect stage: a request's prefetcher
/// keeps decoding on the I/O pools from submit time until the flush that
/// consumes the request — the decode window now spans the service's coalesce
/// window (everything queued between two flushes), not one session's detect
/// windows. `Flush` drains each request's prefetcher, in ticket order, before
/// any detection runs.
///
/// One coordinator thread drives the service (Submit/Flush/Take); only the
/// per-frame detect fan-out (and, with `parallel_shards`, the per-shard
/// dispatch) runs on workers. This queue is the seam the ROADMAP names for
/// cross-machine dispatch: a remote shard's runner would drain its
/// sub-queue over RPC instead of a local pool.
class DetectorService {
 public:
  using Ticket = uint64_t;

  /// One session's pending detect work. Spans must stay valid until the
  /// request's results are taken; the pointees must outlive the flush.
  struct DetectRequest {
    /// Stable identity of the submitting session (stats attribution only).
    uint64_t session_id = 0;
    /// Frames to detect, in the session's batch order.
    common::Span<const video::FrameId> frames;
    /// Owning shard per frame (parallel to `frames`); empty means every
    /// frame belongs to shard 0 (unsharded execution).
    common::Span<const uint32_t> shards;
    /// The session's detector (unsharded sessions). Ignored when
    /// `dispatcher` is set.
    detect::ObjectDetector* detector = nullptr;
    /// The session's shard dispatcher: per-shard detectors + stats. When
    /// set, each frame is detected by `dispatcher->Context(shard).detector`
    /// and the dispatcher's per-shard stats are updated as if it had
    /// dispatched the sub-batches itself.
    ShardDispatcher* dispatcher = nullptr;
    /// The session's decode prefetcher; drained (in ticket order) before the
    /// flush detects anything. Null when the session does not decode.
    DecodePrefetcher* prefetcher = nullptr;
    /// The session's scheduler/coalescing tallies; updated at flush time.
    SessionSchedulerStats* session_stats = nullptr;
  };

  /// `num_shards` fixes the submission-queue fan-out (1 for unsharded
  /// engines). `pools` — when non-empty, one per shard — name the worker
  /// pool each shard's device batches fan out over (null entries run
  /// inline); `default_pool` serves shards without one.
  DetectorService(DetectorServiceOptions options, size_t num_shards = 1,
                  std::vector<common::ThreadPool*> pools = {},
                  common::ThreadPool* default_pool = nullptr);

  /// \brief Enqueues a session's batch and returns its ticket. Non-blocking:
  /// nothing is detected until `Flush`.
  Ticket Submit(const DetectRequest& request);

  /// \brief Executes everything pending as coalesced per-shard device
  /// batches and makes every submitted request's results available to
  /// `Take`. No-op when nothing is pending.
  void Flush();

  /// \brief True when `ticket` has been flushed and its results are waiting.
  bool Ready(Ticket ticket) const;

  /// \brief Returns (and releases) the detections of a flushed request;
  /// result `i` corresponds to `frames[i]` of the submitted batch. Fatal if
  /// the ticket was never submitted or not yet flushed.
  std::vector<detect::Detections> Take(Ticket ticket);

  /// \brief Frames currently queued and not yet flushed.
  size_t PendingFrames() const { return pending_frames_; }

  size_t NumShards() const { return queues_.size(); }
  const DetectorServiceOptions& options() const { return options_; }
  const DetectorServiceStats& stats() const { return stats_; }

  /// \brief Mean fill of the device batches paid for so far:
  /// frames / (device_batches * device_batch). 0 before the first flush.
  double FillRate() const;

 private:
  struct PendingRequest {
    Ticket ticket = 0;
    DetectRequest request;
    std::vector<detect::Detections> results;  // Slot per frame, filled at flush.
  };
  /// One queued frame: where it came from (request r, batch position i).
  struct QueueEntry {
    size_t request_index = 0;
    size_t frame_index = 0;
  };

  /// Runs one shard's queue as sliced device batches. Safe to call for
  /// different shards from different threads: writes go to per-request
  /// result slots and disjoint per-shard slice records.
  void RunShardQueue(uint32_t shard);

  DetectorServiceOptions options_;
  std::vector<common::ThreadPool*> pools_;  // Per shard; may hold nulls.
  common::ThreadPool* default_pool_ = nullptr;

  std::vector<PendingRequest> pending_;                // Ticket order.
  std::vector<std::vector<QueueEntry>> queues_;        // Per shard.
  std::vector<std::vector<size_t>> slice_sessions_;    // Scratch per shard:
                                                       // distinct sessions per
                                                       // executed slice, for
                                                       // stats (see Flush).
  size_t pending_frames_ = 0;
  Ticket next_ticket_ = 1;
  std::unordered_map<Ticket, std::vector<detect::Detections>> ready_;
  DetectorServiceStats stats_;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_DETECTOR_SERVICE_H_
