#ifndef EXSAMPLE_QUERY_DETECTOR_SERVICE_H_
#define EXSAMPLE_QUERY_DETECTOR_SERVICE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "detect/detector.h"
#include "query/prefetch.h"
#include "query/scheduler.h"
#include "query/shard_dispatch.h"
#include "query/transport.h"
#include "query/wire.h"
#include "stats/counter_registry.h"
#include "stats/stage_timer.h"
#include "video/repository.h"

namespace exsample {
namespace query {

/// \brief The detect service's binding to the engine-wide observability
/// registry: a single-writer counter slab, a stage timer for the
/// submit→grant and transport-round-trip histograms, and the
/// pre-registered metric ids. All-null (the default) collects nothing.
/// Written only from the coordinator thread driving the service, per the
/// registry's single-writer contract.
struct ServiceStatsBinding {
  stats::CounterSlab* slab = nullptr;
  stats::StageTimer* timer = nullptr;
  stats::MetricId submits = 0;
  stats::MetricId frames = 0;
  stats::MetricId device_batches = 0;
  stats::MetricId shared_batches = 0;
  stats::MetricId flushes = 0;
  stats::MetricId wire_batches = 0;
  stats::MetricId queue_depth = 0;  // Gauge: frames queued, not yet flushed.

  /// Registers the service metric names and returns a binding over
  /// `slab`/`timer` (either may be null to collect only the other half).
  static ServiceStatsBinding Bind(stats::CounterRegistry* registry,
                                  stats::CounterSlab* slab,
                                  stats::StageTimer* timer);
};

/// \brief When a shard's submission queue is executed.
enum class FlushPolicy {
  /// Only at the driver's round barrier (`Flush`) — every session of the
  /// round submits before anything runs. Maximizes device-batch fill; a
  /// ticket's latency is bounded by the whole round. The default, and
  /// bit-compatible with the pre-policy service.
  kRoundBarrier,
  /// Latency-aware: additionally flush a shard's queue the moment a full
  /// wire batch accumulates (`Submit`), and flush whatever a shard has
  /// queued once its oldest ticket has waited `flush_deadline_seconds`
  /// (checked by `Poll`). Trades fill for bounded ticket latency — the
  /// policy a distributed deployment wants, since a remote shard's device
  /// batch should leave as soon as it is full or stale, not when the
  /// coordinator's round happens to end. Never changes a trace: flush
  /// timing re-packs device batches but detection stays per-frame
  /// deterministic in fixed ticket slots.
  kLatencyAware,
};

/// \brief Coalescing configuration of a `DetectorService`.
struct DetectorServiceOptions {
  /// Target frames per coalesced device batch: a flush slices each shard's
  /// merged queue into `DetectBatch`-style calls of at most this many frames.
  /// The fill-rate statistic is measured against it ("how full were the
  /// device batches we paid for"). Must be >= 1.
  size_t device_batch = 32;
  /// Flush the shards' sliced device batches concurrently, one dispatch
  /// thread per owning shard (each driving its own shard's pool) — the same
  /// stand-in for per-machine shard detectors `ShardDispatcher` uses.
  /// In-process execution only; a transport's runners are already
  /// per-shard-parallel.
  bool parallel_shards = false;
  /// When a shard's queue is executed (see `FlushPolicy`).
  FlushPolicy flush_policy = FlushPolicy::kRoundBarrier;
  /// Age bound of `FlushPolicy::kLatencyAware`'s deadline trigger, in
  /// wall-clock seconds; 0 leaves only the batch-fill trigger.
  double flush_deadline_seconds = 0.0;
  /// Executes the sliced device batches when set: every slice crosses this
  /// transport as a wire batch and its response is scattered back by ticket.
  /// Null executes in process (today's path). The transport must outlive the
  /// service; the service binds its session directory to it on construction.
  ShardTransport* transport = nullptr;
  /// Transient-failure budget per wire batch: a failed batch is retried this
  /// many times on its runner, then the runner is marked down and the batch
  /// is requeued onto a surviving shard's runner (`origin_shard` unchanged,
  /// so detections and per-shard accounting are identical). When every
  /// runner is down the service fails sticky — `transport_status()`.
  size_t max_retries = 2;
  /// Fingerprint stamped into every wire request
  /// (`video::VideoRepository::Fingerprint`); 0 disables the runner-side
  /// repository check.
  uint64_t repo_fingerprint = 0;
};

/// \brief Aggregate tallies of a service's coalescing work.
struct DetectorServiceStats {
  /// Session submissions accepted (one per `QueryExecution` step).
  uint64_t requests = 0;
  /// Frames detected through the service.
  uint64_t frames = 0;
  /// Coalesced device batches executed (queue slices, per shard).
  uint64_t device_batches = 0;
  /// Of those, batches holding frames of at least two sessions.
  uint64_t shared_batches = 0;
  /// `Flush` calls that found work.
  uint64_t flushes = 0;
  /// Latency-aware partial flushes: triggered by a full wire batch at
  /// `Submit`, and by the deadline check in `Poll`.
  uint64_t fill_flushes = 0;
  uint64_t deadline_flushes = 0;
  /// Wire batches sent through the transport (first sends; retries and
  /// requeues are counted separately).
  uint64_t wire_batches = 0;
  /// Failed wire batches re-sent to the same runner.
  uint64_t wire_retries = 0;
  /// Failure-driven requeues: batches re-sent to a surviving shard after
  /// their runner exhausted its retries. Extra sends on top of
  /// `wire_batches` (`requests = wire_batches + wire_retries +
  /// wire_requeues` on the transport).
  uint64_t wire_requeues = 0;
  /// Proactive reroutes: *first* sends addressed straight to a survivor
  /// because the origin's runner was already marked down. Counted inside
  /// `wire_batches`, not extra traffic.
  uint64_t wire_reroutes = 0;
  /// Shard runners marked permanently down.
  uint64_t shards_down = 0;
  /// Detector seconds the shard runners reported charging (transport only;
  /// the sessions' own accounting is authoritative — this is the remote
  /// half, for observability).
  double wire_charged_seconds = 0.0;
};

/// \brief Shared detect stage: coalesces pending frames from many query
/// sessions into full device batches.
///
/// ExSample's premise is that the detector is the scarce resource; under a
/// concurrent workload, per-session batching under-fills it — a session
/// stepping with batch 8 occupies a 64-frame device batch alone. The service
/// is the cross-session remedy: each session *submits* its picked batch
/// (`Submit`, non-blocking) and yields; once the scheduler has stepped the
/// other sessions of the round, `Flush` merges everything pending into
/// per-shard queues and executes them as device batches of up to
/// `device_batch` frames, routing each frame through *its own session's*
/// detector context (per-query noise streams stay per-query) and scattering
/// results back per request. Results are then collected per session
/// (`Take`), which discriminates and feeds back exactly as before.
///
/// Determinism contract: coalescing never changes a trace. Requests carry
/// monotonically increasing sequence numbers (tickets); a shard queue holds
/// frames in (ticket, batch-position) order, results land in fixed
/// per-request slots, detection is per-frame deterministic per session, and
/// every order-sensitive stage (decode planning, discrimination, belief
/// updates) already ran or runs on the coordinator in session batch order —
/// so the service at any coalesce width, under any flush policy, and over
/// any transport is bit-identical to per-session batching (width 1), which
/// the `sched` and `dist` suites enforce fatally.
///
/// The decode-ahead seam moves with the detect stage: a request's prefetcher
/// keeps decoding on the I/O pools from submit time until the flush that
/// consumes the request — the decode window spans the coalesce window.
/// Every flush drains the prefetchers of the requests it executes, in ticket
/// order, before any detection runs.
///
/// **Transport boundary.** The per-shard queues are the distribution seam:
/// with `options.transport` set, every sliced device batch crosses a
/// `ShardTransport` as a serialized wire request and its response is
/// scattered back by wire sequence number — completions may arrive in any
/// order, because results land in fixed ticket slots either way. Failed
/// batches are retried `max_retries` times, then requeued onto a surviving
/// shard's runner with `origin_shard` (and therefore the serving detector
/// contexts and the charged seconds) unchanged; when every runner is down
/// the service goes sticky-failed (`transport_status()`) and `CancelPending`
/// releases whatever could not complete, so the driver can surface the error
/// instead of hanging.
///
/// One coordinator thread drives the service (Submit/Poll/Flush/Take); only
/// the per-frame detect fan-out — and, over a transport, the shard runners —
/// runs elsewhere.
class DetectorService {
 public:
  using Ticket = uint64_t;

  /// One session's pending detect work. Spans must stay valid until the
  /// request's results are taken; the pointees must outlive the flush.
  /// Under cross-query reuse (`RunnerOptions::reuse`) the submitting runner
  /// has already filtered its batch: only cache/sketch *misses* arrive here,
  /// so coalesced device batches never spend capacity on frames whose
  /// detections are already known.
  struct DetectRequest {
    /// Stable identity of the submitting session. Used for shared-batch
    /// stats attribution and, over a transport, as the wire id the shard
    /// runners resolve the session's detectors by — it must then be unique
    /// per live session (`SearchEngine` hands every session a fresh one).
    uint64_t session_id = 0;
    /// Frames to detect, in the session's batch order.
    common::Span<const video::FrameId> frames;
    /// Owning shard per frame (parallel to `frames`); empty means every
    /// frame belongs to shard 0 (unsharded execution).
    common::Span<const uint32_t> shards;
    /// The session's detector (unsharded sessions). Ignored when
    /// `dispatcher` is set.
    detect::ObjectDetector* detector = nullptr;
    /// The configuration the session's detectors were built from. Shipped in
    /// the session's `RegisterSessionMsg` on first submit: a remote runner
    /// materializes an equivalent detector from it (`SimulatedDetector` is a
    /// pure function of ground truth + options), where the in-process
    /// transports resolve the pointers above.
    detect::DetectorOptions detector_options;
    /// The session's shard dispatcher: per-shard detectors + stats. When
    /// set, each frame is detected by `dispatcher->Context(shard).detector`
    /// and the dispatcher's per-shard stats are updated as if it had
    /// dispatched the sub-batches itself.
    ShardDispatcher* dispatcher = nullptr;
    /// The session's decode prefetcher; drained (in ticket order) before a
    /// flush detects anything of this request. Null when the session does
    /// not decode.
    DecodePrefetcher* prefetcher = nullptr;
    /// The session's scheduler/coalescing tallies; updated at flush time.
    SessionSchedulerStats* session_stats = nullptr;
  };

  /// `num_shards` fixes the submission-queue fan-out (1 for unsharded
  /// engines). `pools` — when non-empty, one per shard — name the worker
  /// pool each shard's in-process device batches fan out over (null entries
  /// run inline); `default_pool` serves shards without one. With
  /// `options.transport`, execution happens runner-side and these pools are
  /// not used.
  DetectorService(DetectorServiceOptions options, size_t num_shards = 1,
                  std::vector<common::ThreadPool*> pools = {},
                  common::ThreadPool* default_pool = nullptr);

  /// \brief Enqueues a session's batch and returns its ticket. Non-blocking
  /// under the barrier policy; the latency-aware policy may execute shard
  /// queues that reached a full wire batch before returning.
  Ticket Submit(const DetectRequest& request);

  /// \brief Latency-aware housekeeping: executes any shard queue whose
  /// oldest ticket has waited past `flush_deadline_seconds`. No-op under
  /// the barrier policy (or with no deadline configured) — drivers can call
  /// it unconditionally between steps.
  void Poll();

  /// \brief Executes everything pending as coalesced per-shard device
  /// batches and makes every submitted request's results available to
  /// `Take`. No-op when nothing is pending.
  void Flush();

  /// \brief True when `ticket` has been flushed and its results are waiting.
  bool Ready(Ticket ticket) const;

  /// \brief Returns (and releases) the detections of a flushed request;
  /// result `i` corresponds to `frames[i]` of the submitted batch. Fatal if
  /// the ticket was never submitted or not yet flushed.
  std::vector<detect::Detections> Take(Ticket ticket);

  /// \brief OK until the transport permanently fails (every shard runner
  /// down, or an unrecoverable wire error); then the sticky error. Drivers
  /// must check after flushing and abandon the workload on failure — pending
  /// tickets are cancelled, never completed.
  const common::Status& transport_status() const { return transport_status_; }

  /// \brief Abandons the whole workload: drops every queued and in-flight
  /// request (their spans are released; their tickets will never become
  /// ready) **and** every completed-but-untaken result — after a cancel,
  /// `Take` is fatal for any outstanding ticket. Called internally on
  /// permanent transport failure; drivers call it when abandoning a
  /// workload mid-step so the service holds no stale spans.
  void CancelPending();

  /// \brief Frames currently queued and not yet flushed.
  size_t PendingFrames() const { return pending_frames_; }

  size_t NumShards() const { return queues_.size(); }
  const DetectorServiceOptions& options() const { return options_; }
  const DetectorServiceStats& stats() const { return stats_; }

  /// \brief Wall-clock seconds from `Submit` to completed flush, one entry
  /// per completed ticket in completion order — the latency the flush
  /// policy trades fill against (`bench_dist_transport` gates on its p95).
  /// Bounded on a long-lived service: only the most recent
  /// `kTicketLatencyCap` completions are retained.
  const std::vector<double>& TicketLatencies() const { return ticket_latencies_; }

  /// \brief Retention bound of `TicketLatencies` (far above any single
  /// workload; an engine-lifetime service must not grow without bound).
  static constexpr size_t kTicketLatencyCap = size_t{1} << 16;

  /// \brief Forgets a session's wire registrations — the local directory
  /// entries hold raw detector pointers, which dangle once the session dies,
  /// and the transport's runners are told to drop their deployed state.
  /// Called on every session exit path (`Finish`, `AbortPendingStep`,
  /// `Terminate`) — deliberately never from a destructor, so a session object
  /// that outlives its engine stays destructible. Idempotent; no-op for ids
  /// never registered.
  void UnregisterSession(uint64_t session_id);

  /// \brief Mean fill of the device batches paid for so far:
  /// frames / (device_batches * device_batch). 0 before the first flush.
  double FillRate() const;

  /// \brief Attaches (or detaches, with a default-constructed binding) the
  /// observability sinks. Call from the coordinator thread, between steps.
  void BindStats(const ServiceStatsBinding& binding) { stats_binding_ = binding; }

  /// \brief The runner-side session directory (wire id -> detector context)
  /// the service maintains for its transport. Exposed for tests.
  const SessionDirectory& directory() const { return directory_; }

 private:
  struct PendingRequest {
    Ticket ticket = 0;
    DetectRequest request;
    std::vector<detect::Detections> results;  // Slot per frame, filled at flush.
    size_t remaining = 0;      // Frames not yet detected (any shard).
    double submit_seconds = 0.0;  // Wall clock at Submit, for latency stats.
  };
  /// One queued frame: where it came from (ticket t, batch position i).
  struct QueueEntry {
    Ticket ticket = 0;
    size_t frame_index = 0;
  };
  /// One extracted frame of a flush, its owning request resolved *once* on
  /// the coordinator (`pending_` nodes are pointer-stable for the flush's
  /// duration) — the per-frame detect fan-out on the pool workers must not
  /// pay a map lookup per frame.
  struct WorkItem {
    Ticket ticket = 0;
    size_t frame_index = 0;
    PendingRequest* request = nullptr;
  };
  using ShardWork = std::pair<uint32_t, std::vector<WorkItem>>;
  enum class FlushReason { kBarrier, kFill, kDeadline };

  /// Extracts and executes work from the named shard queues: the full queue
  /// per shard, or only whole `device_batch` slices (`only_full_slices`,
  /// the fill trigger — a partial tail keeps waiting). Runs prefetcher
  /// drains, execution (in-process or over the transport), slice
  /// bookkeeping, and request completion.
  void FlushShards(const std::vector<uint32_t>& shards, bool only_full_slices,
                   FlushReason reason);

  /// In-process execution of one shard's extracted entries (sliced into
  /// device batches, fanned over the shard's pool). Safe to call for
  /// different shards from different threads: writes go to per-request
  /// result slots only.
  void RunShardEntries(uint32_t shard, const std::vector<WorkItem>& entries);

  /// Transport execution of all extracted entries: sends every slice as a
  /// wire batch, receives completions in arrival order, retries/requeues
  /// failures. Sets `transport_status_` (and cancels everything pending) on
  /// permanent failure.
  void SendAndCollect(const std::vector<ShardWork>& work);

  /// Deterministic per-slice bookkeeping shared by both execution paths.
  void BookSlices(uint32_t shard, const std::vector<WorkItem>& entries);

  /// Picks the runner for `origin`'s batches: `origin` itself while its
  /// runner is up, else the next surviving shard. Returns false — leaving
  /// `*runner` untouched — when every runner is down.
  bool RouteShard(uint32_t origin, uint32_t* runner) const;

  DetectorServiceOptions options_;
  std::vector<common::ThreadPool*> pools_;  // Per shard; may hold nulls.
  common::ThreadPool* default_pool_ = nullptr;

  std::map<Ticket, PendingRequest> pending_;     // Ticket order.
  std::vector<std::vector<QueueEntry>> queues_;  // Per shard.
  size_t pending_frames_ = 0;
  Ticket next_ticket_ = 1;
  uint64_t next_wire_seq_ = 1;
  std::unordered_map<Ticket, std::vector<detect::Detections>> ready_;
  std::vector<bool> shard_down_;       // Runners marked permanently failed.
  common::Status transport_status_;    // Sticky; OK while the fleet serves.
  SessionDirectory directory_;         // Runner-side id -> detector registry.
  std::unordered_set<uint64_t> registered_sessions_;
  std::vector<double> ticket_latencies_;
  DetectorServiceStats stats_;
  ServiceStatsBinding stats_binding_;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_DETECTOR_SERVICE_H_
