#ifndef EXSAMPLE_QUERY_TRACE_IO_H_
#define EXSAMPLE_QUERY_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/trace.h"

namespace exsample {
namespace query {

/// \brief Writes one trace's discovery points as CSV
/// (`samples,seconds,reported_results,true_distinct`) with a header row and
/// a `# strategy=... total_instances=...` comment line.
///
/// The bench harness prints tables; this is the machine-readable companion
/// for external plotting of discovery curves.
void WriteTraceCsv(const QueryTrace& trace, std::ostream& os);

/// \brief Writes several traces into one CSV with an extra leading
/// `strategy` column (long format, ready for dataframe tooling).
void WriteTracesCsv(const std::vector<QueryTrace>& traces, std::ostream& os);

/// \brief Parses a CSV produced by `WriteTraceCsv`.
///
/// Returns InvalidArgument on malformed rows; tolerates the comment line
/// being absent (strategy name and instance count then stay default).
common::Result<QueryTrace> ReadTraceCsv(std::istream& is);

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_TRACE_IO_H_
