#include "query/trace.h"

#include <algorithm>
#include <cmath>

namespace exsample {
namespace query {

std::optional<uint64_t> QueryTrace::SamplesToTrueDistinct(uint64_t k) const {
  if (k == 0) return 0;
  // Points are recorded in nondecreasing (samples, true_distinct) order; find
  // the first point reaching k.
  auto it = std::lower_bound(points.begin(), points.end(), k,
                             [](const DiscoveryPoint& p, uint64_t target) {
                               return p.true_distinct < target;
                             });
  if (it == points.end()) return std::nullopt;
  return it->samples;
}

std::optional<double> QueryTrace::SecondsToTrueDistinct(uint64_t k) const {
  if (k == 0) return 0.0;
  auto it = std::lower_bound(points.begin(), points.end(), k,
                             [](const DiscoveryPoint& p, uint64_t target) {
                               return p.true_distinct < target;
                             });
  if (it == points.end()) return std::nullopt;
  return it->seconds;
}

uint64_t QueryTrace::RecallTargetCount(double recall) const {
  const double target = std::ceil(recall * static_cast<double>(total_instances));
  return std::max<uint64_t>(1, static_cast<uint64_t>(target));
}

std::optional<uint64_t> QueryTrace::SamplesToRecall(double recall) const {
  return SamplesToTrueDistinct(RecallTargetCount(recall));
}

std::optional<double> QueryTrace::SecondsToRecall(double recall) const {
  return SecondsToTrueDistinct(RecallTargetCount(recall));
}

uint64_t QueryTrace::TrueDistinctAtSamples(uint64_t samples) const {
  // Last recorded point with point.samples <= samples.
  auto it = std::upper_bound(points.begin(), points.end(), samples,
                             [](uint64_t target, const DiscoveryPoint& p) {
                               return target < p.samples;
                             });
  if (it == points.begin()) return 0;
  return std::prev(it)->true_distinct;
}

}  // namespace query
}  // namespace exsample
