#include "query/prefetch.h"

#include <algorithm>
#include <thread>

namespace exsample {
namespace query {

DecodePrefetcher::DecodePrefetcher(video::SimulatedVideoStore* store,
                                   common::ThreadPool* pool, PrefetchOptions options)
    : store_(store), pool_(pool), options_(options) {
  common::Check(store_ != nullptr, "DecodePrefetcher needs a store");
  completions_ =
      std::make_unique<common::MpscRingBuffer<size_t>>(options_.depth + 1);
}

DecodePrefetcher::DecodePrefetcher(ShardDispatcher* dispatcher,
                                   common::ThreadPool* pool, PrefetchOptions options)
    : dispatcher_(dispatcher), pool_(pool), options_(options) {
  common::Check(dispatcher_ != nullptr, "DecodePrefetcher needs a dispatcher");
  common::Check(dispatcher_->HasStores(),
                "sharded prefetching needs per-shard decode stores");
  completions_ =
      std::make_unique<common::MpscRingBuffer<size_t>>(options_.depth + 1);
}

DecodePrefetcher::~DecodePrefetcher() {
  Drain();
  // Drain guarantees every frame is decoded, but a decode task's last act —
  // waking the parker — can still be in flight after its completion became
  // visible. Spin out those tails before the parker is destroyed.
  while (inflight_tasks_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

const std::vector<double>& DecodePrefetcher::SubmitBatch(
    common::Span<video::FrameId> frames, common::Span<const uint32_t> shards) {
  Drain();  // A slot vector reused under in-flight tasks would race.
  common::Check(dispatcher_ == nullptr || shards.size() == frames.size(),
                "sharded prefetch needs the owner of every frame");

  // Everything below runs under mu_: no decode tasks are in flight (Drain
  // just completed, and enqueueing happens at the end of this scope), but a
  // concurrent observer may be inside Cached(), which reads the containers
  // this section rebuilds.
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  slots_.resize(frames.size());
  charges_.resize(frames.size());
  cache_.clear();
  cache_.reserve(frames.size());

  // Plan every read now, on this thread, in batch order. This *is* the decode
  // accounting: position state and charged seconds advance exactly as the
  // synchronous loop's would, before any asynchronous work begins.
  for (size_t i = 0; i < frames.size(); ++i) {
    Slot& slot = slots_[i];
    slot.frame = frames[i];
    if (dispatcher_ != nullptr) {
      const uint32_t shard = shards[i];
      slot.plan = dispatcher_->PlanDecode(frames[i], shard);
      slot.store = dispatcher_->Context(shard).store;
      slot.pool = dispatcher_->Context(shard).io_pool != nullptr
                      ? dispatcher_->Context(shard).io_pool
                      : pool_;
    } else {
      auto plan = store_->PlanRead(frames[i]);
      common::CheckOk(plan.status(), "prefetch decode failed");
      slot.plan = plan.value();
      slot.store = store_;
      slot.pool = pool_;
    }
    charges_[i] = slot.plan.seconds;
    cache_.emplace(frames[i], i);
  }
  stats_.batches += 1;
  stats_.frames += frames.size();

  cursor_ = 0;
  enqueued_ = 0;
  if (options_.depth == 0) {
    // Synchronous mode: perform every read inline, in order, before the
    // detect stage sees the batch — the legacy decode schedule, through the
    // same code path, which is what the overlap benches compare against.
    for (Slot& slot : slots_) {
      slot.store->PerformRead(slot.plan);
      slot.ready = true;
      stats_.inline_reads += 1;
    }
    enqueued_ = slots_.size();
  } else {
    EnqueueAheadLocked();
  }
  return charges_;
}

void DecodePrefetcher::EnqueueAheadLocked() {
  const size_t limit = std::min(slots_.size(), cursor_ + options_.depth);
  while (enqueued_ < limit) {
    const size_t i = enqueued_++;
    Slot& slot = slots_[i];
    if (slot.pool == nullptr || slot.pool->NumThreads() <= 1) {
      // No pool (or a workerless one, whose Submit would run the task inline
      // on this thread — under our own mutex): perform the read here. Still
      // correct, just the synchronous schedule.
      slot.store->PerformRead(slot.plan);
      slot.ready = true;
      stats_.inline_reads += 1;
      continue;
    }
    stats_.async_reads += 1;
    inflight_tasks_.fetch_add(1, std::memory_order_relaxed);
    slot.pool->Submit([this, i] {
      // The slot vector is stable for the whole batch (SubmitBatch drains
      // before resizing), and plan/store are immutable once enqueued; this
      // task shares nothing mutable with the coordinator — completion is
      // announced by the ring push below, not by touching the slot.
      Slot& s = slots_[i];
      s.store->PerformRead(s.plan);
      // The push cannot fail: in-order consumption keeps unconsumed
      // completions bounded by `depth + 1`, which is the ring's capacity
      // (see the member comment). A full ring here means the window
      // invariant broke — die loudly rather than drop a frame.
      common::Check(completions_->TryPush(size_t{i}),
                    "prefetch completion ring overflow");
      // Waiter-counted wake: no syscall (and no mutex) unless the
      // coordinator is actually parked in WaitFrame/Drain.
      ready_parker_.WakeOne();
      inflight_tasks_.fetch_sub(1, std::memory_order_release);
    });
  }
  // Decode-ahead distance is only meaningful when a window exists: in
  // synchronous mode (depth 0) the whole batch is decoded at submit time and
  // `enqueued_ - cursor_` would misreport it as read-ahead.
  if (options_.depth > 0) {
    stats_.max_ahead = std::max(stats_.max_ahead, enqueued_ - cursor_);
  }
}

void DecodePrefetcher::DrainCompletionsLocked() {
  size_t index = 0;
  while (completions_->TryPop(index)) {
    slots_[index].ready = true;
  }
}

void DecodePrefetcher::WaitReadyLocked(std::unique_lock<std::mutex>& lock,
                                       size_t index) {
  DrainCompletionsLocked();
  int idle_spins = 0;
  while (!slots_[index].ready) {
    if (++idle_spins < common::Parker::kSpinIterations) {
      // Spin without mu_ so observers (Cached) are not starved, and yield
      // so the decode worker gets the core on an oversubscribed host.
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
      DrainCompletionsLocked();
      continue;
    }
    idle_spins = 0;
    lock.unlock();
    {
      common::Parker::WaitGuard guard(ready_parker_);
      // Registered as a waiter — drain once more before sleeping. A task
      // that pushed after this point sees our registration past its fence
      // and will notify.
      lock.lock();
      DrainCompletionsLocked();
      const bool ready = slots_[index].ready;
      lock.unlock();
      if (!ready) guard.Wait();
    }
    lock.lock();
    DrainCompletionsLocked();
  }
}

void DecodePrefetcher::WaitFrame(size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  common::Check(index < slots_.size(), "prefetch wait past the batch");
  common::Check(index == cursor_,
                "prefetched frames must be consumed in batch order");
  // Open the window *before* blocking: frames behind `index` keep decoding
  // while the caller (and we) wait for this one.
  cursor_ = index + 1;
  EnqueueAheadLocked();
  WaitReadyLocked(lock, index);
}

void DecodePrefetcher::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (cursor_ < slots_.size()) {
    const size_t index = cursor_++;
    EnqueueAheadLocked();
    WaitReadyLocked(lock, index);
  }
}

bool DecodePrefetcher::Cached(video::FrameId frame) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(frame);
  if (it == cache_.end()) return false;
  if (slots_[it->second].ready) return true;
  // A completion may be queued but not yet consumed; drain so the answer
  // reflects every decode that has actually finished. Pops are safe from
  // any thread, and the ready bits are covered by mu_ held here.
  const_cast<DecodePrefetcher*>(this)->DrainCompletionsLocked();
  return slots_[it->second].ready;
}

}  // namespace query
}  // namespace exsample
