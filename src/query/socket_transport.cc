#include "query/socket_transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace exsample {
namespace query {

namespace {

common::Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that died mid-write must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return common::Status::Internal("socket write failed");
    }
    if (n == 0) return common::Status::Internal("socket write made no progress");
    done += static_cast<size_t>(n);
  }
  return common::Status::OK();
}

common::Status ReadAll(int fd, uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, data + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return common::Status::Internal("socket read failed");
    }
    if (n == 0) return common::Status::Internal("connection closed");
    done += static_cast<size_t>(n);
  }
  return common::Status::OK();
}

/// Numeric-IPv4 (or "localhost") connect with a poll-bounded handshake.
/// Returns the connected fd in blocking mode, or -1.
int ConnectWithTimeout(const std::string& endpoint, double timeout_seconds) {
  const size_t colon = endpoint.rfind(':');
  common::Check(colon != std::string::npos && colon + 1 < endpoint.size(),
                "shard host must be host:port");
  std::string host = endpoint.substr(0, colon);
  const long port = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
  common::Check(port > 0 && port <= 65535, "shard host has an invalid port");
  if (host.empty() || host == "localhost") host = "127.0.0.1";

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  common::Check(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "shard host must be a numeric IPv4 address or localhost");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
    if (timeout_ms < 1) timeout_ms = 1;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // Back to blocking for the reader thread.
  // The coordinator's frames are latency-sensitive and tiny; never Nagle.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

common::Status WriteFrame(int fd, common::Span<const uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    return common::Status::InvalidArgument("wire frame exceeds the size bound");
  }
  uint8_t header[kFrameHeaderBytes];
  const uint32_t size = static_cast<uint32_t>(payload.size());
  header[0] = static_cast<uint8_t>(size);
  header[1] = static_cast<uint8_t>(size >> 8);
  header[2] = static_cast<uint8_t>(size >> 16);
  header[3] = static_cast<uint8_t>(size >> 24);
  const common::Status head = WriteAll(fd, header, kFrameHeaderBytes);
  if (!head.ok()) return head;
  return WriteAll(fd, payload.data(), payload.size());
}

common::Result<std::vector<uint8_t>> ReadFrame(int fd, size_t max_frame_bytes) {
  uint8_t header[kFrameHeaderBytes];
  const common::Status head = ReadAll(fd, header, kFrameHeaderBytes);
  if (!head.ok()) return head;
  const uint32_t size = static_cast<uint32_t>(header[0]) |
                        static_cast<uint32_t>(header[1]) << 8 |
                        static_cast<uint32_t>(header[2]) << 16 |
                        static_cast<uint32_t>(header[3]) << 24;
  if (size > max_frame_bytes) {
    return common::Status::InvalidArgument("wire frame exceeds the size bound");
  }
  std::vector<uint8_t> payload(size);
  if (size > 0) {
    const common::Status body = ReadAll(fd, payload.data(), size);
    if (!body.ok()) return body;
  }
  return payload;
}

// --- SocketTransport --------------------------------------------------------

SocketTransport::SocketTransport(size_t num_shards,
                                 SocketTransportOptions options)
    : options_(std::move(options)) {
  common::Check(options_.hosts.size() == num_shards,
                "socket transport needs one shard host per shard");
  conns_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    conns_.push_back(std::make_unique<Conn>());
  }
  // Connections are opened lazily (first RegisterSession/Send), so the
  // transport can be constructed before the fleet is up; readers park until
  // their shard connects.
  for (size_t s = 0; s < num_shards; ++s) {
    conns_[s]->reader =
        std::thread([this, s] { ReaderLoop(static_cast<uint32_t>(s)); });
  }
}

SocketTransport::~SocketTransport() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& conn : conns_) {
      // Wake readers blocked mid-read; fds are closed after the join.
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    cv_.notify_all();
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  for (auto& conn : conns_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

bool SocketTransport::EnsureConnectedLocked(uint32_t shard,
                                            Clock::time_point now) {
  Conn& conn = *conns_[shard];
  if (conn.connected) return true;
  if (now < conn.next_attempt) return false;  // Backoff window: fail fast.
  const int fd =
      ConnectWithTimeout(options_.hosts[shard], options_.connect_timeout_seconds);
  if (fd < 0) {
    conn.backoff_seconds =
        conn.backoff_seconds <= 0.0
            ? options_.reconnect_backoff_seconds
            : std::min(conn.backoff_seconds * 2.0,
                       options_.reconnect_backoff_max_seconds);
    conn.next_attempt =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(conn.backoff_seconds));
    return false;
  }
  conn.fd = fd;
  conn.connected = true;
  ++conn.generation;
  conn.backoff_seconds = 0.0;
  conn.next_attempt = Clock::time_point::min();
  if (conn.ever_connected) {
    ++stats_.reconnects;
  } else {
    conn.ever_connected = true;
    ++stats_.connects;
  }
  // Deployment replay: a fresh connection (a restarted server) holds no
  // session state, so every live session's registration crosses before any
  // detect frame — TCP's in-order delivery makes the order a guarantee.
  for (const auto& session : live_sessions_) {
    if (!WriteFrame(fd, common::Span<const uint8_t>(session.second.data(),
                                                    session.second.size()))
             .ok()) {
      // The reader never saw this connection (we still hold the lock), so
      // close it here instead of the usual reader-owned teardown.
      conn.connected = false;
      ++conn.generation;
      ::close(conn.fd);
      conn.fd = -1;
      conn.backoff_seconds = options_.reconnect_backoff_seconds;
      conn.next_attempt =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(conn.backoff_seconds));
      return false;
    }
    ++stats_.control_messages;
    stats_.bytes_sent += session.second.size();
  }
  cv_.notify_all();  // The shard's reader picks the connection up.
  return true;
}

void SocketTransport::MarkDisconnectedLocked(uint32_t shard) {
  Conn& conn = *conns_[shard];
  if (!conn.connected) return;
  conn.connected = false;
  ++conn.generation;
  conn.pending_acks.clear();
  // Wake a reader blocked mid-read; whoever captured the fd closes it.
  ::shutdown(conn.fd, SHUT_RDWR);
  // A dropped connection is a failure signal for everything riding it:
  // synthesize kUnavailable completions now instead of waiting for each
  // batch's deadline to expire.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.shard == shard) {
      SynthesizeFailureLocked(it->first, it->second);
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.notify_all();
}

void SocketTransport::SynthesizeFailureLocked(uint64_t wire_seq,
                                              const InFlightEntry& entry) {
  DetectResponseMsg response;
  response.wire_seq = wire_seq;
  response.origin_shard = entry.origin_shard;
  response.attempt = entry.attempt;
  response.status = WireStatus::kUnavailable;
  completed_.push_back(std::move(response));
  ++stats_.inferred_failures;
}

common::Status SocketTransport::RegisterSession(const RegisterSessionMsg& msg) {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<uint8_t> bytes = SerializeRegisterSession(msg);
  const common::Span<const uint8_t> frame(bytes.data(), bytes.size());
  live_sessions_.emplace_back(msg.session_id, bytes);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.register_ack_deadline_seconds));
  for (uint32_t s = 0; s < conns_.size(); ++s) {
    Conn& conn = *conns_[s];
    const bool was_connected = conn.connected;
    if (!EnsureConnectedLocked(s, Clock::now())) {
      // Unreachable runner: not an error — the registration replays on
      // reconnect, and an unreachable shard surfaces through the detect
      // path's failure inference, where retry/requeue can handle it.
      continue;
    }
    if (was_connected) {
      // A fresh connection already got the frame via the replay above.
      if (!WriteFrame(conn.fd, frame).ok()) {
        MarkDisconnectedLocked(s);
        continue;
      }
      ++stats_.control_messages;
      stats_.bytes_sent += bytes.size();
    }
    // Wait (bounded) for the ack so a mis-deployment fails the session
    // before any detect work is charged.
    const uint64_t generation = conn.generation;
    while (conn.connected && conn.generation == generation &&
           conn.pending_acks.find(msg.session_id) == conn.pending_acks.end()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    const auto ack = conn.pending_acks.find(msg.session_id);
    if (ack != conn.pending_acks.end()) {
      const WireStatus status = ack->second;
      conn.pending_acks.erase(ack);
      if (status == WireStatus::kRepoMismatch) {
        return common::Status::FailedPrecondition(
            "shard server repository fingerprint mismatch (mis-deployment)");
      }
    }
  }
  return common::Status::OK();
}

void SocketTransport::UnregisterSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = live_sessions_.begin(); it != live_sessions_.end();) {
    if (it->first == session_id) {
      it = live_sessions_.erase(it);
    } else {
      ++it;
    }
  }
  UnregisterSessionMsg msg;
  msg.session_id = session_id;
  const std::vector<uint8_t> bytes = SerializeUnregisterSession(msg);
  for (uint32_t s = 0; s < conns_.size(); ++s) {
    Conn& conn = *conns_[s];
    // Fire-and-forget, connected shards only: a down server holds no state
    // once it restarts (the replay set no longer has this session).
    if (!conn.connected) continue;
    if (!WriteFrame(conn.fd, common::Span<const uint8_t>(bytes.data(),
                                                         bytes.size()))
             .ok()) {
      MarkDisconnectedLocked(s);
      continue;
    }
    ++stats_.control_messages;
    stats_.bytes_sent += bytes.size();
  }
}

common::Status SocketTransport::Send(uint32_t runner_shard,
                                     const DetectRequestMsg& request) {
  std::lock_guard<std::mutex> lock(mu_);
  common::Check(runner_shard < conns_.size(),
                "socket send addresses an unknown shard");
  ++stats_.requests;
  const Clock::time_point now = Clock::now();
  InFlightEntry entry;
  entry.shard = runner_shard;
  entry.origin_shard = request.origin_shard;
  entry.attempt = request.attempt;
  entry.deadline = now + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.request_deadline_seconds));
  if (!EnsureConnectedLocked(runner_shard, now)) {
    // Unreachable (or inside its backoff window): infer the failure now so
    // the service's retry/requeue machinery moves on immediately.
    SynthesizeFailureLocked(request.wire_seq, entry);
    cv_.notify_all();
    return common::Status::OK();
  }
  const std::vector<uint8_t> bytes = SerializeDetectRequest(request);
  if (!WriteFrame(conns_[runner_shard]->fd,
                  common::Span<const uint8_t>(bytes.data(), bytes.size()))
           .ok()) {
    MarkDisconnectedLocked(runner_shard);  // Fails whatever else rode it.
    SynthesizeFailureLocked(request.wire_seq, entry);
    cv_.notify_all();
    return common::Status::OK();
  }
  stats_.bytes_sent += bytes.size();
  inflight_[request.wire_seq] = entry;
  return common::Status::OK();
}

common::Result<DetectResponseMsg> SocketTransport::Receive() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!completed_.empty()) {
      DetectResponseMsg response = std::move(completed_.front());
      completed_.pop_front();
      ++stats_.responses;
      return response;
    }
    if (inflight_.empty()) {
      return common::Status::FailedPrecondition("no wire batch in flight");
    }
    // Deadline-based failure inference: give up on every batch whose
    // deadline passed (a server that is up but wedged produces no other
    // signal), then sleep until the next-earliest deadline or a completion.
    const Clock::time_point now = Clock::now();
    Clock::time_point earliest = Clock::time_point::max();
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (it->second.deadline <= now) {
        SynthesizeFailureLocked(it->first, it->second);
        it = inflight_.erase(it);
      } else {
        earliest = std::min(earliest, it->second.deadline);
        ++it;
      }
    }
    if (!completed_.empty()) continue;
    cv_.wait_until(lock, earliest);
  }
}

size_t SocketTransport::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size() + completed_.size();
}

TransportStats SocketTransport::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool SocketTransport::DispatchFrameLocked(uint32_t shard,
                                          const std::vector<uint8_t>& frame) {
  Conn& conn = *conns_[shard];
  const common::Span<const uint8_t> bytes(frame.data(), frame.size());
  const common::Result<WireKind> kind = PeekWireKind(bytes);
  if (!kind.ok()) return false;
  switch (kind.value()) {
    case WireKind::kDetectResponse: {
      common::Result<DetectResponseMsg> response = ParseDetectResponse(bytes);
      if (!response.ok()) return false;
      const auto it = inflight_.find(response.value().wire_seq);
      if (it == inflight_.end() || it->second.shard != shard ||
          it->second.attempt != response.value().attempt) {
        // The batch was already given up on (deadline inference) and a
        // retry may have superseded this attempt — the late answer is
        // dropped, never double-delivered.
        ++stats_.late_responses_dropped;
        return true;
      }
      stats_.bytes_received += frame.size();
      completed_.push_back(std::move(response).value());
      inflight_.erase(it);
      cv_.notify_all();
      return true;
    }
    case WireKind::kSessionAck: {
      common::Result<SessionAckMsg> ack = ParseSessionAck(bytes);
      if (!ack.ok()) return false;
      // Replayed registrations produce acks nobody waits for; they are
      // consumed here and forgotten when the waiter is gone.
      conn.pending_acks[ack.value().session_id] = ack.value().status;
      cv_.notify_all();
      return true;
    }
    case WireKind::kHeartbeatAck:
      return ParseHeartbeatAck(bytes).ok();
    default:
      // Request kinds arriving at the coordinator are a protocol violation.
      return false;
  }
}

void SocketTransport::ReaderLoop(uint32_t shard) {
  Conn& conn = *conns_[shard];
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (!conn.connected) {
      cv_.wait(lock);
      continue;
    }
    const int fd = conn.fd;
    const uint64_t generation = conn.generation;
    lock.unlock();
    common::Result<std::vector<uint8_t>> frame = ReadFrame(fd, kMaxFrameBytes);
    lock.lock();
    if (conn.generation != generation) {
      // Someone declared this connection dead (and may already have opened
      // a replacement) while we were blocked: the captured fd is ours to
      // close, and only ours — nobody reuses it before this close.
      ::close(fd);
      if (conn.fd == fd) conn.fd = -1;
      continue;
    }
    if (stop_) break;  // Destructor shut us down; it closes fds after join.
    if (!frame.ok() || !DispatchFrameLocked(shard, frame.value())) {
      MarkDisconnectedLocked(shard);
      ::close(fd);
      conn.fd = -1;
    }
  }
}

}  // namespace query
}  // namespace exsample
