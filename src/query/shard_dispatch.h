#ifndef EXSAMPLE_QUERY_SHARD_DISPATCH_H_
#define EXSAMPLE_QUERY_SHARD_DISPATCH_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/thread_pool.h"
#include "detect/detector.h"
#include "video/decode.h"
#include "video/sharded_repository.h"

namespace exsample {
namespace query {

/// \brief One shard's execution resources: the detector that serves its
/// frames, an optional decode store, and an optional private worker pool.
///
/// In a real deployment this is "one machine's worth" of a query: the shard's
/// video lives next to its decoder and detector, and only frame ids and
/// detections cross the network. In this reproduction the members are
/// in-process objects; the seam is what matters.
struct ShardContext {
  /// Serves `Detect` for the shard's frames. Required for non-empty shards.
  /// Frames are addressed by *global* id (the shard's detector shares the
  /// global ground truth), so a shard detector with the same options as the
  /// unsharded detector produces identical detections — the first half of the
  /// sharded-equals-unsharded equivalence contract.
  detect::ObjectDetector* detector = nullptr;
  /// Optional per-shard decode accounting. A shard's store keeps its own
  /// position state (each shard decodes independently), so sequential-read
  /// locality is per shard. Must be built over the *global* repository view.
  video::SimulatedVideoStore* store = nullptr;
  /// Optional private pool the shard's detect stage fans out over ("one GPU's
  /// worth of workers"). Null runs the shard's sub-batch on the dispatching
  /// thread.
  common::ThreadPool* pool = nullptr;
  /// Optional private I/O pool the shard's *decode prefetch* work runs on
  /// (the disk+decoder next to the shard's video, kept separate from the
  /// detect pool so decode and inference overlap instead of contending).
  /// Null falls back to the prefetcher's own pool.
  common::ThreadPool* io_pool = nullptr;
};

/// \brief Per-shard execution tallies.
struct ShardStats {
  uint64_t frames_detected = 0;
  uint64_t batches = 0;
  uint64_t frames_decoded = 0;
  double detect_seconds = 0.0;  ///< Simulated detector seconds charged.
  double decode_seconds = 0.0;  ///< Simulated decode seconds charged.
};

/// \brief Routes a picked batch to the shards that own its frames.
///
/// The batch pipeline's detect stage hands the whole batch to the dispatcher;
/// the dispatcher partitions it by owning shard (stable, preserving batch
/// order within each shard), runs every shard's sub-batch through that
/// shard's detector context, and scatters results back so result `i`
/// corresponds to `frames[i]` — the same contract as
/// `ObjectDetector::DetectBatch`, so shard count can never reorder what the
/// discriminator observes.
///
/// With `parallel_shards`, sub-batches of different shards run concurrently
/// (one dispatch thread per shard, each driving its own shard's pool), which
/// is what the shard-scaling bench measures. Results land in fixed slots and
/// detectors are per-frame deterministic, so parallel dispatch — like thread
/// count everywhere else in the pipeline — changes wall-clock only, never the
/// trace.
class ShardDispatcher {
 public:
  /// `repo` and every context member must outlive the dispatcher. `contexts`
  /// must have one entry per shard; non-empty shards require a detector.
  ShardDispatcher(const video::ShardedRepository* repo,
                  std::vector<ShardContext> contexts, bool parallel_shards = false);

  size_t NumShards() const { return contexts_.size(); }
  const video::ShardedRepository& repo() const { return *repo_; }

  /// \brief The shard owning a global frame. Frames past the repository are a
  /// fatal error (the strategy layer never emits them).
  uint32_t ShardOfFrame(video::FrameId frame) const;

  /// \brief Detects a whole batch across the owning shards; result `i`
  /// corresponds to `frames[i]`. `shards`, when non-empty, must be the
  /// precomputed owner of each frame (`ShardOfFrame`), saving the per-frame
  /// lookup; empty resolves owners internally.
  std::vector<detect::Detections> DetectBatch(common::Span<video::FrameId> frames,
                                              common::Span<const uint32_t> shards = {});

  /// \brief Simulated per-frame detector cost of one shard.
  double SecondsPerFrame(uint32_t shard) const;

  /// \brief Books `frames` of this session detected on `shard` by the shared
  /// `DetectorService` (which routes frames through the contexts directly,
  /// bypassing `DetectBatch`) into `Stats()`, counted as one batch — exactly
  /// what a `DetectBatch` call over the same sub-batch would have recorded,
  /// so per-shard observability reads the same with and without coalescing.
  void RecordServiceDetect(uint32_t shard, size_t frames);

  /// \brief True when every non-empty shard has a decode store (decode is
  /// then routed per shard instead of through the query-global store).
  bool HasStores() const { return has_stores_; }

  /// \brief Charges the decode of `frame` to `shard`'s store (which must be
  /// the frame's owner, as `ShardOfFrame` reports) and returns the seconds
  /// charged. Requires `HasStores()`. Synchronous: plans *and* performs the
  /// read (`PlanDecode` + `PerformRead` on the shard's store).
  double ChargeDecode(video::FrameId frame, uint32_t shard);

  /// \brief Accounting half of `ChargeDecode`: plans the read on `shard`'s
  /// store (advancing that shard's sequential position) and books the charge
  /// into `Stats()`, without performing the decode work. The prefetcher calls
  /// this in batch order — charges are bit-identical to `ChargeDecode` — and
  /// later performs the plan on the shard's I/O pool. Requires `HasStores()`.
  video::ReadPlan PlanDecode(video::FrameId frame, uint32_t shard);

  const ShardContext& Context(uint32_t shard) const { return contexts_[shard]; }
  const std::vector<ShardStats>& Stats() const { return stats_; }

 private:
  const video::ShardedRepository* repo_;
  std::vector<ShardContext> contexts_;
  std::vector<ShardStats> stats_;
  bool parallel_shards_ = false;
  bool has_stores_ = false;

  // Per-batch scratch, reused to keep the steady state allocation-free.
  std::vector<std::vector<size_t>> shard_slots_;  // Batch positions per shard.
  std::vector<std::vector<video::FrameId>> shard_frames_;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_SHARD_DISPATCH_H_
