#include "query/wire.h"

#include <cstring>

namespace exsample {
namespace query {

namespace {

// Fixed-width little-endian append/read helpers. memcpy keeps them free of
// alignment and strict-aliasing traps; the byte order is made explicit so the
// format is stable across hosts.

void AppendU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void AppendU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendI32(std::vector<uint8_t>* out, int32_t v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU32(out, bits);
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Bounds-checked sequential reader over a wire buffer. Every `Read*` checks
/// the remaining length first, so a truncated buffer fails with a clean
/// status instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(common::Span<const uint8_t> bytes) : bytes_(bytes) {}

  size_t Remaining() const { return bytes_.size() - pos_; }
  bool Done() const { return pos_ == bytes_.size(); }

  common::Status ReadU8(uint8_t* out) {
    if (Remaining() < 1) return Truncated();
    *out = bytes_[pos_++];
    return common::Status::OK();
  }

  common::Status ReadU16(uint16_t* out) {
    if (Remaining() < 2) return Truncated();
    *out = static_cast<uint16_t>(bytes_[pos_]) |
           static_cast<uint16_t>(static_cast<uint16_t>(bytes_[pos_ + 1]) << 8);
    pos_ += 2;
    return common::Status::OK();
  }

  common::Status ReadU32(uint32_t* out) {
    if (Remaining() < 4) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return common::Status::OK();
  }

  common::Status ReadU64(uint64_t* out) {
    if (Remaining() < 8) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return common::Status::OK();
  }

  common::Status ReadI32(int32_t* out) {
    uint32_t bits;
    common::Status s = ReadU32(&bits);
    if (!s.ok()) return s;
    std::memcpy(out, &bits, sizeof(*out));
    return common::Status::OK();
  }

  common::Status ReadF64(double* out) {
    uint64_t bits;
    common::Status s = ReadU64(&bits);
    if (!s.ok()) return s;
    std::memcpy(out, &bits, sizeof(*out));
    return common::Status::OK();
  }

  /// Validates a length prefix against the bytes actually left: each of the
  /// `count` elements occupies at least `min_element_bytes`, so a prefix the
  /// buffer cannot possibly satisfy is rejected *before* any allocation — a
  /// 2^60 count in a 40-byte buffer must not attempt a 2^60 resize.
  common::Status CheckCount(uint64_t count, size_t min_element_bytes) {
    if (min_element_bytes > 0 && count > Remaining() / min_element_bytes) {
      return common::Status::InvalidArgument(
          "wire message length prefix exceeds the buffer");
    }
    return common::Status::OK();
  }

 private:
  static common::Status Truncated() {
    return common::Status::InvalidArgument("truncated wire message");
  }

  common::Span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

void AppendHeader(std::vector<uint8_t>* out, WireKind kind, uint8_t flags) {
  AppendU32(out, kWireMagic);
  AppendU16(out, kWireVersion);
  AppendU8(out, static_cast<uint8_t>(kind));
  AppendU8(out, flags);
}

/// Parses and validates the 8-byte header; `flags` receives the kind-specific
/// trailing byte (reserved on requests, the `WireStatus` on responses).
common::Status ParseHeader(WireReader* reader, WireKind expected_kind,
                           uint8_t* flags) {
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t kind = 0;
  common::Status s = reader->ReadU32(&magic);
  if (!s.ok()) return s;
  if (magic != kWireMagic) {
    return common::Status::InvalidArgument("bad wire magic");
  }
  s = reader->ReadU16(&version);
  if (!s.ok()) return s;
  if (version != kWireVersion) {
    return common::Status::InvalidArgument("unsupported wire version");
  }
  s = reader->ReadU8(&kind);
  if (!s.ok()) return s;
  if (kind != static_cast<uint8_t>(expected_kind)) {
    return common::Status::InvalidArgument("unexpected wire message kind");
  }
  return reader->ReadU8(flags);
}

common::Status CheckFullyConsumed(const WireReader& reader) {
  if (!reader.Done()) {
    return common::Status::InvalidArgument("trailing bytes after wire message");
  }
  return common::Status::OK();
}

/// Shared body of the four control messages whose payload is one u64 after
/// the header (acks, unregister, heartbeats).
std::vector<uint8_t> SerializeU64Body(WireKind kind, uint8_t flags,
                                      uint64_t value) {
  std::vector<uint8_t> out;
  out.reserve(8 + 8);
  AppendHeader(&out, kind, flags);
  AppendU64(&out, value);
  return out;
}

common::Status ParseU64Body(common::Span<const uint8_t> bytes, WireKind kind,
                            uint8_t* flags, uint64_t* value) {
  WireReader reader(bytes);
  common::Status s = ParseHeader(&reader, kind, flags);
  if (!s.ok()) return s;
  s = reader.ReadU64(value);
  if (!s.ok()) return s;
  return CheckFullyConsumed(reader);
}

void AppendDetection(std::vector<uint8_t>* out, const detect::Detection& det) {
  AppendF64(out, det.box.x);
  AppendF64(out, det.box.y);
  AppendF64(out, det.box.w);
  AppendF64(out, det.box.h);
  AppendI32(out, det.class_id);
  AppendF64(out, det.confidence);
  AppendU64(out, det.source_instance);
}

constexpr size_t kDetectionBytes = 8 * 5 + 4 + 8;  // 4 box + conf doubles,
                                                   // class, instance.

common::Status ReadDetection(WireReader* reader, detect::Detection* det) {
  common::Status s = reader->ReadF64(&det->box.x);
  if (!s.ok()) return s;
  s = reader->ReadF64(&det->box.y);
  if (!s.ok()) return s;
  s = reader->ReadF64(&det->box.w);
  if (!s.ok()) return s;
  s = reader->ReadF64(&det->box.h);
  if (!s.ok()) return s;
  s = reader->ReadI32(&det->class_id);
  if (!s.ok()) return s;
  s = reader->ReadF64(&det->confidence);
  if (!s.ok()) return s;
  return reader->ReadU64(&det->source_instance);
}

}  // namespace

std::vector<uint8_t> SerializeDetectRequest(const DetectRequestMsg& msg) {
  std::vector<uint8_t> out;
  out.reserve(8 + 8 + 4 + 4 + 8 + 8 + msg.slots.size() * 16);
  AppendHeader(&out, WireKind::kDetectRequest, /*flags=*/0);
  AppendU64(&out, msg.wire_seq);
  AppendU32(&out, msg.origin_shard);
  AppendU32(&out, msg.attempt);
  AppendU64(&out, msg.repo_fingerprint);
  AppendU64(&out, msg.slots.size());
  for (const WireSlot& slot : msg.slots) {
    AppendU64(&out, slot.session_id);
    AppendU64(&out, slot.frame);
  }
  return out;
}

common::Result<DetectRequestMsg> ParseDetectRequest(
    common::Span<const uint8_t> bytes) {
  WireReader reader(bytes);
  uint8_t flags = 0;
  common::Status s = ParseHeader(&reader, WireKind::kDetectRequest, &flags);
  if (!s.ok()) return s;
  if (flags != 0) {
    return common::Status::InvalidArgument("reserved request flags set");
  }

  DetectRequestMsg msg;
  s = reader.ReadU64(&msg.wire_seq);
  if (!s.ok()) return s;
  s = reader.ReadU32(&msg.origin_shard);
  if (!s.ok()) return s;
  s = reader.ReadU32(&msg.attempt);
  if (!s.ok()) return s;
  s = reader.ReadU64(&msg.repo_fingerprint);
  if (!s.ok()) return s;

  uint64_t count = 0;
  s = reader.ReadU64(&count);
  if (!s.ok()) return s;
  s = reader.CheckCount(count, /*min_element_bytes=*/16);
  if (!s.ok()) return s;
  msg.slots.resize(static_cast<size_t>(count));
  for (WireSlot& slot : msg.slots) {
    s = reader.ReadU64(&slot.session_id);
    if (!s.ok()) return s;
    s = reader.ReadU64(&slot.frame);
    if (!s.ok()) return s;
  }
  s = CheckFullyConsumed(reader);
  if (!s.ok()) return s;
  return msg;
}

std::vector<uint8_t> SerializeDetectResponse(const DetectResponseMsg& msg) {
  std::vector<uint8_t> out;
  size_t detection_count = 0;
  for (const detect::Detections& dets : msg.detections) {
    detection_count += dets.size();
  }
  out.reserve(8 + 8 + 4 + 4 + 8 + 8 + msg.detections.size() * 8 +
              detection_count * kDetectionBytes);
  AppendHeader(&out, WireKind::kDetectResponse,
               /*flags=*/static_cast<uint8_t>(msg.status));
  AppendU64(&out, msg.wire_seq);
  AppendU32(&out, msg.origin_shard);
  AppendU32(&out, msg.attempt);
  AppendF64(&out, msg.charged_seconds);
  AppendU64(&out, msg.detections.size());
  for (const detect::Detections& dets : msg.detections) {
    AppendU64(&out, dets.size());
    for (const detect::Detection& det : dets) {
      AppendDetection(&out, det);
    }
  }
  return out;
}

common::Result<DetectResponseMsg> ParseDetectResponse(
    common::Span<const uint8_t> bytes) {
  WireReader reader(bytes);
  uint8_t flags = 0;
  common::Status s = ParseHeader(&reader, WireKind::kDetectResponse, &flags);
  if (!s.ok()) return s;
  if (flags > static_cast<uint8_t>(WireStatus::kRepoMismatch)) {
    return common::Status::InvalidArgument("unknown wire response status");
  }

  DetectResponseMsg msg;
  msg.status = static_cast<WireStatus>(flags);
  s = reader.ReadU64(&msg.wire_seq);
  if (!s.ok()) return s;
  s = reader.ReadU32(&msg.origin_shard);
  if (!s.ok()) return s;
  s = reader.ReadU32(&msg.attempt);
  if (!s.ok()) return s;
  s = reader.ReadF64(&msg.charged_seconds);
  if (!s.ok()) return s;

  uint64_t slot_count = 0;
  s = reader.ReadU64(&slot_count);
  if (!s.ok()) return s;
  s = reader.CheckCount(slot_count, /*min_element_bytes=*/8);
  if (!s.ok()) return s;
  msg.detections.resize(static_cast<size_t>(slot_count));
  for (detect::Detections& dets : msg.detections) {
    uint64_t det_count = 0;
    s = reader.ReadU64(&det_count);
    if (!s.ok()) return s;
    s = reader.CheckCount(det_count, kDetectionBytes);
    if (!s.ok()) return s;
    dets.resize(static_cast<size_t>(det_count));
    for (detect::Detection& det : dets) {
      s = ReadDetection(&reader, &det);
      if (!s.ok()) return s;
    }
  }
  s = CheckFullyConsumed(reader);
  if (!s.ok()) return s;
  return msg;
}

common::Result<WireKind> PeekWireKind(common::Span<const uint8_t> bytes) {
  // The contract is "validates the framed header": a buffer shorter than the
  // full 8-byte header is rejected even though the kind byte sits at offset
  // 6 — every parser will demand the flags byte anyway.
  if (bytes.size() < 8) {
    return common::Status::InvalidArgument("wire header truncated");
  }
  WireReader reader(bytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t kind = 0;
  common::Status s = reader.ReadU32(&magic);
  if (!s.ok()) return s;
  if (magic != kWireMagic) {
    return common::Status::InvalidArgument("bad wire magic");
  }
  s = reader.ReadU16(&version);
  if (!s.ok()) return s;
  if (version != kWireVersion) {
    return common::Status::InvalidArgument("unsupported wire version");
  }
  s = reader.ReadU8(&kind);
  if (!s.ok()) return s;
  if (kind < static_cast<uint8_t>(WireKind::kDetectRequest) ||
      kind > static_cast<uint8_t>(WireKind::kUnregisterSession)) {
    return common::Status::InvalidArgument("unknown wire message kind");
  }
  return static_cast<WireKind>(kind);
}

std::vector<uint8_t> SerializeRegisterSession(const RegisterSessionMsg& msg) {
  std::vector<uint8_t> out;
  out.reserve(8 + 8 + 8 + 4 + 8 * 6 + 8);
  AppendHeader(&out, WireKind::kRegisterSession, /*flags=*/0);
  AppendU64(&out, msg.session_id);
  AppendU64(&out, msg.repo_fingerprint);
  const detect::DetectorOptions& opts = msg.detector_options;
  AppendI32(&out, opts.target_class);
  AppendF64(&out, opts.miss_prob);
  AppendF64(&out, opts.edge_ramp_fraction);
  AppendF64(&out, opts.edge_min_factor);
  AppendF64(&out, opts.localization_sigma);
  AppendF64(&out, opts.false_positive_rate);
  AppendF64(&out, opts.seconds_per_frame);
  AppendU64(&out, opts.seed);
  return out;
}

common::Result<RegisterSessionMsg> ParseRegisterSession(
    common::Span<const uint8_t> bytes) {
  WireReader reader(bytes);
  uint8_t flags = 0;
  common::Status s = ParseHeader(&reader, WireKind::kRegisterSession, &flags);
  if (!s.ok()) return s;
  if (flags != 0) {
    return common::Status::InvalidArgument("reserved register flags set");
  }

  RegisterSessionMsg msg;
  s = reader.ReadU64(&msg.session_id);
  if (!s.ok()) return s;
  s = reader.ReadU64(&msg.repo_fingerprint);
  if (!s.ok()) return s;
  detect::DetectorOptions& opts = msg.detector_options;
  s = reader.ReadI32(&opts.target_class);
  if (!s.ok()) return s;
  s = reader.ReadF64(&opts.miss_prob);
  if (!s.ok()) return s;
  s = reader.ReadF64(&opts.edge_ramp_fraction);
  if (!s.ok()) return s;
  s = reader.ReadF64(&opts.edge_min_factor);
  if (!s.ok()) return s;
  s = reader.ReadF64(&opts.localization_sigma);
  if (!s.ok()) return s;
  s = reader.ReadF64(&opts.false_positive_rate);
  if (!s.ok()) return s;
  s = reader.ReadF64(&opts.seconds_per_frame);
  if (!s.ok()) return s;
  s = reader.ReadU64(&opts.seed);
  if (!s.ok()) return s;
  s = CheckFullyConsumed(reader);
  if (!s.ok()) return s;
  return msg;
}

std::vector<uint8_t> SerializeSessionAck(const SessionAckMsg& msg) {
  return SerializeU64Body(WireKind::kSessionAck,
                          static_cast<uint8_t>(msg.status), msg.session_id);
}

common::Result<SessionAckMsg> ParseSessionAck(
    common::Span<const uint8_t> bytes) {
  SessionAckMsg msg;
  uint8_t flags = 0;
  common::Status s =
      ParseU64Body(bytes, WireKind::kSessionAck, &flags, &msg.session_id);
  if (!s.ok()) return s;
  if (flags > static_cast<uint8_t>(WireStatus::kRepoMismatch)) {
    return common::Status::InvalidArgument("unknown session ack status");
  }
  msg.status = static_cast<WireStatus>(flags);
  return msg;
}

std::vector<uint8_t> SerializeUnregisterSession(
    const UnregisterSessionMsg& msg) {
  return SerializeU64Body(WireKind::kUnregisterSession, /*flags=*/0,
                          msg.session_id);
}

common::Result<UnregisterSessionMsg> ParseUnregisterSession(
    common::Span<const uint8_t> bytes) {
  UnregisterSessionMsg msg;
  uint8_t flags = 0;
  common::Status s = ParseU64Body(bytes, WireKind::kUnregisterSession, &flags,
                                  &msg.session_id);
  if (!s.ok()) return s;
  if (flags != 0) {
    return common::Status::InvalidArgument("reserved unregister flags set");
  }
  return msg;
}

std::vector<uint8_t> SerializeHeartbeat(const HeartbeatMsg& msg) {
  return SerializeU64Body(WireKind::kHeartbeat, /*flags=*/0, msg.nonce);
}

common::Result<HeartbeatMsg> ParseHeartbeat(common::Span<const uint8_t> bytes) {
  HeartbeatMsg msg;
  uint8_t flags = 0;
  common::Status s =
      ParseU64Body(bytes, WireKind::kHeartbeat, &flags, &msg.nonce);
  if (!s.ok()) return s;
  if (flags != 0) {
    return common::Status::InvalidArgument("reserved heartbeat flags set");
  }
  return msg;
}

std::vector<uint8_t> SerializeHeartbeatAck(const HeartbeatAckMsg& msg) {
  return SerializeU64Body(WireKind::kHeartbeatAck, /*flags=*/0, msg.nonce);
}

common::Result<HeartbeatAckMsg> ParseHeartbeatAck(
    common::Span<const uint8_t> bytes) {
  HeartbeatAckMsg msg;
  uint8_t flags = 0;
  common::Status s =
      ParseU64Body(bytes, WireKind::kHeartbeatAck, &flags, &msg.nonce);
  if (!s.ok()) return s;
  if (flags != 0) {
    return common::Status::InvalidArgument("reserved heartbeat flags set");
  }
  return msg;
}

}  // namespace query
}  // namespace exsample
