#ifndef EXSAMPLE_QUERY_TRACE_H_
#define EXSAMPLE_QUERY_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace exsample {
namespace query {

/// \brief One point on a query's discovery curve.
struct DiscoveryPoint {
  /// Frames processed by the detector so far.
  uint64_t samples = 0;
  /// Wall-clock seconds under the cost model (upfront + per-frame).
  double seconds = 0.0;
  /// Results the system believes it returned (|ans|; may include duplicates
  /// caused by tracker breakage and false positives).
  uint64_t reported_results = 0;
  /// Ground-truth distinct instances actually covered by the returned
  /// results (what recall is measured against).
  uint64_t true_distinct = 0;
};

/// \brief Full record of one query execution.
struct QueryTrace {
  std::string strategy_name;
  /// Ground-truth population size N of the queried class.
  uint64_t total_instances = 0;
  /// Points recorded whenever a counter changed, plus the final state.
  std::vector<DiscoveryPoint> points;
  DiscoveryPoint final;

  /// \brief Samples needed until `k` true distinct instances were found, or
  /// nullopt if the run ended first.
  std::optional<uint64_t> SamplesToTrueDistinct(uint64_t k) const;

  /// \brief Seconds needed until `k` true distinct instances were found.
  std::optional<double> SecondsToTrueDistinct(uint64_t k) const;

  /// \brief Samples needed to reach `recall` (fraction of total_instances,
  /// rounded up to a whole instance count).
  std::optional<uint64_t> SamplesToRecall(double recall) const;

  /// \brief Seconds needed to reach `recall`.
  std::optional<double> SecondsToRecall(double recall) const;

  /// \brief Number of true distinct instances found within the first
  /// `samples` detector invocations (step-function evaluation).
  uint64_t TrueDistinctAtSamples(uint64_t samples) const;

  /// \brief Instance count for a recall fraction (ceil, at least 1).
  uint64_t RecallTargetCount(double recall) const;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_TRACE_H_
