#ifndef EXSAMPLE_QUERY_TRANSPORT_H_
#define EXSAMPLE_QUERY_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/parking.h"
#include "common/ring_buffer.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "detect/detector.h"
#include "query/wire.h"

namespace exsample {
namespace query {

/// \brief Runner-side lookup resolving a wire slot's (session, shard) ids to
/// the detector context that serves it.
///
/// Wire messages carry ids, never pointers: a remote machine cannot
/// dereference the coordinator's memory. Each runner resolves ids against
/// *its own* session state — deployed to it by `RegisterSessionMsg` control
/// messages for a real remote transport, or shared in-process through a
/// `SessionDirectory` for the local/loopback ones. The interface is what the
/// shared execution core (`ExecuteWireRequest`) depends on, so a shard
/// server's message-materialized registry and the coordinator's pointer
/// directory run the exact same detect path.
///
/// Implementations must tolerate concurrent `Resolve` calls (runner threads)
/// interleaved with whatever registration mechanism they use.
class SessionResolver {
 public:
  virtual ~SessionResolver() = default;

  /// \brief The detector serving (`session_id`, `shard`), or null when the
  /// pair is unknown to this runner.
  virtual detect::ObjectDetector* Resolve(uint64_t session_id,
                                          uint32_t shard) const = 0;
};

/// \brief The in-process `SessionResolver`: a registry of raw detector
/// pointers under their (session, shard) ids.
///
/// This is the stand-in for the deployment step that makes ids meaningful
/// remotely — "the shard machine loaded this session's model configuration" —
/// collapsed to pointer sharing because coordinator and runners share an
/// address space. The `DetectorService` registers every session's per-shard
/// detectors on first submit, before any wire batch referencing them is sent.
///
/// Thread-safe: the coordinator registers while shard runner threads resolve.
class SessionDirectory : public SessionResolver {
 public:
  /// \brief Associates `detector` with (`session_id`, `shard`). Idempotent
  /// for an identical registration; re-registering a *different* detector
  /// under a live id is a fatal error (ids must be stable and unique —
  /// `SearchEngine` hands every session a fresh one).
  void Register(uint64_t session_id, uint32_t shard,
                detect::ObjectDetector* detector);

  /// \brief The detector serving (`session_id`, `shard`), or null when the
  /// pair was never registered.
  detect::ObjectDetector* Resolve(uint64_t session_id,
                                  uint32_t shard) const override;

  /// \brief Drops every registration of `session_id` — the session is gone
  /// and its detector pointers are about to dangle. No-op for unknown ids.
  void Unregister(uint64_t session_id);

  /// \brief Sessions registered so far (observability).
  size_t NumSessions() const;

 private:
  mutable std::mutex mu_;
  // Per session: detector per shard (indexed by shard id, nulls for shards
  // the session has no context on).
  std::unordered_map<uint64_t, std::vector<detect::ObjectDetector*>> sessions_;
};

/// \brief Transfer tallies of a transport.
struct TransportStats {
  /// Wire batches sent / responses delivered to the coordinator.
  uint64_t requests = 0;
  uint64_t responses = 0;
  /// Serialized bytes that crossed the wire (0 for `LocalTransport`, which
  /// never serializes).
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  /// Failures the transport injected (loopback fault injection only).
  uint64_t failures_injected = 0;
  /// Control-plane frames shipped (session register/unregister, heartbeats)
  /// — counted apart from `requests` so the exact send accounting
  /// (requests == batches + retries + requeues) survives the control plane.
  uint64_t control_messages = 0;
  /// Connections established / re-established after a drop (socket only).
  uint64_t connects = 0;
  uint64_t reconnects = 0;
  /// Failures *inferred* rather than reported: a per-request deadline
  /// expired, a connection dropped with batches in flight, or a connect
  /// failed — each synthesized as a `kUnavailable` completion so the
  /// service's retry → requeue machinery sees the same signal an explicit
  /// runner failure produces.
  uint64_t inferred_failures = 0;
  /// Responses discarded because their batch was already given up on (the
  /// deadline fired and a retry superseded the attempt).
  uint64_t late_responses_dropped = 0;
};

/// \brief The transport boundary between the `DetectorService`'s per-shard
/// queues and the shard runners that execute them.
///
/// One coordinator thread drives a transport: `Send` hands a sliced device
/// batch to a shard's runner (non-blocking for asynchronous transports),
/// `Receive` blocks for the next completed batch — completions may arrive in
/// **any order** (the wire sequence number matches them back; the service's
/// ticket slots tolerate any completion order by construction, which is
/// exactly why the trace survives distribution). `Send(runner_shard, ...)`
/// addresses the *runner*; the request's `origin_shard` names whose detector
/// contexts serve the frames, and the two differ only for batches requeued
/// off a failed shard.
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// \brief Transport name for reports ("local", "loopback", "socket").
  virtual const char* name() const = 0;

  /// \brief Binds the resolver *in-process* runners resolve wire slots
  /// against. Remote transports ignore it — their runners resolve against
  /// session state deployed by `RegisterSession` messages, which is the whole
  /// point of the control plane: nothing pointer-shaped crosses the seam.
  /// Called by the owning `DetectorService` before the first `Send`.
  virtual void BindLocalResolver(const SessionResolver* resolver) {
    (void)resolver;
  }

  /// \brief Deploys one session's detector configuration to every runner,
  /// before the first detect batch referencing the session is sent.
  ///
  /// In-process transports record the id (their runners resolve through the
  /// bound resolver); a socket transport ships the message and fails on a
  /// negative ack — `FailedPrecondition` for a repository-fingerprint
  /// mismatch (a mis-deployment, never retryable). Unreachable runners are
  /// *not* an error here: the registration is replayed on reconnect, and an
  /// unreachable runner surfaces through the detect path's failure inference,
  /// where retry/requeue can actually handle it.
  virtual common::Status RegisterSession(const RegisterSessionMsg& msg) {
    (void)msg;
    return common::Status::OK();
  }

  /// \brief Drops a session's runner-side state (fire-and-forget; the session
  /// is gone and its id must stop resolving).
  virtual void UnregisterSession(uint64_t session_id) { (void)session_id; }

  /// \brief Submits one wire batch for execution on `runner_shard`'s runner.
  ///
  /// Never fails for *environmental* reasons: a transport that cannot
  /// currently reach the runner synthesizes a `kUnavailable` completion for
  /// `Receive` instead, so connection weather flows through the same
  /// retry → requeue machinery as a runner-reported failure. A non-OK return
  /// is a caller bug (e.g. a shard index past the fleet).
  virtual common::Status Send(uint32_t runner_shard,
                              const DetectRequestMsg& request) = 0;

  /// \brief Blocks until a previously sent batch completes and returns its
  /// response. `FailedPrecondition` when nothing is in flight.
  virtual common::Result<DetectResponseMsg> Receive() = 0;

  /// \brief Batches sent but not yet received.
  virtual size_t InFlight() const = 0;

  /// \brief Snapshot of the transfer tallies, by value: a socket transport's
  /// receive thread mutates the counters concurrently with readers, so
  /// handing out a reference would be a latent data race for every transport
  /// that isn't single-threaded.
  virtual TransportStats Stats() const = 0;
};

/// \brief What `ExecuteWireRequest` does with a slot whose (session, shard)
/// the resolver does not know.
enum class UnresolvedSlotPolicy {
  /// In-process: an unregistered id is a protocol bug — crash loudly.
  kFatal,
  /// A shard server: the request may have raced a reconnect past the
  /// registration replay, and remote input must never crash the server —
  /// answer `kUnavailable` and let the coordinator re-register and retry.
  kUnavailable,
};

/// \brief Executes one wire request against a resolver: resolves every
/// slot's detector, fans the `Detect` calls over `pool` (inline when null),
/// and returns the `kOk` response with per-slot detections and the charged
/// detector seconds. This is the runner-side core every transport shares —
/// local, loopback, and the `exsample_shardd` socket server all wrap it.
DetectResponseMsg ExecuteWireRequest(
    const DetectRequestMsg& request, const SessionResolver& resolver,
    common::ThreadPool* pool,
    UnresolvedSlotPolicy policy = UnresolvedSlotPolicy::kFatal);

/// \brief The in-process transport: `Send` executes the batch synchronously
/// on the caller (fanning over the shard's pool) and queues the response for
/// `Receive`, with no serialization — today's execution path behind the
/// transport interface, bit-compatible with the service's built-in local
/// execution by construction (same detectors, same slicing, same slots).
class LocalTransport : public ShardTransport {
 public:
  /// `pools` — when non-empty, one per shard — name the worker pool each
  /// shard's batches fan out over; `default_pool` serves shards without one.
  explicit LocalTransport(size_t num_shards,
                          std::vector<common::ThreadPool*> pools = {},
                          common::ThreadPool* default_pool = nullptr);

  const char* name() const override { return "local"; }
  void BindLocalResolver(const SessionResolver* resolver) override;
  common::Status RegisterSession(const RegisterSessionMsg& msg) override;
  void UnregisterSession(uint64_t session_id) override;
  common::Status Send(uint32_t runner_shard,
                      const DetectRequestMsg& request) override;
  common::Result<DetectResponseMsg> Receive() override;
  size_t InFlight() const override { return completed_.size(); }
  TransportStats Stats() const override { return stats_; }

 private:
  const SessionResolver* resolver_ = nullptr;
  // Sessions the control plane deployed; Send enforces that every slot names
  // one, so a service that skipped `RegisterSession` fails in-process exactly
  // where a remote runner would reject the batch.
  std::unordered_set<uint64_t> registered_sessions_;
  std::vector<common::ThreadPool*> pools_;  // Per shard; may hold nulls.
  common::ThreadPool* default_pool_ = nullptr;
  std::deque<DetectResponseMsg> completed_;
  TransportStats stats_;
};

/// \brief Fault-injection knobs of a `LoopbackTransport`.
struct LoopbackTransportOptions {
  /// Wall-clock seconds each runner sleeps per request (simulated network +
  /// queueing latency of the remote hop).
  double latency_seconds = 0.0;
  /// Extra per-response delay drawn deterministically in [0, this) seconds,
  /// so completions of concurrently running shards reorder — the completion
  /// order a real fleet produces and the service must tolerate.
  double reorder_jitter_seconds = 0.0;
  /// Seed of the deterministic fault/jitter draws (keyed by wire_seq,
  /// attempt, and shard, so a rerun injects identical faults).
  uint64_t seed = 23;
  /// When >= 0, this runner permanently fails every request after serving
  /// `fail_after_requests` of them — the single-machine-dies scenario the
  /// requeue path exists for.
  int64_t fail_shard = -1;
  uint64_t fail_after_requests = 0;
  /// Per-attempt transient failure probability applied to every shard
  /// (deterministic coin; retries draw fresh coins).
  double failure_rate = 0.0;
  /// When non-zero, runners reject requests whose `repo_fingerprint` differs
  /// (deployment-mismatch detection; `kRepoMismatch`, never retried).
  uint64_t expected_fingerprint = 0;
  /// When non-empty, runner `s` is pinned to `runner_cpus[s % size()]`
  /// (best-effort, Linux only — see common/affinity.h). Placement keeps a
  /// shard's runner on the core next to its data instead of wherever the
  /// scheduler last migrated it; failures are silently ignored because
  /// correctness never depends on placement.
  std::vector<int> runner_cpus;
};

/// \brief The RPC stand-in: per-shard runner threads connected to the
/// coordinator by byte queues.
///
/// Every request and response crosses the thread boundary **only as wire
/// bytes** — the runner parses the coordinator's serialized request and the
/// coordinator parses the runner's serialized response, so anything a real
/// socket transport would corrupt, reorder, or lose has to survive the same
/// (de)serialization here. Runners execute concurrently (each fanning its
/// batches over its own shard pool, or inline on the runner thread), inject
/// configurable latency, response reordering, and failures, and the
/// completion queue delivers responses in whatever order they finish.
///
/// ## Queue mechanics (lock-free hot path)
///
/// Each runner's inbox and the shared completion outbox are bounded MPSC
/// rings: `Send` costs one ring push plus a waiter-counted wake (no mutex
/// while the runner is busy), and a completed response travels back the
/// same way. When a ring fills, the producer spills to a mutex-guarded
/// overflow deque instead of blocking — the transport keeps the old
/// unbounded-queue semantics (a Send never waits on a slow runner, a
/// runner never waits on a slow coordinator, so no cyclic blocking is
/// possible), while the steady-state path stays lock-free. Idle runners
/// spin briefly, then park on a per-runner `Parker`.
class LoopbackTransport : public ShardTransport {
 public:
  /// `pools` — when non-empty, one per shard — give each runner a private
  /// worker pool ("one GPU's worth" next to the shard's data); null entries
  /// detect inline on the runner thread. Runners never share a pool: the
  /// library's pools are single-driver.
  explicit LoopbackTransport(size_t num_shards,
                             std::vector<common::ThreadPool*> pools = {},
                             LoopbackTransportOptions options = {});
  ~LoopbackTransport() override;

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  const char* name() const override { return "loopback"; }
  void BindLocalResolver(const SessionResolver* resolver) override;
  /// Ships the serialized registration through every runner's inbox: the
  /// per-queue FIFO order guarantees a runner processes it before any detect
  /// batch sent afterwards, so no ack round-trip is needed in-process.
  common::Status RegisterSession(const RegisterSessionMsg& msg) override;
  void UnregisterSession(uint64_t session_id) override;
  common::Status Send(uint32_t runner_shard,
                      const DetectRequestMsg& request) override;
  common::Result<DetectResponseMsg> Receive() override;
  size_t InFlight() const override { return in_flight_; }
  TransportStats Stats() const override { return stats_; }

  size_t NumShards() const { return runners_.size(); }
  const LoopbackTransportOptions& options() const { return options_; }

 private:
  using ByteRing = common::MpscRingBuffer<std::vector<uint8_t>>;

  /// A bounded ring plus its overflow spill — the two together behave like
  /// the old unbounded deque, with the lock confined to the (rare) spill.
  struct SpillQueue {
    explicit SpillQueue(size_t ring_capacity) : ring(ring_capacity) {}

    void Push(std::vector<uint8_t> bytes);
    bool TryPop(std::vector<uint8_t>& out);
    bool Empty() const;

    ByteRing ring;
    std::mutex overflow_mu;
    std::deque<std::vector<uint8_t>> overflow;
    std::atomic<size_t> overflow_size{0};
  };

  struct Runner {
    explicit Runner(size_t ring_capacity) : inbox(ring_capacity) {}

    std::thread thread;
    SpillQueue inbox;          // Serialized requests and control frames.
    common::Parker parker;     // Runner parks here when the inbox is dry.
    std::atomic<bool> stop{false};
    // Runner-thread state (no locking needed).
    uint64_t requests_served = 0;
    // Sessions the control plane deployed to this runner; detect slots must
    // name one (the protocol contract a remote runner would enforce).
    std::unordered_set<uint64_t> registered_sessions;
  };

  void RunnerLoop(uint32_t shard);

  LoopbackTransportOptions options_;
  std::vector<common::ThreadPool*> pools_;  // Per shard; may hold nulls.
  // Written once by BindLocalResolver before the first Send; runner threads
  // read it only while handling requests enqueued afterwards (the inbox
  // ring's release/acquire handoff orders the accesses).
  const SessionResolver* resolver_ = nullptr;
  std::vector<std::unique_ptr<Runner>> runners_;

  // Completion queue: runners push serialized responses (ring first, spill
  // under the overflow lock only when full), the coordinator blocks in
  // Receive by spinning then parking.
  SpillQueue outbox_;
  common::Parker out_parker_;

  // Coordinator-side bookkeeping (one thread drives Send/Receive).
  size_t in_flight_ = 0;
  TransportStats stats_;
};

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_TRANSPORT_H_
