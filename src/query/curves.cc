#include "query/curves.h"

#include "common/math_util.h"

namespace exsample {
namespace query {

namespace {

// Collects the per-run metric; returns nullopt when fewer than half the runs
// produced a value (a median over the survivors would be biased optimistic).
template <typename Getter>
std::optional<double> MedianOf(const std::vector<QueryTrace>& runs, Getter getter) {
  std::vector<double> values;
  for (const QueryTrace& run : runs) {
    const auto v = getter(run);
    if (v.has_value()) values.push_back(static_cast<double>(*v));
  }
  if (values.empty() || values.size() * 2 < runs.size()) return std::nullopt;
  return common::Median(std::move(values));
}

}  // namespace

std::optional<double> MedianSamplesToRecall(const std::vector<QueryTrace>& runs,
                                            double recall) {
  return MedianOf(runs,
                  [recall](const QueryTrace& t) { return t.SamplesToRecall(recall); });
}

std::optional<double> MedianSecondsToRecall(const std::vector<QueryTrace>& runs,
                                            double recall) {
  return MedianOf(runs,
                  [recall](const QueryTrace& t) { return t.SecondsToRecall(recall); });
}

std::optional<double> SavingsRatio(const std::vector<QueryTrace>& baseline_runs,
                                   const std::vector<QueryTrace>& treatment_runs,
                                   double recall) {
  const auto base = MedianSecondsToRecall(baseline_runs, recall);
  const auto ours = MedianSecondsToRecall(treatment_runs, recall);
  if (!base.has_value() || !ours.has_value() || !(*ours > 0.0)) return std::nullopt;
  return *base / *ours;
}

std::vector<std::vector<double>> DistinctAtSampleGrid(
    const std::vector<QueryTrace>& runs, const std::vector<uint64_t>& sample_grid) {
  std::vector<std::vector<double>> matrix;
  matrix.reserve(runs.size());
  for (const QueryTrace& run : runs) {
    std::vector<double> row;
    row.reserve(sample_grid.size());
    for (uint64_t samples : sample_grid) {
      row.push_back(static_cast<double>(run.TrueDistinctAtSamples(samples)));
    }
    matrix.push_back(std::move(row));
  }
  return matrix;
}

}  // namespace query
}  // namespace exsample
