#ifndef EXSAMPLE_QUERY_SCHEDULER_H_
#define EXSAMPLE_QUERY_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/span.h"

namespace exsample {
namespace query {

/// \brief Which session scheduler `SearchEngine::RunConcurrent` uses to order
/// (and weight) `QuerySession::Step` calls across a concurrent workload.
enum class SchedulerKind {
  kFair,      ///< Round-robin: every live session, once per round (baseline).
  kPriority,  ///< Thompson-style marginal-result-rate priority.
  kDeadline,  ///< Deadline/budget-aware: smallest slack first.
};

/// \brief Lowercase name of a scheduler kind ("fair", "priority", "deadline").
const char* SchedulerKindName(SchedulerKind kind);

/// \brief Parses a scheduler name as `SchedulerKindName` prints it.
std::optional<SchedulerKind> ParseSchedulerKind(const std::string& name);

/// \brief What a scheduler may observe about one session when planning a
/// round. All fields are coordinator-side bookkeeping — a scheduler never
/// reaches into a session's strategy or detector state, so scheduling can
/// reorder work but cannot change what any session computes.
struct SessionSchedulerInfo {
  /// Steps granted so far (each step processes one strategy batch).
  uint64_t steps = 0;
  /// Frames the session has pushed through the detector so far.
  uint64_t samples = 0;
  /// Results reported by the discriminator so far.
  uint64_t reported_results = 0;
  /// The session's stop target ("find K distinct objects").
  uint64_t result_limit = 0;
  /// Simulated seconds charged so far (decode + detect + overhead).
  double seconds = 0.0;
  /// Budget in simulated seconds the session would like to finish within;
  /// 0 means none. Only the deadline scheduler reads it.
  double deadline_seconds = 0.0;
  /// True once no further step can make progress. Done sessions must not be
  /// scheduled.
  bool done = false;
};

/// \brief Per-session scheduling/coalescing tallies, mirroring the
/// `PrefetchStats` observability pattern: the driver and the shared
/// `DetectorService` fill them in; `QuerySession::scheduler_stats()` exposes
/// them read-only.
struct SessionSchedulerStats {
  /// Steps granted that made progress (strategy batches processed).
  uint64_t steps_granted = 0;
  /// Frames submitted through the shared detector service.
  uint64_t frames_submitted = 0;
  /// Of those, frames that ran in a device batch shared with another session.
  uint64_t frames_coalesced = 0;
  /// Device batches that contained this session's frames.
  uint64_t device_batches = 0;
  /// Of those, batches shared with at least one other session.
  uint64_t batches_shared = 0;
};

/// \brief Tuning knobs shared by the scheduler implementations.
struct SessionSchedulerOptions {
  /// Seed of the priority scheduler's Thompson draws. Scheduling is a pure
  /// function of (infos sequence, seed): fixed seed, fixed order.
  uint64_t seed = 17;
  /// Gamma prior over a session's marginal result rate (results per simulated
  /// second), the session-level analogue of ExSample's per-chunk belief
  /// (alpha0 + results, beta0 + seconds).
  double prior_alpha = 1.0;
  double prior_beta = 1.0;
  /// Starvation bound of the non-fair schedulers: every live session is
  /// granted at least one step per this many rounds, however low its
  /// priority, so no query can be deferred forever.
  uint64_t starvation_rounds = 4;
};

/// \brief Orders the `QuerySession::Step` calls of one round of a concurrent
/// workload.
///
/// The contract is deliberately narrow: a scheduler only *reorders and
/// weights* step grants. `PlanRound` appends session indices to `order`; the
/// driver steps them in that sequence (a session may appear several times —
/// each appearance is one extra step this round). Session state is fully
/// isolated, so any plan yields the same per-session traces as a solo run;
/// scheduling decides only which query's frames reach the scarce detector
/// first. Implementations must never emit a session whose `done` flag is set
/// and must emit at least one live session when one exists.
///
/// Schedulers are stateful (starvation counters, RNG streams) and are driven
/// by exactly one workload at a time.
class SessionScheduler {
 public:
  virtual ~SessionScheduler() = default;

  /// \brief Plans one round: appends the indices of the sessions to step, in
  /// order, to `order` (not cleared first; the driver clears it).
  virtual void PlanRound(common::Span<const SessionSchedulerInfo> sessions,
                         std::vector<size_t>* order) = 0;

  /// \brief Scheduler name for reports.
  virtual const char* name() const = 0;
};

/// \brief The baseline: every live session exactly once per round, in index
/// order — precisely the hard-coded loop `RunConcurrent` used to run, so the
/// fair scheduler is the bit-compatible default.
class FairScheduler : public SessionScheduler {
 public:
  void PlanRound(common::Span<const SessionSchedulerInfo> sessions,
                 std::vector<size_t>* order) override;
  const char* name() const override { return "fair"; }
};

/// \brief Marginal-result-rate priority, Thompson-style.
///
/// Each session carries a Gamma belief over its marginal result rate
/// (results per simulated second), updated from the same coordinator-side
/// tallies ExSample keeps per chunk: alpha = prior_alpha + reported_results,
/// beta = prior_beta + seconds. A round grants as many steps as there are
/// live sessions; grants are allocated in three layers:
///
///  1. Never-stepped sessions are explored first (one grant each, in index
///     order) — priorities mean nothing before a single observation, exactly
///     like ExSample's per-chunk initialization.
///  2. Sessions that have not yet reported *any* result outrank sessions
///     that have: the marginal utility of a session's next result is highest
///     when the user is still staring at an empty screen (this is what
///     optimizes aggregate time-to-first-result on skewed workloads).
///  3. Within each of those two tiers, every grant goes to the highest
///     Thompson-sampled rate — high-yield queries monopolize the detector
///     while posterior uncertainty keeps cold sessions explored.
///
/// The starvation bound guarantees every session still advances regardless
/// of its tier or sampled rate.
class PriorityScheduler : public SessionScheduler {
 public:
  explicit PriorityScheduler(SessionSchedulerOptions options);

  void PlanRound(common::Span<const SessionSchedulerInfo> sessions,
                 std::vector<size_t>* order) override;
  const char* name() const override { return "priority"; }

 private:
  SessionSchedulerOptions options_;
  common::Rng rng_;
  /// Rounds since each session was last granted a step (starvation guard).
  std::vector<uint64_t> rounds_waiting_;
};

/// \brief Deadline/budget-aware ordering: live sessions with a deadline are
/// stepped in ascending slack (deadline minus seconds spent — the closest to
/// blowing its budget goes first); sessions without a deadline follow in
/// index order. Every live session is stepped once per round, so this is a
/// pure reordering of the fair baseline.
class DeadlineScheduler : public SessionScheduler {
 public:
  void PlanRound(common::Span<const SessionSchedulerInfo> sessions,
                 std::vector<size_t>* order) override;
  const char* name() const override { return "deadline"; }
};

/// \brief Builds the scheduler for `kind`.
std::unique_ptr<SessionScheduler> MakeSessionScheduler(
    SchedulerKind kind, SessionSchedulerOptions options = {});

/// \brief Runs `inner->PlanRound` over the sub-workload `subset` (global
/// session indices into `sessions`) and appends the planned grants to
/// `order` as *global* indices.
///
/// This is the delegation seam of two-level scheduling (the serving layer's
/// weighted-fair tenant scheduler plans across tenants, then hands each
/// tenant's sessions to a per-tenant inner scheduler): the inner scheduler
/// sees a compacted info array and plans positions into it, which are
/// translated back here. Stateful inner schedulers key their per-session
/// state by compact position, so a caller must keep `subset` stable across
/// rounds (append-only, in increasing global index) — exactly what a
/// tenant's session list does.
void PlanRoundForSubset(SessionScheduler* inner,
                        common::Span<const SessionSchedulerInfo> sessions,
                        common::Span<const size_t> subset,
                        std::vector<size_t>* order);

}  // namespace query
}  // namespace exsample

#endif  // EXSAMPLE_QUERY_SCHEDULER_H_
