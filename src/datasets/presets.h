#ifndef EXSAMPLE_DATASETS_PRESETS_H_
#define EXSAMPLE_DATASETS_PRESETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "scene/generator.h"
#include "scene/ground_truth.h"
#include "video/chunking.h"
#include "video/repository.h"
#include "video/sharded_repository.h"

namespace exsample {
namespace datasets {

/// \brief One (dataset, object class) query of the paper's evaluation.
///
/// `instance_count`, `mean_duration_frames`, and `skew_s` are the knobs that
/// determine query difficulty: N and the p_i scale (Sec. III-A) plus the
/// chunk-level skew ExSample can exploit (Sec. IV-B). Counts and skew values
/// marked in presets.cc follow the paper's published numbers (Fig. 6) where
/// available; the rest are chosen to match each dataset's narrative (rare vs.
/// abundant classes, static vs. moving cameras).
struct QuerySpec {
  std::string class_name;
  int32_t class_id = 0;  ///< Assigned: index within the dataset's query list.
  uint64_t instance_count = 0;
  double mean_duration_frames = 0.0;
  double duration_sigma_log = 0.8;
  double skew_s = 1.0;
};

/// \brief How a dataset is partitioned into chunks.
enum class ChunkScheme {
  kPerClip,      ///< One chunk per clip (BDD's sub-minute clips; Sec. V-A).
  kFixedCount,   ///< Fixed number of equal chunks (20-minute chunks elsewhere).
};

/// \brief Full description of an emulated dataset.
struct DatasetSpec {
  std::string name;
  uint64_t total_frames = 0;
  size_t num_clips = 1;
  double fps = 30.0;
  ChunkScheme chunk_scheme = ChunkScheme::kFixedCount;
  size_t chunk_count = 60;
  std::vector<QuerySpec> queries;

  /// \brief Scan time of a proxy pass over the full dataset at `scan_fps`
  /// (Table I's "proxy (scan)" column).
  double ProxyScanSeconds(double scan_fps) const {
    return static_cast<double>(total_frames) / scan_fps;
  }

  /// \brief Finds a query spec by class name (nullptr when absent).
  const QuerySpec* FindQuery(const std::string& class_name) const;
};

/// \brief A materialized dataset: repository + chunking + ground truth.
class BuiltDataset {
 public:
  /// \brief Builds the dataset at a linear `scale`.
  ///
  /// Scaling multiplies the frame count and every duration by `scale`, which
  /// preserves the per-frame hit probabilities p_i, the instance counts N,
  /// and the chunk count — so the *number of samples* any strategy needs is
  /// approximately scale-invariant, while memory and wall-clock of the bench
  /// shrink. (Proxy scan cost is the exception: it is proportional to frame
  /// count, so Table I computes it from the unscaled spec.)
  static common::Result<BuiltDataset> Build(const DatasetSpec& spec, uint64_t seed,
                                            double scale = 1.0);

  const DatasetSpec& spec() const { return spec_; }
  const video::VideoRepository& repo() const { return repo_; }
  const video::Chunking& chunking() const { return chunking_; }
  const scene::GroundTruth& truth() const { return truth_; }

 private:
  BuiltDataset(DatasetSpec spec, video::VideoRepository repo, video::Chunking chunking,
               scene::GroundTruth truth)
      : spec_(std::move(spec)),
        repo_(std::move(repo)),
        chunking_(std::move(chunking)),
        truth_(std::move(truth)) {}

  DatasetSpec spec_;
  video::VideoRepository repo_;
  video::Chunking chunking_;
  scene::GroundTruth truth_;
};

/// \brief A materialized dataset split across shards: the same repository,
/// chunking, and ground truth as `BuiltDataset::Build` at the same seed and
/// scale (traces over the sharded build are bit-identical to the unsharded
/// one), plus the clip-aligned `ShardedRepository` an engine dispatches over
/// and — when the spec's chunk scheme is shard-aligned — each shard's local
/// chunk view.
class BuiltShardedDataset {
 public:
  /// \brief Builds the dataset and splits it into `num_shards` clip-aligned
  /// shards of near-equal frame counts.
  static common::Result<BuiltShardedDataset> Build(const DatasetSpec& spec,
                                                   size_t num_shards, uint64_t seed,
                                                   double scale = 1.0);

  const DatasetSpec& spec() const { return dataset_.spec(); }
  const BuiltDataset& dataset() const { return dataset_; }
  const video::ShardedRepository& sharded() const { return sharded_; }
  const video::Chunking& chunking() const { return dataset_.chunking(); }
  const scene::GroundTruth& truth() const { return dataset_.truth(); }

  /// \brief Per-shard chunk views in shard-local coordinates (composing them
  /// back with `ComposeShardChunkings` reproduces `chunking()`). Empty when
  /// the global chunking is not shard-aligned — fixed-count chunks may span
  /// shard boundaries; per-clip chunks never do.
  const std::vector<video::Chunking>& shard_chunkings() const {
    return shard_chunkings_;
  }

 private:
  BuiltShardedDataset(BuiltDataset dataset, video::ShardedRepository sharded,
                      std::vector<video::Chunking> shard_chunkings)
      : dataset_(std::move(dataset)),
        sharded_(std::move(sharded)),
        shard_chunkings_(std::move(shard_chunkings)) {}

  BuiltDataset dataset_;
  video::ShardedRepository sharded_;
  std::vector<video::Chunking> shard_chunkings_;
};

/// \name The six evaluation datasets (Sec. V-A)
/// Frame counts are set so that a 100 fps proxy scan reproduces Table I's
/// scan column (they agree with the paper's stated sizes where given: the
/// dashcam dataset is ~1.1M frames, BDD MOT is 1600 clips of ~200 frames).
/// @{
DatasetSpec DashcamSpec();      ///< 10h moving camera, 30 chunks, 2h54m scan.
DatasetSpec Bdd1kSpec();        ///< 1000 short clips = 1000 chunks, 54m scan.
DatasetSpec BddMotSpec();       ///< 1600 clips of ~200 frames, 53m scan.
DatasetSpec AmsterdamSpec();    ///< Static camera, 60 chunks, 9h50m scan.
DatasetSpec ArchieSpec();       ///< Static camera, 60 chunks, 9h49m scan.
DatasetSpec NightStreetSpec();  ///< Static camera, 60 chunks, 8h scan.
/// @}

/// \brief All six dataset specs, in the paper's Table I order.
std::vector<DatasetSpec> AllDatasetSpecs();

}  // namespace datasets
}  // namespace exsample

#endif  // EXSAMPLE_DATASETS_PRESETS_H_
