#include "datasets/presets.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "scene/skew.h"

namespace exsample {
namespace datasets {

const QuerySpec* DatasetSpec::FindQuery(const std::string& class_name) const {
  for (const QuerySpec& q : queries) {
    if (q.class_name == class_name) return &q;
  }
  return nullptr;
}

namespace {

// Shorthand for query rows. Class ids are assigned by AssignClassIds below.
QuerySpec Q(const char* name, uint64_t count, double duration, double skew,
            double sigma_log = 0.8) {
  QuerySpec q;
  q.class_name = name;
  q.instance_count = count;
  q.mean_duration_frames = duration;
  q.duration_sigma_log = sigma_log;
  q.skew_s = skew;
  return q;
}

void AssignClassIds(DatasetSpec* spec) {
  for (size_t i = 0; i < spec->queries.size(); ++i) {
    spec->queries[i].class_id = static_cast<int32_t>(i);
  }
}

}  // namespace

// Moving-camera dashcam footage: high skew for classes tied to location
// (bicycles cluster in the city segments of drives). N=249 / S=14 for
// bicycle are the paper's published values (Fig. 6).
DatasetSpec DashcamSpec() {
  DatasetSpec spec;
  spec.name = "dashcam";
  spec.total_frames = 1'044'000;  // 2h54m scan at 100 fps (Table I).
  spec.num_clips = 30;
  spec.chunk_scheme = ChunkScheme::kFixedCount;
  spec.chunk_count = 30;  // 10 hours in 20-minute chunks.
  spec.queries = {
      Q("bicycle", 249, 120, 14.0),
      Q("bus", 120, 300, 3.0),
      Q("fire hydrant", 300, 60, 2.5),
      Q("person", 2500, 150, 3.0),
      Q("stop sign", 400, 90, 5.0),
      Q("traffic light", 1200, 250, 4.0),
      Q("truck", 600, 200, 2.0),
  };
  AssignClassIds(&spec);
  return spec;
}

// 1000 sub-minute BDD clips; each clip is its own chunk, the challenging
// many-chunks regime of Sec. IV-C. N=509 / S=19 for motor are published.
DatasetSpec Bdd1kSpec() {
  DatasetSpec spec;
  spec.name = "BDD 1k";
  spec.total_frames = 324'000;  // 54m scan at 100 fps.
  spec.num_clips = 1000;
  spec.chunk_scheme = ChunkScheme::kPerClip;
  spec.queries = {
      Q("bike", 250, 40, 15.0),
      Q("bus", 300, 50, 10.0),
      Q("motor", 509, 35, 19.0),
      Q("person", 3000, 45, 8.0),
      Q("rider", 280, 40, 12.0),
      Q("traffic light", 4000, 35, 6.0),
      Q("traffic sign", 6000, 30, 5.0),
      Q("truck", 900, 50, 8.0),
  };
  AssignClassIds(&spec);
  return spec;
}

// 1600 BDD MOT clips of ~200 frames (the paper's numbers), per-clip chunks.
DatasetSpec BddMotSpec() {
  DatasetSpec spec;
  spec.name = "BDD MOT";
  spec.total_frames = 318'000;  // 53m scan at 100 fps; ~200 frames per clip.
  spec.num_clips = 1600;
  spec.chunk_scheme = ChunkScheme::kPerClip;
  spec.queries = {
      Q("bicycle", 220, 45, 10.0),
      Q("bus", 250, 60, 6.0),
      Q("car", 8000, 70, 3.0),
      Q("motorcycle", 180, 40, 12.0),
      Q("pedestrian", 2200, 60, 6.0),
      Q("rider", 260, 45, 9.0),
      Q("trailer", 60, 50, 18.0),
      Q("train", 15, 60, 25.0),
      Q("truck", 1000, 65, 5.0),
  };
  AssignClassIds(&spec);
  return spec;
}

// Static canal-side webcam: long-lived objects (boats drift by slowly, cars
// park), low spatial skew. N=588 / S=1.6 for boat are published; boat is the
// paper's worst case for ExSample (0.75x) precisely because skew is low and
// durations are long.
DatasetSpec AmsterdamSpec() {
  DatasetSpec spec;
  spec.name = "amsterdam";
  spec.total_frames = 3'540'000;  // 9h50m scan at 100 fps.
  spec.num_clips = 1;
  spec.chunk_scheme = ChunkScheme::kFixedCount;
  spec.chunk_count = 60;
  spec.queries = {
      Q("bicycle", 2000, 700, 2.0),
      Q("boat", 588, 7000, 1.6),
      Q("car", 3000, 400, 1.3),
      Q("dog", 400, 250, 2.5),
      Q("motorcycle", 200, 300, 3.0),
      Q("person", 5000, 350, 2.0),
      Q("truck", 1200, 300, 2.0),
  };
  AssignClassIds(&spec);
  return spec;
}

// Static urban webcam; car is extremely abundant with almost no skew
// (N=33546 / S=1.1 published), which is why ExSample ~ random there.
DatasetSpec ArchieSpec() {
  DatasetSpec spec;
  spec.name = "archie";
  spec.total_frames = 3'534'000;  // 9h49m scan at 100 fps.
  spec.num_clips = 1;
  spec.chunk_scheme = ChunkScheme::kFixedCount;
  spec.chunk_count = 60;
  spec.queries = {
      Q("bicycle", 1500, 400, 2.5),
      Q("bus", 800, 400, 2.0),
      Q("car", 33546, 600, 1.1),
      Q("motorcycle", 300, 250, 2.5),
      Q("person", 6000, 400, 1.8),
      Q("truck", 1600, 350, 2.0),
  };
  AssignClassIds(&spec);
  return spec;
}

// Static camera at night: person has moderate skew (published N=2078 /
// S=4.5); motorcycle is the rarest query in Table I (9m13s to 10% recall).
DatasetSpec NightStreetSpec() {
  DatasetSpec spec;
  spec.name = "night street";
  spec.total_frames = 2'880'000;  // 8h scan at 100 fps.
  spec.num_clips = 1;
  spec.chunk_scheme = ChunkScheme::kFixedCount;
  spec.chunk_count = 60;
  spec.queries = {
      Q("bus", 500, 500, 3.0),
      Q("car", 8000, 800, 2.0),
      Q("dog", 150, 200, 4.0),
      Q("motorcycle", 40, 250, 5.0),
      Q("person", 2078, 600, 4.5),
      Q("truck", 900, 400, 2.5),
  };
  AssignClassIds(&spec);
  return spec;
}

std::vector<DatasetSpec> AllDatasetSpecs() {
  return {Bdd1kSpec(),     BddMotSpec(), AmsterdamSpec(),
          ArchieSpec(),    DashcamSpec(), NightStreetSpec()};
}

common::Result<BuiltDataset> BuiltDataset::Build(const DatasetSpec& spec, uint64_t seed,
                                                 double scale) {
  if (!(scale > 0.0)) {
    return common::Status::InvalidArgument("scale must be positive");
  }
  DatasetSpec scaled = spec;
  scaled.total_frames = std::max<uint64_t>(
      spec.num_clips, static_cast<uint64_t>(std::llround(
                          static_cast<double>(spec.total_frames) * scale)));
  for (QuerySpec& q : scaled.queries) {
    q.mean_duration_frames = std::max(2.0, q.mean_duration_frames * scale);
  }

  // Spread frames over clips, remainder to the early clips.
  video::VideoRepository repo;
  const uint64_t base = scaled.total_frames / scaled.num_clips;
  const uint64_t extra = scaled.total_frames % scaled.num_clips;
  for (size_t c = 0; c < scaled.num_clips; ++c) {
    auto added = repo.AddClip(spec.name + "/clip" + std::to_string(c),
                              base + (c < extra ? 1 : 0), spec.fps);
    if (!added.ok()) return added.status();
  }

  auto chunking = scaled.chunk_scheme == ChunkScheme::kPerClip
                      ? video::MakePerClipChunks(repo)
                      : video::MakeFixedCountChunks(repo, scaled.chunk_count);
  if (!chunking.ok()) return chunking.status();

  common::Rng rng(common::HashCombine(seed, common::Mix64(spec.total_frames)));
  scene::SceneSpec scene_spec;
  scene_spec.total_frames = scaled.total_frames;
  for (const QuerySpec& q : scaled.queries) {
    scene::ClassPopulationSpec cls;
    cls.class_id = q.class_id;
    cls.name = q.class_name;
    cls.instance_count = q.instance_count;
    cls.duration.mean_frames = q.mean_duration_frames;
    cls.duration.sigma_log = q.duration_sigma_log;
    cls.duration.min_frames = 2.0;
    common::Rng weights_rng = rng.Fork();
    cls.placement = scene::PlacementSpec::ChunkWeights(scene::MakeSkewedChunkWeights(
        chunking.value().NumChunks(), q.skew_s, weights_rng));
    scene_spec.classes.push_back(std::move(cls));
  }
  auto truth = scene::GenerateScene(scene_spec, &chunking.value(), rng);
  if (!truth.ok()) return truth.status();
  return BuiltDataset(std::move(scaled), std::move(repo),
                      std::move(chunking).value(), std::move(truth).value());
}

common::Result<BuiltShardedDataset> BuiltShardedDataset::Build(const DatasetSpec& spec,
                                                               size_t num_shards,
                                                               uint64_t seed,
                                                               double scale) {
  auto dataset = BuiltDataset::Build(spec, seed, scale);
  if (!dataset.ok()) return dataset.status();
  // Sharding happens *after* the build: the repository, chunking, and ground
  // truth are exactly what the unsharded build produces, so queries over the
  // shards reproduce unsharded traces bit for bit.
  auto sharded = video::ShardedRepository::ShardByClips(dataset.value().repo(),
                                                        num_shards);
  if (!sharded.ok()) return sharded.status();
  std::vector<video::Chunking> shard_chunkings;
  auto split =
      video::SplitChunkingByShard(sharded.value(), dataset.value().chunking());
  if (split.ok()) {
    // Shard-aligned chunk scheme (per-clip chunks always are): each shard
    // gets its local chunk view. Fixed-count chunks may straddle a shard
    // boundary, in which case only the global view exists.
    shard_chunkings = std::move(split).value();
  }
  return BuiltShardedDataset(std::move(dataset).value(), std::move(sharded).value(),
                             std::move(shard_chunkings));
}

}  // namespace datasets
}  // namespace exsample
