#ifndef EXSAMPLE_DATASETS_SCENARIOS_H_
#define EXSAMPLE_DATASETS_SCENARIOS_H_

#include <cstdint>

#include "scene/ground_truth.h"
#include "video/chunking.h"
#include "video/repository.h"

namespace exsample {
namespace datasets {

/// \brief A materialized test/bench scenario: repository + chunking + ground
/// truth, built deterministically from a seed.
struct DistScenario {
  video::VideoRepository repo;
  video::Chunking chunking;
  scene::GroundTruth truth;
};

/// \brief The distributed-transport suite's scenario: 8 uniform clips, 16
/// fixed-count chunks, one abundant class (0) and one rare class (1).
///
/// This recipe is shared by the `dist` tests, `bench_dist_transport`, and the
/// `exsample_shardd` shard server: a coordinator and a shard server that
/// build it from the same (frames, seed) hold bit-identical ground truth —
/// the premise that lets a `RegisterSessionMsg` (detector options + seed +
/// repository fingerprint) fully determine a remote detector's output.
DistScenario BuildDistScenario(uint64_t frames = 80000, uint64_t seed = 5);

}  // namespace datasets
}  // namespace exsample

#endif  // EXSAMPLE_DATASETS_SCENARIOS_H_
