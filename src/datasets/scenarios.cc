#include "datasets/scenarios.h"

#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "scene/generator.h"

namespace exsample {
namespace datasets {

DistScenario BuildDistScenario(uint64_t frames, uint64_t seed) {
  common::Rng rng(seed);
  auto repo = video::VideoRepository::UniformClips(8, frames / 8);
  auto chunking = video::MakeFixedCountChunks(frames, 16).value();
  scene::SceneSpec spec;
  spec.total_frames = frames;
  scene::ClassPopulationSpec abundant;
  abundant.class_id = 0;
  abundant.instance_count = 100;
  abundant.duration.mean_frames = 150.0;
  abundant.placement = scene::PlacementSpec::NormalCenter(0.3);
  spec.classes.push_back(abundant);
  scene::ClassPopulationSpec rare;
  rare.class_id = 1;
  rare.instance_count = 8;
  rare.duration.mean_frames = 80.0;
  spec.classes.push_back(rare);
  auto truth = std::move(scene::GenerateScene(spec, &chunking, rng)).value();
  return DistScenario{std::move(repo), std::move(chunking), std::move(truth)};
}

}  // namespace datasets
}  // namespace exsample
