#include "detect/detector.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/hash.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace exsample {
namespace detect {

namespace {

uint64_t HashDouble(uint64_t seed, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return common::HashCombine(seed, bits);
}

}  // namespace

uint64_t DetectorOptionsHash(const DetectorOptions& options) {
  uint64_t h = common::HashCombine(0x44455448u /* "HTED" */,
                                   static_cast<uint64_t>(static_cast<uint32_t>(
                                       options.target_class)));
  h = HashDouble(h, options.miss_prob);
  h = HashDouble(h, options.edge_ramp_fraction);
  h = HashDouble(h, options.edge_min_factor);
  h = HashDouble(h, options.localization_sigma);
  h = HashDouble(h, options.false_positive_rate);
  h = HashDouble(h, options.seconds_per_frame);
  return common::HashCombine(h, options.seed);
}

std::vector<Detections> ObjectDetector::DetectBatch(
    common::Span<video::FrameId> frames, common::ThreadPool* pool) {
  std::vector<Detections> out(frames.size());
  // Frames are independent; results land in their index's slot, so the
  // output does not depend on which worker ran which frame. ParallelFor
  // itself degrades to an inline loop for single-thread pools or tiny jobs.
  if (pool != nullptr) {
    pool->ParallelFor(frames.size(),
                      [&](size_t i) { out[i] = Detect(frames[i]); });
  } else {
    for (size_t i = 0; i < frames.size(); ++i) out[i] = Detect(frames[i]);
  }
  return out;
}

Detections ThrottledDetector::Detect(video::FrameId frame) {
  std::this_thread::sleep_for(std::chrono::duration<double>(latency_seconds_));
  return inner_->Detect(frame);
}

DetectorOptions DetectorOptions::Perfect(int32_t target_class) {
  DetectorOptions opts;
  opts.target_class = target_class;
  opts.miss_prob = 0.0;
  opts.edge_min_factor = 1.0;
  opts.localization_sigma = 0.0;
  opts.false_positive_rate = 0.0;
  return opts;
}

SimulatedDetector::SimulatedDetector(const scene::GroundTruth* truth,
                                     DetectorOptions options)
    : truth_(truth), options_(options) {}

double SimulatedDetector::DetectionProbability(const scene::Trajectory& traj,
                                               video::FrameId frame) const {
  if (!traj.VisibleAt(frame)) return 0.0;
  const double duration = static_cast<double>(traj.DurationFrames());
  const double to_start = static_cast<double>(frame - traj.start_frame) + 1.0;
  const double to_end = static_cast<double>(traj.end_frame - frame);
  const double edge_distance = std::min(to_start, to_end);
  const double ramp = std::max(1.0, duration * options_.edge_ramp_fraction);
  const double ramp_pos = std::min(1.0, edge_distance / ramp);
  const double factor =
      options_.edge_min_factor + (1.0 - options_.edge_min_factor) * ramp_pos;
  return (1.0 - options_.miss_prob) * factor;
}

Detections SimulatedDetector::Detect(video::FrameId frame) {
  ++frames_processed_;
  // Per-frame deterministic stream: repeated calls on one frame agree.
  common::Rng rng(common::HashCombine(options_.seed, frame));
  Detections out;
  truth_->ForEachVisible(frame, [&](const scene::Trajectory& traj) {
    if (options_.target_class != scene::GroundTruth::kAllClasses &&
        traj.class_id != options_.target_class) {
      return;
    }
    const double p = DetectionProbability(traj, frame);
    if (!rng.Bernoulli(p)) return;
    common::Box box = traj.BoxAt(frame);
    if (options_.localization_sigma > 0.0) {
      const double jitter = options_.localization_sigma;
      box = box.Translated(rng.Normal(0.0, jitter * box.w),
                           rng.Normal(0.0, jitter * box.h));
      box = box.ScaledAboutCenter(std::exp(rng.Normal(0.0, jitter)));
    }
    Detection det;
    det.box = box;
    det.class_id = traj.class_id;
    det.confidence = common::Clamp(0.55 + 0.45 * p + rng.Normal(0.0, 0.05), 0.05, 1.0);
    det.source_instance = traj.instance_id;
    out.push_back(det);
  });
  if (options_.false_positive_rate > 0.0) {
    const uint64_t fp_count = rng.Poisson(options_.false_positive_rate);
    for (uint64_t i = 0; i < fp_count; ++i) {
      Detection det;
      const double size = rng.Uniform(0.02, 0.08);
      det.box = common::Box{rng.Uniform(0.0, 1.0 - size), rng.Uniform(0.0, 1.0 - size),
                            size, size};
      det.class_id = options_.target_class == scene::GroundTruth::kAllClasses
                         ? 0
                         : options_.target_class;
      det.confidence = rng.Uniform(0.2, 0.55);
      det.source_instance = scene::kNoInstance;
      out.push_back(det);
    }
  }
  return out;
}

}  // namespace detect
}  // namespace exsample
