#include "detect/proxy.h"

#include <cmath>

#include "common/hash.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace exsample {
namespace detect {

ProxyScorer::ProxyScorer(const scene::GroundTruth* truth, ProxyOptions options)
    : truth_(truth), options_(options) {}

double ProxyScorer::Score(video::FrameId frame) const {
  uint64_t visible = 0;
  truth_->ForEachVisible(frame, [&](const scene::Trajectory& traj) {
    if (options_.target_class == scene::GroundTruth::kAllClasses ||
        traj.class_id == options_.target_class) {
      ++visible;
    }
  });
  // Logistic response to the object count, centered so that empty frames sit
  // below 0.5 and occupied frames above.
  const double logit = options_.count_gain * (static_cast<double>(visible) - 0.5);
  double score = 1.0 / (1.0 + std::exp(-logit));
  if (options_.noise_sigma > 0.0) {
    common::Rng rng(common::HashCombine(options_.seed, frame));
    score += rng.Normal(0.0, options_.noise_sigma);
  }
  return common::Clamp(score, 0.0, 1.0);
}

std::vector<double> ProxyScorer::ScoreBatch(common::Span<video::FrameId> frames,
                                            common::ThreadPool* pool) const {
  std::vector<double> scores(frames.size());
  if (pool != nullptr) {
    pool->ParallelFor(frames.size(),
                      [&](size_t i) { scores[i] = Score(frames[i]); });
  } else {
    for (size_t i = 0; i < frames.size(); ++i) scores[i] = Score(frames[i]);
  }
  return scores;
}

std::vector<double> ProxyScorer::ScoreRange(video::FrameId begin, video::FrameId end,
                                            common::ThreadPool* pool) const {
  const size_t n = end > begin ? static_cast<size_t>(end - begin) : 0;
  std::vector<double> scores(n);
  if (pool != nullptr) {
    pool->ParallelFor(n, [&](size_t i) { scores[i] = Score(begin + i); });
  } else {
    for (size_t i = 0; i < n; ++i) scores[i] = Score(begin + i);
  }
  return scores;
}

}  // namespace detect
}  // namespace exsample
