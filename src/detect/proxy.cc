#include "detect/proxy.h"

#include <cmath>

#include "common/hash.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace exsample {
namespace detect {

ProxyScorer::ProxyScorer(const scene::GroundTruth* truth, ProxyOptions options)
    : truth_(truth), options_(options) {}

double ProxyScorer::Score(video::FrameId frame) const {
  uint64_t visible = 0;
  truth_->ForEachVisible(frame, [&](const scene::Trajectory& traj) {
    if (options_.target_class == scene::GroundTruth::kAllClasses ||
        traj.class_id == options_.target_class) {
      ++visible;
    }
  });
  // Logistic response to the object count, centered so that empty frames sit
  // below 0.5 and occupied frames above.
  const double logit = options_.count_gain * (static_cast<double>(visible) - 0.5);
  double score = 1.0 / (1.0 + std::exp(-logit));
  if (options_.noise_sigma > 0.0) {
    common::Rng rng(common::HashCombine(options_.seed, frame));
    score += rng.Normal(0.0, options_.noise_sigma);
  }
  return common::Clamp(score, 0.0, 1.0);
}

}  // namespace detect
}  // namespace exsample
