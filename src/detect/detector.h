#ifndef EXSAMPLE_DETECT_DETECTOR_H_
#define EXSAMPLE_DETECT_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/thread_pool.h"
#include "detect/detection.h"
#include "scene/ground_truth.h"
#include "video/repository.h"

namespace exsample {
namespace detect {

/// \brief Black-box object detector interface (paper Sec. II-A).
///
/// ExSample treats the detector as an expensive oracle: it inputs a frame and
/// outputs boxes. `SecondsPerFrame` drives all wall-clock accounting (the
/// paper measures ~20 fps end-to-end for detection including decode).
class ObjectDetector {
 public:
  virtual ~ObjectDetector() = default;

  /// \brief Runs detection on one frame.
  ///
  /// Implementations must be deterministic per frame: calling `Detect` twice
  /// on the same frame returns the same boxes, as a real model would. They
  /// must also tolerate concurrent `Detect` calls from different threads
  /// (frames are independent), so `DetectBatch` can fan out.
  virtual Detections Detect(video::FrameId frame) = 0;

  /// \brief Runs detection on a whole batch; result `i` corresponds to
  /// `frames[i]` regardless of execution order, so the output is
  /// deterministic for any pool size. When `pool` is null (or has one
  /// thread), the batch runs sequentially on the caller — bit-identical to a
  /// `Detect` loop. This is the Sec. III-F batch entry point GPU/remote
  /// implementations override to amortize per-call cost.
  virtual std::vector<Detections> DetectBatch(common::Span<video::FrameId> frames,
                                              common::ThreadPool* pool);

  /// \brief Amortized cost of one `Detect` call in seconds.
  virtual double SecondsPerFrame() const = 0;

  /// \brief Number of `Detect` calls so far.
  virtual uint64_t FramesProcessed() const = 0;
};

/// \brief Noise model of `SimulatedDetector`.
struct DetectorOptions {
  /// Only emit detections of this class (scene::GroundTruth::kAllClasses for
  /// every class). Distinct-object queries are single-class, and the paper's
  /// detector is fine-tuned per dataset for the queried classes.
  int32_t target_class = scene::GroundTruth::kAllClasses;
  /// Base probability of missing a clearly visible instance.
  double miss_prob = 0.05;
  /// Fraction of the track near each end where detectability degrades (the
  /// object is entering/leaving the frame, small or occluded).
  double edge_ramp_fraction = 0.1;
  /// Detection-probability multiplier at the very edge of a track.
  double edge_min_factor = 0.35;
  /// Relative localization noise applied to output boxes.
  double localization_sigma = 0.02;
  /// Expected false positives per frame (Poisson).
  double false_positive_rate = 0.0;
  /// Simulated inference cost (paper: ~20 fps end to end).
  double seconds_per_frame = 1.0 / 20.0;
  /// Seed for the per-frame deterministic noise.
  uint64_t seed = 7;

  /// \brief An idealized detector: no misses, no noise, no false positives.
  /// Used by the Sec. IV simulations, which study sampling in isolation.
  static DetectorOptions Perfect(int32_t target_class);
};

/// \brief Stable 64-bit hash of a detector configuration, folding in every
/// field (doubles by bit pattern, so even denormal-level differences count).
///
/// `SimulatedDetector` is a pure per-frame function of (truth, options,
/// frame): two detectors whose options hash equal produce identical
/// detections on identical frames over the same ground truth. That makes
/// this hash one third of the cross-query reuse key (`reuse::ReuseKey`) —
/// cached detections are only served to sessions whose detector would have
/// computed the same bytes.
uint64_t DetectorOptionsHash(const DetectorOptions& options);

/// \brief Simulated object detector backed by scene ground truth.
///
/// For every instance visible in the frame, a deterministic per-frame coin
/// decides detection: P(detect) = (1 - miss_prob) * edge_factor, where the
/// edge factor ramps from `edge_min_factor` at the first/last frames of a
/// track to 1 in its middle. Detected boxes get localization jitter; false
/// positives are added at a Poisson rate. This models exactly the failure
/// modes the paper's Sec. I motivates ("the one frame we look at may not show
/// the light clearly, causing the detector to miss it completely").
class SimulatedDetector : public ObjectDetector {
 public:
  SimulatedDetector(const scene::GroundTruth* truth, DetectorOptions options);

  Detections Detect(video::FrameId frame) override;
  double SecondsPerFrame() const override { return options_.seconds_per_frame; }
  uint64_t FramesProcessed() const override {
    return frames_processed_.load(std::memory_order_relaxed);
  }

  /// \brief Probability that `Detect` reports the given instance in `frame`
  /// (exposed for tests and for the track propagator's observation model).
  double DetectionProbability(const scene::Trajectory& traj,
                              video::FrameId frame) const;

  const DetectorOptions& options() const { return options_; }

 private:
  const scene::GroundTruth* truth_;
  DetectorOptions options_;
  // Atomic so DetectBatch can fan Detect calls across the thread pool.
  std::atomic<uint64_t> frames_processed_{0};
};

/// \brief Decorator that adds fixed wall-clock latency to every `Detect`
/// call, emulating a detector bound by device latency (GPU inference, a
/// remote model server) rather than CPU work.
///
/// This is what makes the batch pipeline's parallelism measurable in
/// benchmarks: latency-bound calls overlap across the thread pool, so the
/// detect stage's frames/sec scales with threads even though each individual
/// call is no faster. Detections are delegated unchanged, so traces are
/// identical to the wrapped detector's.
class ThrottledDetector : public ObjectDetector {
 public:
  /// `inner` must outlive this object. `latency_seconds` of real time is
  /// slept on every `Detect` call.
  ThrottledDetector(ObjectDetector* inner, double latency_seconds)
      : inner_(inner), latency_seconds_(latency_seconds) {}

  Detections Detect(video::FrameId frame) override;
  double SecondsPerFrame() const override { return inner_->SecondsPerFrame(); }
  uint64_t FramesProcessed() const override { return inner_->FramesProcessed(); }

 private:
  ObjectDetector* inner_;
  double latency_seconds_;
};

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_DETECTOR_H_
