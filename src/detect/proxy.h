#ifndef EXSAMPLE_DETECT_PROXY_H_
#define EXSAMPLE_DETECT_PROXY_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/thread_pool.h"
#include "scene/ground_truth.h"
#include "video/repository.h"

namespace exsample {
namespace detect {

/// \brief Quality/cost knobs of the simulated proxy model.
struct ProxyOptions {
  /// The class the proxy was trained to score.
  int32_t target_class = scene::GroundTruth::kAllClasses;
  /// Standard deviation of the score noise. 0 gives a *perfect* proxy: every
  /// frame containing the target outscores every frame that does not —
  /// deliberately the strongest possible version of the baseline (the paper's
  /// Table I argument holds even for a perfect proxy).
  double noise_sigma = 0.15;
  /// Logistic gain applied to the visible-instance count.
  double count_gain = 2.0;
  /// Scoring throughput (paper: ~100 fps, bound by io+decode; Sec. V-B).
  double seconds_per_frame = 1.0 / 100.0;
  /// Seed for the per-frame deterministic noise.
  uint64_t seed = 11;
};

/// \brief Simulated BlazeIt-style proxy model: a cheap per-frame score
/// correlated with the presence of the target class.
///
/// Proxy-based systems must score *every* frame before returning their first
/// result; `ProxyGuidedStrategy` charges `seconds_per_frame * total_frames`
/// of upfront scan cost before using these scores.
class ProxyScorer {
 public:
  ProxyScorer(const scene::GroundTruth* truth, ProxyOptions options);

  /// \brief Deterministic per-frame score in [0, 1] (higher = more likely to
  /// contain a new-to-the-proxy target object). Safe to call concurrently.
  double Score(video::FrameId frame) const;

  /// \brief Bulk scoring: result `i` is `Score(frames[i])`. Fans out over
  /// `pool` when given (scores are per-frame deterministic, so the output is
  /// independent of thread count).
  std::vector<double> ScoreBatch(common::Span<video::FrameId> frames,
                                 common::ThreadPool* pool = nullptr) const;

  /// \brief Scores the contiguous range [begin, end) — the full scan a
  /// proxy-guided query pays up front, parallelized across `pool`.
  std::vector<double> ScoreRange(video::FrameId begin, video::FrameId end,
                                 common::ThreadPool* pool = nullptr) const;

  /// \brief Cost of scoring one frame, in seconds.
  double SecondsPerFrame() const { return options_.seconds_per_frame; }

  const ProxyOptions& options() const { return options_; }

 private:
  const scene::GroundTruth* truth_;
  ProxyOptions options_;
};

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_PROXY_H_
