#ifndef EXSAMPLE_DETECT_DETECTION_H_
#define EXSAMPLE_DETECT_DETECTION_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "scene/trajectory.h"

namespace exsample {
namespace detect {

/// \brief One detector output box.
struct Detection {
  common::Box box;
  int32_t class_id = 0;
  double confidence = 0.0;
  /// Ground-truth instance that produced this detection, or
  /// `scene::kNoInstance` for a false positive. Only oracle components and
  /// the evaluation harness may read this; realistic components (the IoU
  /// tracker discriminator's matching logic) must not use it for matching.
  scene::InstanceId source_instance = scene::kNoInstance;

  /// \brief True when the detection stems from a real instance.
  bool IsTruePositive() const { return source_instance != scene::kNoInstance; }
};

using Detections = std::vector<Detection>;

}  // namespace detect
}  // namespace exsample

#endif  // EXSAMPLE_DETECT_DETECTION_H_
