#ifndef EXSAMPLE_OPT_OPTIMAL_WEIGHTS_H_
#define EXSAMPLE_OPT_OPTIMAL_WEIGHTS_H_

#include <cstdint>
#include <vector>

#include "scene/trajectory.h"
#include "video/chunking.h"

namespace exsample {
namespace opt {

/// \brief Sparse per-instance, per-chunk conditional detection probabilities.
///
/// Entry p_ij is the probability of seeing instance i in a frame drawn
/// uniformly from chunk j: (frames of i inside chunk j) / |chunk j|
/// (Sec. IV-A's "M-dimensional vector p = (p_ij)"). Stored CSR by instance;
/// most instances overlap only one or two chunks.
class ChunkProbabilityMatrix {
 public:
  /// \brief Builds the matrix from ground-truth trajectories.
  ChunkProbabilityMatrix(const std::vector<scene::Trajectory>& trajectories,
                         const video::Chunking& chunking, int32_t class_id);

  /// \brief Direct construction from dense per-instance probability rows
  /// (used by simulation tests); zero entries are dropped.
  ChunkProbabilityMatrix(const std::vector<std::vector<double>>& dense_rows,
                         size_t num_chunks);

  size_t NumInstances() const { return row_offsets_.size() - 1; }
  size_t NumChunks() const { return num_chunks_; }

  /// \brief q_i = sum_j p_ij w_j for every instance (the per-sample hit
  /// probability under chunk weights `w`).
  std::vector<double> HitProbabilities(const std::vector<double>& weights) const;

  /// \brief Iterates row i's nonzero entries: fn(chunk, p).
  template <typename Fn>
  void ForEachEntry(size_t instance, Fn&& fn) const {
    for (uint64_t k = row_offsets_[instance]; k < row_offsets_[instance + 1]; ++k) {
      fn(cols_[k], values_[k]);
    }
  }

 private:
  size_t num_chunks_;
  std::vector<uint64_t> row_offsets_;
  std::vector<uint32_t> cols_;
  std::vector<double> values_;
};

/// \brief Expected number of distinct instances found after `n` samples when
/// chunks are sampled with fixed weights `w` (the objective of Eq. IV.1):
/// sum_i 1 - (1 - p_i . w)^n.
double ExpectedDiscoveries(const ChunkProbabilityMatrix& matrix,
                           const std::vector<double>& weights, double n);

/// \brief Solver configuration for `OptimalWeights`.
struct OptimalWeightsOptions {
  /// Maximum projected-gradient iterations.
  size_t max_iterations = 400;
  /// Stop when the objective improves by less than this (relative).
  double tolerance = 1e-9;
};

/// \brief Result of the Eq. IV.1 optimization.
struct OptimalWeightsResult {
  std::vector<double> weights;
  double expected_discoveries = 0.0;
  size_t iterations = 0;
};

/// \brief Solves Eq. IV.1: argmax_w sum_i 1 - (1 - p_i . w)^n over the
/// probability simplex, by projected gradient ascent with backtracking.
///
/// The objective is concave in w (composition of the concave increasing
/// x -> 1-(1-x)^n with a linear map), so the first-order method converges to
/// the global optimum — the paper's offline benchmark, normally solved with
/// CVXPY. This is *not* a practical policy (it needs the hidden p_ij); it
/// upper-bounds what ExSample can achieve (Figs. 3 and 4's dashed lines).
OptimalWeightsResult OptimalWeights(const ChunkProbabilityMatrix& matrix, double n,
                                    OptimalWeightsOptions options = {});

}  // namespace opt
}  // namespace exsample

#endif  // EXSAMPLE_OPT_OPTIMAL_WEIGHTS_H_
