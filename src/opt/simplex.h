#ifndef EXSAMPLE_OPT_SIMPLEX_H_
#define EXSAMPLE_OPT_SIMPLEX_H_

#include <cstddef>
#include <vector>

namespace exsample {
namespace opt {

/// \brief Euclidean projection of `v` onto the probability simplex
/// {w : w_i >= 0, sum w_i = 1} (Duchi et al., ICML 2008).
///
/// Used by the projected-gradient solver for the paper's Eq. IV.1, replacing
/// the authors' CVXPY call. O(d log d).
std::vector<double> ProjectToSimplex(std::vector<double> v);

/// \brief The uniform weight vector of dimension d (d > 0).
std::vector<double> UniformWeights(size_t d);

}  // namespace opt
}  // namespace exsample

#endif  // EXSAMPLE_OPT_SIMPLEX_H_
