#include "opt/simplex.h"

#include <algorithm>
#include <cassert>

namespace exsample {
namespace opt {

std::vector<double> ProjectToSimplex(std::vector<double> v) {
  assert(!v.empty());
  std::vector<double> sorted(v);
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0.0;
  double tau = 0.0;
  size_t rho = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    const double candidate = (cumulative - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      rho = i + 1;
      tau = candidate;
    }
  }
  (void)rho;
  for (double& x : v) x = std::max(0.0, x - tau);
  return v;
}

std::vector<double> UniformWeights(size_t d) {
  assert(d > 0);
  return std::vector<double>(d, 1.0 / static_cast<double>(d));
}

}  // namespace opt
}  // namespace exsample
