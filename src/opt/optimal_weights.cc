#include "opt/optimal_weights.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "opt/simplex.h"

namespace exsample {
namespace opt {

ChunkProbabilityMatrix::ChunkProbabilityMatrix(
    const std::vector<scene::Trajectory>& trajectories,
    const video::Chunking& chunking, int32_t class_id)
    : num_chunks_(chunking.NumChunks()) {
  row_offsets_.push_back(0);
  for (const scene::Trajectory& traj : trajectories) {
    if (class_id >= 0 && traj.class_id != class_id) continue;
    // Walk the chunks overlapped by [start, end).
    auto first_chunk = chunking.ChunkOfFrame(traj.start_frame);
    assert(first_chunk.ok());
    for (uint32_t j = first_chunk.value(); j < num_chunks_; ++j) {
      const video::Chunk& chunk = chunking.GetChunk(j);
      if (chunk.begin >= traj.end_frame) break;
      const video::FrameId lo = std::max(chunk.begin, traj.start_frame);
      const video::FrameId hi = std::min(chunk.end, traj.end_frame);
      if (hi > lo) {
        cols_.push_back(j);
        values_.push_back(static_cast<double>(hi - lo) /
                          static_cast<double>(chunk.Size()));
      }
    }
    row_offsets_.push_back(cols_.size());
  }
}

ChunkProbabilityMatrix::ChunkProbabilityMatrix(
    const std::vector<std::vector<double>>& dense_rows, size_t num_chunks)
    : num_chunks_(num_chunks) {
  row_offsets_.push_back(0);
  for (const auto& row : dense_rows) {
    assert(row.size() == num_chunks);
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j] > 0.0) {
        cols_.push_back(static_cast<uint32_t>(j));
        values_.push_back(row[j]);
      }
    }
    row_offsets_.push_back(cols_.size());
  }
}

std::vector<double> ChunkProbabilityMatrix::HitProbabilities(
    const std::vector<double>& weights) const {
  assert(weights.size() == num_chunks_);
  std::vector<double> q(NumInstances(), 0.0);
  for (size_t i = 0; i < q.size(); ++i) {
    double acc = 0.0;
    ForEachEntry(i, [&](uint32_t j, double p) { acc += p * weights[j]; });
    q[i] = std::min(acc, 1.0);
  }
  return q;
}

double ExpectedDiscoveries(const ChunkProbabilityMatrix& matrix,
                           const std::vector<double>& weights, double n) {
  const std::vector<double> q = matrix.HitProbabilities(weights);
  double total = 0.0;
  for (double qi : q) total += 1.0 - common::PowOneMinus(qi, n);
  return total;
}

OptimalWeightsResult OptimalWeights(const ChunkProbabilityMatrix& matrix, double n,
                                    OptimalWeightsOptions options) {
  const size_t d = matrix.NumChunks();
  OptimalWeightsResult result;
  result.weights = UniformWeights(d);
  result.expected_discoveries = ExpectedDiscoveries(matrix, result.weights, n);

  // Backtracking step size; the gradient scale varies over orders of
  // magnitude with n, so adapt rather than fix.
  double step = 1.0;
  std::vector<double> gradient(d);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Gradient: df/dw_j = n * sum_i (1 - q_i)^{n-1} p_ij.
    const std::vector<double> q = matrix.HitProbabilities(result.weights);
    std::fill(gradient.begin(), gradient.end(), 0.0);
    for (size_t i = 0; i < q.size(); ++i) {
      const double factor = n * common::PowOneMinus(q[i], n - 1.0);
      if (factor <= 0.0) continue;
      matrix.ForEachEntry(
          i, [&](uint32_t j, double p) { gradient[j] += factor * p; });
    }

    // Backtracking line search on the projected step.
    bool improved = false;
    for (int backtrack = 0; backtrack < 40; ++backtrack) {
      std::vector<double> candidate(d);
      for (size_t j = 0; j < d; ++j) {
        candidate[j] = result.weights[j] + step * gradient[j];
      }
      candidate = ProjectToSimplex(std::move(candidate));
      const double value = ExpectedDiscoveries(matrix, candidate, n);
      if (value > result.expected_discoveries) {
        const double gain = value - result.expected_discoveries;
        result.weights = std::move(candidate);
        result.expected_discoveries = value;
        result.iterations = iter + 1;
        improved = true;
        step *= 1.5;  // Reward successful steps.
        if (gain < options.tolerance * std::max(1.0, value)) {
          return result;
        }
        break;
      }
      step *= 0.5;
      if (step < 1e-18) return result;
    }
    if (!improved) return result;
  }
  return result;
}

}  // namespace opt
}  // namespace exsample
