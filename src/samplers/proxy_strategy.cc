#include "samplers/proxy_strategy.h"

#include <algorithm>

namespace exsample {
namespace samplers {

ProxyGuidedStrategy::ProxyGuidedStrategy(const video::VideoRepository* repo,
                                         const detect::ProxyScorer* scorer,
                                         ProxyGuidedOptions options,
                                         common::ThreadPool* scan_pool)
    : options_(options) {
  const uint64_t total = repo->TotalFrames();
  // The mandatory full scan: score every frame. Charged as upfront cost even
  // though we materialize it eagerly here (and fan it across the pool when
  // one is available — the scan is embarrassingly parallel).
  upfront_seconds_ = static_cast<double>(total) * scorer->SecondsPerFrame();
  const std::vector<double> raw = scorer->ScoreRange(0, total, scan_pool);
  // Quantize to float as before so tie-breaking (and thus the frame order)
  // is independent of the scan path.
  std::vector<float> scores(total);
  for (uint64_t f = 0; f < total; ++f) {
    scores[f] = static_cast<float>(raw[f]);
  }
  order_.resize(total);
  for (uint64_t f = 0; f < total; ++f) order_[f] = f;
  std::stable_sort(order_.begin(), order_.end(),
                   [&scores](video::FrameId a, video::FrameId b) {
                     return scores[a] > scores[b];
                   });
}

bool ProxyGuidedStrategy::NearProcessed(video::FrameId frame) const {
  if (options_.duplicate_window == 0 || processed_.empty()) return false;
  const uint64_t w = options_.duplicate_window;
  auto it = processed_.lower_bound(frame >= w ? frame - w : 0);
  return it != processed_.end() && *it <= frame + w;
}

std::optional<video::FrameId> ProxyGuidedStrategy::NextFrame() {
  while (cursor_ < order_.size()) {
    const video::FrameId frame = order_[cursor_++];
    if (NearProcessed(frame)) continue;  // Near-duplicate: never processed.
    processed_.insert(frame);
    return frame;
  }
  return std::nullopt;
}

std::vector<video::FrameId> ProxyGuidedStrategy::NextBatch(size_t max_frames) {
  std::vector<video::FrameId> batch;
  batch.reserve(max_frames);
  while (batch.size() < max_frames && cursor_ < order_.size()) {
    const video::FrameId frame = order_[cursor_++];
    if (NearProcessed(frame)) continue;  // Near-duplicate: never processed.
    processed_.insert(frame);
    batch.push_back(frame);
  }
  return batch;
}

std::string ProxyGuidedStrategy::name() const {
  return options_.duplicate_window > 0 ? "proxy+dedup" : "proxy";
}

}  // namespace samplers
}  // namespace exsample
