#include "samplers/hybrid_strategy.h"

#include "common/hash.h"

namespace exsample {
namespace samplers {

HybridProxyExSampleStrategy::HybridProxyExSampleStrategy(
    const video::Chunking* chunking, const detect::ProxyScorer* scorer,
    HybridOptions options)
    : chunking_(chunking),
      scorer_(scorer),
      options_(options),
      rng_(options.seed),
      stats_(chunking->NumChunks()),
      policy_(options.belief),
      samplers_(chunking->NumChunks()),
      eligible_(chunking->NumChunks(), true),
      eligible_count_(chunking->NumChunks()) {
  common::Check(options_.candidates_per_pick >= 1,
                "HybridOptions: candidates_per_pick must be >= 1");
  if (!options_.chunk_priors.empty()) {
    common::Check(options_.chunk_priors.size() == chunking->NumChunks(),
                  "HybridOptions: chunk_priors must match the chunk count");
    policy_.SetChunkPriors(options_.chunk_priors);
  }
}

core::FrameSampler* HybridProxyExSampleStrategy::SamplerFor(size_t chunk) {
  if (samplers_[chunk] == nullptr) {
    const video::Chunk& c = chunking_->GetChunk(chunk);
    samplers_[chunk] =
        std::make_unique<core::StratifiedFrameSampler>(c.begin, c.end,
                                                       common::HashCombine(
                                                           options_.seed, chunk));
  }
  return samplers_[chunk].get();
}

std::optional<video::FrameId> HybridProxyExSampleStrategy::NextFrame() {
  if (eligible_count_ == 0) return std::nullopt;
  const size_t chunk = policy_.PickChunk(stats_, eligible_, rng_);
  core::FrameSampler* sampler = SamplerFor(chunk);

  // Draw up to `candidates_per_pick` frames from the chunk and keep the one
  // the proxy likes best. Unselected candidates are consumed (they stay
  // skipped): the within-chunk distribution becomes score-weighted, which the
  // Sec. III estimates tolerate.
  std::optional<video::FrameId> best;
  double best_score = -1.0;
  for (size_t c = 0; c < options_.candidates_per_pick; ++c) {
    const std::optional<video::FrameId> frame = sampler->Next(rng_);
    if (!frame.has_value()) break;
    double score;
    if (options_.candidates_per_pick == 1) {
      score = 0.0;  // No scoring needed when there is no choice.
    } else {
      score = scorer_->Score(*frame);
      ++frames_scored_;
      scoring_seconds_ += scorer_->SecondsPerFrame();
    }
    if (score > best_score || !best.has_value()) {
      best_score = score;
      best = frame;
    }
  }
  if (sampler->Remaining() == 0) {
    eligible_[chunk] = false;
    --eligible_count_;
  }
  return best;
}

void HybridProxyExSampleStrategy::Observe(video::FrameId frame, size_t new_results,
                                          size_t once_matched) {
  const auto chunk = chunking_->ChunkOfFrame(frame);
  common::CheckOk(chunk.status(),
                  "HybridProxyExSampleStrategy::Observe: frame outside chunking");
  stats_.Update(chunk.value(), new_results, once_matched);
}

std::string HybridProxyExSampleStrategy::name() const {
  return "exsample+proxy/k" + std::to_string(options_.candidates_per_pick);
}

}  // namespace samplers
}  // namespace exsample
