#include "samplers/random_strategy.h"

#include <algorithm>

#include "common/hash.h"

namespace exsample {
namespace samplers {

UniformRandomStrategy::UniformRandomStrategy(const video::VideoRepository* repo,
                                             uint64_t seed)
    : rng_(seed), sampler_(0, repo->TotalFrames(), common::Mix64(seed)) {}

std::optional<video::FrameId> UniformRandomStrategy::NextFrame() {
  return sampler_.Next(rng_);
}

std::vector<video::FrameId> UniformRandomStrategy::NextBatch(size_t max_frames) {
  // Natural bulk form: a run of permutation positions, no per-frame virtual
  // dispatch. Draw order (and therefore the trace) matches the single-frame
  // adapter exactly.
  std::vector<video::FrameId> batch;
  batch.reserve(max_frames);
  while (batch.size() < max_frames) {
    const std::optional<video::FrameId> frame = sampler_.Next(rng_);
    if (!frame.has_value()) break;
    batch.push_back(*frame);
  }
  return batch;
}

RandomPlusStrategy::RandomPlusStrategy(const video::VideoRepository* repo,
                                       uint64_t seed)
    : rng_(seed), sampler_(0, repo->TotalFrames(), common::Mix64(seed)) {}

std::optional<video::FrameId> RandomPlusStrategy::NextFrame() {
  return sampler_.Next(rng_);
}

std::vector<video::FrameId> RandomPlusStrategy::NextBatch(size_t max_frames) {
  std::vector<video::FrameId> batch;
  batch.reserve(max_frames);
  while (batch.size() < max_frames) {
    const std::optional<video::FrameId> frame = sampler_.Next(rng_);
    if (!frame.has_value()) break;
    batch.push_back(*frame);
  }
  return batch;
}

SequentialStrategy::SequentialStrategy(const video::VideoRepository* repo,
                                       uint64_t stride)
    : total_frames_(repo->TotalFrames()), stride_(std::max<uint64_t>(1, stride)) {}

std::optional<video::FrameId> SequentialStrategy::NextFrame() {
  if (exhausted_) return std::nullopt;
  const video::FrameId frame = cursor_ + offset_;
  // Advance to the next frame of this pass, or begin the next pass.
  cursor_ += stride_;
  if (cursor_ + offset_ >= total_frames_) {
    cursor_ = 0;
    ++offset_;
    if (offset_ >= stride_ || offset_ >= total_frames_) exhausted_ = true;
  }
  return frame;
}

std::string SequentialStrategy::name() const {
  return "sequential/" + std::to_string(stride_);
}

}  // namespace samplers
}  // namespace exsample
