#ifndef EXSAMPLE_SAMPLERS_RANDOM_STRATEGY_H_
#define EXSAMPLE_SAMPLERS_RANDOM_STRATEGY_H_

#include <string>

#include "common/rng.h"
#include "core/frame_sampler.h"
#include "query/strategy.h"
#include "video/repository.h"

namespace exsample {
namespace samplers {

/// \brief Uniform random sampling without replacement over the whole
/// repository — the paper's primary baseline (Sec. II-B, "random").
class UniformRandomStrategy : public query::SearchStrategy {
 public:
  UniformRandomStrategy(const video::VideoRepository* repo, uint64_t seed);

  std::optional<video::FrameId> NextFrame() override;
  std::vector<video::FrameId> NextBatch(size_t max_frames) override;
  std::string name() const override { return "random"; }

 private:
  common::Rng rng_;
  core::UniformFrameSampler sampler_;
};

/// \brief The paper's "random+" baseline (Sec. III-F): global stratified
/// sampling that avoids frames temporally near previous samples — sample one
/// random frame per hour, then one per not-yet-sampled half hour, and so on.
class RandomPlusStrategy : public query::SearchStrategy {
 public:
  RandomPlusStrategy(const video::VideoRepository* repo, uint64_t seed);

  std::optional<video::FrameId> NextFrame() override;
  std::vector<video::FrameId> NextBatch(size_t max_frames) override;
  std::string name() const override { return "random+"; }

 private:
  common::Rng rng_;
  core::StratifiedFrameSampler sampler_;
};

/// \brief Naive sequential execution with a sampling stride (Sec. II-B):
/// process frames 0, k, 2k, ... in order; subsequent passes cover the
/// remaining offsets so the repository is eventually exhausted.
class SequentialStrategy : public query::SearchStrategy {
 public:
  SequentialStrategy(const video::VideoRepository* repo, uint64_t stride);

  std::optional<video::FrameId> NextFrame() override;
  // NextBatch: base-class adapter; a sequential batch is just the next run
  // of the pass.
  std::string name() const override;

 private:
  uint64_t total_frames_;
  uint64_t stride_;
  uint64_t offset_ = 0;  // Current pass's phase in [0, stride).
  uint64_t cursor_ = 0;  // Next frame within the pass.
  bool exhausted_ = false;
};

}  // namespace samplers
}  // namespace exsample

#endif  // EXSAMPLE_SAMPLERS_RANDOM_STRATEGY_H_
