#ifndef EXSAMPLE_SAMPLERS_HYBRID_STRATEGY_H_
#define EXSAMPLE_SAMPLERS_HYBRID_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/belief_policy.h"
#include "core/chunk_stats.h"
#include "core/frame_sampler.h"
#include "detect/proxy.h"
#include "query/strategy.h"
#include "video/chunking.h"

namespace exsample {
namespace samplers {

/// \brief Options for the ExSample+proxy fusion strategy.
struct HybridOptions {
  /// Gamma prior of the chunk beliefs (as in plain ExSample).
  core::BeliefParams belief;
  /// Candidate frames scored per detector invocation. 1 reduces to plain
  /// ExSample (no scoring cost); larger values trade cheap scoring time for
  /// fewer wasted detector calls.
  size_t candidates_per_pick = 8;
  /// Seed of the strategy's random stream.
  uint64_t seed = 1;
  /// Optional per-chunk prior overrides (cross-query warm start,
  /// `reuse::BeliefBank`), as in `core::ExSampleOptions::chunk_priors`:
  /// empty (the default) keeps the flat `belief` prior everywhere.
  std::vector<core::BeliefParams> chunk_priors;
};

/// \brief The paper's Sec. VII "future work" fusion of ExSample and
/// proxy-based search — implemented without any dataset scan.
///
/// Chunk choice is exactly ExSample's Thompson sampling; *within* the chosen
/// chunk the strategy draws `candidates_per_pick` frames from the stratified
/// sampler, scores only those with the cheap proxy model (paying its
/// per-frame cost incrementally via `CumulativeOverheadSeconds`), and sends
/// the best-scoring candidate to the detector. The paper notes the Sec. III
/// estimates "remain valid even if sampling within a chunk is non-uniform
/// but based on a score", and that the missing piece of proxy methods is "a
/// form of predictive scoring of frames that avoids scanning" — this is that
/// piece: scoring cost scales with frames *sampled*, not with the dataset.
class HybridProxyExSampleStrategy : public query::SearchStrategy {
 public:
  HybridProxyExSampleStrategy(const video::Chunking* chunking,
                              const detect::ProxyScorer* scorer,
                              HybridOptions options = {});

  std::optional<video::FrameId> NextFrame() override;
  void Observe(video::FrameId frame, size_t new_results, size_t once_matched) override;
  // Batch execution uses the base-class adapters: a hybrid batch is
  // `max_frames` independent Thompson picks (each refined by proxy-scored
  // candidates) against the current beliefs, which is exactly what looping
  // NextFrame without intervening feedback produces.
  double CumulativeOverheadSeconds() const override { return scoring_seconds_; }
  std::string name() const override;

  /// \brief Frames scored by the proxy so far (cost accounting and tests).
  uint64_t FramesScored() const { return frames_scored_; }

  /// \brief Read access to the chunk statistics.
  const core::ChunkStatsTable& Stats() const { return stats_; }

  // Posterior export for cross-query warm starts (reuse::BeliefBank).
  const core::ChunkStatsTable* ChunkStatistics() const override { return &stats_; }

 private:
  core::FrameSampler* SamplerFor(size_t chunk);

  const video::Chunking* chunking_;
  const detect::ProxyScorer* scorer_;
  HybridOptions options_;
  common::Rng rng_;
  core::ChunkStatsTable stats_;
  core::ThompsonPolicy policy_;
  std::vector<std::unique_ptr<core::FrameSampler>> samplers_;
  std::vector<bool> eligible_;
  size_t eligible_count_;
  uint64_t frames_scored_ = 0;
  double scoring_seconds_ = 0.0;
};

}  // namespace samplers
}  // namespace exsample

#endif  // EXSAMPLE_SAMPLERS_HYBRID_STRATEGY_H_
