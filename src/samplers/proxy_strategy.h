#ifndef EXSAMPLE_SAMPLERS_PROXY_STRATEGY_H_
#define EXSAMPLE_SAMPLERS_PROXY_STRATEGY_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "detect/proxy.h"
#include "query/strategy.h"
#include "video/repository.h"

namespace exsample {
namespace samplers {

/// \brief Options of the BlazeIt-style proxy-guided baseline.
struct ProxyGuidedOptions {
  /// Frames within this distance of an already-processed frame are skipped
  /// ("duplicate avoidance heuristics", Sec. III). 0 disables the heuristic.
  uint64_t duplicate_window = 0;
};

/// \brief Proxy-score-ordered search (the BlazeIt limit-query approach,
/// Sec. II-B): first score *every* frame with the cheap proxy model, then
/// process frames in descending score order through the expensive detector.
///
/// The defining cost property: `UpfrontCostSeconds` charges a full scan of
/// the repository at the proxy's throughput before the first frame can be
/// returned — the overhead Table I shows often exceeds the entire runtime of
/// an ExSample query.
class ProxyGuidedStrategy : public query::SearchStrategy {
 public:
  /// `scan_pool` (optional) parallelizes the upfront scoring scan; it only
  /// changes the scan's wall-clock time, never the resulting frame order or
  /// the charged upfront cost.
  ProxyGuidedStrategy(const video::VideoRepository* repo,
                      const detect::ProxyScorer* scorer,
                      ProxyGuidedOptions options = {},
                      common::ThreadPool* scan_pool = nullptr);

  std::optional<video::FrameId> NextFrame() override;

  /// \brief Bulk form: the next `max_frames` not-yet-skipped frames of the
  /// precomputed score order, in one slice of the ranking.
  std::vector<video::FrameId> NextBatch(size_t max_frames) override;

  double UpfrontCostSeconds() const override { return upfront_seconds_; }
  std::string name() const override;

 private:
  bool NearProcessed(video::FrameId frame) const;

  ProxyGuidedOptions options_;
  double upfront_seconds_ = 0.0;
  /// Frames sorted by descending proxy score (ties by frame id).
  std::vector<video::FrameId> order_;
  size_t cursor_ = 0;
  std::set<video::FrameId> processed_;
};

}  // namespace samplers
}  // namespace exsample

#endif  // EXSAMPLE_SAMPLERS_PROXY_STRATEGY_H_
