#include "engine/search_engine.h"

#include <cmath>

namespace exsample {
namespace engine {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kExSample:
      return "exsample";
    case Method::kExSampleAdaptive:
      return "exsample-adaptive";
    case Method::kRandom:
      return "random";
    case Method::kRandomPlus:
      return "random+";
    case Method::kSequential:
      return "sequential";
    case Method::kProxyGuided:
      return "proxy";
    case Method::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

SearchEngine::SearchEngine(const video::VideoRepository* repo,
                           const video::Chunking* chunking,
                           const scene::GroundTruth* truth, EngineConfig config)
    : repo_(repo), chunking_(chunking), truth_(truth), config_(config) {}

common::Result<std::unique_ptr<query::SearchStrategy>> SearchEngine::MakeStrategy(
    int32_t class_id, const QueryOptions& options) {
  switch (options.method) {
    case Method::kExSample:
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<core::ExSampleStrategy>(chunking_, options.exsample));
    case Method::kExSampleAdaptive:
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<core::AdaptiveExSampleStrategy>(repo_->TotalFrames(),
                                                           options.adaptive));
    case Method::kRandom:
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<samplers::UniformRandomStrategy>(
              repo_, options.exsample.seed));
    case Method::kRandomPlus:
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<samplers::RandomPlusStrategy>(repo_,
                                                         options.exsample.seed));
    case Method::kSequential:
      if (options.sequential_stride == 0) {
        return common::Status::InvalidArgument("sequential stride must be >= 1");
      }
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<samplers::SequentialStrategy>(
              repo_, options.sequential_stride));
    case Method::kProxyGuided:
    case Method::kHybrid: {
      auto& scorer = scorers_[class_id];
      if (scorer == nullptr) {
        detect::ProxyOptions popts = config_.proxy;
        popts.target_class = class_id;
        scorer = std::make_unique<detect::ProxyScorer>(truth_, popts);
      }
      if (options.method == Method::kProxyGuided) {
        return std::unique_ptr<query::SearchStrategy>(
            std::make_unique<samplers::ProxyGuidedStrategy>(
                repo_, scorer.get(), options.proxy_guided));
      }
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<samplers::HybridProxyExSampleStrategy>(
              chunking_, scorer.get(), options.hybrid));
    }
  }
  return common::Status::InvalidArgument("unknown search method");
}

common::Result<query::QueryTrace> SearchEngine::Run(
    int32_t class_id, const query::RunnerOptions& runner_options,
    const QueryOptions& options) {
  auto strategy = MakeStrategy(class_id, options);
  if (!strategy.ok()) return strategy.status();

  detect::DetectorOptions det_opts = config_.detector;
  det_opts.target_class = class_id;
  detect::SimulatedDetector detector(truth_, det_opts);

  std::unique_ptr<track::Discriminator> discriminator;
  if (config_.discriminator == EngineConfig::DiscriminatorKind::kOracle) {
    discriminator = std::make_unique<track::OracleDiscriminator>();
  } else {
    discriminator =
        std::make_unique<track::IouTrackerDiscriminator>(truth_, config_.tracker);
  }

  query::QueryRunner runner(truth_, &detector, discriminator.get(), runner_options);
  return runner.Run(strategy.value().get());
}

common::Result<query::QueryTrace> SearchEngine::FindDistinct(
    int32_t class_id, uint64_t limit, const QueryOptions& options) {
  if (limit == 0) {
    return common::Status::InvalidArgument("result limit must be >= 1");
  }
  query::RunnerOptions runner_options;
  runner_options.result_limit = limit;
  runner_options.recall_class = class_id;
  runner_options.max_samples =
      options.max_samples > 0 ? options.max_samples : repo_->TotalFrames();
  return Run(class_id, runner_options, options);
}

common::Result<query::QueryTrace> SearchEngine::RunToRecall(
    int32_t class_id, double recall, const QueryOptions& options) {
  if (!(recall > 0.0 && recall <= 1.0)) {
    return common::Status::InvalidArgument("recall must be in (0, 1]");
  }
  const uint64_t total = truth_->NumInstances(class_id);
  if (total == 0) {
    return common::Status::NotFound("no ground-truth instances of this class");
  }
  query::RunnerOptions runner_options;
  runner_options.recall_class = class_id;
  runner_options.true_distinct_target = static_cast<uint64_t>(
      std::ceil(recall * static_cast<double>(total)));
  runner_options.max_samples =
      options.max_samples > 0 ? options.max_samples : repo_->TotalFrames();
  return Run(class_id, runner_options, options);
}

}  // namespace engine
}  // namespace exsample
