#include "engine/search_engine.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "engine/wave_driver.h"
#include "stats/stats_json.h"

namespace exsample {
namespace engine {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kExSample:
      return "exsample";
    case Method::kExSampleAdaptive:
      return "exsample-adaptive";
    case Method::kRandom:
      return "random";
    case Method::kRandomPlus:
      return "random+";
    case Method::kSequential:
      return "sequential";
    case Method::kProxyGuided:
      return "proxy";
    case Method::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kLocal:
      return "local";
    case TransportKind::kLoopback:
      return "loopback";
    case TransportKind::kSocket:
      return "socket";
  }
  return "unknown";
}

std::optional<TransportKind> ParseTransportKind(const std::string& name) {
  if (name == "local") return TransportKind::kLocal;
  if (name == "loopback") return TransportKind::kLoopback;
  if (name == "socket") return TransportKind::kSocket;
  return std::nullopt;
}

SearchEngine::SearchEngine(const video::VideoRepository* repo,
                           const video::Chunking* chunking,
                           const scene::GroundTruth* truth, EngineConfig config)
    : repo_(repo), chunking_(chunking), truth_(truth), config_(config) {
  if (config_.num_shards > 1) {
    // Shard the caller's repository clip-aligned; clips never split, so the
    // global frame view (and therefore every trace) is unchanged.
    auto sharded = video::ShardedRepository::ShardByClips(*repo, config_.num_shards);
    common::CheckOk(sharded.status(), "engine repository sharding failed");
    owned_sharded_ =
        std::make_unique<video::ShardedRepository>(std::move(sharded).value());
    sharded_ = owned_sharded_.get();
  }
}

SearchEngine::SearchEngine(const video::ShardedRepository* sharded,
                           const video::Chunking* chunking,
                           const scene::GroundTruth* truth, EngineConfig config)
    : repo_(&sharded->Global()),
      chunking_(chunking),
      truth_(truth),
      config_(config),
      sharded_(sharded) {}

common::Result<std::unique_ptr<query::SearchStrategy>> SearchEngine::MakeStrategy(
    int32_t class_id, const QueryOptions& options) {
  switch (options.method) {
    case Method::kExSample:
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<core::ExSampleStrategy>(chunking_, options.exsample));
    case Method::kExSampleAdaptive:
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<core::AdaptiveExSampleStrategy>(repo_->TotalFrames(),
                                                           options.adaptive));
    case Method::kRandom:
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<samplers::UniformRandomStrategy>(
              repo_, options.exsample.seed));
    case Method::kRandomPlus:
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<samplers::RandomPlusStrategy>(repo_,
                                                         options.exsample.seed));
    case Method::kSequential:
      if (options.sequential_stride == 0) {
        return common::Status::InvalidArgument("sequential stride must be >= 1");
      }
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<samplers::SequentialStrategy>(
              repo_, options.sequential_stride));
    case Method::kProxyGuided:
    case Method::kHybrid: {
      auto& scorer = scorers_[class_id];
      if (scorer == nullptr) {
        detect::ProxyOptions popts = config_.proxy;
        popts.target_class = class_id;
        scorer = std::make_unique<detect::ProxyScorer>(truth_, popts);
      }
      if (options.method == Method::kProxyGuided) {
        return std::unique_ptr<query::SearchStrategy>(
            std::make_unique<samplers::ProxyGuidedStrategy>(
                repo_, scorer.get(), options.proxy_guided, thread_pool()));
      }
      return std::unique_ptr<query::SearchStrategy>(
          std::make_unique<samplers::HybridProxyExSampleStrategy>(
              chunking_, scorer.get(), options.hybrid));
    }
  }
  return common::Status::InvalidArgument("unknown search method");
}

common::ThreadPool* SearchEngine::thread_pool() {
  if (config_.num_threads == 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<common::ThreadPool>(common::ThreadPool::Options{
        config_.num_threads, config_.placement.worker_cpus});
  }
  return pool_.get();
}

common::ThreadPool* SearchEngine::io_pool() {
  if (config_.io_threads == 0) return nullptr;
  if (io_pool_ == nullptr) {
    io_pool_ = std::make_unique<common::ThreadPool>(common::ThreadPool::Options{
        config_.io_threads, config_.placement.io_cpus});
  }
  return io_pool_.get();
}

common::ThreadPool* SearchEngine::shard_pool(uint32_t shard) {
  if (config_.threads_per_shard == 0) return thread_pool();
  if (shard_pools_.empty()) {
    shard_pools_.resize(sharded_->NumShards());
  }
  if (shard_pools_[shard] == nullptr) {
    shard_pools_[shard] =
        std::make_unique<common::ThreadPool>(common::ThreadPool::Options{
            config_.threads_per_shard, config_.placement.worker_cpus});
  }
  return shard_pools_[shard].get();
}

query::DetectorService* SearchEngine::detector_service() {
  if (!config_.coalesce_detect) return nullptr;
  if (detector_service_ == nullptr) {
    query::DetectorServiceOptions options;
    options.device_batch = std::max<size_t>(1, config_.device_batch);
    // Mirror the dispatcher's parallelism rule: shards flush concurrently
    // only when each owns a private pool (ParallelFor is single-driver).
    options.parallel_shards = sharded_ != nullptr && config_.threads_per_shard > 0;
    options.max_retries = config_.transport_max_retries;
    if (config_.flush_deadline_seconds > 0.0) {
      options.flush_policy = query::FlushPolicy::kLatencyAware;
      options.flush_deadline_seconds = config_.flush_deadline_seconds;
    }
    const size_t num_shards = sharded_ != nullptr ? sharded_->NumShards() : 1;
    std::vector<common::ThreadPool*> pools;
    if (sharded_ != nullptr && config_.threads_per_shard > 0) {
      pools.reserve(num_shards);
      for (uint32_t s = 0; s < num_shards; ++s) pools.push_back(shard_pool(s));
    }
    if (config_.transport == TransportKind::kLoopback) {
      // The RPC stand-in: per-shard runner threads fed wire bytes. Each
      // runner drives its shard's private pool (or detects inline); requests
      // are stamped with the repository fingerprint so a mis-deployed runner
      // rejects them.
      options.repo_fingerprint = repo_->Fingerprint();
      query::LoopbackTransportOptions loopback = config_.loopback;
      if (loopback.expected_fingerprint == 0) {
        loopback.expected_fingerprint = options.repo_fingerprint;
      }
      if (loopback.runner_cpus.empty()) {
        loopback.runner_cpus = config_.placement.runner_cpus;
      }
      transport_ = std::make_unique<query::LoopbackTransport>(num_shards, pools,
                                                              loopback);
      options.transport = transport_.get();
    } else if (config_.transport == TransportKind::kSocket) {
      // The real thing: TCP connections to one `exsample_shardd` per shard.
      // Sessions deploy over the RegisterSessionMsg control plane, and the
      // fingerprint pins which repository the fleet must serve.
      options.repo_fingerprint = repo_->Fingerprint();
      common::Check(config_.socket.hosts.size() == num_shards,
                    "socket transport needs one shard host per shard");
      transport_ =
          std::make_unique<query::SocketTransport>(num_shards, config_.socket);
      options.transport = transport_.get();
    }
    detector_service_ = std::make_unique<query::DetectorService>(
        options, num_shards, std::move(pools), thread_pool());
    if (config_.collect_stats) {
      // The service's hot-path ticks and its submit→grant / transport
      // latency records all run on the coordinator thread that drives
      // Submit/Poll/Flush/Take — the same single-writer thread the engine
      // timer already belongs to.
      detector_service_->BindStats(query::ServiceStatsBinding::Bind(
          &registry_, registry_.AcquireSlab("service"), &stage_timer_));
    }
  }
  return detector_service_.get();
}

reuse::ReuseManager* SearchEngine::reuse_manager() {
  if (!config_.reuse.AnyEnabled()) return nullptr;
  if (reuse_manager_ == nullptr) {
    reuse_manager_ = std::make_unique<reuse::ReuseManager>(config_.reuse);
  }
  return reuse_manager_.get();
}

common::ThreadPool* SearchEngine::shard_io_pool(uint32_t shard) {
  if (config_.io_threads_per_shard == 0) return nullptr;
  if (shard_io_pools_.empty()) {
    shard_io_pools_.resize(sharded_->NumShards());
  }
  if (shard_io_pools_[shard] == nullptr) {
    shard_io_pools_[shard] =
        std::make_unique<common::ThreadPool>(common::ThreadPool::Options{
            config_.io_threads_per_shard, config_.placement.io_cpus});
  }
  return shard_io_pools_[shard].get();
}

common::Result<std::unique_ptr<QuerySession>> SearchEngine::MakeSession(
    int32_t class_id, const query::RunnerOptions& runner_options,
    const QueryOptions& options) {
  detect::DetectorOptions det_opts = config_.detector;
  det_opts.target_class = class_id;

  // Cross-query reuse: every component is addressed by the (dataset,
  // detector config, class) triple, so a cache populated for one query can
  // only ever answer queries whose real detect calls would return the same
  // bytes (detection is a pure per-frame function of exactly that triple).
  reuse::ReuseManager* reuse = reuse_manager();
  reuse::ReuseKey reuse_key;
  if (reuse != nullptr) {
    reuse_key.repo_fingerprint = repo_->Fingerprint();
    reuse_key.detector_config = detect::DetectorOptionsHash(det_opts);
    reuse_key.class_id = class_id;
  }

  // Warm start: seed the strategy's per-chunk priors from the bank's
  // persisted posteriors *before* the strategy is built. A pure prior
  // substitution — nothing else about the strategy changes, and an empty
  // bank (or a non-belief method) leaves `options` untouched.
  QueryOptions effective = options;
  bool warm_started = false;
  if (reuse != nullptr && reuse->options().warm_start) {
    const uint64_t signature = reuse::ChunkingSignature(*chunking_);
    const double weight = reuse->options().warm_start_weight;
    if (options.method == Method::kExSample) {
      std::vector<core::BeliefParams> priors = reuse->beliefs().WarmPriors(
          reuse_key, signature, options.exsample.belief, weight);
      if (!priors.empty()) {
        effective.exsample.chunk_priors = std::move(priors);
        warm_started = true;
      }
    } else if (options.method == Method::kHybrid) {
      std::vector<core::BeliefParams> priors = reuse->beliefs().WarmPriors(
          reuse_key, signature, options.hybrid.belief, weight);
      if (!priors.empty()) {
        effective.hybrid.chunk_priors = std::move(priors);
        warm_started = true;
      }
    }
  }

  auto strategy = MakeStrategy(class_id, effective);
  if (!strategy.ok()) return strategy.status();

  // Per-query state (Algorithm 1 assumes independent queries): fresh
  // detector noise stream, fresh discriminator memory, fresh strategy.
  std::unique_ptr<QuerySession> session(new QuerySession());
  session->strategy_ = std::move(strategy).value();
  session->reuse_stats_.warm_started = warm_started;
  if (reuse != nullptr && reuse->options().warm_start) {
    // Finish() deposits this query's posterior counts back into the bank
    // (a no-op for strategies without chunk beliefs).
    session->belief_bank_ = &reuse->beliefs();
    session->belief_key_ = reuse_key;
    session->chunking_signature_ = reuse::ChunkingSignature(*chunking_);
  }

  if (sharded_ != nullptr) {
    // One detector context per shard. Each shard's detector carries the same
    // options (and seed) as the unsharded detector would, and detection is a
    // pure per-frame function of (truth, options, frame) — so shard routing
    // returns exactly the detections a single detector would have.
    std::vector<query::ShardContext> contexts(sharded_->NumShards());
    session->shard_detectors_.reserve(sharded_->NumShards());
    for (uint32_t s = 0; s < sharded_->NumShards(); ++s) {
      if (sharded_->Shard(s).TotalFrames() == 0) continue;
      auto detector = std::make_unique<detect::SimulatedDetector>(truth_, det_opts);
      contexts[s].detector = detector.get();
      contexts[s].pool = shard_pool(s);
      if (config_.simulate_decode) {
        // Per-shard decode: each shard owns its position state (and,
        // optionally, its private I/O pool), so a shard's sequential-read
        // locality is priced next to its video — the documented carve-out to
        // shard-count trace-invariance.
        auto store = std::make_unique<video::SimulatedVideoStore>(
            &sharded_->Global(), config_.decode_cost);
        contexts[s].store = store.get();
        contexts[s].io_pool = shard_io_pool(s);
        session->shard_stores_.push_back(std::move(store));
      }
      session->shard_detectors_.push_back(std::move(detector));
    }
    session->shard_dispatcher_ = std::make_unique<query::ShardDispatcher>(
        sharded_, std::move(contexts),
        /*parallel_shards=*/config_.threads_per_shard > 0);
  } else {
    session->detector_ = std::make_unique<detect::SimulatedDetector>(truth_, det_opts);
    if (config_.simulate_decode) {
      session->store_ =
          std::make_unique<video::SimulatedVideoStore>(repo_, config_.decode_cost);
    }
  }

  if (config_.discriminator == EngineConfig::DiscriminatorKind::kOracle) {
    session->discriminator_ = std::make_unique<track::OracleDiscriminator>();
  } else {
    session->discriminator_ =
        std::make_unique<track::IouTrackerDiscriminator>(truth_, config_.tracker);
  }

  query::RunnerOptions session_options = runner_options;
  size_t batch_size = std::max<size_t>(1, options.batch_size);
  if (options.method == Method::kExSample) {
    // Honor the strategy-level Sec. III-F knob by mapping it onto the
    // runner's pipeline batch: B frames drawn per belief refresh either way
    // (proven equivalent in test_batch_pipeline), so configs predating the
    // batch-first runner keep their batched semantics.
    batch_size = std::max(batch_size, options.exsample.batch_size);
  }
  session_options.batch_size = batch_size;
  session_options.thread_pool = thread_pool();
  session_options.shard_dispatcher = session->shard_dispatcher_.get();
  session_options.video_store = session->store_.get();
  // Pipelined decode: all sessions share the engine's I/O pool(s), so
  // concurrent queries' prefetchers draw from one set of decode workers just
  // as their detect stages share the detect pool.
  session_options.prefetch_depth = config_.prefetch_depth;
  session_options.decode_pool = io_pool();
  // Cross-session detect coalescing: every session of a coalescing engine
  // submits to the one shared service (solo runs flush themselves at width
  // 1 — bit-identical, which is the contract the sched suite checks).
  session_options.detector_service = detector_service();
  session_options.service_session_id = next_session_id_++;
  // The configuration the session's RegisterSessionMsg ships: a remote shard
  // materializes an equivalent detector from exactly these options.
  session_options.detector_options = det_opts;
  session_options.session_stats = &session->scheduler_stats_;
  // Observability: the session ticks its own registry slab and its own
  // stage timer from the stepping thread (single-writer both ways);
  // Finish() merges the timer into the engine aggregate. All-null when
  // collect_stats is off — the runner's hot path then pays one branch.
  if (config_.collect_stats) {
    session_options.stats = query::ExecutionStatsBinding::Bind(
        &registry_,
        registry_.AcquireSlab(
            "session/" + std::to_string(session_options.service_session_id)),
        &session->stage_timer_);
    session->engine_stage_timer_ = &stage_timer_;
  }
  // Detect-stage reuse (cache/sketch): the session binds to the engine's
  // shared manager under its key; the runner consults it per picked batch.
  // Warm start alone leaves this null — the detect stage is then untouched.
  if (reuse != nullptr && (reuse->options().cache || reuse->options().sketch)) {
    session->reuse_ = std::make_unique<reuse::SessionReuse>(
        reuse, reuse_key, repo_->TotalFrames(), &session->reuse_stats_);
    session_options.reuse = session->reuse_.get();
  }
  session->execution_ = std::make_unique<query::QueryExecution>(
      truth_, session->detector_.get(), session->discriminator_.get(),
      session->strategy_.get(), session_options);
  return session;
}

std::string SearchEngine::StatsJson() {
  // Push half: sum every slab (sessions, service) into the named snapshot.
  stats::StatsSnapshot snapshot = registry_.Sync();

  // Pull half: engine-lifetime components keep their own authoritative
  // stats structs (all either coordinator-written or mutex-guarded); they
  // are published into the snapshot here, at export time, under the same
  // dotted naming scheme as the slab metrics.
  if (detector_service_ != nullptr) {
    const query::DetectorServiceStats& s = detector_service_->stats();
    snapshot.counters["service.requests"] = s.requests;
    snapshot.counters["service.fill_flushes"] = s.fill_flushes;
    snapshot.counters["service.deadline_flushes"] = s.deadline_flushes;
    snapshot.counters["service.wire_retries"] = s.wire_retries;
    snapshot.counters["service.wire_requeues"] = s.wire_requeues;
    snapshot.counters["service.wire_reroutes"] = s.wire_reroutes;
    snapshot.counters["service.shards_down"] = s.shards_down;
    snapshot.gauges["service.wire_charged_seconds"] = s.wire_charged_seconds;
    snapshot.gauges["service.fill_rate"] = detector_service_->FillRate();
    snapshot.gauges["service.pending_frames"] =
        static_cast<double>(detector_service_->PendingFrames());
  }
  if (transport_ != nullptr) {
    // Snapshot by value: a socket transport's reader threads mutate the
    // tallies concurrently with this export.
    const query::TransportStats t = transport_->Stats();
    snapshot.counters["transport.requests"] = t.requests;
    snapshot.counters["transport.responses"] = t.responses;
    snapshot.counters["transport.bytes_sent"] = t.bytes_sent;
    snapshot.counters["transport.bytes_received"] = t.bytes_received;
    snapshot.counters["transport.failures_injected"] = t.failures_injected;
    snapshot.counters["transport.control_messages"] = t.control_messages;
    snapshot.counters["transport.connects"] = t.connects;
    snapshot.counters["transport.reconnects"] = t.reconnects;
    snapshot.counters["transport.inferred_failures"] = t.inferred_failures;
    snapshot.counters["transport.late_responses_dropped"] =
        t.late_responses_dropped;
  }
  if (reuse_manager_ != nullptr) {
    const reuse::DetectionCacheStats c = reuse_manager_->cache().Stats();
    snapshot.counters["reuse.cache.hits"] = c.hits;
    snapshot.counters["reuse.cache.misses"] = c.misses;
    snapshot.counters["reuse.cache.insertions"] = c.insertions;
    snapshot.counters["reuse.cache.evicted_empty"] = c.evicted_empty;
    snapshot.counters["reuse.cache.evicted_nonempty"] = c.evicted_nonempty;
    snapshot.gauges["reuse.cache.entries"] = static_cast<double>(c.entries);
    snapshot.gauges["reuse.cache.nonempty_entries"] =
        static_cast<double>(c.nonempty_entries);
    const reuse::ScannedSketchStats k = reuse_manager_->sketch().Stats();
    snapshot.counters["reuse.sketch.recorded_empty"] = k.recorded_empty;
    snapshot.counters["reuse.sketch.recorded_nonempty"] = k.recorded_nonempty;
    snapshot.counters["reuse.sketch.known_empty"] = k.known_empty;
    snapshot.counters["reuse.sketch.guard_rejects"] = k.guard_rejects;
    const reuse::BeliefBankStats b = reuse_manager_->beliefs().Stats();
    snapshot.counters["reuse.beliefs.posteriors_recorded"] =
        b.posteriors_recorded;
    snapshot.counters["reuse.beliefs.warm_starts"] = b.warm_starts;
  }

  return stats::WriteStatsJson(snapshot, &stage_timer_);
}

common::Result<query::QueryTrace> SearchEngine::Run(
    int32_t class_id, const query::RunnerOptions& runner_options,
    const QueryOptions& options) {
  auto session = MakeSession(class_id, runner_options, options);
  if (!session.ok()) return session.status();
  return session.value()->Finish();
}

common::Result<std::unique_ptr<QuerySession>> SearchEngine::CreateSession(
    int32_t class_id, uint64_t limit, const QueryOptions& options) {
  if (limit == 0) {
    return common::Status::InvalidArgument("result limit must be >= 1");
  }
  query::RunnerOptions runner_options;
  runner_options.result_limit = limit;
  runner_options.recall_class = class_id;
  runner_options.max_samples =
      options.max_samples > 0 ? options.max_samples : repo_->TotalFrames();
  return MakeSession(class_id, runner_options, options);
}

common::Result<std::vector<query::QueryTrace>> SearchEngine::RunConcurrent(
    const std::vector<QuerySpec>& specs) {
  return RunConcurrent(specs, SessionObserver());
}

common::Result<std::vector<query::QueryTrace>> SearchEngine::RunConcurrent(
    const std::vector<QuerySpec>& specs, const SessionObserver& observer) {
  // Validate every spec's cheap invariants before building any session:
  // session construction can be expensive (a proxy spec pays its full
  // scoring scan up front), and a bad later spec must not discard that work.
  for (const QuerySpec& spec : specs) {
    if (spec.limit == 0) {
      return common::Status::InvalidArgument("result limit must be >= 1");
    }
    if (spec.options.method == Method::kSequential &&
        spec.options.sequential_stride == 0) {
      return common::Status::InvalidArgument("sequential stride must be >= 1");
    }
  }

  std::vector<std::unique_ptr<QuerySession>> sessions;
  sessions.reserve(specs.size());
  for (const QuerySpec& spec : specs) {
    auto session = CreateSession(spec.class_id, spec.limit, spec.options);
    if (!session.ok()) return session.status();
    sessions.push_back(std::move(session).value());
  }

  // The scheduled round loop. Each round the scheduler plans a sequence of
  // step grants from coordinator-side tallies (it can weight sessions, not
  // change what they compute); the grants are executed in *waves*: every
  // session in a wave begins its step (submitting its detect work to the
  // shared service when coalescing is on), the service flushes the merged
  // queues as full cross-session device batches, and the wave's sessions
  // finish their steps in submission order. A session scheduled twice in a
  // round closes the current wave first — a wave holds at most one pending
  // step per session. Without a service the waves degenerate to plain
  // sequential stepping. Per-query state lives in the sessions, so neither
  // the grant order nor the coalescing can change any individual trace.
  query::SessionSchedulerOptions scheduler_options;
  scheduler_options.seed = config_.scheduler_seed;
  scheduler_options.starvation_rounds =
      std::max<uint64_t>(1, config_.scheduler_starvation_rounds);
  const std::unique_ptr<query::SessionScheduler> scheduler =
      query::MakeSessionScheduler(config_.scheduler, scheduler_options);
  query::DetectorService* service = detector_service();

  std::vector<query::SessionSchedulerInfo> infos(sessions.size());
  std::vector<size_t> order;
  // Periodic observability dump: every `stats_dump_every_rounds` scheduler
  // rounds the engine rewrites `stats_dump_path` with a fresh StatsJson()
  // snapshot, from this coordinator thread (so the pull-published component
  // stats are read race-free). Collection itself never touches the
  // simulated clock, so dumping cannot perturb any trace.
  uint64_t rounds_completed = 0;
  const auto maybe_dump_stats = [&]() {
    if (config_.stats_dump_every_rounds == 0 || config_.stats_dump_path.empty())
      return;
    ++rounds_completed;
    if (rounds_completed % config_.stats_dump_every_rounds != 0) return;
    std::ofstream out(config_.stats_dump_path, std::ios::trunc);
    if (out) out << StatsJson();
  };
  // The wave execution (begin → flush → finish in submission order, sticky
  // transport failure) lives in the shared `SessionWaveDriver` — the same
  // machinery the serving layer drives admitted tenant sessions through.
  SessionWaveDriver driver(service, [&](size_t idx) {
    sessions[idx]->FinishStep();
    if (observer) observer(idx, *sessions[idx]);
  });

  while (driver.status().ok()) {
    size_t live = 0;
    for (size_t i = 0; i < sessions.size(); ++i) {
      const query::DiscoveryPoint& final = sessions[i]->Trace().final;
      infos[i].steps = sessions[i]->scheduler_stats().steps_granted;
      infos[i].samples = final.samples;
      infos[i].reported_results = final.reported_results;
      infos[i].result_limit = specs[i].limit;
      infos[i].seconds = final.seconds;
      infos[i].deadline_seconds = specs[i].deadline_seconds;
      infos[i].done = sessions[i]->Done();
      if (!infos[i].done) ++live;
    }
    if (live == 0) break;

    order.clear();
    scheduler->PlanRound(common::Span<const query::SessionSchedulerInfo>(
                             infos.data(), infos.size()),
                         &order);
    if (order.empty()) break;  // A scheduler that refuses to plan live work.
    bool failed = false;
    for (const size_t idx : order) {
      common::Check(idx < sessions.size(), "scheduler planned an unknown session");
      common::Check(!infos[idx].done, "scheduler planned a finished session");
      if (!driver.Grant(idx, sessions[idx].get())) {
        failed = true;
        break;
      }
    }
    if (failed || !driver.FlushWave()) break;
    maybe_dump_stats();
    // A round with no progress still terminates the loop eventually: its
    // first grant to a then-live session either progressed or marked that
    // session done, so no-progress rounds strictly shrink the live set and
    // the next round replans against refreshed tallies.
  }

  if (!driver.status().ok()) {
    // Release every half-begun step (decode tasks hold spans into the
    // abandoned batches) and whatever the service still queues, then hand
    // the failure to the caller instead of partial traces.
    driver.AbortPending(sessions);
    return driver.status();
  }

  std::vector<query::QueryTrace> traces;
  traces.reserve(sessions.size());
  for (auto& session : sessions) {
    traces.push_back(session->Finish());
  }
  return traces;
}

common::Result<query::QueryTrace> SearchEngine::FindDistinct(
    int32_t class_id, uint64_t limit, const QueryOptions& options) {
  if (limit == 0) {
    return common::Status::InvalidArgument("result limit must be >= 1");
  }
  query::RunnerOptions runner_options;
  runner_options.result_limit = limit;
  runner_options.recall_class = class_id;
  runner_options.max_samples =
      options.max_samples > 0 ? options.max_samples : repo_->TotalFrames();
  return Run(class_id, runner_options, options);
}

common::Result<query::QueryTrace> SearchEngine::RunToRecall(
    int32_t class_id, double recall, const QueryOptions& options) {
  if (!(recall > 0.0 && recall <= 1.0)) {
    return common::Status::InvalidArgument("recall must be in (0, 1]");
  }
  const uint64_t total = truth_->NumInstances(class_id);
  if (total == 0) {
    return common::Status::NotFound("no ground-truth instances of this class");
  }
  query::RunnerOptions runner_options;
  runner_options.recall_class = class_id;
  runner_options.true_distinct_target = static_cast<uint64_t>(
      std::ceil(recall * static_cast<double>(total)));
  runner_options.max_samples =
      options.max_samples > 0 ? options.max_samples : repo_->TotalFrames();
  return Run(class_id, runner_options, options);
}

}  // namespace engine
}  // namespace exsample
