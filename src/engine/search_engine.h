#ifndef EXSAMPLE_ENGINE_SEARCH_ENGINE_H_
#define EXSAMPLE_ENGINE_SEARCH_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/adaptive_exsample.h"
#include "core/exsample.h"
#include "detect/detector.h"
#include "detect/proxy.h"
#include "engine/query_session.h"
#include "query/detector_service.h"
#include "query/runner.h"
#include "query/socket_transport.h"
#include "query/scheduler.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "reuse/reuse.h"
#include "samplers/hybrid_strategy.h"
#include "samplers/proxy_strategy.h"
#include "samplers/random_strategy.h"
#include "scene/ground_truth.h"
#include "stats/counter_registry.h"
#include "stats/stage_timer.h"
#include "track/iou_discriminator.h"
#include "track/oracle_discriminator.h"
#include "video/chunking.h"
#include "video/repository.h"
#include "video/sharded_repository.h"

namespace exsample {
namespace engine {

/// \brief Which frame-selection method a query uses.
enum class Method {
  kExSample,          ///< The paper's algorithm (default).
  kExSampleAdaptive,  ///< Sec. VII extension: automated chunk splitting.
  kRandom,            ///< Uniform random without replacement.
  kRandomPlus,        ///< Globally stratified random+ (Sec. III-F).
  kSequential,        ///< 1-in-k sequential scan (Sec. II-B naive baseline).
  kProxyGuided,       ///< BlazeIt-style: full scoring scan, then by score.
  kHybrid,            ///< Sec. VII extension: scan-free ExSample+proxy fusion.
};

/// \brief Returns the lowercase name of a method.
const char* MethodName(Method method);

/// \brief Which transport executes the shared detect service's coalesced
/// device batches (`EngineConfig::coalesce_detect`).
enum class TransportKind {
  /// In-process execution — the zero-copy path, and the default.
  kLocal,
  /// Wire-serialized execution on per-shard runner threads
  /// (`query::LoopbackTransport`): every device batch crosses the versioned
  /// wire format, completions arrive in any order, and the fault-injection
  /// knobs (`EngineConfig::loopback`) exercise the retry/requeue story.
  /// Traces are bit-identical to `kLocal` — the `dist` suite enforces it.
  kLoopback,
  /// Real TCP sockets to `exsample_shardd` shard servers
  /// (`query::SocketTransport`): sessions deploy over the
  /// `RegisterSessionMsg` control plane, failures are inferred from
  /// connection drops and per-request deadlines, and registrations replay
  /// on reconnect. Needs `EngineConfig::socket.hosts` (one per shard).
  /// Traces stay bit-identical to `kLocal`.
  kSocket,
};

/// \brief Lowercase name of a transport kind ("local", "loopback", "socket").
const char* TransportKindName(TransportKind kind);

/// \brief Parses a transport name as `TransportKindName` prints it.
std::optional<TransportKind> ParseTransportKind(const std::string& name);

/// \brief CPU placement of an engine's threads (see common/affinity.h).
///
/// Empty lists (the default) leave every thread wherever the OS scheduler
/// puts it. Non-empty lists pin best-effort: thread `i` of a group goes to
/// `cpus[i % cpus.size()]`, a failed pin is silently ignored (correctness
/// never depends on placement, only tail latency does), and non-Linux
/// builds no-op. `exsample_cli --affinity=SPEC` is the user-facing knob;
/// it validates the set against the hardware and warns on oversubscription
/// instead of failing.
struct PlacementConfig {
  /// Detect-pool workers — engine-wide and per-shard pools alike.
  std::vector<int> worker_cpus;
  /// I/O (decode-prefetch) pool workers, engine-wide and per-shard.
  std::vector<int> io_cpus;
  /// Loopback shard-runner threads (runner of shard s -> cpus[s % size]).
  std::vector<int> runner_cpus;

  bool Any() const {
    return !worker_cpus.empty() || !io_cpus.empty() || !runner_cpus.empty();
  }
};

/// \brief Per-engine configuration: how frames are detected and how distinct
/// identity is decided. One config serves many queries.
struct EngineConfig {
  /// Detector noise/cost model. `target_class` is overridden per query.
  detect::DetectorOptions detector;

  /// Which discriminator decides distinctness.
  enum class DiscriminatorKind {
    kIouTracker,  ///< Realistic tracker-based matching (default).
    kOracle,      ///< Ground-truth identity (evaluation/simulation mode).
  };
  DiscriminatorKind discriminator = DiscriminatorKind::kIouTracker;
  track::IouDiscriminatorOptions tracker;

  /// Proxy model config (only used by kProxyGuided / kHybrid queries).
  detect::ProxyOptions proxy;

  /// Threads in the engine-wide pool shared by every query's detect stage
  /// (and the proxy scorers' scans). 0 = one per hardware thread; 1 (the
  /// default) runs everything on the caller, with no synchronization. Thread
  /// count never changes a trace — only wall-clock time.
  size_t num_threads = 1;

  /// Simulate decode cost: when true, every session charges I/O+decode
  /// seconds through its own `SimulatedVideoStore` priced by `decode_cost`
  /// (decode position state is per query, like detector noise and tracker
  /// memory). Sharded engines give each shard its own store — each shard
  /// decodes independently, so sequential-read locality is priced per shard
  /// (the documented carve-out to shard-count trace-invariance). False (the
  /// default) charges no decode cost, as before.
  bool simulate_decode = false;
  video::DecodeCostModel decode_cost;

  /// Decode-ahead window of every session's pipelined decode stage
  /// (`RunnerOptions::prefetch_depth`). 0 (the default) decodes synchronously
  /// before each detect window; depth d overlaps the decode of the next d
  /// frames with detection, on the I/O pool. Never changes a trace — only
  /// wall-clock (the `decode`-labeled suite proves bit-identity).
  size_t prefetch_depth = 0;
  /// Threads in the engine-wide I/O pool all sessions' prefetchers share
  /// (decode work runs there, detect fan-out stays on `num_threads`). 0 (the
  /// default) shares the engine-wide detect pool instead.
  size_t io_threads = 0;
  /// Threads in each shard's private I/O pool ("the disk next to that shard's
  /// video"); decode work for a shard's frames then runs beside its detector.
  /// 0 (the default) shares the engine-wide I/O pool across shards.
  size_t io_threads_per_shard = 0;

  /// Share the detect stage across sessions: the engine owns one
  /// `query::DetectorService`, every session submits its picked batches to
  /// it, and `RunConcurrent` flushes the merged per-shard queues as device
  /// batches of up to `device_batch` frames — so a multi-query workload
  /// fills the detector with frames from many sessions instead of paying a
  /// under-filled batch per session. Never changes a trace (each frame is
  /// still detected by its own session's detector context, per-frame
  /// deterministically; the `sched` suite enforces bit-identity against
  /// solo runs). False (the default) keeps the per-session detect stage.
  bool coalesce_detect = false;
  /// Target frames per coalesced device batch ("one GPU inference call's
  /// worth"); the service's fill-rate statistic is measured against it.
  size_t device_batch = 32;
  /// Which transport executes the service's device batches: in process
  /// (`kLocal`, the default) or wire-serialized onto per-shard runner
  /// threads (`kLoopback`, the RPC stand-in). Only read with
  /// `coalesce_detect`; traces are identical either way.
  TransportKind transport = TransportKind::kLocal;
  /// When > 0 (seconds, wall clock), the service flushes latency-aware
  /// (`query::FlushPolicy::kLatencyAware`): a shard's queue ships the moment
  /// a full wire batch accumulates or its oldest ticket has waited this
  /// long, instead of only at round barriers. Bounds ticket latency at the
  /// cost of device-batch fill; never changes a trace. 0 (the default)
  /// keeps barrier-only flushing.
  double flush_deadline_seconds = 0.0;
  /// Transient-failure retry budget per wire batch before the runner is
  /// marked down and the batch requeues onto a surviving shard.
  size_t transport_max_retries = 2;
  /// Fault/latency injection of the loopback transport (benchmarks and the
  /// `dist` suite; harmless defaults inject nothing). The engine fills in
  /// `expected_fingerprint` from its repository when left 0.
  query::LoopbackTransportOptions loopback;
  /// Socket transport endpoints and deadlines (`transport == kSocket` only).
  /// `socket.hosts` must name one `exsample_shardd` endpoint per shard.
  query::SocketTransportOptions socket;

  /// Which `query::SessionScheduler` orders (and weights) the sessions'
  /// `Step` calls in `RunConcurrent`: fair round-robin (the default,
  /// bit-compatible with the old hard-coded loop), Thompson-style
  /// marginal-result-rate priority, or deadline/budget-aware. Scheduling
  /// only reorders step grants — per-session traces never change.
  query::SchedulerKind scheduler = query::SchedulerKind::kFair;
  /// Seed of the priority scheduler's Thompson draws (fixed seed, fixed
  /// grant order).
  uint64_t scheduler_seed = 17;
  /// Starvation bound of the non-fair schedulers: every live session is
  /// granted at least one step per this many rounds
  /// (`SessionSchedulerOptions::starvation_rounds`).
  uint64_t scheduler_starvation_rounds = 4;

  /// Cross-query result reuse (`reuse::ReuseManager`): an engine-owned exact
  /// detection cache, scanned-space sketch, and belief bank shared by every
  /// session — consecutive queries and `RunConcurrent` workloads alike.
  /// Components are keyed by (repository fingerprint, detector-config hash,
  /// class), so reuse never crosses datasets, detector configs, or classes.
  /// Cache hits and sketch skips serve detections bit-identical to a real
  /// detect call at zero charged detector seconds; warm start is a pure
  /// prior substitution. All off (the default) leaves every query
  /// bit-identical to the pre-reuse engine.
  reuse::ReuseOptions reuse;

  /// Engine-wide observability: when true (the default) every session and
  /// the shared detect service tick named counters into the engine's
  /// `stats::CounterRegistry` (lock-free per-writer slabs) and record
  /// per-stage latency histograms into `stats::StageTimer`s, all exported by
  /// `SearchEngine::StatsJson()`. Collection never changes a trace
  /// (`bench_observability` exit-enforces bit-identity and <= 3% overhead);
  /// false turns every collection site into a single null test.
  bool collect_stats = true;
  /// When non-empty (and `collect_stats`), `RunConcurrent` rewrites this
  /// file with a fresh `StatsJson()` snapshot every
  /// `stats_dump_every_rounds` scheduler rounds — the periodic dump a
  /// monitoring scraper tails. 0 rounds disables the periodic dump (the
  /// caller can still call `StatsJson()` whenever it wants).
  std::string stats_dump_path;
  uint64_t stats_dump_every_rounds = 0;

  /// Shard the repository into this many contiguous, clip-aligned shards,
  /// each serving its frames with its own detector context (the in-process
  /// stand-in for "one query spans machines"). Picked batches are routed per
  /// shard and the per-shard partial traces merge into a global trace
  /// identical to the single-repository run — shard count never changes a
  /// trace (proven by the shard equivalence suite). 1 (the default) executes
  /// unsharded. Ignored when the engine is constructed over an explicit
  /// `ShardedRepository`, whose own shard count wins.
  size_t num_shards = 1;
  /// Threads in each shard's private detect pool ("one GPU's worth" per
  /// shard); shards then detect their sub-batches concurrently. 0 (the
  /// default) shares the engine-wide pool across shards, one shard at a time.
  size_t threads_per_shard = 0;

  /// CPU placement of the engine's worker / I/O / shard-runner threads.
  /// Defaults to no pinning. Placement never changes a trace — it moves
  /// threads, not work.
  PlacementConfig placement;
};

/// \brief Per-query method configuration.
struct QueryOptions {
  Method method = Method::kExSample;
  core::ExSampleOptions exsample;
  core::AdaptiveExSampleOptions adaptive;
  samplers::HybridOptions hybrid;
  samplers::ProxyGuidedOptions proxy_guided;
  uint64_t sequential_stride = 30;
  /// Safety cap on detector invocations (default: the whole repository).
  uint64_t max_samples = 0;
  /// Frames per pipeline iteration (Sec. III-F batched execution). 1 is
  /// Algorithm 1 verbatim; larger values amortize per-batch costs and let the
  /// detect stage fan out across the engine's thread pool.
  size_t batch_size = 1;
};

/// \brief One query of a concurrent workload (`SearchEngine::RunConcurrent`).
struct QuerySpec {
  /// Class to search for.
  int32_t class_id = 0;
  /// Stop after this many reported results.
  uint64_t limit = 20;
  /// Per-query method configuration.
  QueryOptions options;
  /// Budget in simulated seconds this query would like to finish within; 0
  /// means none. Read only by the deadline scheduler, which steps the
  /// session closest to blowing its budget first — it never truncates a
  /// query, so traces are unaffected.
  double deadline_seconds = 0.0;
};

/// \brief High-level facade: distinct-object search over one repository.
///
/// Owns nothing heavyweight — it borrows the repository, chunking, and
/// ground truth and assembles a fresh detector / discriminator / strategy /
/// runner per query, so consecutive queries are independent (as Algorithm 1
/// assumes: discriminator state is per-query).
///
/// This is the API a downstream user calls; the lower layers stay available
/// for custom compositions.
class SearchEngine {
 public:
  SearchEngine(const video::VideoRepository* repo, const video::Chunking* chunking,
               const scene::GroundTruth* truth, EngineConfig config = {});

  /// \brief Shard-aware construction: queries run over `sharded`'s global
  /// frame view, with every picked batch dispatched to the owning shards'
  /// detector contexts. `chunking` and `truth` address the global frame
  /// space. `config.num_shards` is ignored (the repository's shard count
  /// wins).
  SearchEngine(const video::ShardedRepository* sharded, const video::Chunking* chunking,
               const scene::GroundTruth* truth, EngineConfig config = {});

  /// \brief "Find `limit` distinct objects of `class_id`": runs until the
  /// discriminator has returned `limit` results (or the repository is
  /// exhausted) and returns the discovery trace.
  common::Result<query::QueryTrace> FindDistinct(int32_t class_id, uint64_t limit,
                                                 const QueryOptions& options = {});

  /// \brief Evaluation mode: runs until `recall` of the class's ground-truth
  /// instances have been covered. A production system cannot call this (it
  /// needs N), but every benchmark does.
  common::Result<query::QueryTrace> RunToRecall(int32_t class_id, double recall,
                                                const QueryOptions& options = {});

  /// \brief Opens an incremental session for "find `limit` distinct objects
  /// of `class_id`". The session shares this engine's repository, chunking,
  /// proxy-scorer cache, and thread pool; stepping it interleaves with other
  /// sessions, which is how concurrent user queries are served.
  common::Result<std::unique_ptr<QuerySession>> CreateSession(
      int32_t class_id, uint64_t limit, const QueryOptions& options = {});

  /// \brief Executes many queries over the shared engine state. Each round,
  /// the configured `SessionScheduler` plans which sessions step (fair
  /// round-robin by default; priority/deadline variants reorder and weight
  /// the grants); with `coalesce_detect`, the scheduled sessions submit
  /// their batches to the shared `DetectorService`, which flushes them as
  /// full cross-session device batches. Returns one trace per spec, in
  /// order. Results are identical to running the specs one at a time — per-
  /// query state is isolated in the sessions, scheduling only reorders step
  /// grants, and coalescing only re-packs device batches — but the shared
  /// thread pool, scorer cache, and detector batches are paid for once.
  common::Result<std::vector<query::QueryTrace>> RunConcurrent(
      const std::vector<QuerySpec>& specs);

  /// Called by the observing `RunConcurrent` overload after every completed
  /// step of a session, in execution order, with the session's spec index.
  /// The session reference is valid for the duration of the call only.
  using SessionObserver = std::function<void(size_t index, const QuerySession&)>;

  /// \brief `RunConcurrent` with a per-step observer — the hook benchmarks
  /// and monitors use to watch the workload's progress (e.g. the global cost
  /// clock at which each session reported its first result) while the real
  /// driver, not a reimplementation of it, executes the schedule.
  common::Result<std::vector<query::QueryTrace>> RunConcurrent(
      const std::vector<QuerySpec>& specs, const SessionObserver& observer);

  /// \brief Builds the strategy object a query with `options` would use
  /// (exposed for tests and custom runners).
  common::Result<std::unique_ptr<query::SearchStrategy>> MakeStrategy(
      int32_t class_id, const QueryOptions& options);

  /// \brief The engine's configuration (as resolved at construction). The
  /// serving layer reads this to mirror the scheduler kind/seed and stats
  /// switches into its per-tenant inner schedulers.
  const EngineConfig& config() const { return config_; }

  /// \brief The engine-wide pool, created lazily on first use. Null when
  /// `config.num_threads == 1` (strictly sequential); 0 yields a
  /// hardware-sized pool.
  common::ThreadPool* thread_pool();

  /// \brief The engine-wide I/O pool the sessions' decode prefetchers share,
  /// created lazily. Null when `config.io_threads == 0` (decode work then
  /// shares the detect pool).
  common::ThreadPool* io_pool();

  /// \brief The sharded repository queries are dispatched over, or null for a
  /// single-repository engine.
  const video::ShardedRepository* sharded_repository() const { return sharded_; }

  /// \brief The shared cross-session detect service, created lazily on first
  /// use. Null when `config.coalesce_detect` is off (sessions then run their
  /// own detect stages). Exposes coalescing stats (device-batch fill rate,
  /// shared batches) for observability.
  query::DetectorService* detector_service();

  /// \brief The transport the detect service executes over, or null for the
  /// in-process path (`config.transport == kLocal`, or no service). Exposes
  /// wire stats (batches, bytes, injected failures) for observability.
  const query::ShardTransport* shard_transport() const { return transport_.get(); }

  /// \brief The engine-owned cross-query reuse state, created lazily on
  /// first use. Null when no reuse piece is enabled (`config.reuse`).
  /// Exposes cache/sketch/bank statistics for observability.
  reuse::ReuseManager* reuse_manager();

  /// \brief The engine-wide counter registry every session's and the
  /// service's slabs hang off. Always present; slabs are only acquired (and
  /// hot paths only tick) when `config.collect_stats` is on.
  stats::CounterRegistry* counter_registry() { return &registry_; }

  /// \brief The engine-wide stage-latency aggregate: per-session pipeline
  /// timers merge in when their sessions finish; the shared service's
  /// submit→grant and transport histograms record into it directly.
  const stats::StageTimer& stage_timer() const { return stage_timer_; }

  /// \brief One versioned JSON snapshot of everything the engine observes:
  /// the synced counter registry, the per-component stats structs published
  /// under uniform names (service.*, transport.*, reuse.*), and the
  /// per-stage latency histograms. Deterministic key order; see
  /// `stats::WriteStatsJson` for the shape. Call from the coordinator
  /// thread (between steps / after runs) — the same single-driver contract
  /// every other engine method has.
  std::string StatsJson();

 private:
  /// The pool a shard's detect stage fans out over: the shard's private pool
  /// when `config.threads_per_shard > 0` (created lazily, shared by all
  /// sessions), else the engine-wide pool.
  common::ThreadPool* shard_pool(uint32_t shard);
  /// The pool a shard's decode prefetch runs on: the shard's private I/O pool
  /// when `config.io_threads_per_shard > 0` (created lazily, shared by all
  /// sessions), else null (the prefetcher falls back to the engine I/O pool).
  common::ThreadPool* shard_io_pool(uint32_t shard);
  common::Result<std::unique_ptr<QuerySession>> MakeSession(
      int32_t class_id, const query::RunnerOptions& runner_options,
      const QueryOptions& options);
  common::Result<query::QueryTrace> Run(int32_t class_id,
                                        const query::RunnerOptions& runner_options,
                                        const QueryOptions& options);

  const video::VideoRepository* repo_;
  const video::Chunking* chunking_;
  const scene::GroundTruth* truth_;
  EngineConfig config_;
  // Sharded execution: non-null when this engine dispatches per shard. Either
  // borrowed (shard-aware constructor) or owned (`config.num_shards > 1` on
  // the plain constructor, split clip-aligned from the caller's repository).
  const video::ShardedRepository* sharded_ = nullptr;
  std::unique_ptr<video::ShardedRepository> owned_sharded_;
  // Proxy scorers are pure functions of (truth, class, options); cached per
  // class so hybrid/proxy queries do not rebuild them.
  std::map<int32_t, std::unique_ptr<detect::ProxyScorer>> scorers_;
  // Engine-wide worker pool shared by all sessions' detect stages.
  std::unique_ptr<common::ThreadPool> pool_;
  // Engine-wide I/O pool shared by all sessions' decode prefetchers.
  std::unique_ptr<common::ThreadPool> io_pool_;
  // Wire transport behind the detect service (config.transport == kLoopback),
  // created with the service. Declared before the service so the service —
  // whose flush loop leaves the transport empty — is destroyed first, and
  // the runner threads are joined after no coordinator can reach them.
  std::unique_ptr<query::ShardTransport> transport_;
  // Shared cross-session detect service (config.coalesce_detect), lazy.
  std::unique_ptr<query::DetectorService> detector_service_;
  // Session identities for the service's shared-batch attribution.
  uint64_t next_session_id_ = 1;
  // Engine-owned cross-query reuse state (config.reuse), lazy.
  std::unique_ptr<reuse::ReuseManager> reuse_manager_;
  // Engine-wide observability: the counter registry (owns every slab) and
  // the cross-session stage-latency aggregate. The registry outlives every
  // session, so slab pointers handed to components stay valid for the
  // engine's lifetime.
  stats::CounterRegistry registry_;
  stats::StageTimer stage_timer_;
  // Per-shard private pools (config.threads_per_shard > 0), lazily created.
  std::vector<std::unique_ptr<common::ThreadPool>> shard_pools_;
  // Per-shard private I/O pools (config.io_threads_per_shard > 0), lazy.
  std::vector<std::unique_ptr<common::ThreadPool>> shard_io_pools_;
};

}  // namespace engine
}  // namespace exsample

#endif  // EXSAMPLE_ENGINE_SEARCH_ENGINE_H_
