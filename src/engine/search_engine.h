#ifndef EXSAMPLE_ENGINE_SEARCH_ENGINE_H_
#define EXSAMPLE_ENGINE_SEARCH_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "core/adaptive_exsample.h"
#include "core/exsample.h"
#include "detect/detector.h"
#include "detect/proxy.h"
#include "query/runner.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "samplers/hybrid_strategy.h"
#include "samplers/proxy_strategy.h"
#include "samplers/random_strategy.h"
#include "scene/ground_truth.h"
#include "track/iou_discriminator.h"
#include "track/oracle_discriminator.h"
#include "video/chunking.h"
#include "video/repository.h"

namespace exsample {
namespace engine {

/// \brief Which frame-selection method a query uses.
enum class Method {
  kExSample,          ///< The paper's algorithm (default).
  kExSampleAdaptive,  ///< Sec. VII extension: automated chunk splitting.
  kRandom,            ///< Uniform random without replacement.
  kRandomPlus,        ///< Globally stratified random+ (Sec. III-F).
  kSequential,        ///< 1-in-k sequential scan (Sec. II-B naive baseline).
  kProxyGuided,       ///< BlazeIt-style: full scoring scan, then by score.
  kHybrid,            ///< Sec. VII extension: scan-free ExSample+proxy fusion.
};

/// \brief Returns the lowercase name of a method.
const char* MethodName(Method method);

/// \brief Per-engine configuration: how frames are detected and how distinct
/// identity is decided. One config serves many queries.
struct EngineConfig {
  /// Detector noise/cost model. `target_class` is overridden per query.
  detect::DetectorOptions detector;

  /// Which discriminator decides distinctness.
  enum class DiscriminatorKind {
    kIouTracker,  ///< Realistic tracker-based matching (default).
    kOracle,      ///< Ground-truth identity (evaluation/simulation mode).
  };
  DiscriminatorKind discriminator = DiscriminatorKind::kIouTracker;
  track::IouDiscriminatorOptions tracker;

  /// Proxy model config (only used by kProxyGuided / kHybrid queries).
  detect::ProxyOptions proxy;
};

/// \brief Per-query method configuration.
struct QueryOptions {
  Method method = Method::kExSample;
  core::ExSampleOptions exsample;
  core::AdaptiveExSampleOptions adaptive;
  samplers::HybridOptions hybrid;
  samplers::ProxyGuidedOptions proxy_guided;
  uint64_t sequential_stride = 30;
  /// Safety cap on detector invocations (default: the whole repository).
  uint64_t max_samples = 0;
};

/// \brief High-level facade: distinct-object search over one repository.
///
/// Owns nothing heavyweight — it borrows the repository, chunking, and
/// ground truth and assembles a fresh detector / discriminator / strategy /
/// runner per query, so consecutive queries are independent (as Algorithm 1
/// assumes: discriminator state is per-query).
///
/// This is the API a downstream user calls; the lower layers stay available
/// for custom compositions.
class SearchEngine {
 public:
  SearchEngine(const video::VideoRepository* repo, const video::Chunking* chunking,
               const scene::GroundTruth* truth, EngineConfig config = {});

  /// \brief "Find `limit` distinct objects of `class_id`": runs until the
  /// discriminator has returned `limit` results (or the repository is
  /// exhausted) and returns the discovery trace.
  common::Result<query::QueryTrace> FindDistinct(int32_t class_id, uint64_t limit,
                                                 const QueryOptions& options = {});

  /// \brief Evaluation mode: runs until `recall` of the class's ground-truth
  /// instances have been covered. A production system cannot call this (it
  /// needs N), but every benchmark does.
  common::Result<query::QueryTrace> RunToRecall(int32_t class_id, double recall,
                                                const QueryOptions& options = {});

  /// \brief Builds the strategy object a query with `options` would use
  /// (exposed for tests and custom runners).
  common::Result<std::unique_ptr<query::SearchStrategy>> MakeStrategy(
      int32_t class_id, const QueryOptions& options);

 private:
  common::Result<query::QueryTrace> Run(int32_t class_id,
                                        const query::RunnerOptions& runner_options,
                                        const QueryOptions& options);

  const video::VideoRepository* repo_;
  const video::Chunking* chunking_;
  const scene::GroundTruth* truth_;
  EngineConfig config_;
  // Proxy scorers are pure functions of (truth, class, options); cached per
  // class so hybrid/proxy queries do not rebuild them.
  std::map<int32_t, std::unique_ptr<detect::ProxyScorer>> scorers_;
};

}  // namespace engine
}  // namespace exsample

#endif  // EXSAMPLE_ENGINE_SEARCH_ENGINE_H_
