#ifndef EXSAMPLE_ENGINE_WAVE_DRIVER_H_
#define EXSAMPLE_ENGINE_WAVE_DRIVER_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "engine/query_session.h"
#include "query/detector_service.h"

namespace exsample {
namespace engine {

/// \brief Executes a planned sequence of step grants in *waves* over a set
/// of `QuerySession`s sharing one (optional) `query::DetectorService`.
///
/// A wave is the unit cross-session coalescing works in: every granted
/// session begins its step (submitting its detect work to the shared
/// service), the service flushes the merged per-shard queues as full device
/// batches, and the wave's sessions finish their steps in submission order.
/// A session granted twice closes the current wave first — a wave holds at
/// most one pending step per session. Without a service the waves degenerate
/// to plain sequential stepping.
///
/// This is the machinery `SearchEngine::RunConcurrent` always ran; it is
/// factored out so the serving layer's tenant loop (`serve::TenantServer`)
/// drives sessions through the *same* shipped semantics — including the
/// sticky-transport-failure handling — instead of reimplementing them.
///
/// Error contract: a permanently failed detect transport cancelled every
/// pending ticket, so the wave's sessions can never finish their steps.
/// `Grant`/`FlushWave` return false the moment that is detected; `status()`
/// then holds the non-OK transport status and the caller must abort the
/// half-begun steps (`AbortPending`) and surface the status instead of
/// truncated traces.
class SessionWaveDriver {
 public:
  /// Called after a wave session's `FinishStep`, with the caller-side index
  /// the step was granted under (the driver never interprets it).
  using FinishFn = std::function<void(size_t index)>;

  /// `service` may be null (no coalescing). `on_finish` must call
  /// `FinishStep()` on the session granted under `index` (and may observe it
  /// afterwards); the driver sequences the calls in submission order.
  SessionWaveDriver(query::DetectorService* service, FinishFn on_finish)
      : service_(service), on_finish_(std::move(on_finish)) {}

  /// \brief Grants one step to `session` under `index`. Flushes the open
  /// wave first when the session already has a step pending, polls the
  /// service between grants (latency-aware flushing), and returns false on
  /// transport failure (see `status()`). A session that is already done is
  /// skipped silently.
  bool Grant(size_t index, QuerySession* session) {
    if (!status_.ok()) return false;
    if (session->Done()) return true;  // Finished earlier this round.
    if (session->DetectPending() && !FlushWave()) return false;
    if (session->BeginStep()) wave_.push_back(index);
    // Latency-aware flushing (and its failure handling) between grants: a
    // submit may have filled a wire batch, and queued tickets may have aged
    // past the deadline while other sessions were stepping.
    if (service_ != nullptr) service_->Poll();
    return CheckService();
  }

  /// \brief Closes the open wave: flushes the service and finishes every
  /// wave session's step in submission order (invoking `on_finish`).
  /// Returns false on transport failure.
  bool FlushWave() {
    if (wave_.empty()) return true;
    if (service_ != nullptr) service_->Flush();
    if (!CheckService()) return false;
    for (const size_t index : wave_) on_finish_(index);
    wave_.clear();
    return true;
  }

  /// \brief Sticky transport status: OK until the shared service's transport
  /// fails permanently, then the failure the caller must surface.
  const common::Status& status() const { return status_; }

  /// \brief The failure path's cleanup: releases every half-begun step of
  /// `sessions` (decode tasks hold spans into the abandoned batches), then
  /// whatever the service still queues. Every session is aborted — not just
  /// those mid-step — so all of them withdraw their wire registrations and
  /// no abandoned session id can ever resolve to a dangling detector. Call
  /// before surfacing `status()`.
  void AbortPending(const std::vector<std::unique_ptr<QuerySession>>& sessions) {
    for (const auto& session : sessions) {
      if (session != nullptr) session->AbortStep();
    }
    if (service_ != nullptr) service_->CancelPending();
    wave_.clear();
  }

 private:
  bool CheckService() {
    if (service_ == nullptr || service_->transport_status().ok()) return true;
    status_ = service_->transport_status();
    return false;
  }

  query::DetectorService* service_;
  FinishFn on_finish_;
  std::vector<size_t> wave_;
  common::Status status_;
};

}  // namespace engine
}  // namespace exsample

#endif  // EXSAMPLE_ENGINE_WAVE_DRIVER_H_
