#ifndef EXSAMPLE_ENGINE_QUERY_SESSION_H_
#define EXSAMPLE_ENGINE_QUERY_SESSION_H_

#include <memory>
#include <vector>

#include "detect/detector.h"
#include "query/runner.h"
#include "query/shard_dispatch.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "track/discriminator.h"

namespace exsample {
namespace engine {

class SearchEngine;

/// \brief A live query being executed incrementally against a `SearchEngine`.
///
/// A session owns the per-query state Algorithm 1 requires to be independent
/// between queries — the strategy's beliefs, the detector's noise stream, and
/// the discriminator's matching memory — while sharing everything heavyweight
/// with its engine: the repository, chunking, proxy-scorer cache, and thread
/// pool. `Step()` advances by one batch, so a scheduler can interleave many
/// sessions over the shared resources; that is how `SearchEngine::
/// RunConcurrent` serves several users' queries at once.
///
/// Sessions are created by `SearchEngine::CreateSession` and must not outlive
/// their engine.
class QuerySession {
 public:
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// \brief Processes the next batch; returns false once the query is done.
  bool Step() { return execution_->Step(); }

  /// \brief True when no further `Step` will make progress.
  bool Done() const { return execution_->Done(); }

  /// \brief The discovery trace accumulated so far.
  const query::QueryTrace& Trace() const { return execution_->trace(); }

  /// \brief Runs the query to completion and returns the finalized trace.
  query::QueryTrace Finish() { return execution_->Finish(); }

  /// \brief The session's shard dispatcher, or null when the engine is not
  /// sharded. Exposes per-shard execution stats for observability.
  const query::ShardDispatcher* shard_dispatcher() const {
    return shard_dispatcher_.get();
  }

  /// \brief The per-shard partial traces accumulated so far (empty when the
  /// engine is not sharded).
  const std::vector<query::ShardTracePart>& ShardParts() const {
    return execution_->ShardParts();
  }

 private:
  friend class SearchEngine;
  QuerySession() = default;

  std::unique_ptr<query::SearchStrategy> strategy_;
  std::unique_ptr<detect::ObjectDetector> detector_;
  // Sharded engines: one detector context per shard plus the dispatcher that
  // routes batches to them (detector noise streams stay per-query, so each
  // session owns its shard detectors; pools are shared via the engine).
  std::vector<std::unique_ptr<detect::ObjectDetector>> shard_detectors_;
  std::unique_ptr<query::ShardDispatcher> shard_dispatcher_;
  std::unique_ptr<track::Discriminator> discriminator_;
  std::unique_ptr<query::QueryExecution> execution_;
};

}  // namespace engine
}  // namespace exsample

#endif  // EXSAMPLE_ENGINE_QUERY_SESSION_H_
