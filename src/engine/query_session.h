#ifndef EXSAMPLE_ENGINE_QUERY_SESSION_H_
#define EXSAMPLE_ENGINE_QUERY_SESSION_H_

#include <memory>
#include <vector>

#include "detect/detector.h"
#include "query/prefetch.h"
#include "query/runner.h"
#include "query/scheduler.h"
#include "query/shard_dispatch.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "reuse/reuse.h"
#include "stats/stage_timer.h"
#include "track/discriminator.h"
#include "video/decode.h"

namespace exsample {
namespace engine {

class SearchEngine;

/// \brief A live query being executed incrementally against a `SearchEngine`.
///
/// A session owns the per-query state Algorithm 1 requires to be independent
/// between queries — the strategy's beliefs, the detector's noise stream, and
/// the discriminator's matching memory — while sharing everything heavyweight
/// with its engine: the repository, chunking, proxy-scorer cache, and thread
/// pool. `Step()` advances by one batch, so a scheduler can interleave many
/// sessions over the shared resources; that is how `SearchEngine::
/// RunConcurrent` serves several users' queries at once.
///
/// Sessions are created by `SearchEngine::CreateSession` and must not outlive
/// their engine.
class QuerySession {
 public:
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// \brief Processes the next batch; returns false once the query is done.
  bool Step() {
    const bool progressed = execution_->Step();
    if (progressed) ++scheduler_stats_.steps_granted;
    return progressed;
  }

  /// \brief Split-phase stepping, the seam cross-session batch coalescing
  /// hangs off: `BeginStep` picks and stages the next batch (submitting its
  /// detect work to the engine's shared `DetectorService` when coalescing is
  /// on) and returns false once the query is done; after the service flush,
  /// `FinishStep` completes the step. `Step()` remains the one-call
  /// composition. Drivers that begin a step must finish it before beginning
  /// another (`DetectPending` tells which half is owed).
  bool BeginStep() {
    const bool progressed = execution_->BeginStep();
    if (progressed) ++scheduler_stats_.steps_granted;
    return progressed;
  }
  void FinishStep() { execution_->FinishStep(); }
  bool DetectPending() const { return execution_->DetectPending(); }

  /// \brief Abandons a begun step whose detections will never arrive (the
  /// engine's detect transport failed permanently and cancelled its pending
  /// tickets). The session is finished afterwards; its trace ends at the
  /// last completed step. `RunConcurrent` calls this before surfacing the
  /// transport error.
  void AbortStep() { execution_->AbortPendingStep(); }

  /// \brief Administrative cancellation: finishes the session at its last
  /// completed step without running it to its stop condition. The serving
  /// layer's load shedder cancels best-effort sessions this way under
  /// detector saturation (and on tenant budget exhaustion). Fatal while a
  /// step is pending — cancel only at wave boundaries, where every begun
  /// step has been finished. `Finish()` afterwards just finalizes the
  /// truncated trace.
  void Cancel() { execution_->Terminate(); }

  /// \brief True when no further `Step` will make progress.
  bool Done() const { return execution_->Done(); }

  /// \brief The discovery trace accumulated so far.
  const query::QueryTrace& Trace() const { return execution_->trace(); }

  /// \brief Runs the query to completion and returns the finalized trace.
  /// Under warm-start reuse, the finished strategy's chunk statistics — the
  /// sufficient statistic of its Gamma posteriors — are harvested into the
  /// engine's `reuse::BeliefBank` here, once, so later queries for the same
  /// key can seed their priors from them.
  query::QueryTrace Finish() {
    query::QueryTrace trace = execution_->Finish();
    HarvestBeliefs();
    PublishStageTimer();
    return trace;
  }

  /// \brief The session's shard dispatcher, or null when the engine is not
  /// sharded. Exposes per-shard execution stats for observability.
  const query::ShardDispatcher* shard_dispatcher() const {
    return shard_dispatcher_.get();
  }

  /// \brief The per-shard partial traces accumulated so far (empty when the
  /// engine is not sharded).
  const std::vector<query::ShardTracePart>& ShardParts() const {
    return execution_->ShardParts();
  }

  /// \brief The session's decode prefetcher, or null when the engine does not
  /// simulate decode (`EngineConfig::simulate_decode`). Exposes decode-ahead
  /// stats for observability.
  const query::DecodePrefetcher* prefetcher() const {
    return execution_->prefetcher();
  }

  /// \brief The session's decode store (unsharded engines with
  /// `simulate_decode`), or null. Sharded engines keep one store per shard in
  /// the dispatcher's contexts instead.
  const video::SimulatedVideoStore* video_store() const { return store_.get(); }

  /// \brief Scheduling/coalescing observability, mirroring `PrefetchStats`:
  /// steps granted to this session, frames submitted through the shared
  /// detector service, and how many of its frames/device batches were
  /// coalesced with other sessions'. All zeros (except `steps_granted`) when
  /// the engine does not coalesce (`EngineConfig::coalesce_detect`).
  const query::SessionSchedulerStats& scheduler_stats() const {
    return scheduler_stats_;
  }

  /// \brief Cross-query reuse observability: cache hits/misses, sketch
  /// skips, saved vs charged detector seconds, and whether this session's
  /// beliefs were warm-started. All zeros when the engine's reuse is off
  /// (`EngineConfig::reuse`).
  const reuse::ReuseSessionStats& reuse_stats() const { return reuse_stats_; }

  /// \brief The session's per-stage latency histograms (pick → classify →
  /// decode → detect → discriminate → observe). All-zero when the engine's
  /// `collect_stats` is off. Merged into the engine-wide aggregate once at
  /// `Finish`.
  const stats::StageTimer& stage_timer() const { return stage_timer_; }

 private:
  friend class SearchEngine;
  QuerySession() = default;

  // Merges this session's stage histograms into the engine-wide timer,
  // once. Runs on the thread calling Finish — the session's coordinator —
  // which is the engine timer's single-writer contract (the engine is
  // single-driver, like every other engine method).
  void PublishStageTimer() {
    if (engine_stage_timer_ == nullptr || stage_timer_published_) return;
    engine_stage_timer_->Merge(stage_timer_);
    stage_timer_published_ = true;
  }

  void HarvestBeliefs() {
    if (belief_bank_ == nullptr || beliefs_harvested_) return;
    const core::ChunkStatsTable* stats = strategy_->ChunkStatistics();
    if (stats == nullptr) return;  // Strategy holds no chunk beliefs.
    belief_bank_->RecordPosterior(belief_key_, chunking_signature_, *stats);
    beliefs_harvested_ = true;
  }

  std::unique_ptr<query::SearchStrategy> strategy_;
  std::unique_ptr<detect::ObjectDetector> detector_;
  // Decode accounting (EngineConfig::simulate_decode): position state is
  // per-query, so each session owns its store(s) — one query-global, or one
  // per shard, routed via the dispatcher's contexts.
  std::unique_ptr<video::SimulatedVideoStore> store_;
  std::vector<std::unique_ptr<video::SimulatedVideoStore>> shard_stores_;
  // Sharded engines: one detector context per shard plus the dispatcher that
  // routes batches to them (detector noise streams stay per-query, so each
  // session owns its shard detectors; pools are shared via the engine).
  std::vector<std::unique_ptr<detect::ObjectDetector>> shard_detectors_;
  std::unique_ptr<query::ShardDispatcher> shard_dispatcher_;
  std::unique_ptr<track::Discriminator> discriminator_;
  std::unique_ptr<query::QueryExecution> execution_;
  // Scheduler/coalescing tallies: `steps_granted` counted here, the
  // coalescing fields filled in by the engine's shared detector service
  // (wired via RunnerOptions::session_stats).
  query::SessionSchedulerStats scheduler_stats_;
  // Cross-query reuse: the session's binding to the engine's shared
  // ReuseManager (wired via RunnerOptions::reuse; null when cache and
  // sketch are both off) and its stats sink.
  std::unique_ptr<reuse::SessionReuse> reuse_;
  reuse::ReuseSessionStats reuse_stats_;
  // Warm-start harvest target: where Finish() deposits this query's
  // posterior counts (null when warm start is off).
  reuse::BeliefBank* belief_bank_ = nullptr;
  reuse::ReuseKey belief_key_{};
  uint64_t chunking_signature_ = 0;
  bool beliefs_harvested_ = false;
  // Observability: the session's own stage timer (single writer: the
  // stepping thread, via RunnerOptions::stats) and where Finish publishes it
  // (null when the engine's collect_stats is off).
  stats::StageTimer stage_timer_;
  stats::StageTimer* engine_stage_timer_ = nullptr;
  bool stage_timer_published_ = false;
};

}  // namespace engine
}  // namespace exsample

#endif  // EXSAMPLE_ENGINE_QUERY_SESSION_H_
