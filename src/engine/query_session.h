#ifndef EXSAMPLE_ENGINE_QUERY_SESSION_H_
#define EXSAMPLE_ENGINE_QUERY_SESSION_H_

#include <memory>

#include "detect/detector.h"
#include "query/runner.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "track/discriminator.h"

namespace exsample {
namespace engine {

class SearchEngine;

/// \brief A live query being executed incrementally against a `SearchEngine`.
///
/// A session owns the per-query state Algorithm 1 requires to be independent
/// between queries — the strategy's beliefs, the detector's noise stream, and
/// the discriminator's matching memory — while sharing everything heavyweight
/// with its engine: the repository, chunking, proxy-scorer cache, and thread
/// pool. `Step()` advances by one batch, so a scheduler can interleave many
/// sessions over the shared resources; that is how `SearchEngine::
/// RunConcurrent` serves several users' queries at once.
///
/// Sessions are created by `SearchEngine::CreateSession` and must not outlive
/// their engine.
class QuerySession {
 public:
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// \brief Processes the next batch; returns false once the query is done.
  bool Step() { return execution_->Step(); }

  /// \brief True when no further `Step` will make progress.
  bool Done() const { return execution_->Done(); }

  /// \brief The discovery trace accumulated so far.
  const query::QueryTrace& Trace() const { return execution_->trace(); }

  /// \brief Runs the query to completion and returns the finalized trace.
  query::QueryTrace Finish() { return execution_->Finish(); }

 private:
  friend class SearchEngine;
  QuerySession() = default;

  std::unique_ptr<query::SearchStrategy> strategy_;
  std::unique_ptr<detect::ObjectDetector> detector_;
  std::unique_ptr<track::Discriminator> discriminator_;
  std::unique_ptr<query::QueryExecution> execution_;
};

}  // namespace engine
}  // namespace exsample

#endif  // EXSAMPLE_ENGINE_QUERY_SESSION_H_
