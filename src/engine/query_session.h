#ifndef EXSAMPLE_ENGINE_QUERY_SESSION_H_
#define EXSAMPLE_ENGINE_QUERY_SESSION_H_

#include <memory>
#include <vector>

#include "detect/detector.h"
#include "query/prefetch.h"
#include "query/runner.h"
#include "query/shard_dispatch.h"
#include "query/strategy.h"
#include "query/trace.h"
#include "track/discriminator.h"
#include "video/decode.h"

namespace exsample {
namespace engine {

class SearchEngine;

/// \brief A live query being executed incrementally against a `SearchEngine`.
///
/// A session owns the per-query state Algorithm 1 requires to be independent
/// between queries — the strategy's beliefs, the detector's noise stream, and
/// the discriminator's matching memory — while sharing everything heavyweight
/// with its engine: the repository, chunking, proxy-scorer cache, and thread
/// pool. `Step()` advances by one batch, so a scheduler can interleave many
/// sessions over the shared resources; that is how `SearchEngine::
/// RunConcurrent` serves several users' queries at once.
///
/// Sessions are created by `SearchEngine::CreateSession` and must not outlive
/// their engine.
class QuerySession {
 public:
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// \brief Processes the next batch; returns false once the query is done.
  bool Step() { return execution_->Step(); }

  /// \brief True when no further `Step` will make progress.
  bool Done() const { return execution_->Done(); }

  /// \brief The discovery trace accumulated so far.
  const query::QueryTrace& Trace() const { return execution_->trace(); }

  /// \brief Runs the query to completion and returns the finalized trace.
  query::QueryTrace Finish() { return execution_->Finish(); }

  /// \brief The session's shard dispatcher, or null when the engine is not
  /// sharded. Exposes per-shard execution stats for observability.
  const query::ShardDispatcher* shard_dispatcher() const {
    return shard_dispatcher_.get();
  }

  /// \brief The per-shard partial traces accumulated so far (empty when the
  /// engine is not sharded).
  const std::vector<query::ShardTracePart>& ShardParts() const {
    return execution_->ShardParts();
  }

  /// \brief The session's decode prefetcher, or null when the engine does not
  /// simulate decode (`EngineConfig::simulate_decode`). Exposes decode-ahead
  /// stats for observability.
  const query::DecodePrefetcher* prefetcher() const {
    return execution_->prefetcher();
  }

  /// \brief The session's decode store (unsharded engines with
  /// `simulate_decode`), or null. Sharded engines keep one store per shard in
  /// the dispatcher's contexts instead.
  const video::SimulatedVideoStore* video_store() const { return store_.get(); }

 private:
  friend class SearchEngine;
  QuerySession() = default;

  std::unique_ptr<query::SearchStrategy> strategy_;
  std::unique_ptr<detect::ObjectDetector> detector_;
  // Decode accounting (EngineConfig::simulate_decode): position state is
  // per-query, so each session owns its store(s) — one query-global, or one
  // per shard, routed via the dispatcher's contexts.
  std::unique_ptr<video::SimulatedVideoStore> store_;
  std::vector<std::unique_ptr<video::SimulatedVideoStore>> shard_stores_;
  // Sharded engines: one detector context per shard plus the dispatcher that
  // routes batches to them (detector noise streams stay per-query, so each
  // session owns its shard detectors; pools are shared via the engine).
  std::vector<std::unique_ptr<detect::ObjectDetector>> shard_detectors_;
  std::unique_ptr<query::ShardDispatcher> shard_dispatcher_;
  std::unique_ptr<track::Discriminator> discriminator_;
  std::unique_ptr<query::QueryExecution> execution_;
};

}  // namespace engine
}  // namespace exsample

#endif  // EXSAMPLE_ENGINE_QUERY_SESSION_H_
