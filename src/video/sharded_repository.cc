#include "video/sharded_repository.h"

#include <algorithm>
#include <string>

namespace exsample {
namespace video {

common::Result<ShardedRepository> ShardedRepository::Make(
    std::vector<VideoRepository> shards) {
  if (shards.empty()) {
    return common::Status::InvalidArgument("sharded repository needs at least one shard");
  }
  ShardedRepository sharded;
  sharded.shard_offsets_.reserve(shards.size());
  for (const VideoRepository& shard : shards) {
    sharded.shard_offsets_.push_back(sharded.global_.TotalFrames());
    for (const VideoClip& clip : shard.Clips()) {
      auto added = sharded.global_.AddClip(clip.name, clip.frame_count, clip.fps);
      if (!added.ok()) return added.status();
    }
  }
  if (sharded.global_.TotalFrames() == 0) {
    return common::Status::InvalidArgument("sharded repository needs at least one frame");
  }
  sharded.shards_ = std::move(shards);
  return sharded;
}

common::Result<ShardedRepository> ShardedRepository::ShardByClips(
    const VideoRepository& repo, size_t num_shards) {
  if (num_shards == 0) {
    return common::Status::InvalidArgument("shard count must be >= 1");
  }
  if (repo.TotalFrames() == 0) {
    return common::Status::InvalidArgument("cannot shard an empty repository");
  }
  std::vector<VideoRepository> shards(num_shards);
  uint32_t clip = 0;
  uint64_t assigned = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t shards_after = num_shards - s - 1;
    const uint64_t remaining = repo.TotalFrames() - assigned;
    // Aim each shard at an equal split of what is left; clip granularity
    // makes the split approximate, never worse than one clip of imbalance.
    const uint64_t target = (remaining + shards_after) / (shards_after + 1);
    uint64_t got = 0;
    while (clip < repo.NumClips()) {
      const VideoClip& c = repo.Clip(clip);
      // Take at least one clip, then stop at the target — but never strand a
      // later shard without clips when enough remain to go around.
      if (got > 0 && got + c.frame_count > target) break;
      if (got > 0 && repo.NumClips() - clip <= shards_after) break;
      auto added = shards[s].AddClip(c.name, c.frame_count, c.fps);
      if (!added.ok()) return added.status();
      got += c.frame_count;
      ++clip;
    }
    assigned += got;
  }
  return Make(std::move(shards));
}

common::Result<uint32_t> ShardedRepository::ShardOfFrame(FrameId frame) const {
  if (frame >= TotalFrames()) {
    return common::Status::OutOfRange("frame id past end of sharded repository");
  }
  // Last shard whose begin offset is <= frame. Empty shards share their begin
  // with the following shard, so upper_bound lands past them.
  auto it = std::upper_bound(shard_offsets_.begin(), shard_offsets_.end(), frame);
  return static_cast<uint32_t>(it - shard_offsets_.begin()) - 1;
}

common::Result<ShardFrameRef> ShardedRepository::Locate(FrameId frame) const {
  auto shard = ShardOfFrame(frame);
  if (!shard.ok()) return shard.status();
  return ShardFrameRef{shard.value(), frame - shard_offsets_[shard.value()]};
}

common::Result<FrameId> ShardedRepository::ToGlobal(uint32_t shard,
                                                    FrameId frame_in_shard) const {
  if (shard >= shards_.size()) {
    return common::Status::OutOfRange("unknown shard id");
  }
  if (frame_in_shard >= shards_[shard].TotalFrames()) {
    return common::Status::OutOfRange("frame id past end of shard");
  }
  return shard_offsets_[shard] + frame_in_shard;
}

common::Result<Chunking> ComposeShardChunkings(
    const ShardedRepository& repo, const std::vector<const Chunking*>& per_shard) {
  if (per_shard.size() != repo.NumShards()) {
    return common::Status::InvalidArgument(
        "need exactly one chunking (or null for an empty shard) per shard");
  }
  std::vector<Chunk> chunks;
  for (uint32_t s = 0; s < repo.NumShards(); ++s) {
    const uint64_t shard_frames = repo.Shard(s).TotalFrames();
    if (per_shard[s] == nullptr) {
      if (shard_frames != 0) {
        return common::Status::InvalidArgument(
            "missing chunking for non-empty shard " + std::to_string(s));
      }
      continue;
    }
    if (per_shard[s]->TotalFrames() != shard_frames) {
      return common::Status::InvalidArgument(
          "shard " + std::to_string(s) + " chunking covers " +
          std::to_string(per_shard[s]->TotalFrames()) + " frames, shard has " +
          std::to_string(shard_frames));
    }
    const FrameId offset = repo.ShardBegin(s);
    for (const Chunk& chunk : per_shard[s]->Chunks()) {
      chunks.push_back(Chunk{0, chunk.begin + offset, chunk.end + offset});
    }
  }
  return Chunking::Make(std::move(chunks), repo.TotalFrames());
}

common::Result<std::vector<Chunking>> SplitChunkingByShard(const ShardedRepository& repo,
                                                           const Chunking& global) {
  if (global.TotalFrames() != repo.TotalFrames()) {
    return common::Status::InvalidArgument(
        "chunking and sharded repository cover different frame ranges");
  }
  std::vector<std::vector<Chunk>> local(repo.NumShards());
  for (const Chunk& chunk : global.Chunks()) {
    auto shard = repo.ShardOfFrame(chunk.begin);
    if (!shard.ok()) return shard.status();
    const uint32_t s = shard.value();
    if (chunk.end > repo.ShardEnd(s)) {
      return common::Status::InvalidArgument(
          "chunk " + std::to_string(chunk.chunk_id) + " spans shard boundary at frame " +
          std::to_string(repo.ShardEnd(s)));
    }
    const FrameId offset = repo.ShardBegin(s);
    local[s].push_back(Chunk{0, chunk.begin - offset, chunk.end - offset});
  }
  std::vector<Chunking> out;
  out.reserve(repo.NumShards());
  for (uint32_t s = 0; s < repo.NumShards(); ++s) {
    // A Chunking cannot be empty, so every shard must own at least one chunk
    // (empty shards in particular have no shard-local chunk view).
    auto chunking = Chunking::Make(std::move(local[s]), repo.Shard(s).TotalFrames());
    if (!chunking.ok()) {
      return common::Status::InvalidArgument(
          "shard " + std::to_string(s) + " has no valid chunk cover: " +
          chunking.status().message());
    }
    out.push_back(std::move(chunking).value());
  }
  return out;
}

}  // namespace video
}  // namespace exsample
