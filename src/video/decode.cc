#include "video/decode.h"

#include <chrono>
#include <thread>

namespace exsample {
namespace video {

double DecodeCostModel::RandomReadSeconds(uint64_t frame_in_clip) const {
  const uint64_t warmup = frame_in_clip % keyframe_interval;
  return seek_seconds + static_cast<double>(warmup + 1) / decode_fps;
}

double DecodeCostModel::SequentialReadSeconds() const { return 1.0 / decode_fps; }

common::Result<ReadPlan> SimulatedVideoStore::PlanRead(FrameId frame) {
  auto loc = repo_->Locate(frame);
  if (!loc.ok()) return loc.status();
  ReadPlan plan;
  plan.frame = frame;
  plan.sequential = has_position_ && frame == last_frame_ + 1;
  if (plan.sequential) {
    plan.frames_decoded = 1;
    plan.seconds = cost_.SequentialReadSeconds();
    ++stats_.sequential_reads;
  } else {
    const uint64_t warmup = loc.value().frame_in_clip % cost_.keyframe_interval;
    plan.frames_decoded = warmup + 1;
    plan.seconds = cost_.RandomReadSeconds(loc.value().frame_in_clip);
    ++stats_.random_reads;
  }
  stats_.frames_decoded += plan.frames_decoded;
  stats_.total_seconds += plan.seconds;
  has_position_ = true;
  last_frame_ = frame;
  return plan;
}

void SimulatedVideoStore::PerformRead(const ReadPlan& plan) const {
  if (cost_.wall_clock_scale <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(plan.seconds * cost_.wall_clock_scale));
}

common::Status SimulatedVideoStore::ReadAndDecode(FrameId frame) {
  auto plan = PlanRead(frame);
  if (!plan.ok()) return plan.status();
  PerformRead(plan.value());
  return common::Status::OK();
}

}  // namespace video
}  // namespace exsample
