#include "video/decode.h"

namespace exsample {
namespace video {

double DecodeCostModel::RandomReadSeconds(uint64_t frame_in_clip) const {
  const uint64_t warmup = frame_in_clip % keyframe_interval;
  return seek_seconds + static_cast<double>(warmup + 1) / decode_fps;
}

double DecodeCostModel::SequentialReadSeconds() const { return 1.0 / decode_fps; }

common::Status SimulatedVideoStore::ReadAndDecode(FrameId frame) {
  auto loc = repo_->Locate(frame);
  if (!loc.ok()) return loc.status();
  const bool sequential = has_position_ && frame == last_frame_ + 1;
  if (sequential) {
    ++stats_.sequential_reads;
    ++stats_.frames_decoded;
    stats_.total_seconds += cost_.SequentialReadSeconds();
  } else {
    ++stats_.random_reads;
    const uint64_t warmup = loc.value().frame_in_clip % cost_.keyframe_interval;
    stats_.frames_decoded += warmup + 1;
    stats_.total_seconds += cost_.RandomReadSeconds(loc.value().frame_in_clip);
  }
  has_position_ = true;
  last_frame_ = frame;
  return common::Status::OK();
}

}  // namespace video
}  // namespace exsample
