#include "video/repository.h"

#include <algorithm>

#include "common/hash.h"

namespace exsample {
namespace video {

common::Result<uint32_t> VideoRepository::AddClip(std::string name,
                                                  uint64_t frame_count, double fps) {
  if (frame_count == 0) {
    return common::Status::InvalidArgument("clip must have at least one frame");
  }
  if (!(fps > 0.0)) {
    return common::Status::InvalidArgument("clip fps must be positive");
  }
  const uint32_t clip_id = static_cast<uint32_t>(clips_.size());
  clip_offsets_.push_back(total_frames_);
  clips_.push_back(VideoClip{clip_id, std::move(name), frame_count, fps});
  total_frames_ += frame_count;
  total_seconds_ += static_cast<double>(frame_count) / fps;
  return clip_id;
}

common::Result<FrameLocation> VideoRepository::Locate(FrameId frame) const {
  if (frame >= total_frames_) {
    return common::Status::OutOfRange("frame id past end of repository");
  }
  // Find the last clip whose begin offset is <= frame.
  auto it = std::upper_bound(clip_offsets_.begin(), clip_offsets_.end(), frame);
  const size_t clip_idx = static_cast<size_t>(it - clip_offsets_.begin()) - 1;
  return FrameLocation{static_cast<uint32_t>(clip_idx), frame - clip_offsets_[clip_idx]};
}

uint64_t VideoRepository::Fingerprint() const {
  uint64_t h = common::HashCombine(0x4d575358u /* "XSWM" */, clips_.size());
  for (const VideoClip& clip : clips_) {
    h = common::HashCombine(h, clip.frame_count);
  }
  // Offsets are derivable from the counts, but folding them in keeps the
  // fingerprint honest should the layout rule ever change.
  for (const FrameId offset : clip_offsets_) {
    h = common::HashCombine(h, offset);
  }
  return common::HashCombine(h, total_frames_);
}

VideoRepository VideoRepository::SingleClip(uint64_t frame_count, double fps,
                                            std::string name) {
  VideoRepository repo;
  repo.AddClip(std::move(name), frame_count, fps);
  return repo;
}

VideoRepository VideoRepository::UniformClips(size_t clip_count,
                                              uint64_t frames_per_clip, double fps) {
  VideoRepository repo;
  for (size_t i = 0; i < clip_count; ++i) {
    repo.AddClip("clip" + std::to_string(i), frames_per_clip, fps);
  }
  return repo;
}

}  // namespace video
}  // namespace exsample
