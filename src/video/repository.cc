#include "video/repository.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"

namespace exsample {
namespace video {

common::Result<uint32_t> VideoRepository::AddClip(std::string name,
                                                  uint64_t frame_count, double fps) {
  if (frame_count == 0) {
    return common::Status::InvalidArgument("clip must have at least one frame");
  }
  if (!(fps > 0.0)) {
    return common::Status::InvalidArgument("clip fps must be positive");
  }
  const uint32_t clip_id = static_cast<uint32_t>(clips_.size());
  clip_offsets_.push_back(total_frames_);
  clips_.push_back(VideoClip{clip_id, std::move(name), frame_count, fps});
  // Fold the new clip into the running fingerprint chain, then finalize the
  // memo — O(name length) per clip instead of O(clips) per Fingerprint call.
  const VideoClip& added = clips_.back();
  clip_chain_ = common::HashCombine(clip_chain_, added.frame_count);
  // Identity, not just layout: the reuse layer keys cached detections by the
  // fingerprint, so two different recordings with identical frame counts
  // must not collide. Names hash bytewise (length first, so "ab"+"c" and
  // "a"+"bc" differ); fps by bit pattern.
  clip_chain_ = common::HashCombine(clip_chain_, added.name.size());
  for (const char c : added.name) {
    clip_chain_ =
        common::HashCombine(clip_chain_, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  uint64_t fps_bits = 0;
  std::memcpy(&fps_bits, &added.fps, sizeof(fps_bits));
  clip_chain_ = common::HashCombine(clip_chain_, fps_bits);
  // The clip's global begin offset is derivable from the counts, but folding
  // it in keeps the fingerprint honest should the layout rule ever change.
  clip_chain_ = common::HashCombine(clip_chain_, clip_offsets_.back());
  total_frames_ += frame_count;
  total_seconds_ += static_cast<double>(frame_count) / fps;
  fingerprint_ = ComputeFingerprint();
  return clip_id;
}

common::Result<FrameLocation> VideoRepository::Locate(FrameId frame) const {
  if (frame >= total_frames_) {
    return common::Status::OutOfRange("frame id past end of repository");
  }
  // Find the last clip whose begin offset is <= frame.
  auto it = std::upper_bound(clip_offsets_.begin(), clip_offsets_.end(), frame);
  const size_t clip_idx = static_cast<size_t>(it - clip_offsets_.begin()) - 1;
  return FrameLocation{static_cast<uint32_t>(clip_idx), frame - clip_offsets_[clip_idx]};
}

uint64_t VideoRepository::ComputeFingerprint() const {
  // Finalizer over the per-clip chain maintained by AddClip: clip count and
  // total extent close the hash so prefix repositories cannot collide with
  // their extensions.
  uint64_t h = common::HashCombine(0x4d575358u /* "XSWM" */, clip_chain_);
  h = common::HashCombine(h, clips_.size());
  return common::HashCombine(h, total_frames_);
}

VideoRepository VideoRepository::SingleClip(uint64_t frame_count, double fps,
                                            std::string name) {
  VideoRepository repo;
  repo.AddClip(std::move(name), frame_count, fps);
  return repo;
}

VideoRepository VideoRepository::UniformClips(size_t clip_count,
                                              uint64_t frames_per_clip, double fps) {
  VideoRepository repo;
  for (size_t i = 0; i < clip_count; ++i) {
    repo.AddClip("clip" + std::to_string(i), frames_per_clip, fps);
  }
  return repo;
}

}  // namespace video
}  // namespace exsample
