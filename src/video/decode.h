#ifndef EXSAMPLE_VIDEO_DECODE_H_
#define EXSAMPLE_VIDEO_DECODE_H_

#include <cstdint>

#include "video/repository.h"

namespace exsample {
namespace video {

/// \brief Cost model for random-access frame decoding.
///
/// The paper re-encodes video with a keyframe every 20 frames so random reads
/// are cheap (Sec. V-A, using the Hwang library). Decoding frame f requires
/// seeking to the preceding keyframe and decoding forward, so the cost of a
/// random read is `seek_seconds` plus `(f mod keyframe_interval) + 1` frames
/// of decode work. Sequential reads decode exactly one frame.
struct DecodeCostModel {
  /// Frames between keyframes in the re-encoded video.
  uint64_t keyframe_interval = 20;
  /// Fixed per-random-read overhead (container seek, demux).
  double seek_seconds = 0.002;
  /// Throughput of the decoder in frames per second.
  double decode_fps = 500.0;

  /// \brief Seconds to randomly access and decode local frame `frame_in_clip`.
  double RandomReadSeconds(uint64_t frame_in_clip) const;

  /// \brief Seconds to decode the next sequential frame.
  double SequentialReadSeconds() const;
};

/// \brief Tallies of decode work performed by a `SimulatedVideoStore`.
struct DecodeStats {
  uint64_t random_reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t frames_decoded = 0;  // Includes keyframe-to-target warmup frames.
  double total_seconds = 0.0;
};

/// \brief Simulated frame store that accounts for decode cost.
///
/// Frames are opaque — this class exists so that examples and benchmarks can
/// report realistic I/O+decode accounting alongside detector cost, mirroring
/// the paper's observation that the sampling loop is "dominated first by the
/// detector call, and second by the random read and decode".
class SimulatedVideoStore {
 public:
  SimulatedVideoStore(const VideoRepository* repo, DecodeCostModel cost)
      : repo_(repo), cost_(cost) {}

  /// \brief Simulates `video.read_and_decode(frame_id)` (Algorithm 1 line 8).
  ///
  /// Consecutive reads of adjacent frames are charged at the sequential rate;
  /// anything else is a random read. Returns OutOfRange for invalid frames.
  common::Status ReadAndDecode(FrameId frame);

  /// \brief Accumulated decode statistics.
  const DecodeStats& Stats() const { return stats_; }

  /// \brief Resets statistics (not position state).
  void ResetStats() { stats_ = DecodeStats{}; }

 private:
  const VideoRepository* repo_;
  DecodeCostModel cost_;
  DecodeStats stats_;
  bool has_position_ = false;
  FrameId last_frame_ = 0;
};

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_DECODE_H_
