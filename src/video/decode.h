#ifndef EXSAMPLE_VIDEO_DECODE_H_
#define EXSAMPLE_VIDEO_DECODE_H_

#include <cstdint>

#include "video/repository.h"

namespace exsample {
namespace video {

/// \brief Cost model for random-access frame decoding.
///
/// The paper re-encodes video with a keyframe every 20 frames so random reads
/// are cheap (Sec. V-A, using the Hwang library). Decoding frame f requires
/// seeking to the preceding keyframe and decoding forward, so the cost of a
/// random read is `seek_seconds` plus `(f mod keyframe_interval) + 1` frames
/// of decode work. Sequential reads decode exactly one frame.
struct DecodeCostModel {
  /// Frames between keyframes in the re-encoded video.
  uint64_t keyframe_interval = 20;
  /// Fixed per-random-read overhead (container seek, demux).
  double seek_seconds = 0.002;
  /// Throughput of the decoder in frames per second.
  double decode_fps = 500.0;
  /// When > 0, `PerformRead` spends `charged seconds * wall_clock_scale` of
  /// real time per read (a sleep standing in for the decoder's actual work),
  /// so benchmarks can measure decode/detect overlap in wall-clock. 0 (the
  /// default) keeps the store accounting-only, exactly as before.
  double wall_clock_scale = 0.0;

  /// \brief Seconds to randomly access and decode local frame `frame_in_clip`.
  double RandomReadSeconds(uint64_t frame_in_clip) const;

  /// \brief Seconds to decode the next sequential frame.
  double SequentialReadSeconds() const;
};

/// \brief Tallies of decode work performed by a `SimulatedVideoStore`.
struct DecodeStats {
  uint64_t random_reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t frames_decoded = 0;  // Includes keyframe-to-target warmup frames.
  double total_seconds = 0.0;
};

/// \brief The accounting half of one frame read, produced by
/// `SimulatedVideoStore::PlanRead` and executable by `PerformRead`.
///
/// Splitting a read into plan + perform is what makes asynchronous decode
/// deterministic: plans are made on the coordinator thread in batch order
/// (position state and charged seconds advance exactly as the synchronous
/// loop's would), while the wall-clock work they describe can run on any
/// thread, in any order, concurrently.
struct ReadPlan {
  FrameId frame = 0;
  /// Seconds charged to the trace for this read.
  double seconds = 0.0;
  /// Whether the read continued the store's sequential position.
  bool sequential = false;
  /// Decode work units performed (keyframe warmup + target for random reads).
  uint64_t frames_decoded = 0;
};

/// \brief Simulated frame store that accounts for decode cost.
///
/// Frames are opaque — this class exists so that examples and benchmarks can
/// report realistic I/O+decode accounting alongside detector cost, mirroring
/// the paper's observation that the sampling loop is "dominated first by the
/// detector call, and second by the random read and decode".
///
/// Two call styles share one accounting core:
///  - `ReadAndDecode(frame)` — the synchronous Algorithm 1 read;
///  - `PlanRead(frame)` then `PerformRead(plan)` — the asynchronous split the
///    decode prefetcher uses to overlap decode with detection. Plans made in
///    the same frame order charge bit-identical seconds to the synchronous
///    calls; `PerformRead` touches no store state and is safe to run from any
///    thread. A real decoder backend (FFmpeg) implements `PerformRead`'s
///    contract — do the work for a read the planner already priced.
class SimulatedVideoStore {
 public:
  SimulatedVideoStore(const VideoRepository* repo, DecodeCostModel cost)
      : repo_(repo), cost_(cost) {}

  /// \brief Simulates `video.read_and_decode(frame_id)` (Algorithm 1 line 8).
  ///
  /// Consecutive reads of adjacent frames are charged at the sequential rate;
  /// anything else is a random read. Returns OutOfRange for invalid frames.
  /// Equivalent to `PlanRead` + `PerformRead`.
  common::Status ReadAndDecode(FrameId frame);

  /// \brief Accounting half of a read: classifies `frame` against the current
  /// sequential position, advances the position, updates `Stats()`, and
  /// returns the plan — without performing the decode work. Not thread-safe:
  /// plans must be made from one thread, in read order (that order *is* the
  /// accounting).
  common::Result<ReadPlan> PlanRead(FrameId frame);

  /// \brief Wall-clock half of a read: performs the work `plan` describes.
  /// Touches no store state, so outstanding plans may execute concurrently on
  /// any threads, in any order. With `wall_clock_scale > 0` this sleeps
  /// `plan.seconds * wall_clock_scale`; otherwise it is free.
  void PerformRead(const ReadPlan& plan) const;

  /// \brief Accumulated decode statistics.
  const DecodeStats& Stats() const { return stats_; }

  /// \brief The cost model the store prices reads with.
  const DecodeCostModel& Cost() const { return cost_; }

  /// \brief Resets statistics (not position state).
  void ResetStats() { stats_ = DecodeStats{}; }

 private:
  const VideoRepository* repo_;
  DecodeCostModel cost_;
  DecodeStats stats_;
  bool has_position_ = false;
  FrameId last_frame_ = 0;
};

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_DECODE_H_
