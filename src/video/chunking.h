#ifndef EXSAMPLE_VIDEO_CHUNKING_H_
#define EXSAMPLE_VIDEO_CHUNKING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "video/repository.h"

namespace exsample {
namespace video {

/// \brief A contiguous range of global frames [begin, end) forming one
/// ExSample chunk.
struct Chunk {
  uint32_t chunk_id = 0;
  FrameId begin = 0;
  FrameId end = 0;

  /// \brief Number of frames in the chunk.
  uint64_t Size() const { return end - begin; }
  /// \brief True when `frame` falls inside the chunk.
  bool Contains(FrameId frame) const { return frame >= begin && frame < end; }
};

/// \brief A partition of the repository's global frame range into chunks.
///
/// Chunks are the arms of ExSample's bandit: per-chunk statistics drive
/// Thompson sampling. A chunking must cover every frame exactly once, in
/// order; `Make` validates this.
class Chunking {
 public:
  /// \brief Validated constructor: `chunks` must be non-empty, sorted,
  /// gap-free, and cover [0, total_frames).
  static common::Result<Chunking> Make(std::vector<Chunk> chunks, uint64_t total_frames);

  /// \brief Number of chunks (M in the paper).
  size_t NumChunks() const { return chunks_.size(); }

  /// \brief Chunk metadata by id.
  const Chunk& GetChunk(size_t chunk_id) const { return chunks_[chunk_id]; }

  /// \brief All chunks.
  const std::vector<Chunk>& Chunks() const { return chunks_; }

  /// \brief Total frames covered.
  uint64_t TotalFrames() const { return total_frames_; }

  /// \brief The id of the chunk containing `frame` (binary search).
  ///
  /// Returns OutOfRange for frames past the covered range.
  common::Result<uint32_t> ChunkOfFrame(FrameId frame) const;

 private:
  Chunking(std::vector<Chunk> chunks, uint64_t total_frames);

  std::vector<Chunk> chunks_;
  std::vector<FrameId> begins_;  // chunk begin offsets, for binary search
  uint64_t total_frames_ = 0;
};

/// \brief One chunk per clip (used for datasets of many short clips, like
/// BDD, where clip boundaries are natural chunk boundaries).
common::Result<Chunking> MakePerClipChunks(const VideoRepository& repo);

/// \brief Splits each clip into chunks of at most `chunk_seconds` of video
/// (the paper's "20 minute chunks"). Chunks never span clip boundaries; a
/// clip shorter than `chunk_seconds` becomes one chunk.
common::Result<Chunking> MakeFixedDurationChunks(const VideoRepository& repo,
                                                 double chunk_seconds);

/// \brief Splits the global frame range into `count` nearly equal chunks,
/// ignoring clip boundaries (used by the simulation studies of Sec. IV).
common::Result<Chunking> MakeFixedCountChunks(const VideoRepository& repo, size_t count);

/// \brief Same as `MakeFixedCountChunks` but over a bare frame count, for
/// simulations that do not materialize a repository.
common::Result<Chunking> MakeFixedCountChunks(uint64_t total_frames, size_t count);

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_CHUNKING_H_
