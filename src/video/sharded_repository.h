#ifndef EXSAMPLE_VIDEO_SHARDED_REPOSITORY_H_
#define EXSAMPLE_VIDEO_SHARDED_REPOSITORY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "video/chunking.h"
#include "video/repository.h"

namespace exsample {
namespace video {

/// \brief Location of a frame inside a specific shard.
struct ShardFrameRef {
  uint32_t shard = 0;
  FrameId frame_in_shard = 0;
};

/// \brief A video repository partitioned into shards.
///
/// Shards split the global `FrameId` space into contiguous, clip-aligned
/// ranges: shard 0's frames come first, then shard 1's, and so on, exactly as
/// clips are laid out inside a single `VideoRepository`. Each shard is itself
/// a complete `VideoRepository` (whole clips, local frame ids starting at 0),
/// so a shard can live on its own machine with its own decoder and detector
/// while sampling code keeps working in the one global frame space.
///
/// The flattened `Global()` view is frame-for-frame identical to the
/// single-repository layout the shards were cut from — which is what makes
/// sharded execution trace-equivalent to unsharded execution (strategies,
/// chunkings, and ground truth all address the global space; only the
/// execution of a picked frame is routed to its owning shard).
///
/// Empty shards are legal (a deployment may provision more shards than it has
/// clips); they own no frames and are skipped by the frame mapping.
class ShardedRepository {
 public:
  /// \brief Validated constructor from per-shard repositories.
  ///
  /// Requires at least one shard and at least one frame overall. Shards may
  /// be empty.
  static common::Result<ShardedRepository> Make(std::vector<VideoRepository> shards);

  /// \brief Partitions `repo`'s clips into `num_shards` contiguous groups
  /// with near-equal frame counts (clips are never split across shards).
  ///
  /// When `num_shards` exceeds the clip count, the trailing shards are empty.
  /// The resulting `Global()` view has the same clip layout as `repo`.
  static common::Result<ShardedRepository> ShardByClips(const VideoRepository& repo,
                                                        size_t num_shards);

  /// \brief Number of shards (including empty ones).
  size_t NumShards() const { return shards_.size(); }

  /// \brief Shard contents by id.
  const VideoRepository& Shard(uint32_t shard) const { return shards_[shard]; }

  /// \brief The flattened single-repository view (concatenation of all
  /// shards' clips, in shard order). Strategies and chunkings address this
  /// global frame space.
  const VideoRepository& Global() const { return global_; }

  /// \brief First global frame id owned by a shard.
  FrameId ShardBegin(uint32_t shard) const { return shard_offsets_[shard]; }

  /// \brief One-past-last global frame id owned by a shard.
  FrameId ShardEnd(uint32_t shard) const {
    return shard_offsets_[shard] + shards_[shard].TotalFrames();
  }

  /// \brief Total frames across all shards.
  uint64_t TotalFrames() const { return global_.TotalFrames(); }

  /// \brief Total clips across all shards.
  size_t NumClips() const { return global_.NumClips(); }

  /// \brief The shard owning a global frame (empty shards never own frames).
  ///
  /// Returns OutOfRange when `frame` is past the end of the repository.
  common::Result<uint32_t> ShardOfFrame(FrameId frame) const;

  /// \brief Maps a global frame id to (shard, local frame).
  common::Result<ShardFrameRef> Locate(FrameId frame) const;

  /// \brief Maps (shard, local frame) back to the global frame id.
  ///
  /// Returns OutOfRange for unknown shards or local frames past the shard's
  /// end (in particular, any local frame of an empty shard).
  common::Result<FrameId> ToGlobal(uint32_t shard, FrameId frame_in_shard) const;

 private:
  ShardedRepository() = default;

  std::vector<VideoRepository> shards_;
  std::vector<FrameId> shard_offsets_;  // Parallel to shards_: global begin.
  VideoRepository global_;
};

/// \brief Composes per-shard chunkings (in shard-local frame coordinates)
/// into one chunking over the global frame space.
///
/// `per_shard[s]` must cover shard `s`'s local frame range exactly; it may be
/// null only for empty shards (a `Chunking` cannot be empty). The composed
/// chunking has one chunk per per-shard chunk, offset by the shard's global
/// begin, so per-shard chunk statistics and the global bandit view describe
/// the same arms.
common::Result<Chunking> ComposeShardChunkings(const ShardedRepository& repo,
                                               const std::vector<const Chunking*>& per_shard);

/// \brief Splits a global chunking into per-shard chunkings in shard-local
/// coordinates — the inverse of `ComposeShardChunkings`.
///
/// Every chunk must lie entirely within one shard (clip-aligned chunk schemes
/// always satisfy this; fixed-count chunks that straddle a shard boundary are
/// rejected with InvalidArgument), and every shard must own at least one
/// chunk. `ComposeShardChunkings` over the result reproduces `global` chunk
/// for chunk.
common::Result<std::vector<Chunking>> SplitChunkingByShard(const ShardedRepository& repo,
                                                           const Chunking& global);

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_SHARDED_REPOSITORY_H_
