#ifndef EXSAMPLE_VIDEO_REPOSITORY_H_
#define EXSAMPLE_VIDEO_REPOSITORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace exsample {
namespace video {

/// \brief Global frame identifier across the whole repository.
///
/// Frames of all clips are laid out consecutively: clip 0's frames come
/// first, then clip 1's, and so on. All sampling code works in this global
/// space; `VideoRepository` maps between global ids and (clip, local frame).
using FrameId = uint64_t;

/// \brief One video file in the repository.
struct VideoClip {
  /// Stable identifier (index into the repository).
  uint32_t clip_id = 0;
  /// Human-readable name (file name in a real deployment).
  std::string name;
  /// Number of frames in this clip.
  uint64_t frame_count = 0;
  /// Nominal frames per second of the recording.
  double fps = 30.0;
};

/// \brief Location of a frame inside a specific clip.
struct FrameLocation {
  uint32_t clip_id = 0;
  uint64_t frame_in_clip = 0;
};

/// \brief A collection of video clips with a global, contiguous frame index.
///
/// This is the "un-indexed video repository" of the paper: no precomputed
/// detections, just clips, frame counts, and frame rates. The repository is
/// immutable once built (clips are appended before any query runs).
class VideoRepository {
 public:
  /// \brief Appends a clip; returns its assigned clip id.
  ///
  /// Returns InvalidArgument for clips with zero frames or non-positive fps.
  common::Result<uint32_t> AddClip(std::string name, uint64_t frame_count,
                                   double fps = 30.0);

  /// \brief Number of clips.
  size_t NumClips() const { return clips_.size(); }

  /// \brief Total frames across all clips.
  uint64_t TotalFrames() const { return total_frames_; }

  /// \brief Total video duration in seconds (sum of frame_count / fps).
  double TotalSeconds() const { return total_seconds_; }

  /// \brief Clip metadata by id.
  const VideoClip& Clip(uint32_t clip_id) const { return clips_[clip_id]; }

  /// \brief All clips.
  const std::vector<VideoClip>& Clips() const { return clips_; }

  /// \brief First global frame id of a clip.
  FrameId ClipBegin(uint32_t clip_id) const { return clip_offsets_[clip_id]; }

  /// \brief One-past-last global frame id of a clip.
  FrameId ClipEnd(uint32_t clip_id) const {
    return clip_offsets_[clip_id] + clips_[clip_id].frame_count;
  }

  /// \brief Maps a global frame id to (clip, local frame).
  ///
  /// Returns OutOfRange when `frame` is past the end of the repository.
  common::Result<FrameLocation> Locate(FrameId frame) const;

  /// \brief Stable 64-bit fingerprint of the repository: clip count,
  /// per-clip frame counts, names, and frame rates, plus the global offsets.
  /// Two repositories agree on every global frame id — and on clip identity —
  /// iff their fingerprints match. The distributed detect wire format stamps
  /// requests with it (a shard runner serving a different repository rejects
  /// the batch instead of silently detecting the wrong frames), and the
  /// cross-query reuse layer keys its detection cache by it. Names and frame
  /// rates are folded in deliberately: they do not affect frame addressing,
  /// but two *different recordings* laid out identically must not share
  /// cached detections, so layout-only collisions became a correctness
  /// hazard, not just an honesty concern. Memoized — maintained by `AddClip`,
  /// so the call is O(1) however many clips the repository holds.
  uint64_t Fingerprint() const {
    return clips_.empty() ? ComputeFingerprint() : fingerprint_;
  }

  /// \brief Convenience builder: a repository with a single clip.
  static VideoRepository SingleClip(uint64_t frame_count, double fps = 30.0,
                                    std::string name = "clip0");

  /// \brief Convenience builder: `clip_count` equal-length clips.
  static VideoRepository UniformClips(size_t clip_count, uint64_t frames_per_clip,
                                      double fps = 30.0);

 private:
  uint64_t ComputeFingerprint() const;

  std::vector<VideoClip> clips_;
  std::vector<FrameId> clip_offsets_;  // Parallel to clips_: global begin frame.
  uint64_t total_frames_ = 0;
  double total_seconds_ = 0.0;
  // Memoized Fingerprint(), refreshed by AddClip from the running per-clip
  // hash chain (clip_chain_). The repository is immutable once built, so
  // post-build reads are plain const loads — no atomics needed even when
  // concurrent sessions key their reuse state by it.
  uint64_t clip_chain_ = 0;
  uint64_t fingerprint_ = 0;
};

}  // namespace video
}  // namespace exsample

#endif  // EXSAMPLE_VIDEO_REPOSITORY_H_
