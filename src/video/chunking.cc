#include "video/chunking.h"

#include <algorithm>
#include <cmath>

namespace exsample {
namespace video {

Chunking::Chunking(std::vector<Chunk> chunks, uint64_t total_frames)
    : chunks_(std::move(chunks)), total_frames_(total_frames) {
  begins_.reserve(chunks_.size());
  for (const Chunk& chunk : chunks_) begins_.push_back(chunk.begin);
}

common::Result<Chunking> Chunking::Make(std::vector<Chunk> chunks,
                                        uint64_t total_frames) {
  if (chunks.empty()) {
    return common::Status::InvalidArgument("chunking must have at least one chunk");
  }
  FrameId cursor = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].begin != cursor) {
      return common::Status::InvalidArgument(
          "chunks must be contiguous and start at frame 0");
    }
    if (chunks[i].end <= chunks[i].begin) {
      return common::Status::InvalidArgument("chunk must contain at least one frame");
    }
    chunks[i].chunk_id = static_cast<uint32_t>(i);
    cursor = chunks[i].end;
  }
  if (cursor != total_frames) {
    return common::Status::InvalidArgument("chunks must cover exactly [0, total_frames)");
  }
  return Chunking(std::move(chunks), total_frames);
}

common::Result<uint32_t> Chunking::ChunkOfFrame(FrameId frame) const {
  if (frame >= total_frames_) {
    return common::Status::OutOfRange("frame past end of chunking");
  }
  auto it = std::upper_bound(begins_.begin(), begins_.end(), frame);
  return static_cast<uint32_t>(it - begins_.begin()) - 1;
}

common::Result<Chunking> MakePerClipChunks(const VideoRepository& repo) {
  std::vector<Chunk> chunks;
  chunks.reserve(repo.NumClips());
  for (uint32_t c = 0; c < repo.NumClips(); ++c) {
    chunks.push_back(Chunk{c, repo.ClipBegin(c), repo.ClipEnd(c)});
  }
  return Chunking::Make(std::move(chunks), repo.TotalFrames());
}

common::Result<Chunking> MakeFixedDurationChunks(const VideoRepository& repo,
                                                 double chunk_seconds) {
  if (!(chunk_seconds > 0.0)) {
    return common::Status::InvalidArgument("chunk_seconds must be positive");
  }
  std::vector<Chunk> chunks;
  for (uint32_t c = 0; c < repo.NumClips(); ++c) {
    const VideoClip& clip = repo.Clip(c);
    const uint64_t frames_per_chunk = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(chunk_seconds * clip.fps)));
    const FrameId clip_begin = repo.ClipBegin(c);
    const FrameId clip_end = repo.ClipEnd(c);
    for (FrameId begin = clip_begin; begin < clip_end; begin += frames_per_chunk) {
      const FrameId end = std::min<FrameId>(begin + frames_per_chunk, clip_end);
      chunks.push_back(Chunk{0, begin, end});
    }
  }
  return Chunking::Make(std::move(chunks), repo.TotalFrames());
}

common::Result<Chunking> MakeFixedCountChunks(uint64_t total_frames, size_t count) {
  if (count == 0) {
    return common::Status::InvalidArgument("chunk count must be positive");
  }
  if (total_frames < count) {
    return common::Status::InvalidArgument("more chunks than frames");
  }
  std::vector<Chunk> chunks;
  chunks.reserve(count);
  // Distribute the remainder one frame at a time so sizes differ by <= 1.
  const uint64_t base = total_frames / count;
  const uint64_t extra = total_frames % count;
  FrameId cursor = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t size = base + (i < extra ? 1 : 0);
    chunks.push_back(Chunk{0, cursor, cursor + size});
    cursor += size;
  }
  return Chunking::Make(std::move(chunks), total_frames);
}

common::Result<Chunking> MakeFixedCountChunks(const VideoRepository& repo, size_t count) {
  return MakeFixedCountChunks(repo.TotalFrames(), count);
}

}  // namespace video
}  // namespace exsample
