#ifndef EXSAMPLE_TESTUTIL_SHARDD_HARNESS_H_
#define EXSAMPLE_TESTUTIL_SHARDD_HARNESS_H_

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace exsample {
namespace testutil {

/// \file
/// \brief Subprocess harness of the socket-transport suites: spawns real
/// `exsample_shardd` servers, discovers their ephemeral ports through the
/// port-file handshake, and kills/restarts them to inject the failures the
/// transport must infer. Header-only so the dist test and the dist bench
/// share one spawn recipe (both get the server path baked in as
/// `EXSAMPLE_SHARDD_PATH`).

/// \brief One `exsample_shardd` subprocess under test control.
class ShardServer {
 public:
  struct Options {
    /// Scenario recipe — must match the coordinator's fixture or the server
    /// (correctly) answers kRepoMismatch.
    uint64_t frames = 80000;
    uint64_t seed = 5;
    size_t threads = 1;
    /// Fault injection: serve this many detect requests, then wedge
    /// (read but never answer). < 0: never.
    int64_t hang_after = -1;
  };

  ShardServer(std::string shardd_path, Options options)
      : shardd_path_(std::move(shardd_path)), options_(options) {
    Spawn(/*port=*/0);
  }

  ~ShardServer() { Kill(); }

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  int port() const { return port_; }
  std::string host() const { return "127.0.0.1:" + std::to_string(port_); }
  bool running() const { return pid_ > 0; }

  /// SIGKILLs the server and reaps it. Connections drop with no goodbye —
  /// exactly the silence the transport's failure inference must handle.
  void Kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
    pid_ = -1;
  }

  /// Respawns a dead server on the port the first spawn bound, so a
  /// transport configured with the original host list reconnects to the
  /// revived server. The fresh process starts with empty session state —
  /// the coordinator's registration replay is what repopulates it.
  void Restart() {
    common::Check(pid_ <= 0, "Restart on a running shard server");
    common::Check(port_ > 0, "Restart before the first spawn bound a port");
    Spawn(port_);
  }

 private:
  void Spawn(int port) {
    // Unique-enough port-file name: pid of the test process plus a
    // monotonically increasing counter (restarts reuse the port but not the
    // file).
    static int counter = 0;
    port_file_ = "/tmp/exsample_shardd_" + std::to_string(::getpid()) + "_" +
                 std::to_string(++counter) + ".port";
    std::remove(port_file_.c_str());

    std::vector<std::string> args = {
        shardd_path_,
        "--port=" + std::to_string(port),
        "--port-file=" + port_file_,
        "--frames=" + std::to_string(options_.frames),
        "--seed=" + std::to_string(options_.seed),
        "--threads=" + std::to_string(options_.threads),
    };
    if (options_.hang_after >= 0) {
      args.push_back("--hang-after=" + std::to_string(options_.hang_after));
    }

    // Flush before forking: whatever the harness's process has buffered on
    // stdio would otherwise be inherited by the child and flushed a second
    // time (duplicated bench output, confusingly interleaved logs).
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    common::Check(pid >= 0, "fork failed");
    if (pid == 0) {
      // Child: quiet stdout (the listening banner), keep stderr for
      // diagnosing a server that dies on startup.
      std::freopen("/dev/null", "w", stdout);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::perror("execv exsample_shardd");
      std::_Exit(127);
    }
    pid_ = pid;

    // The port-file rename is the ready signal: once the file exists, the
    // server is listening. Scenario generation dominates startup, so the
    // window is generous.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      std::FILE* f = std::fopen(port_file_.c_str(), "r");
      if (f != nullptr) {
        int bound = 0;
        const int got = std::fscanf(f, "%d", &bound);
        std::fclose(f);
        if (got == 1 && bound > 0) {
          port_ = bound;
          break;
        }
      }
      int wstatus = 0;
      if (::waitpid(pid_, &wstatus, WNOHANG) == pid_) {
        pid_ = -1;
        common::Check(false, "exsample_shardd died before binding its port");
      }
      common::Check(std::chrono::steady_clock::now() < deadline,
                    "timed out waiting for exsample_shardd to bind");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::remove(port_file_.c_str());
  }

  std::string shardd_path_;
  Options options_;
  std::string port_file_;
  pid_t pid_ = -1;
  int port_ = 0;
};

/// \brief Spawns one server per shard (all sharing one scenario recipe) and
/// exposes the transport's host list.
class ShardFleet {
 public:
  ShardFleet(const std::string& shardd_path, size_t num_shards,
             ShardServer::Options options = {}) {
    servers_.reserve(num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
      servers_.push_back(std::make_unique<ShardServer>(shardd_path, options));
    }
  }

  std::vector<std::string> Hosts() const {
    std::vector<std::string> hosts;
    hosts.reserve(servers_.size());
    for (const auto& server : servers_) hosts.push_back(server->host());
    return hosts;
  }

  ShardServer& server(size_t shard) { return *servers_[shard]; }
  size_t size() const { return servers_.size(); }

 private:
  std::vector<std::unique_ptr<ShardServer>> servers_;
};

}  // namespace testutil
}  // namespace exsample

#endif  // EXSAMPLE_TESTUTIL_SHARDD_HARNESS_H_
