#ifndef EXSAMPLE_SERVE_TENANT_H_
#define EXSAMPLE_SERVE_TENANT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "stats/counter_registry.h"

namespace exsample {
namespace serve {

/// \brief Service-level objective class of a tenant: how the serving layer
/// treats its queries under detector saturation.
enum class SloClass {
  /// Latency-sensitive users: queued (never shed) under saturation.
  kInteractive,
  /// Batch/scavenger work: deprioritized first in the weighted-fair pick
  /// and cancelled first when the engine must shed load.
  kBestEffort,
};

/// \brief Lowercase name of an SLO class ("interactive", "besteffort").
const char* SloClassName(SloClass slo);

/// \brief Parses an SLO class name as `SloClassName` prints it.
std::optional<SloClass> ParseSloClass(const std::string& name);

/// \brief One tenant's contract with the serving layer: its weighted-fair
/// share of detector capacity and the hard limits admission enforces.
///
/// The budget fields mirror Suricata's per-rule threshold tracking: cheap
/// per-tenant counters consulted on the admission hot path, charged from the
/// accounting the engine already keeps per session (simulated charged
/// seconds / detector frames) — no new measurement machinery.
struct TenantSpec {
  /// Stable identity; also the stats scope (`tenant.<id>.*` metric names).
  /// Must be non-empty and use only [a-z0-9_-] so the dotted metric names
  /// stay parseable.
  std::string id;
  /// Weighted-fair share of detector-seconds relative to other tenants
  /// (weight 4 vs 1 targets a 4:1 split of charged seconds under
  /// contention). Must be > 0.
  double weight = 1.0;
  /// Saturation policy (see `SloClass`).
  SloClass slo = SloClass::kInteractive;
  /// Token-bucket rate limit on query arrivals, in queries per simulated
  /// second (burst capacity = max(1, rate)). 0 = unlimited.
  double rate_limit_per_second = 0.0;
  /// Lifetime budget of charged GPU/detector seconds across the tenant's
  /// sessions; crossing it stops grants, sheds the tenant's live sessions,
  /// and rejects its future arrivals. 0 = unlimited.
  double gpu_seconds_budget = 0.0;
  /// Lifetime budget of detector frames (samples). 0 = unlimited.
  uint64_t frame_budget = 0;
  /// Cap on the tenant's concurrently live sessions (excess arrivals
  /// queue). 0 = unlimited.
  size_t max_concurrent_sessions = 0;
  /// Cap on the tenant's admission queue (excess arrivals are rejected).
  /// 0 = unlimited.
  size_t max_queued = 0;
};

/// \brief Validates a spec's invariants (id shape, weight > 0, finite
/// non-negative rate).
common::Status ValidateTenantSpec(const TenantSpec& spec);

/// \brief Parses one tenant from `exsample_cli --tenants=SPEC` grammar:
/// `id[:key=value[,key=value...]]` with keys `weight`, `slo`
/// (interactive|besteffort), `rate` (arrivals per simulated second),
/// `budget` (GPU seconds), `frames` (frame budget), `maxlive`, `maxqueue`.
/// Unknown keys are an error so typos fail loudly.
common::Result<TenantSpec> ParseTenantSpec(const std::string& text);

/// \brief Running usage/outcome tallies of one tenant — the registry's
/// authoritative copy (the `tenant.<id>.*` slab metrics mirror it for the
/// JSON export).
struct TenantUsage {
  /// Simulated charged seconds across the tenant's sessions (decode +
  /// detect + overhead), the WFQ currency and the GPU budget's meter.
  double charged_seconds = 0.0;
  /// Detector frames (samples) across the tenant's sessions.
  uint64_t frames = 0;
  /// Steps granted across the tenant's sessions.
  uint64_t steps = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  /// Live sessions right now (admitted, not yet finished/shed).
  size_t live_sessions = 0;
  /// Queued arrivals right now.
  size_t queued = 0;
};

/// \brief The serving layer's tenant table: specs, usage accounting, and the
/// per-tenant stats slabs.
///
/// Tenants are dense-indexed in registration order; the index is the handle
/// every other serve component uses (the scheduler's WFQ state, admission's
/// token buckets, the server's session bindings key off it).
class TenantRegistry {
 public:
  /// `stats` may be null (no metric export); when set, every registered
  /// tenant gets its own slab (scope `tenant/<id>`) and metric family
  /// `tenant.<id>.{admitted,rejected,shed,completed,steps,frames}` counters
  /// plus `tenant.<id>.{charged_seconds,live_sessions,queued}` gauges,
  /// summed into `StatsJson()` by the registry sync like every other slab.
  explicit TenantRegistry(stats::CounterRegistry* stats);

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Registers a tenant; rejects invalid specs and duplicate ids.
  common::Result<size_t> Register(const TenantSpec& spec);

  size_t size() const { return tenants_.size(); }
  const TenantSpec& spec(size_t tenant) const { return tenants_[tenant].spec; }
  const TenantUsage& usage(size_t tenant) const { return tenants_[tenant].usage; }
  std::optional<size_t> Find(const std::string& id) const;

  /// \brief True once the tenant has crossed its GPU-second or frame budget.
  bool OverBudget(size_t tenant) const;

  /// Usage mutators, called by the serving loop (single driver thread).
  /// Each mirrors the authoritative tally into the tenant's slab.
  void ChargeStep(size_t tenant, double seconds_delta, uint64_t frames_delta);
  void OnAdmitted(size_t tenant);
  void OnRejected(size_t tenant);
  void OnShed(size_t tenant);
  void OnCompleted(size_t tenant);
  void SetQueued(size_t tenant, size_t queued);

 private:
  struct Metrics {
    stats::CounterSlab* slab = nullptr;
    stats::MetricId admitted = 0;
    stats::MetricId rejected = 0;
    stats::MetricId shed = 0;
    stats::MetricId completed = 0;
    stats::MetricId steps = 0;
    stats::MetricId frames = 0;
    stats::MetricId charged_seconds = 0;
    stats::MetricId live_sessions = 0;
    stats::MetricId queued = 0;
  };
  struct Entry {
    TenantSpec spec;
    TenantUsage usage;
    Metrics metrics;
  };

  stats::CounterRegistry* stats_;
  std::vector<Entry> tenants_;
  std::map<std::string, size_t> by_id_;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_TENANT_H_
