#include "serve/admission.h"

#include <algorithm>

namespace exsample {
namespace serve {

namespace {
// Buckets refill in increments (one per Consider/NextTokenTime call), and
// the increment sum truncates at double precision — a bucket polled right at
// its computed refill time can land a few ULP short of a full token, with
// `now + (1 - tokens) / rate` rounding back to `now` and stalling the
// serving loop on an unreachable target. A token this far from full (worth
// nanoseconds of simulated time at any realistic rate) counts as full.
constexpr double kTokenSlack = 1e-9;
}  // namespace

AdmissionController::AdmissionController(const TenantRegistry* tenants,
                                         AdmissionOptions options)
    : tenants_(tenants), options_(options) {
  common::Check(options_.shed_over_factor >= 1.0,
                "shed_over_factor must be >= 1");
}

void AdmissionController::Refill(size_t tenant, double now,
                                 TokenBucket* bucket) const {
  const double rate = tenants_->spec(tenant).rate_limit_per_second;
  if (rate <= 0.0) return;
  const double capacity = std::max(1.0, rate);
  if (!bucket->initialized) {
    // Buckets start full: a tenant may burst its capacity at t=0.
    bucket->tokens = capacity;
    bucket->last_refill = now;
    bucket->initialized = true;
    return;
  }
  if (now > bucket->last_refill) {
    bucket->tokens =
        std::min(capacity, bucket->tokens + (now - bucket->last_refill) * rate);
    bucket->last_refill = now;
  }
}

AdmissionVerdict AdmissionController::Consider(size_t tenant, double now,
                                               size_t queued_here,
                                               size_t live_sessions,
                                               double pending_frames) {
  if (buckets_.size() < tenants_->size()) buckets_.resize(tenants_->size());
  const TenantSpec& spec = tenants_->spec(tenant);
  AdmissionVerdict verdict;

  // 1. Budgets: a tenant past its lifetime GPU-second/frame budget is
  // refused outright — queueing would only defer the same answer.
  if (tenants_->OverBudget(tenant)) {
    verdict.decision = AdmissionDecision::kReject;
    verdict.status = common::Status::FailedPrecondition(
        "tenant '" + spec.id + "' is over budget");
    return verdict;
  }

  // 2. Severe saturation sheds best-effort load at the door.
  if (spec.slo == SloClass::kBestEffort && SeverelySaturated(pending_frames)) {
    verdict.decision = AdmissionDecision::kReject;
    verdict.status = common::Status::FailedPrecondition(
        "detector saturated: best-effort arrival shed");
    return verdict;
  }

  // 3. Cheap per-tenant gates, then the engine-wide ones; the first that
  // trips decides the queueing reason.
  common::Status queue_reason;
  TokenBucket& bucket = buckets_[tenant];
  Refill(tenant, now, &bucket);
  if (spec.rate_limit_per_second > 0.0 && bucket.tokens < 1.0 - kTokenSlack) {
    queue_reason = common::Status::FailedPrecondition(
        "tenant '" + spec.id + "' rate limited");
  } else if (spec.max_concurrent_sessions > 0 &&
             tenants_->usage(tenant).live_sessions >=
                 spec.max_concurrent_sessions) {
    queue_reason = common::Status::FailedPrecondition(
        "tenant '" + spec.id + "' at max concurrent sessions");
  } else if (options_.max_live_sessions > 0 &&
             live_sessions >= options_.max_live_sessions) {
    queue_reason = common::Status::FailedPrecondition(
        "engine at max live sessions");
  } else if (spec.slo == SloClass::kBestEffort && Saturated(pending_frames)) {
    queue_reason = common::Status::FailedPrecondition(
        "detector saturated: best-effort arrival held");
  }

  if (!queue_reason.ok()) {
    // 4. A full admission queue turns the hold into a refusal.
    if (spec.max_queued > 0 && queued_here >= spec.max_queued) {
      verdict.decision = AdmissionDecision::kReject;
      verdict.status = common::Status::OutOfRange(
          "tenant '" + spec.id + "' admission queue full");
      return verdict;
    }
    verdict.decision = AdmissionDecision::kQueue;
    verdict.status = queue_reason;
    return verdict;
  }

  // 5. Admit, consuming a rate token.
  if (spec.rate_limit_per_second > 0.0) {
    bucket.tokens = std::max(0.0, bucket.tokens - 1.0);
  }
  verdict.decision = AdmissionDecision::kAdmit;
  return verdict;
}

double AdmissionController::NextTokenTime(size_t tenant, double now) const {
  if (buckets_.size() < tenants_->size()) buckets_.resize(tenants_->size());
  const double rate = tenants_->spec(tenant).rate_limit_per_second;
  if (rate <= 0.0) return now;
  TokenBucket& bucket = buckets_[tenant];
  Refill(tenant, now, &bucket);
  if (bucket.tokens >= 1.0 - kTokenSlack) return now;
  return now + (1.0 - bucket.tokens) / rate;
}

}  // namespace serve
}  // namespace exsample
