#include "serve/tenant_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace exsample {
namespace serve {

namespace {
constexpr size_t kUnbound = std::numeric_limits<size_t>::max();
}  // namespace

WeightedTenantScheduler::WeightedTenantScheduler(
    const TenantRegistry* tenants, WeightedTenantSchedulerOptions options)
    : tenants_(tenants), options_(options) {}

WeightedTenantScheduler::TenantState& WeightedTenantScheduler::State(
    size_t tenant) {
  common::Check(tenant < tenants_->size(), "unknown tenant");
  if (states_.size() <= tenant) states_.resize(tenant + 1);
  TenantState& state = states_[tenant];
  if (state.inner == nullptr) {
    // A fixed per-tenant seed stream: tenant t's inner draws are independent
    // of other tenants' but fully determined by (base seed, t).
    query::SessionSchedulerOptions inner_options = options_.inner_options;
    inner_options.seed =
        options_.inner_options.seed ^ (0x9e3779b97f4a7c15ULL * (tenant + 1));
    state.inner = query::MakeSessionScheduler(options_.inner, inner_options);
  }
  return state;
}

void WeightedTenantScheduler::BindSession(size_t session_index, size_t tenant) {
  State(tenant);  // Materialize the tenant's state (and inner scheduler).
  if (session_tenant_.size() <= session_index) {
    session_tenant_.resize(session_index + 1, kUnbound);
  }
  common::Check(session_tenant_[session_index] == kUnbound ||
                    session_tenant_[session_index] == tenant,
                "session already bound to another tenant");
  if (session_tenant_[session_index] != tenant) {
    session_tenant_[session_index] = tenant;
    states_[tenant].sessions.push_back(session_index);
  }
}

void WeightedTenantScheduler::SetTenantRunnable(size_t tenant, bool runnable) {
  State(tenant).runnable = runnable;
}

void WeightedTenantScheduler::PlanRound(
    common::Span<const query::SessionSchedulerInfo> sessions,
    std::vector<size_t>* order) {
  const size_t num_tenants = states_.size();
  std::vector<size_t> live(num_tenants, 0);
  std::vector<double> charged(num_tenants, 0.0);
  std::vector<uint64_t> steps(num_tenants, 0);
  for (size_t i = 0; i < sessions.size(); ++i) {
    common::Check(i < session_tenant_.size() && session_tenant_[i] != kUnbound,
                  "session planned without a tenant binding");
    const size_t t = session_tenant_[i];
    charged[t] += sessions[i].seconds;
    steps[t] += sessions[i].steps;
    if (!sessions[i].done) live[t] += 1;
  }

  // Eligibility and (re)activation. A tenant activating this round starts at
  // the floor of the already-active tenants' virtual times — no replaying
  // unused history.
  std::vector<bool> eligible(num_tenants, false);
  const auto base_vt = [&](size_t t) {
    return states_[t].vt_floor +
           (charged[t] - states_[t].charged_at_activation) /
               tenants_->spec(t).weight;
  };
  double continuing_floor = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < num_tenants; ++t) {
    eligible[t] = states_[t].runnable && live[t] > 0;
    if (eligible[t] && states_[t].active) {
      continuing_floor = std::min(continuing_floor, base_vt(t));
    }
  }
  for (size_t t = 0; t < num_tenants; ++t) {
    if (eligible[t] && !states_[t].active) {
      states_[t].charged_at_activation = charged[t];
      states_[t].vt_floor =
          std::isfinite(continuing_floor) ? continuing_floor : 0.0;
    }
    states_[t].active = eligible[t];
  }

  // Step-cost projection: a tenant's observed mean charged seconds per step,
  // falling back to the workload-wide mean, then to 1.0 (any positive
  // constant spreads a cold round's grants evenly).
  double total_charged = 0.0;
  uint64_t total_steps = 0;
  for (size_t t = 0; t < num_tenants; ++t) {
    total_charged += charged[t];
    total_steps += steps[t];
  }
  const double global_mean =
      (total_steps > 0 && total_charged > 0.0)
          ? total_charged / static_cast<double>(total_steps)
          : 1.0;
  std::vector<double> step_cost(num_tenants, global_mean);
  for (size_t t = 0; t < num_tenants; ++t) {
    if (steps[t] > 0 && charged[t] > 0.0) {
      step_cost[t] = charged[t] / static_cast<double>(steps[t]);
    }
  }

  // Inner plans: each eligible tenant's scheduler orders its own sessions
  // (the delegation seam — fair/priority/deadline semantics apply unchanged
  // within a tenant).
  std::vector<std::vector<size_t>> inner_order(num_tenants);
  std::vector<size_t> inner_pos(num_tenants, 0);
  size_t total_grants = 0;
  for (size_t t = 0; t < num_tenants; ++t) {
    if (!eligible[t]) continue;
    total_grants += live[t];
    query::PlanRoundForSubset(
        states_[t].inner.get(), sessions,
        common::Span<const size_t>(states_[t].sessions.data(),
                                   states_[t].sessions.size()),
        &inner_order[t]);
    common::Check(!inner_order[t].empty(),
                  "inner scheduler planned nothing for a live tenant");
  }

  // Saturation tiering: while the detector is saturated, grants go to
  // interactive tenants as long as any has live work.
  bool interactive_live = false;
  for (size_t t = 0; t < num_tenants; ++t) {
    if (eligible[t] && tenants_->spec(t).slo == SloClass::kInteractive) {
      interactive_live = true;
    }
  }

  // The WFQ pick: one grant at a time to the smallest virtual time (ties to
  // the lower tenant index), projecting the grantee's vt forward by its mean
  // step cost over weight.
  std::vector<double> vt(num_tenants, 0.0);
  for (size_t t = 0; t < num_tenants; ++t) {
    if (eligible[t]) vt[t] = base_vt(t);
  }
  for (size_t g = 0; g < total_grants; ++g) {
    size_t best = kUnbound;
    for (size_t t = 0; t < num_tenants; ++t) {
      if (!eligible[t]) continue;
      if (saturated_ && interactive_live &&
          tenants_->spec(t).slo == SloClass::kBestEffort) {
        continue;
      }
      if (best == kUnbound || vt[t] < vt[best]) best = t;
    }
    if (best == kUnbound) break;  // No runnable tenant with live work.
    const std::vector<size_t>& plan = inner_order[best];
    order->push_back(plan[inner_pos[best] % plan.size()]);
    inner_pos[best] += 1;
    vt[best] += step_cost[best] / tenants_->spec(best).weight;
  }
}

}  // namespace serve
}  // namespace exsample
