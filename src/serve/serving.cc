#include "serve/serving.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "engine/wave_driver.h"
#include "query/detector_service.h"
#include "query/shard_trace.h"

namespace exsample {
namespace serve {

const char* OutcomeKindName(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kCompleted:
      return "completed";
    case OutcomeKind::kRejected:
      return "rejected";
    case OutcomeKind::kShed:
      return "shed";
  }
  return "unknown";
}

TenantServer::TenantServer(engine::SearchEngine* engine, ServeOptions options)
    : engine_(engine),
      options_(std::move(options)),
      tenants_(engine->config().collect_stats ? engine->counter_registry()
                                              : nullptr),
      admission_(&tenants_, options_.admission) {}

common::Result<size_t> TenantServer::AddTenant(const TenantSpec& spec) {
  return tenants_.Register(spec);
}

common::Result<std::vector<QueryOutcome>> TenantServer::Serve(
    const std::vector<TenantQuery>& queries) {
  return Serve(queries, StepObserver());
}

common::Result<std::vector<QueryOutcome>> TenantServer::Serve(
    const std::vector<TenantQuery>& queries, const StepObserver& observer) {
  if (options_.verify_solo_traces) {
    // The solo re-runs share the engine; reuse would let the served pass warm
    // the solo pass (or vice versa), which is exactly the coupling the
    // bit-identity contract excludes.
    common::Check(!engine_->config().reuse.AnyEnabled(),
                  "verify_solo_traces requires cross-query reuse to be off");
  }

  // Resolve tenant ids up front: an unknown id is a caller bug, not a
  // per-query refusal.
  std::vector<size_t> tenant_of(queries.size(), 0);
  std::vector<QueryOutcome> outcomes(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::optional<size_t> tenant = tenants_.Find(queries[i].tenant);
    if (!tenant.has_value()) {
      return common::Status::NotFound("unknown tenant '" + queries[i].tenant +
                                      "'");
    }
    tenant_of[i] = *tenant;
    outcomes[i].tenant = *tenant;
  }

  // Arrival order: by timestamp, ties by input index (stable), so admission
  // considers queries in the order they reached the door.
  std::vector<size_t> waiting(queries.size());
  for (size_t i = 0; i < waiting.size(); ++i) waiting[i] = i;
  std::stable_sort(waiting.begin(), waiting.end(),
                   [&](size_t a, size_t b) {
                     return queries[a].arrival_seconds <
                            queries[b].arrival_seconds;
                   });

  // The two-level scheduler: WFQ across tenants, the engine's configured
  // session scheduler (or the override) within each tenant.
  WeightedTenantSchedulerOptions sched_options;
  sched_options.inner =
      options_.inner_scheduler.value_or(engine_->config().scheduler);
  sched_options.inner_options.seed = engine_->config().scheduler_seed;
  sched_options.inner_options.starvation_rounds =
      std::max<uint64_t>(1, engine_->config().scheduler_starvation_rounds);
  WeightedTenantScheduler scheduler(&tenants_, sched_options);

  // One admitted session and its charge-delta trackers (the tenant is
  // charged per finished step from the deltas of the session's own trace
  // accounting — no new measurement machinery).
  struct Admitted {
    std::unique_ptr<engine::QuerySession> session;
    size_t query_index = 0;
    size_t tenant = 0;
    bool resolved = false;  ///< Outcome recorded (completed or shed).
    double last_seconds = 0.0;
    uint64_t last_samples = 0;
  };
  std::vector<Admitted> admitted;

  // The global simulated clock: charged work accumulated so far, plus the
  // idle fast-forwards (clock_base) taken while nothing was live.
  double clock_base = 0.0;
  double work_seconds = 0.0;
  // Saturation signal: the peak of the service's pending coalesced frames
  // sampled during the last round's grants (`PendingFrames()` is zero at
  // round boundaries — the queues just flushed — so boundary sampling would
  // never see load). Without a service, the live-session count stands in.
  double peak_pending = 0.0;

  query::DetectorService* service = engine_->detector_service();
  engine::SessionWaveDriver driver(service, [&](size_t sidx) {
    Admitted& a = admitted[sidx];
    a.session->FinishStep();
    const query::DiscoveryPoint& final = a.session->Trace().final;
    const double seconds_delta = final.seconds - a.last_seconds;
    const uint64_t frames_delta = final.samples - a.last_samples;
    a.last_seconds = final.seconds;
    a.last_samples = final.samples;
    work_seconds += seconds_delta;
    tenants_.ChargeStep(a.tenant, seconds_delta, frames_delta);
    QueryOutcome& outcome = outcomes[a.query_index];
    if (outcome.first_result_seconds < 0.0 && final.reported_results > 0) {
      outcome.first_result_seconds = clock_base + work_seconds;
    }
    if (observer) observer(a.query_index, *a.session, clock_base + work_seconds);
  });

  const auto shed_session = [&](Admitted* a, const common::Status& why) {
    a->session->Cancel();
    QueryOutcome& outcome = outcomes[a->query_index];
    outcome.kind = OutcomeKind::kShed;
    outcome.status = why;
    outcome.trace = a->session->Finish();
    outcome.finished_seconds = clock_base + work_seconds;
    tenants_.OnShed(a->tenant);
    a->resolved = true;
  };

  std::vector<query::SessionSchedulerInfo> infos;
  std::vector<size_t> order;
  std::vector<size_t> queued_per_tenant(tenants_.size(), 0);
  size_t stall_rounds = 0;

  while (true) {
    const double now = clock_base + work_seconds;

    // Completion sweep: record outcomes for sessions that reached their stop
    // condition last round. Everything here runs at a round boundary, so
    // every session is quiescent (no pending steps) — the precondition both
    // Finish and Cancel rely on.
    for (Admitted& a : admitted) {
      if (a.resolved || !a.session->Done()) continue;
      QueryOutcome& outcome = outcomes[a.query_index];
      outcome.kind = OutcomeKind::kCompleted;
      outcome.status = common::Status::OK();
      outcome.trace = a.session->Finish();
      outcome.finished_seconds = now;
      tenants_.OnCompleted(a.tenant);
      a.resolved = true;
    }

    // Budget enforcement: a tenant that crossed its GPU-second/frame budget
    // stops receiving grants and its live sessions are shed (their traces end
    // at the last completed step). Future arrivals reject at admission.
    for (size_t t = 0; t < tenants_.size(); ++t) {
      if (!tenants_.OverBudget(t)) continue;
      scheduler.SetTenantRunnable(t, false);
      for (Admitted& a : admitted) {
        if (a.resolved || a.tenant != t) continue;
        shed_session(&a, common::Status::FailedPrecondition(
                             "tenant '" + tenants_.spec(t).id +
                             "' budget exhausted: session shed"));
      }
    }

    // Load shedding: under severe saturation, cancel newest-admitted
    // best-effort sessions until the backlog signal would drop back to the
    // saturation threshold (shed, not hang — interactive sessions are never
    // cancelled).
    if (admission_.SeverelySaturated(peak_pending)) {
      size_t live_now = 0;
      for (const Admitted& a : admitted) {
        if (!a.resolved) ++live_now;
      }
      const double per_session =
          live_now > 0 ? peak_pending / static_cast<double>(live_now) : 0.0;
      const double excess =
          peak_pending - admission_.options().saturation_pending_frames;
      size_t to_shed =
          per_session > 0.0
              ? static_cast<size_t>(std::ceil(excess / per_session))
              : 1;
      for (size_t r = admitted.size(); r > 0 && to_shed > 0; --r) {
        Admitted& a = admitted[r - 1];
        if (a.resolved) continue;
        if (tenants_.spec(a.tenant).slo != SloClass::kBestEffort) continue;
        shed_session(&a, common::Status::FailedPrecondition(
                             "detector saturated: best-effort session shed"));
        --to_shed;
      }
    }
    scheduler.SetSaturated(admission_.Saturated(peak_pending));

    // Admission pass: consider every arrived, still-waiting query in arrival
    // order. Admit → fresh engine session bound to its tenant; queue → hold
    // for a later pass; reject → final outcome with the refusal status.
    size_t live = 0;
    for (const Admitted& a : admitted) {
      if (!a.resolved) ++live;
    }
    std::fill(queued_per_tenant.begin(), queued_per_tenant.end(), 0);
    std::vector<size_t> still_waiting;
    still_waiting.reserve(waiting.size());
    for (const size_t qi : waiting) {
      const size_t t = tenant_of[qi];
      if (queries[qi].arrival_seconds > now) {
        still_waiting.push_back(qi);
        continue;
      }
      const AdmissionVerdict verdict = admission_.Consider(
          t, now, queued_per_tenant[t], live, peak_pending);
      if (verdict.decision == AdmissionDecision::kQueue) {
        ++queued_per_tenant[t];
        still_waiting.push_back(qi);
        continue;
      }
      if (verdict.decision == AdmissionDecision::kReject) {
        outcomes[qi].kind = OutcomeKind::kRejected;
        outcomes[qi].status = verdict.status;
        outcomes[qi].finished_seconds = now;
        tenants_.OnRejected(t);
        continue;
      }
      const engine::QuerySpec& spec = queries[qi].spec;
      auto session =
          engine_->CreateSession(spec.class_id, spec.limit, spec.options);
      if (!session.ok()) {
        // A malformed spec is the query's problem, not the workload's.
        outcomes[qi].kind = OutcomeKind::kRejected;
        outcomes[qi].status = session.status();
        outcomes[qi].finished_seconds = now;
        tenants_.OnRejected(t);
        continue;
      }
      const size_t sidx = admitted.size();
      scheduler.BindSession(sidx, t);
      Admitted a;
      a.session = std::move(session).value();
      a.query_index = qi;
      a.tenant = t;
      admitted.push_back(std::move(a));
      tenants_.OnAdmitted(t);
      outcomes[qi].admitted_seconds = now;
      ++live;
    }
    waiting.swap(still_waiting);
    for (size_t t = 0; t < tenants_.size(); ++t) {
      tenants_.SetQueued(t, queued_per_tenant[t]);
    }

    // Idle fast-forward / termination: with no live work, jump the clock to
    // the next arrival or rate-limit refill instead of spinning.
    if (live == 0) {
      if (waiting.empty()) break;
      double target = std::numeric_limits<double>::infinity();
      for (const size_t qi : waiting) {
        const double arrival = queries[qi].arrival_seconds;
        const double candidate =
            arrival > now ? arrival
                          : admission_.NextTokenTime(tenant_of[qi], now);
        target = std::min(target, candidate);
      }
      // Nothing is live, so the backlog signal has fully drained; clearing
      // it lets saturation-held arrivals through on the next pass.
      peak_pending = 0.0;
      if (target <= now) {
        // A held arrival that is neither time- nor saturation-blocked must
        // admit on the retry pass; more than one retry means a stall.
        common::Check(++stall_rounds <= 1,
                      "serving loop stalled: queued work that can never admit");
        continue;
      }
      stall_rounds = 0;
      clock_base += target - now;
      continue;
    }
    stall_rounds = 0;

    // Plan one round: coordinator-side tallies in, a sequence of step grants
    // out — the same contract RunConcurrent's single-level loop has.
    infos.resize(admitted.size());
    for (size_t i = 0; i < admitted.size(); ++i) {
      const Admitted& a = admitted[i];
      const query::DiscoveryPoint& final = a.session->Trace().final;
      infos[i].steps = a.session->scheduler_stats().steps_granted;
      infos[i].samples = final.samples;
      infos[i].reported_results = final.reported_results;
      infos[i].result_limit = queries[a.query_index].spec.limit;
      infos[i].seconds = final.seconds;
      infos[i].deadline_seconds = queries[a.query_index].spec.deadline_seconds;
      infos[i].done = a.session->Done();
    }
    order.clear();
    scheduler.PlanRound(common::Span<const query::SessionSchedulerInfo>(
                            infos.data(), infos.size()),
                        &order);
    // Live sessions of unrunnable tenants were shed above, so a live set
    // always yields a plan.
    common::Check(!order.empty(), "tenant scheduler planned nothing for live work");

    // Execute the round in waves through the shared driver, sampling the
    // service's backlog after every grant — the peak is next round's
    // saturation signal.
    double round_peak = 0.0;
    bool failed = false;
    for (const size_t sidx : order) {
      common::Check(sidx < admitted.size(),
                    "tenant scheduler planned an unknown session");
      common::Check(!infos[sidx].done,
                    "tenant scheduler planned a finished session");
      if (!driver.Grant(sidx, admitted[sidx].session.get())) {
        failed = true;
        break;
      }
      if (service != nullptr) {
        round_peak = std::max(
            round_peak, static_cast<double>(service->PendingFrames()));
      }
    }
    if (failed || !driver.FlushWave()) break;
    peak_pending =
        service != nullptr ? round_peak : static_cast<double>(live);
  }

  if (!driver.status().ok()) {
    // Transport death: release every half-begun step and the service's
    // queued tickets, then surface the failure instead of partial outcomes.
    // Abort every admitted session, mid-step or not: each must withdraw its
    // wire registration before the transport failure is surfaced, or its id
    // would keep resolving to detectors the session is about to destroy.
    for (Admitted& a : admitted) {
      a.session->AbortStep();
    }
    if (service != nullptr) service->CancelPending();
    return driver.status();
  }

  for (const Admitted& a : admitted) {
    common::Check(a.resolved, "admitted session left unresolved");
  }

  if (options_.verify_solo_traces) {
    // The determinism contract, enforced the MergeShardTraces way: every
    // completed query re-runs solo on the same engine and must reproduce its
    // served trace bit for bit — admission, tenancy, and scheduling may
    // reorder work but never change what any query computes.
    for (size_t i = 0; i < queries.size(); ++i) {
      if (outcomes[i].kind != OutcomeKind::kCompleted) continue;
      const engine::QuerySpec& spec = queries[i].spec;
      auto solo =
          engine_->CreateSession(spec.class_id, spec.limit, spec.options);
      if (!solo.ok()) return solo.status();
      const query::QueryTrace solo_trace = solo.value()->Finish();
      common::Check(
          query::TracesBitIdentical(outcomes[i].trace, solo_trace),
          "served trace diverged from solo run (determinism contract)");
    }
  }

  return outcomes;
}

}  // namespace serve
}  // namespace exsample
