#ifndef EXSAMPLE_SERVE_ADMISSION_H_
#define EXSAMPLE_SERVE_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "serve/tenant.h"

namespace exsample {
namespace serve {

/// \brief Engine-level admission thresholds (the per-tenant limits live in
/// each `TenantSpec`).
struct AdmissionOptions {
  /// Cap on live sessions across all tenants; excess arrivals queue.
  /// 0 = unlimited.
  size_t max_live_sessions = 0;
  /// Detector saturation threshold, in pending coalesced frames (the peak of
  /// `DetectorService::PendingFrames()` over the last round — without a
  /// service, the live-session count stands in). At or above it the engine
  /// is *saturated*: best-effort arrivals queue, best-effort tenants are
  /// deprioritized by the weighted-fair scheduler, and the shedder starts
  /// cancelling best-effort sessions. 0 = never saturated.
  double saturation_pending_frames = 0.0;
  /// Severe-saturation multiplier: at `saturation_pending_frames *
  /// shed_over_factor` pending frames, best-effort arrivals are rejected at
  /// the door (not just queued). Must be >= 1.
  double shed_over_factor = 2.0;
};

/// \brief What the controller decided about one arrival.
enum class AdmissionDecision {
  kAdmit,  ///< Start a session now.
  kQueue,  ///< Hold; re-considered when conditions change.
  kReject, ///< Refuse permanently, with the status explaining why.
};

struct AdmissionVerdict {
  AdmissionDecision decision = AdmissionDecision::kAdmit;
  /// Non-OK for kReject (the status handed back to the tenant); for kQueue
  /// it carries the queueing reason (informational); OK for kAdmit.
  common::Status status;
};

/// \brief The serving layer's front door: decides, per arrival, whether a
/// tenant's query starts a session now, waits, or is refused.
///
/// Checks run cheapest-first, Suricata-threshold style — per-tenant budget
/// and token-bucket counters before any engine-wide signal:
///
///   1. Over GPU-second/frame budget → reject (`FailedPrecondition`).
///   2. Admission queue overflow (`TenantSpec::max_queued`) → reject
///      (`OutOfRange`).
///   3. Token-bucket rate limit (simulated time) → queue until refill.
///   4. Per-tenant live-session cap → queue.
///   5. Engine-wide live-session cap → queue.
///   6. Detector saturation (pending-frames signal): best-effort arrivals
///      queue, and at `shed_over_factor` times the threshold are rejected
///      (`FailedPrecondition`) — interactive arrivals are never
///      saturation-blocked at the door (the scheduler's weighted-fair pick
///      is what protects the detector from them).
///
/// Deterministic: decisions are a pure function of (spec, usage, simulated
/// now, the caller's signals) plus the token-bucket state, which advances in
/// simulated time only.
class AdmissionController {
 public:
  AdmissionController(const TenantRegistry* tenants, AdmissionOptions options);

  /// \brief Considers one arrival for `tenant` at simulated time `now`.
  /// `queued_here` is the tenant's current admission-queue depth (excluding
  /// this arrival); `live_sessions` is the engine-wide live count;
  /// `pending_frames` is the saturation signal. Consumes a rate token only
  /// when admitting.
  AdmissionVerdict Consider(size_t tenant, double now, size_t queued_here,
                            size_t live_sessions, double pending_frames);

  /// \brief Earliest simulated time at which `tenant`'s token bucket holds a
  /// full token again (== `now` when it already does, or when the tenant is
  /// unlimited). The serving loop's idle fast-forward jumps the clock here.
  double NextTokenTime(size_t tenant, double now) const;

  /// \brief True when `pending_frames` is at or above the saturation
  /// threshold (0 = never).
  bool Saturated(double pending_frames) const {
    return options_.saturation_pending_frames > 0.0 &&
           pending_frames >= options_.saturation_pending_frames;
  }

  /// \brief True at or above the severe (shedding) threshold.
  bool SeverelySaturated(double pending_frames) const {
    return options_.saturation_pending_frames > 0.0 &&
           pending_frames >=
               options_.saturation_pending_frames * options_.shed_over_factor;
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  struct TokenBucket {
    double tokens = 0.0;
    double last_refill = 0.0;
    bool initialized = false;
  };
  /// Refills `tenant`'s bucket up to `now` (no-op for unlimited tenants).
  void Refill(size_t tenant, double now, TokenBucket* bucket) const;

  const TenantRegistry* tenants_;
  AdmissionOptions options_;
  mutable std::vector<TokenBucket> buckets_;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_ADMISSION_H_
