#ifndef EXSAMPLE_SERVE_TENANT_SCHEDULER_H_
#define EXSAMPLE_SERVE_TENANT_SCHEDULER_H_

#include <memory>
#include <vector>

#include "query/scheduler.h"
#include "serve/tenant.h"

namespace exsample {
namespace serve {

/// \brief Configuration of the two-level tenant scheduler.
struct WeightedTenantSchedulerOptions {
  /// Which `query::SessionScheduler` orders sessions *within* each tenant.
  /// Every tenant gets its own instance (inner schedulers are stateful), with
  /// a per-tenant seed derived from `inner_options.seed` so fixed spec + seed
  /// still means a fixed grant order.
  query::SchedulerKind inner = query::SchedulerKind::kFair;
  query::SessionSchedulerOptions inner_options;
};

/// \brief Weighted-fair queuing across tenants, delegating within a tenant
/// to the existing pluggable `query::SessionScheduler` — the second
/// scheduling level the serving layer adds above `RunConcurrent`'s.
///
/// Each round grants as many steps as there are live sessions of runnable
/// tenants (matching the single-level round size). Grants are assigned one
/// at a time to the runnable tenant with the smallest *virtual time*
///
///     vt(t) = charged seconds since activation / weight(t)  (+ floor)
///
/// so detector-second shares converge to the configured weights regardless
/// of how expensive each tenant's steps are. Within the round, every
/// assigned grant advances the tenant's vt by its observed mean step cost
/// over weight — the projection that spreads a round's grants instead of
/// handing them all to whoever is behind. A tenant (re)activating after an
/// idle spell starts at the floor of the currently active tenants' virtual
/// times: fresh arrivals compete fairly from now on instead of replaying
/// history they never used.
///
/// Under detector saturation (`SetSaturated`), best-effort tenants
/// (`SloClass::kBestEffort`) are deprioritized first: they receive grants
/// only when no interactive tenant has live sessions. Budget-exhausted
/// tenants are removed from the pick via `SetTenantRunnable`.
///
/// Like every `SessionScheduler`, this only reorders and weights step
/// grants: admitted sessions' traces are bit-identical to solo runs
/// whatever the tenant mix (the serving layer enforces it fatally).
/// Scheduling is a pure function of (bindings, infos sequence, flags,
/// seed) — fixed inputs, fixed order.
class WeightedTenantScheduler : public query::SessionScheduler {
 public:
  /// `tenants` supplies weights and SLO classes; it must outlive the
  /// scheduler. Tenants may keep registering after construction.
  WeightedTenantScheduler(const TenantRegistry* tenants,
                          WeightedTenantSchedulerOptions options);

  /// \brief Declares that the session planned under `session_index` belongs
  /// to `tenant`. Must be called before any round that includes the index;
  /// session indices bind append-only (the serving loop's session list only
  /// grows), which keeps each tenant's inner-scheduler state aligned.
  void BindSession(size_t session_index, size_t tenant);

  /// \brief Removes a tenant from the pick (budget exhausted). Its sessions
  /// are not planned while unrunnable.
  void SetTenantRunnable(size_t tenant, bool runnable);

  /// \brief Saturation flag from the serving loop's pending-frames signal:
  /// while set, best-effort tenants only receive grants when no interactive
  /// tenant has live work.
  void SetSaturated(bool saturated) { saturated_ = saturated; }

  void PlanRound(common::Span<const query::SessionSchedulerInfo> sessions,
                 std::vector<size_t>* order) override;
  const char* name() const override { return "tenant-wfq"; }

 private:
  struct TenantState {
    std::vector<size_t> sessions;  ///< Bound global indices, append-only.
    std::unique_ptr<query::SessionScheduler> inner;
    bool runnable = true;
    bool active = false;           ///< Had live sessions last round.
    /// Charged seconds at (re)activation and the virtual-time floor granted
    /// then (see class comment).
    double charged_at_activation = 0.0;
    double vt_floor = 0.0;
  };

  /// Lazily creates the per-tenant state (inner scheduler seeded from the
  /// tenant index) when a binding first names the tenant.
  TenantState& State(size_t tenant);

  const TenantRegistry* tenants_;
  WeightedTenantSchedulerOptions options_;
  std::vector<TenantState> states_;
  std::vector<size_t> session_tenant_;  ///< session index -> tenant.
  bool saturated_ = false;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_TENANT_SCHEDULER_H_
