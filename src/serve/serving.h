#ifndef EXSAMPLE_SERVE_SERVING_H_
#define EXSAMPLE_SERVE_SERVING_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/search_engine.h"
#include "query/trace.h"
#include "serve/admission.h"
#include "serve/tenant.h"
#include "serve/tenant_scheduler.h"

namespace exsample {
namespace serve {

/// \brief One query arriving at the serving layer: which tenant sent it,
/// when (on the workload's global simulated clock — the sum of charged
/// detector/decode seconds, the same cost clock the benches measure in), and
/// what it asks the engine.
struct TenantQuery {
  std::string tenant;
  double arrival_seconds = 0.0;
  engine::QuerySpec spec;
};

/// \brief How one query's service ended.
enum class OutcomeKind {
  kCompleted,  ///< Ran to its stop condition; `trace` is the full trace.
  kRejected,   ///< Refused at admission; `status` says why. No trace.
  kShed,       ///< Admitted, then cancelled by the load shedder or budget
               ///< enforcement; `trace` ends at the last completed step.
};

/// \brief Lowercase name of an outcome kind.
const char* OutcomeKindName(OutcomeKind kind);

/// \brief Per-query service record, in the order the queries were given.
struct QueryOutcome {
  OutcomeKind kind = OutcomeKind::kRejected;
  size_t tenant = 0;
  /// OK for kCompleted; the admission/shedding reason otherwise.
  common::Status status;
  /// The session's discovery trace (kCompleted / kShed).
  query::QueryTrace trace;
  /// Global-clock marks (simulated seconds); -1 where not reached.
  double admitted_seconds = -1.0;
  double first_result_seconds = -1.0;
  double finished_seconds = -1.0;
};

/// \brief Serving-layer configuration.
struct ServeOptions {
  AdmissionOptions admission;
  /// Which scheduler orders sessions *within* a tenant. Unset mirrors the
  /// engine's configured `EngineConfig::scheduler` (seed and starvation
  /// bound always mirror the engine's).
  std::optional<query::SchedulerKind> inner_scheduler;
  /// Determinism contract, enforced fatally like `MergeShardTraces`: after
  /// serving, every completed query is re-run solo on the same engine and
  /// its trace `Check`ed bit-identical to the served one. Requires
  /// cross-query reuse to be off (reuse is the one engine feature that
  /// deliberately couples queries). Test/bench use — it doubles the work.
  bool verify_solo_traces = false;
};

/// \brief The engine's front door for many tenants: admission control,
/// per-tenant quotas, two-level weighted-fair scheduling, and overload
/// shedding above `SearchEngine` sessions.
///
///   arrivals → AdmissionController ─(admit)→ WeightedTenantScheduler
///            └(queue/reject)              │ (per-tenant inner scheduler)
///                                         ▼
///                          SessionWaveDriver → shared DetectorService
///
/// `Serve` runs a workload of timestamped `TenantQuery`s to completion on
/// the engine's simulated clock, one scheduler round at a time:
///
///   1. Admission: arrived queries are admitted (a fresh engine session),
///      queued, or rejected per tenant budgets/rate limits and engine
///      saturation.
///   2. Enforcement: tenants crossing their GPU-second/frame budgets stop
///      receiving grants and their live sessions are shed; under severe
///      detector saturation the newest best-effort sessions are cancelled
///      (shed, not hung) until the backlog signal clears.
///   3. Scheduling: the weighted-fair tenant scheduler plans the round
///      (WFQ across tenants by charged detector-seconds over weight, the
///      engine's pluggable `SessionScheduler` within each tenant), executed
///      through the same `SessionWaveDriver` waves `RunConcurrent` uses —
///      coalesced device batches, sticky transport-failure surfacing.
///   4. Idle fast-forward: with no live work, the clock jumps to the next
///      arrival (or rate-limit refill) instead of spinning.
///
/// Everything runs on the caller's thread over simulated time, so a fixed
/// (tenant spec, workload, seed) serves deterministically — and admitted
/// sessions' traces are bit-identical to solo runs of the same specs
/// (`verify_solo_traces` makes the loop prove it fatally).
class TenantServer {
 public:
  /// `engine` must outlive the server. Per-tenant stats land in the engine's
  /// `CounterRegistry` (scopes `tenant/<id>`, names `tenant.<id>.*`) when
  /// the engine collects stats, and surface through `StatsJson()`.
  TenantServer(engine::SearchEngine* engine, ServeOptions options);

  TenantServer(const TenantServer&) = delete;
  TenantServer& operator=(const TenantServer&) = delete;

  /// \brief Registers a tenant (before serving).
  common::Result<size_t> AddTenant(const TenantSpec& spec);

  TenantRegistry& tenants() { return tenants_; }
  const TenantRegistry& tenants() const { return tenants_; }

  /// Called after every completed step of an admitted session, with the
  /// index of its query in the `Serve` input, the session (valid for the
  /// call only), and the global clock.
  using StepObserver =
      std::function<void(size_t query_index, const engine::QuerySession& session,
                         double now_seconds)>;

  /// \brief Serves the workload to completion; returns one outcome per
  /// query, in input order. Non-OK only for infrastructure failure (a dead
  /// detect transport) or an unknown tenant id — per-query refusals are
  /// outcomes, not errors.
  common::Result<std::vector<QueryOutcome>> Serve(
      const std::vector<TenantQuery>& queries);
  common::Result<std::vector<QueryOutcome>> Serve(
      const std::vector<TenantQuery>& queries, const StepObserver& observer);

 private:
  engine::SearchEngine* engine_;
  ServeOptions options_;
  TenantRegistry tenants_;
  AdmissionController admission_;
};

}  // namespace serve
}  // namespace exsample

#endif  // EXSAMPLE_SERVE_SERVING_H_
