#include "serve/tenant.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace exsample {
namespace serve {

const char* SloClassName(SloClass slo) {
  switch (slo) {
    case SloClass::kInteractive:
      return "interactive";
    case SloClass::kBestEffort:
      return "besteffort";
  }
  return "unknown";
}

std::optional<SloClass> ParseSloClass(const std::string& name) {
  if (name == "interactive") return SloClass::kInteractive;
  if (name == "besteffort") return SloClass::kBestEffort;
  return std::nullopt;
}

common::Status ValidateTenantSpec(const TenantSpec& spec) {
  if (spec.id.empty()) {
    return common::Status::InvalidArgument("tenant id must be non-empty");
  }
  for (const char c : spec.id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) {
      return common::Status::InvalidArgument(
          "tenant id '" + spec.id + "' must use only [a-z0-9_-]");
    }
  }
  if (!(spec.weight > 0.0) || !std::isfinite(spec.weight)) {
    return common::Status::InvalidArgument(
        "tenant '" + spec.id + "' weight must be finite and > 0");
  }
  if (spec.rate_limit_per_second < 0.0 ||
      !std::isfinite(spec.rate_limit_per_second)) {
    return common::Status::InvalidArgument(
        "tenant '" + spec.id + "' rate limit must be finite and >= 0");
  }
  if (spec.gpu_seconds_budget < 0.0 || !std::isfinite(spec.gpu_seconds_budget)) {
    return common::Status::InvalidArgument(
        "tenant '" + spec.id + "' GPU-second budget must be finite and >= 0");
  }
  return common::Status::OK();
}

namespace {

common::Status ParseDouble(const std::string& key, const std::string& value,
                           double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return common::Status::InvalidArgument("tenant spec: bad number for '" +
                                           key + "': " + value);
  }
  *out = parsed;
  return common::Status::OK();
}

common::Status ParseUint(const std::string& key, const std::string& value,
                         uint64_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return common::Status::InvalidArgument("tenant spec: bad integer for '" +
                                           key + "': " + value);
  }
  *out = parsed;
  return common::Status::OK();
}

}  // namespace

common::Result<TenantSpec> ParseTenantSpec(const std::string& text) {
  TenantSpec spec;
  const size_t colon = text.find(':');
  spec.id = text.substr(0, colon);
  std::string rest = colon == std::string::npos ? "" : text.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string pair = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return common::Status::InvalidArgument(
          "tenant spec: expected key=value, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    common::Status status = common::Status::OK();
    if (key == "weight") {
      status = ParseDouble(key, value, &spec.weight);
    } else if (key == "slo") {
      const std::optional<SloClass> slo = ParseSloClass(value);
      if (!slo.has_value()) {
        return common::Status::InvalidArgument(
            "tenant spec: unknown slo '" + value +
            "' (interactive|besteffort)");
      }
      spec.slo = *slo;
    } else if (key == "rate") {
      status = ParseDouble(key, value, &spec.rate_limit_per_second);
    } else if (key == "budget") {
      status = ParseDouble(key, value, &spec.gpu_seconds_budget);
    } else if (key == "frames") {
      status = ParseUint(key, value, &spec.frame_budget);
    } else if (key == "maxlive") {
      uint64_t v = 0;
      status = ParseUint(key, value, &v);
      spec.max_concurrent_sessions = static_cast<size_t>(v);
    } else if (key == "maxqueue") {
      uint64_t v = 0;
      status = ParseUint(key, value, &v);
      spec.max_queued = static_cast<size_t>(v);
    } else {
      return common::Status::InvalidArgument("tenant spec: unknown key '" +
                                             key + "'");
    }
    if (!status.ok()) return status;
  }
  const common::Status valid = ValidateTenantSpec(spec);
  if (!valid.ok()) return valid;
  return spec;
}

TenantRegistry::TenantRegistry(stats::CounterRegistry* stats) : stats_(stats) {}

common::Result<size_t> TenantRegistry::Register(const TenantSpec& spec) {
  const common::Status valid = ValidateTenantSpec(spec);
  if (!valid.ok()) return valid;
  if (by_id_.count(spec.id) != 0) {
    return common::Status::InvalidArgument("duplicate tenant id '" + spec.id +
                                           "'");
  }
  Entry entry;
  entry.spec = spec;
  if (stats_ != nullptr) {
    const std::string prefix = "tenant." + spec.id + ".";
    entry.metrics.slab = stats_->AcquireSlab("tenant/" + spec.id);
    entry.metrics.admitted = stats_->RegisterCounter(prefix + "admitted");
    entry.metrics.rejected = stats_->RegisterCounter(prefix + "rejected");
    entry.metrics.shed = stats_->RegisterCounter(prefix + "shed");
    entry.metrics.completed = stats_->RegisterCounter(prefix + "completed");
    entry.metrics.steps = stats_->RegisterCounter(prefix + "steps");
    entry.metrics.frames = stats_->RegisterCounter(prefix + "frames");
    entry.metrics.charged_seconds =
        stats_->RegisterGauge(prefix + "charged_seconds");
    entry.metrics.live_sessions = stats_->RegisterGauge(prefix + "live_sessions");
    entry.metrics.queued = stats_->RegisterGauge(prefix + "queued");
  }
  const size_t index = tenants_.size();
  tenants_.push_back(std::move(entry));
  by_id_.emplace(spec.id, index);
  return index;
}

std::optional<size_t> TenantRegistry::Find(const std::string& id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

bool TenantRegistry::OverBudget(size_t tenant) const {
  const Entry& e = tenants_[tenant];
  if (e.spec.gpu_seconds_budget > 0.0 &&
      e.usage.charged_seconds >= e.spec.gpu_seconds_budget) {
    return true;
  }
  if (e.spec.frame_budget > 0 && e.usage.frames >= e.spec.frame_budget) {
    return true;
  }
  return false;
}

void TenantRegistry::ChargeStep(size_t tenant, double seconds_delta,
                                uint64_t frames_delta) {
  Entry& e = tenants_[tenant];
  e.usage.charged_seconds += seconds_delta;
  e.usage.frames += frames_delta;
  e.usage.steps += 1;
  stats::SlabAdd(e.metrics.slab, e.metrics.steps);
  stats::SlabAdd(e.metrics.slab, e.metrics.frames, frames_delta);
  stats::SlabSetGauge(e.metrics.slab, e.metrics.charged_seconds,
                      e.usage.charged_seconds);
}

void TenantRegistry::OnAdmitted(size_t tenant) {
  Entry& e = tenants_[tenant];
  e.usage.admitted += 1;
  e.usage.live_sessions += 1;
  stats::SlabAdd(e.metrics.slab, e.metrics.admitted);
  stats::SlabSetGauge(e.metrics.slab, e.metrics.live_sessions,
                      static_cast<double>(e.usage.live_sessions));
}

void TenantRegistry::OnRejected(size_t tenant) {
  Entry& e = tenants_[tenant];
  e.usage.rejected += 1;
  stats::SlabAdd(e.metrics.slab, e.metrics.rejected);
}

void TenantRegistry::OnShed(size_t tenant) {
  Entry& e = tenants_[tenant];
  e.usage.shed += 1;
  common::Check(e.usage.live_sessions > 0, "shed without a live session");
  e.usage.live_sessions -= 1;
  stats::SlabAdd(e.metrics.slab, e.metrics.shed);
  stats::SlabSetGauge(e.metrics.slab, e.metrics.live_sessions,
                      static_cast<double>(e.usage.live_sessions));
}

void TenantRegistry::OnCompleted(size_t tenant) {
  Entry& e = tenants_[tenant];
  e.usage.completed += 1;
  common::Check(e.usage.live_sessions > 0, "completion without a live session");
  e.usage.live_sessions -= 1;
  stats::SlabAdd(e.metrics.slab, e.metrics.completed);
  stats::SlabSetGauge(e.metrics.slab, e.metrics.live_sessions,
                      static_cast<double>(e.usage.live_sessions));
}

void TenantRegistry::SetQueued(size_t tenant, size_t queued) {
  Entry& e = tenants_[tenant];
  e.usage.queued = queued;
  stats::SlabSetGauge(e.metrics.slab, e.metrics.queued,
                      static_cast<double>(queued));
}

}  // namespace serve
}  // namespace exsample
