#ifndef EXSAMPLE_TRACK_IOU_DISCRIMINATOR_H_
#define EXSAMPLE_TRACK_IOU_DISCRIMINATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "scene/ground_truth.h"
#include "track/discriminator.h"

namespace exsample {
namespace track {

/// \brief Behaviour knobs of the tracker-based discriminator.
struct IouDiscriminatorOptions {
  /// Minimum IoU for a detection to match a previously recorded position.
  double iou_threshold = 0.5;
  /// Per-frame probability that the forward/backward track propagation
  /// continues (SORT-style trackers lose objects; 1.0 = never breaks).
  double survival_prob = 0.995;
  /// How many frames a false-positive detection is assumed to persist in
  /// each direction when its (static) track is propagated.
  double fp_extent_mean = 30.0;
  /// Frame-bucket width of the internal stabbing index.
  uint64_t bucket_width = 512;
  /// Seed for the deterministic per-track breakage draws.
  uint64_t seed = 13;
};

/// \brief Tracker-based discriminator (paper Sec. II-B): for each detection
/// of a new object, a SORT-like tracker is applied backwards and forwards
/// through the video to compute the object's position in every frame where
/// it was visible; future detections are discarded when they match any
/// previously observed position.
///
/// The propagated positions follow the ground-truth motion (modeling a
/// competent tracker) but the propagation *breaks* with probability
/// `1 - survival_prob` per frame, truncating the covered interval — the
/// realistic failure mode that causes double counting in real systems.
/// Matching itself is pure geometry (IoU against recorded positions); ground
/// truth identity is never consulted to answer a match query.
class IouTrackerDiscriminator : public Discriminator {
 public:
  IouTrackerDiscriminator(const scene::GroundTruth* truth,
                          IouDiscriminatorOptions options);

  MatchResult GetMatches(video::FrameId frame,
                         const detect::Detections& dets) const override;
  void Add(video::FrameId frame, const detect::Detections& dets) override;
  uint64_t DistinctResults() const override { return tracks_.size(); }
  std::string name() const override { return "iou-tracker"; }

  /// \brief Number of sightings recorded against existing tracks (stats).
  uint64_t ReinforcementCount() const { return reinforcements_; }

 private:
  // One propagated track: covers global frames [begin, end), can produce the
  // tracked box for any frame in that range, and remembers how many
  // detections have matched it. A detection's "number of matches with
  // previous detections" (the paper's d0/d1 classification) is the total
  // sighting count over the tracks its box matches.
  struct Track {
    video::FrameId begin = 0;
    video::FrameId end = 0;
    // Real object: follow this trajectory's motion. kNoInstance for a false
    // positive, whose box is assumed static.
    scene::InstanceId source = scene::kNoInstance;
    common::Box static_box;  // Used when source == kNoInstance.
    uint64_t sightings = 1;  // Detections recorded against this track.
  };

  common::Box TrackBoxAt(const Track& track, video::FrameId frame) const;
  // Total previous-detection matches for `box` at `frame`, and the id of the
  // strongest-matching track (or npos when none).
  uint64_t CountMatchesAt(video::FrameId frame, const common::Box& box,
                          uint32_t* best_track) const;
  void InsertTrack(Track track);

  static constexpr uint32_t kNoTrack = ~uint32_t{0};

  const scene::GroundTruth* truth_;
  IouDiscriminatorOptions options_;
  std::vector<Track> tracks_;
  // Bucketed stabbing index: bucket -> track ids overlapping it.
  std::unordered_map<uint64_t, std::vector<uint32_t>> track_buckets_;
  uint64_t track_counter_ = 0;
  uint64_t reinforcements_ = 0;
};

}  // namespace track
}  // namespace exsample

#endif  // EXSAMPLE_TRACK_IOU_DISCRIMINATOR_H_
