#ifndef EXSAMPLE_TRACK_MATCHING_H_
#define EXSAMPLE_TRACK_MATCHING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/geometry.h"

namespace exsample {
namespace track {

/// \brief A matched pair (index into `a`, index into `b`).
struct MatchPair {
  size_t a_index;
  size_t b_index;
  double iou;
};

/// \brief Greedy IoU matching between two box sets (the SORT-style matching
/// step of Sec. II-B / V-A).
///
/// All cross pairs with IoU >= `iou_threshold` are considered in decreasing
/// IoU order; each box is matched at most once. Greedy matching is the
/// standard baseline the paper cites ("IoU matching is a simple baseline for
/// multi-object tracking").
std::vector<MatchPair> GreedyIouMatch(const std::vector<common::Box>& a,
                                      const std::vector<common::Box>& b,
                                      double iou_threshold);

/// \brief Number of boxes in `candidates` whose IoU with `query` reaches
/// `iou_threshold`.
size_t CountIouMatches(const common::Box& query,
                       const std::vector<common::Box>& candidates,
                       double iou_threshold);

}  // namespace track
}  // namespace exsample

#endif  // EXSAMPLE_TRACK_MATCHING_H_
