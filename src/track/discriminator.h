#ifndef EXSAMPLE_TRACK_DISCRIMINATOR_H_
#define EXSAMPLE_TRACK_DISCRIMINATOR_H_

#include <cstdint>
#include <string>

#include "detect/detection.h"
#include "video/repository.h"

namespace exsample {
namespace track {

/// \brief The discriminator's split of a frame's detections (Algorithm 1,
/// line 10).
struct MatchResult {
  /// d0: detections that matched no previous result — new distinct objects.
  detect::Detections d0;
  /// d1: detections that matched exactly one previous observation — results
  /// now seen for the second time (these decrement N1).
  detect::Detections d1;
};

/// \brief Decides whether detections correspond to objects already returned
/// earlier in the query (paper Sec. II-B).
///
/// A distinct-object query counts each physical object once even when it is
/// detected in many frames; the discriminator provides that identity notion.
/// The query loop calls `GetMatches` (read-only) and then `Add` with the same
/// detections, mirroring Algorithm 1 lines 10 and 13.
class Discriminator {
 public:
  virtual ~Discriminator() = default;

  /// \brief Classifies `dets` against previously observed results without
  /// modifying state.
  virtual MatchResult GetMatches(video::FrameId frame,
                                 const detect::Detections& dets) const = 0;

  /// \brief Records `dets` as observed in `frame`.
  virtual void Add(video::FrameId frame, const detect::Detections& dets) = 0;

  /// \brief Number of distinct results returned so far (|ans| growth).
  virtual uint64_t DistinctResults() const = 0;

  /// \brief Implementation name for reports.
  virtual std::string name() const = 0;

  /// \brief Convenience: GetMatches followed by Add.
  MatchResult Observe(video::FrameId frame, const detect::Detections& dets) {
    MatchResult result = GetMatches(frame, dets);
    Add(frame, dets);
    return result;
  }
};

}  // namespace track
}  // namespace exsample

#endif  // EXSAMPLE_TRACK_DISCRIMINATOR_H_
