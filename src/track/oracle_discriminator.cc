#include "track/oracle_discriminator.h"

namespace exsample {
namespace track {

MatchResult OracleDiscriminator::GetMatches(video::FrameId /*frame*/,
                                            const detect::Detections& dets) const {
  MatchResult result;
  // A frame can contain several detections of *different* new instances, but
  // the same instance appears at most once per frame (one box per object),
  // so per-frame double counting is not a concern here.
  for (const detect::Detection& det : dets) {
    if (!det.IsTruePositive()) continue;
    auto it = times_seen_.find(det.source_instance);
    const uint64_t seen = it == times_seen_.end() ? 0 : it->second;
    if (seen == 0) {
      result.d0.push_back(det);
    } else if (seen == 1) {
      result.d1.push_back(det);
    }
  }
  return result;
}

void OracleDiscriminator::Add(video::FrameId /*frame*/, const detect::Detections& dets) {
  for (const detect::Detection& det : dets) {
    if (!det.IsTruePositive()) continue;
    uint64_t& seen = times_seen_[det.source_instance];
    if (seen == 0) ++distinct_;
    ++seen;
  }
}

}  // namespace track
}  // namespace exsample
