#include "track/matching.h"

#include <algorithm>

namespace exsample {
namespace track {

std::vector<MatchPair> GreedyIouMatch(const std::vector<common::Box>& a,
                                      const std::vector<common::Box>& b,
                                      double iou_threshold) {
  std::vector<MatchPair> candidates;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      const double iou = common::Iou(a[i], b[j]);
      if (iou >= iou_threshold) candidates.push_back(MatchPair{i, j, iou});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const MatchPair& x, const MatchPair& y) { return x.iou > y.iou; });
  std::vector<bool> a_used(a.size(), false);
  std::vector<bool> b_used(b.size(), false);
  std::vector<MatchPair> matches;
  for (const MatchPair& pair : candidates) {
    if (a_used[pair.a_index] || b_used[pair.b_index]) continue;
    a_used[pair.a_index] = true;
    b_used[pair.b_index] = true;
    matches.push_back(pair);
  }
  return matches;
}

size_t CountIouMatches(const common::Box& query,
                       const std::vector<common::Box>& candidates,
                       double iou_threshold) {
  size_t count = 0;
  for (const common::Box& box : candidates) {
    if (common::Iou(query, box) >= iou_threshold) ++count;
  }
  return count;
}

}  // namespace track
}  // namespace exsample
