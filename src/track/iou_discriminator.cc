#include "track/iou_discriminator.h"

#include <algorithm>

#include "common/hash.h"
#include "common/rng.h"

namespace exsample {
namespace track {

IouTrackerDiscriminator::IouTrackerDiscriminator(const scene::GroundTruth* truth,
                                                 IouDiscriminatorOptions options)
    : truth_(truth), options_(options) {}

common::Box IouTrackerDiscriminator::TrackBoxAt(const Track& track,
                                                video::FrameId frame) const {
  if (track.source == scene::kNoInstance) return track.static_box;
  return truth_->Get(track.source).BoxAt(frame);
}

uint64_t IouTrackerDiscriminator::CountMatchesAt(video::FrameId frame,
                                                 const common::Box& box,
                                                 uint32_t* best_track) const {
  uint64_t matches = 0;
  double best_iou = 0.0;
  *best_track = kNoTrack;
  const uint64_t bucket = frame / options_.bucket_width;
  auto it = track_buckets_.find(bucket);
  if (it == track_buckets_.end()) return 0;
  for (uint32_t id : it->second) {
    const Track& track = tracks_[id];
    if (frame < track.begin || frame >= track.end) continue;
    const double iou = common::Iou(box, TrackBoxAt(track, frame));
    if (iou < options_.iou_threshold) continue;
    matches += track.sightings;
    if (iou > best_iou) {
      best_iou = iou;
      *best_track = id;
    }
  }
  return matches;
}

MatchResult IouTrackerDiscriminator::GetMatches(video::FrameId frame,
                                                const detect::Detections& dets) const {
  MatchResult result;
  uint32_t unused;
  for (const detect::Detection& det : dets) {
    const uint64_t matches = CountMatchesAt(frame, det.box, &unused);
    if (matches == 0) {
      result.d0.push_back(det);
    } else if (matches == 1) {
      result.d1.push_back(det);
    }
  }
  return result;
}

void IouTrackerDiscriminator::InsertTrack(Track track) {
  const uint32_t id = static_cast<uint32_t>(tracks_.size());
  const uint64_t first = track.begin / options_.bucket_width;
  const uint64_t last = (track.end - 1) / options_.bucket_width;
  for (uint64_t b = first; b <= last; ++b) track_buckets_[b].push_back(id);
  tracks_.push_back(track);
}

void IouTrackerDiscriminator::Add(video::FrameId frame, const detect::Detections& dets) {
  for (const detect::Detection& det : dets) {
    uint32_t best_track = kNoTrack;
    const uint64_t matches = CountMatchesAt(frame, det.box, &best_track);
    if (matches > 0) {
      // Known object: record the sighting so later matches count it as
      // "seen more than once" (the N1 bookkeeping of Algorithm 1).
      tracks_[best_track].sightings += 1;
      ++reinforcements_;
      continue;
    }
    // New object: propagate a track forwards and backwards from this frame.
    common::Rng rng(common::HashCombine(options_.seed, ++track_counter_));
    Track track;
    track.source = det.source_instance;
    if (det.IsTruePositive()) {
      const scene::Trajectory& traj = truth_->Get(det.source_instance);
      // Breakage truncates propagation on each side independently; a
      // survival_prob of 1 covers the object's full visibility interval.
      const uint64_t fwd_limit = traj.end_frame - frame;
      const uint64_t bwd_limit = frame - traj.start_frame;
      const double break_prob = 1.0 - options_.survival_prob;
      const uint64_t fwd =
          std::min<uint64_t>(fwd_limit, rng.GeometricTrials(break_prob));
      const uint64_t bwd =
          std::min<uint64_t>(bwd_limit, rng.GeometricTrials(break_prob) - 1);
      track.begin = frame - bwd;
      track.end = frame + fwd;
    } else {
      // False positive: assume a static object persisting a short while.
      track.static_box = det.box;
      const double rate = 1.0 / std::max(1.0, options_.fp_extent_mean);
      const uint64_t fwd = rng.GeometricTrials(rate);
      const uint64_t bwd = rng.GeometricTrials(rate) - 1;
      track.begin = frame > bwd ? frame - bwd : 0;
      track.end = frame + fwd;
    }
    if (track.end <= track.begin) track.end = track.begin + 1;
    InsertTrack(track);
  }
}

}  // namespace track
}  // namespace exsample
