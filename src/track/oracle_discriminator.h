#ifndef EXSAMPLE_TRACK_ORACLE_DISCRIMINATOR_H_
#define EXSAMPLE_TRACK_ORACLE_DISCRIMINATOR_H_

#include <unordered_map>

#include "track/discriminator.h"

namespace exsample {
namespace track {

/// \brief Exact discriminator using ground-truth instance identity.
///
/// A detection is new iff its source instance has never been observed; it is
/// in d1 iff the source had been observed exactly once before. False-positive
/// detections (no source instance) are dropped — the oracle, by definition,
/// knows they are not objects. Used by the Sec. IV simulations and anywhere
/// tracker noise should be excluded from the measurement.
class OracleDiscriminator : public Discriminator {
 public:
  MatchResult GetMatches(video::FrameId frame,
                         const detect::Detections& dets) const override;
  void Add(video::FrameId frame, const detect::Detections& dets) override;
  uint64_t DistinctResults() const override { return distinct_; }
  std::string name() const override { return "oracle"; }

 private:
  std::unordered_map<scene::InstanceId, uint64_t> times_seen_;
  uint64_t distinct_ = 0;
};

}  // namespace track
}  // namespace exsample

#endif  // EXSAMPLE_TRACK_ORACLE_DISCRIMINATOR_H_
