#ifndef EXSAMPLE_COMMON_SPAN_H_
#define EXSAMPLE_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace exsample {
namespace common {

/// \brief Minimal read-only view over a contiguous array (the subset of
/// C++20's `std::span<const T>` the library needs, usable under C++17).
///
/// A `Span` does not own its elements; the viewed storage must outlive it.
/// Batch APIs (`SearchStrategy::ObserveBatch`, `ObjectDetector::DetectBatch`)
/// take spans so callers can pass vectors, arrays, or sub-ranges without
/// copying.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  // Views a vector of the (non-const) element type, so `Span<const uint8_t>`
  // accepts a `std::vector<uint8_t>` — `std::vector<const T>` itself is not
  // a valid type and must never be named, even during overload resolution.
  Span(const std::vector<std::remove_const_t<T>>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  /// \brief Sub-view of `count` elements starting at `offset` (clamped to the
  /// viewed range).
  constexpr Span subspan(size_t offset, size_t count) const {
    if (offset > size_) offset = size_;
    if (count > size_ - offset) count = size_ - offset;
    return Span(data_ + offset, count);
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_SPAN_H_
