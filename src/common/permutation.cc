#include "common/permutation.h"

#include <cassert>

#include "common/hash.h"

namespace exsample {
namespace common {

RandomPermutation::RandomPermutation(uint64_t n, uint64_t key) : n_(n) {
  assert(n > 0);
  // Smallest even bit width whose domain covers n (at least 2 bits so both
  // Feistel halves are non-trivial). Cycle-walking maps the enclosing domain
  // back onto [0, n); because the domain is at most 4n, the expected number
  // of walk steps per lookup is below 4.
  uint32_t bits = 2;
  while (bits < 64 && (uint64_t{1} << bits) < n) bits += 2;
  half_bits_ = bits / 2;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
  for (int r = 0; r < 4; ++r) keys_[r] = HashCombine(key, static_cast<uint64_t>(r));
}

uint64_t RandomPermutation::Feistel(uint64_t x) const {
  uint64_t left = x >> half_bits_;
  uint64_t right = x & half_mask_;
  for (int r = 0; r < 4; ++r) {
    const uint64_t f = HashCombine(keys_[r], right) & half_mask_;
    const uint64_t next_right = left ^ f;
    left = right;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

uint64_t RandomPermutation::operator()(uint64_t i) const {
  assert(i < n_);
  uint64_t x = Feistel(i);
  while (x >= n_) x = Feistel(x);
  return x;
}

}  // namespace common
}  // namespace exsample
