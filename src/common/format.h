#ifndef EXSAMPLE_COMMON_FORMAT_H_
#define EXSAMPLE_COMMON_FORMAT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace exsample {
namespace common {

/// \brief Formats a duration in seconds the way the paper's Table I does:
/// "18s", "1m37s", "9h50m". Sub-second durations render as e.g. "0.4s".
std::string FormatDuration(double seconds);

/// \brief Formats a count with thousands separators ("33,546").
std::string FormatCount(uint64_t count);

/// \brief Formats a ratio as e.g. "3.7x" (two significant digits past 10).
std::string FormatRatio(double ratio);

/// \brief Minimal fixed-width text table used by the bench harness output.
///
/// Columns are right-padded to the widest cell. Intended for small
/// paper-style tables, not large data dumps.
class TextTable {
 public:
  /// Sets the header row (also resets existing rows' width bookkeeping).
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Convenience: streams `ToString()`.
  void Print(std::ostream& os) const;

  /// Number of data rows added so far (separators excluded).
  size_t row_count() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_FORMAT_H_
