#include "common/affinity.h"

#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace exsample {
namespace common {
namespace affinity {

bool Supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

int HardwareThreads() {
  const unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

#if defined(__linux__)
Status PinHandle(pthread_t handle, int cpu) {
  if (cpu < 0 || cpu >= CPU_SETSIZE) {
    return Status::InvalidArgument("affinity: cpu index out of range: " +
                                   std::to_string(cpu));
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  const int rc = pthread_setaffinity_np(handle, sizeof(set), &set);
  if (rc != 0) {
    return Status::Internal("affinity: pthread_setaffinity_np(cpu=" +
                            std::to_string(cpu) +
                            ") failed: errno=" + std::to_string(rc));
  }
  return Status::OK();
}
#endif

}  // namespace

Status PinCurrentThread(int cpu) {
#if defined(__linux__)
  return PinHandle(pthread_self(), cpu);
#else
  (void)cpu;
  return Status::FailedPrecondition(
      "affinity: thread pinning unsupported on this platform");
#endif
}

Status PinThread(std::thread& thread, int cpu) {
#if defined(__linux__)
  return PinHandle(thread.native_handle(), cpu);
#else
  (void)thread;
  (void)cpu;
  return Status::FailedPrecondition(
      "affinity: thread pinning unsupported on this platform");
#endif
}

Result<std::vector<int>> ParseCpuList(const std::string& spec) {
  std::vector<int> cpus;
  std::unordered_set<int> seen;
  std::size_t pos = 0;
  if (spec.empty()) {
    return Status::InvalidArgument("affinity: empty cpu list");
  }
  if (spec.back() == ',') {
    return Status::InvalidArgument("affinity: trailing comma in cpu list '" +
                                   spec + "'");
  }
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    if (entry.empty()) {
      return Status::InvalidArgument("affinity: empty entry in cpu list '" +
                                     spec + "'");
    }
    const std::size_t dash = entry.find('-');
    long lo = 0;
    long hi = 0;
    char* end = nullptr;
    if (dash == std::string::npos) {
      lo = hi = std::strtol(entry.c_str(), &end, 10);
      if (end == entry.c_str() || *end != '\0') {
        return Status::InvalidArgument("affinity: bad cpu entry '" + entry +
                                       "'");
      }
    } else {
      const std::string lo_str = entry.substr(0, dash);
      const std::string hi_str = entry.substr(dash + 1);
      lo = std::strtol(lo_str.c_str(), &end, 10);
      if (lo_str.empty() || end == lo_str.c_str() || *end != '\0') {
        return Status::InvalidArgument("affinity: bad cpu range '" + entry +
                                       "'");
      }
      hi = std::strtol(hi_str.c_str(), &end, 10);
      if (hi_str.empty() || end == hi_str.c_str() || *end != '\0') {
        return Status::InvalidArgument("affinity: bad cpu range '" + entry +
                                       "'");
      }
    }
    if (lo < 0 || hi < lo || hi > 1 << 20) {
      return Status::InvalidArgument("affinity: cpu range out of order '" +
                                     entry + "'");
    }
    for (long cpu = lo; cpu <= hi; ++cpu) {
      const int c = static_cast<int>(cpu);
      if (seen.insert(c).second) cpus.push_back(c);
    }
    pos = comma + 1;
  }
  return cpus;
}

}  // namespace affinity
}  // namespace common
}  // namespace exsample
