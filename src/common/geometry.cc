#include "common/geometry.h"

#include <cassert>
#include <cstdio>

namespace exsample {
namespace common {

Box Box::ScaledAboutCenter(double factor) const {
  assert(factor > 0.0);
  const double nw = w * factor;
  const double nh = h * factor;
  return Box{CenterX() - nw / 2.0, CenterY() - nh / 2.0, nw, nh};
}

std::string Box::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%.4f,%.4f,%.4f,%.4f]", x, y, w, h);
  return buf;
}

Box Intersect(const Box& a, const Box& b) {
  const double x0 = std::max(a.x, b.x);
  const double y0 = std::max(a.y, b.y);
  const double x1 = std::min(a.x + a.w, b.x + b.w);
  const double y1 = std::min(a.y + a.h, b.y + b.h);
  return Box{x0, y0, x1 - x0, y1 - y0};
}

double Iou(const Box& a, const Box& b) {
  if (!a.IsValid() || !b.IsValid()) return 0.0;
  const Box inter = Intersect(a, b);
  if (!inter.IsValid()) return 0.0;
  const double inter_area = inter.Area();
  const double union_area = a.Area() + b.Area() - inter_area;
  if (union_area <= 0.0) return 0.0;
  return inter_area / union_area;
}

}  // namespace common
}  // namespace exsample
