#ifndef EXSAMPLE_COMMON_PARKING_H_
#define EXSAMPLE_COMMON_PARKING_H_

/// \file parking.h
/// \brief Spin-then-park wakeup protocol for lock-free queues.
///
/// The ring buffers in ring_buffer.h never block, so consumers need a
/// way to sleep when a queue runs dry without reintroducing a mutex on
/// the producer's fast path. Parker is a waiter-counted eventcount:
///
///   consumer:  spin a bounded number of times re-checking the queue;
///              if still empty, PrepareWait() (waiters++, seq_cst),
///              re-check the queue once more, then Wait() on the CV.
///   producer:  publish the element (release store inside the ring),
///              then a seq_cst fence, then load the waiter count; only
///              when it is non-zero take the mutex and notify.
///
/// The seq_cst increment on the consumer side and the seq_cst fence on
/// the producer side form a Dekker-style store/load pair: either the
/// producer sees waiters > 0 and notifies, or the consumer's final
/// re-check (after the increment) sees the element. A wakeup can never
/// be lost, and the common uncontended Submit costs zero syscalls and
/// zero atomics beyond the ring's own release store plus one fence and
/// one relaxed load.
///
/// Spurious wakeups are the caller's problem by design: Wait() returns
/// whenever notified or on spurious CV wakeup, and the caller loops on
/// its own predicate. This keeps Parker oblivious to what "work
/// available" means, so one implementation serves the thread pool, the
/// prefetcher, and the loopback transport.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace exsample {
namespace common {

/// \brief Waiter-counted park/unpark primitive (eventcount).
class Parker {
 public:
  Parker() = default;
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;

  /// \brief Number of relaxed re-check iterations consumers should
  /// spin before parking. Short on purpose: on an oversubscribed box
  /// (CI runners, the 1-core dev machine) long spins steal cycles from
  /// the very producer being waited on.
  static constexpr int kSpinIterations = 64;

  /// \brief RAII wait session. Construct to register as a waiter
  /// (seq_cst, so producers past their fence must see it), then
  /// re-check the queue, then Wait() if still empty.
  class WaitGuard {
   public:
    explicit WaitGuard(Parker& parker) : parker_(parker), lock_(parker.mu_) {
      parker_.waiters_.fetch_add(1, std::memory_order_seq_cst);
      // Pair of the producer-side fence in WakeOne/WakeAll: orders the
      // increment above before the caller's queue re-check, completing
      // the Dekker store/load square so a wakeup cannot be lost.
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }

    ~WaitGuard() {
      parker_.waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }

    WaitGuard(const WaitGuard&) = delete;
    WaitGuard& operator=(const WaitGuard&) = delete;

    /// \brief Block until notified (or spuriously woken). The caller
    /// re-checks its predicate and either returns to work or calls
    /// Wait() again.
    void Wait() { parker_.cv_.wait(lock_); }

   private:
    Parker& parker_;
    std::unique_lock<std::mutex> lock_;
  };

  /// \brief Producer side: wake one parked consumer if any are parked.
  ///
  /// Call *after* publishing work to the queue. The seq_cst fence
  /// pairs with the waiter-count increment in WaitGuard; see the file
  /// comment for the lost-wakeup argument.
  void WakeOne() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    // Taking the mutex before notifying closes the window where the
    // waiter has incremented the count and re-checked the queue but
    // not yet reached cv_.wait(): the notify cannot run inside that
    // window because the waiter holds mu_ throughout it.
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_one();
  }

  /// \brief Producer side: wake all parked consumers if any.
  void WakeAll() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  }

  /// \brief Current number of registered waiters (diagnostic).
  std::uint32_t Waiters() const {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::uint32_t> waiters_{0};
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_PARKING_H_
