#ifndef EXSAMPLE_COMMON_PERMUTATION_H_
#define EXSAMPLE_COMMON_PERMUTATION_H_

#include <cstdint>

namespace exsample {
namespace common {

/// \brief A pseudo-random bijection on [0, n) with O(1) memory.
///
/// Built from a 4-round Feistel network over the smallest even-bit-width
/// domain covering n, with cycle-walking to stay inside [0, n). Enumerating
/// `perm(0), perm(1), ...` visits every value in [0, n) exactly once in
/// pseudo-random order — this is how the library samples frames *without
/// replacement* from multi-million-frame repositories without materializing
/// a shuffled index vector.
class RandomPermutation {
 public:
  /// Constructs a permutation of [0, n) keyed by `key`. n must be > 0.
  RandomPermutation(uint64_t n, uint64_t key);

  /// \brief The image of `i` (requires i < n).
  uint64_t operator()(uint64_t i) const;

  /// \brief Domain size.
  uint64_t size() const { return n_; }

 private:
  uint64_t Feistel(uint64_t x) const;

  uint64_t n_;
  uint32_t half_bits_;   // Bits per Feistel half.
  uint64_t half_mask_;
  uint64_t keys_[4];
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_PERMUTATION_H_
