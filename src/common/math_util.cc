#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace exsample {
namespace common {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleVariance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return acc / static_cast<double>(values.size() - 1);
}

double SampleStdDev(const std::vector<double>& values) {
  return std::sqrt(SampleVariance(values));
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Median(std::vector<double> values) { return Quantile(std::move(values), 0.5); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = Clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double> Linspace(double lo, double hi, size_t count) {
  std::vector<double> out;
  out.reserve(count);
  if (count == 0) return out;
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (size_t i = 0; i < count; ++i) out.push_back(lo + step * static_cast<double>(i));
  return out;
}

std::vector<double> Logspace(double lo, double hi, size_t count) {
  assert(lo > 0.0 && hi > 0.0);
  std::vector<double> logs = Linspace(std::log(lo), std::log(hi), count);
  for (double& v : logs) v = std::exp(v);
  return logs;
}

bool AlmostEqual(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

double Clamp(double v, double lo, double hi) { return std::min(std::max(v, lo), hi); }

double PowOneMinus(double p, double n) {
  if (p >= 1.0) return 0.0;
  if (p <= 0.0) return 1.0;
  return std::exp(n * std::log1p(-p));
}

double LogNormalMuForMean(double mean, double sigma_log) {
  assert(mean > 0.0);
  return std::log(mean) - sigma_log * sigma_log / 2.0;
}

}  // namespace common
}  // namespace exsample
