#ifndef EXSAMPLE_COMMON_RING_BUFFER_H_
#define EXSAMPLE_COMMON_RING_BUFFER_H_

/// \file ring_buffer.h
/// \brief Bounded lock-free ring buffers for the engine's hot handoffs.
///
/// Two variants, both fixed-capacity and allocation-free after
/// construction, with indices padded to separate cache lines so a
/// producer and a consumer never false-share:
///
///  - SpscRingBuffer<T>: single producer, single consumer. The classic
///    Lamport queue with producer/consumer-local cached copies of the
///    remote index, so the common case touches one shared atomic with
///    acquire/release ordering and nothing stronger.
///  - MpscRingBuffer<T>: many producers, and pops are safe from
///    multiple consumer threads too (the thread pool's workers steal
///    from each other's rings). Bounded Vyukov-style queue: each cell
///    carries a sequence number; producers claim a cell with one CAS
///    on the tail, consumers with one CAS on the head, and the cell
///    sequence hands the slot back and forth with release/acquire
///    ordering only.
///
/// Capacity is rounded up to the next power of two so index wrapping
/// is a mask, not a divide. Neither variant blocks: TryPush fails when
/// full, TryPop fails when empty, and callers layer waiting/parking on
/// top (see parking.h). Determinism note: these queues carry *work*,
/// never *results ordering* — batch planning stays on the coordinator,
/// so swapping a mutex-guarded deque for a ring cannot change a trace.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace exsample {
namespace common {

/// \brief Cache-line size used to pad producer/consumer state apart.
///
/// Hardcoded 64: std::hardware_destructive_interference_size is still
/// flaky across toolchains (gcc warns under -Werror when it is used in
/// ABI-affecting positions), and 64 is right for every x86/ARM server
/// part this engine targets.
inline constexpr std::size_t kCacheLineSize = 64;

/// \brief Round \p n up to the next power of two (minimum 2).
constexpr std::size_t RoundUpPowerOfTwo(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

/// \brief Bounded single-producer / single-consumer ring buffer.
///
/// Exactly one thread may call TryPush and exactly one thread may call
/// TryPop over the buffer's lifetime (the two may be the same thread).
/// T must be movable. Elements are move-assigned into pre-constructed
/// slots, so T needs a default constructor; for the engine's use cases
/// (indices, pointers, byte vectors) this is free.
template <typename T>
class SpscRingBuffer {
 public:
  /// \brief Create a ring holding at least \p min_capacity elements.
  explicit SpscRingBuffer(std::size_t min_capacity)
      : mask_(RoundUpPowerOfTwo(min_capacity + 1) - 1),
        slots_(mask_ + 1) {}

  SpscRingBuffer(const SpscRingBuffer&) = delete;
  SpscRingBuffer& operator=(const SpscRingBuffer&) = delete;

  /// \brief Usable capacity (one slot is sacrificed to distinguish
  /// full from empty).
  std::size_t Capacity() const { return mask_; }

  /// \brief Producer side: enqueue \p value. Returns false if full.
  bool TryPush(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      // Producer's view of the consumer index is stale; refresh it.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;  // genuinely full
    }
    slots_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// \brief Consumer side: dequeue into \p out. Returns false if empty.
  bool TryPop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // genuinely empty
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// \brief Approximate occupancy; exact only when both sides are
  /// quiescent. Safe to call from any thread for stats/tests.
  std::size_t ApproxSize() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

  /// \brief True when no element is visible. Same caveat as ApproxSize.
  bool Empty() const { return ApproxSize() == 0; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;

  // Producer-owned line: tail plus the producer's cached head.
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;

  // Consumer-owned line: head plus the consumer's cached tail.
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;

  // Trailing pad so an adjacent object cannot share the consumer line.
  char pad_end_[kCacheLineSize] = {};
};

/// \brief Bounded multi-producer ring buffer with multi-consumer-safe
/// pops (Vyukov bounded queue).
///
/// Any number of threads may push and any number may pop concurrently.
/// Progress is lock-free in practice: each operation is one CAS on the
/// shared index plus release/acquire handoff through the cell's
/// sequence number; a stalled thread can delay only the slot it
/// claimed, never the whole queue.
template <typename T>
class MpscRingBuffer {
 public:
  /// \brief Create a ring holding at least \p min_capacity elements.
  explicit MpscRingBuffer(std::size_t min_capacity)
      : mask_(RoundUpPowerOfTwo(min_capacity) - 1),
        cells_(mask_ + 1) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRingBuffer(const MpscRingBuffer&) = delete;
  MpscRingBuffer& operator=(const MpscRingBuffer&) = delete;

  /// \brief Usable capacity.
  std::size_t Capacity() const { return mask_ + 1; }

  /// \brief Enqueue \p value from any thread. Returns false if full.
  bool TryPush(T&& value) {
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[tail & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(tail);
      if (dif == 0) {
        // Cell is free for this ticket; claim it with one CAS.
        if (tail_.compare_exchange_weak(tail, tail + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(tail + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `tail`; retry with the fresh ticket.
      } else if (dif < 0) {
        // Cell still holds an element a lap behind: the queue is full.
        return false;
      } else {
        tail = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// \brief Dequeue into \p out from any thread. Returns false if empty.
  bool TryPop(T& out) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[head & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(head + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(head, head + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          // Release the cell for the producer one lap ahead.
          cell.sequence.store(head + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        // Cell not yet published: the queue is empty.
        return false;
      } else {
        head = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// \brief Approximate occupancy; exact only when quiescent.
  std::size_t ApproxSize() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  /// \brief True when no element is visible. Same caveat as ApproxSize.
  bool Empty() const { return ApproxSize() == 0; }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  const std::size_t mask_;
  std::vector<Cell> cells_;

  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  char pad_end_[kCacheLineSize] = {};
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_RING_BUFFER_H_
