#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace exsample {
namespace common {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Counts of Bernoulli trials beyond this are indistinguishable from "never"
// for any dataset the library handles (frame counts are < 2^40).
constexpr uint64_t kGeometricSaturation = uint64_t{1} << 62;

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // xoshiro's all-zero state is absorbing; SplitMix64 cannot produce four
  // zero words from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo < hi);
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo)));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

uint64_t Rng::GeometricTrials(double p) {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return kGeometricSaturation;
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  const double trials = std::floor(std::log(u) / std::log1p(-p)) + 1.0;
  if (!(trials < static_cast<double>(kGeometricSaturation))) {
    return kGeometricSaturation;
  }
  return static_cast<uint64_t>(trials);
}

double Rng::Gamma(double shape, double rate) {
  assert(shape > 0.0 && rate > 0.0);
  if (shape < 1.0) {
    // Boost: if X ~ Gamma(shape+1) and U ~ Uniform(0,1), then
    // X * U^{1/shape} ~ Gamma(shape).
    double u;
    do {
      u = NextDouble();
    } while (u == 0.0);
    return Gamma(shape + 1.0, rate) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v / rate;
    if (u > 0.0 && std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v / rate;
    }
  }
}

double Rng::LogNormal(double mu_log, double sigma_log) {
  return std::exp(Normal(mu_log, sigma_log));
}

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 30.0) {
    // Exact split: Poisson(a + b) = Poisson(a) + Poisson(b).
    const double half = mean * 0.5;
    return Poisson(half) + Poisson(mean - half);
  }
  const double limit = std::exp(-mean);
  uint64_t count = 0;
  double product = NextDouble();
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

Rng Rng::Fork() {
  // Mix two outputs so that sibling forks and the parent's subsequent stream
  // are decorrelated.
  const uint64_t a = NextU64();
  const uint64_t b = NextU64();
  uint64_t seed = a ^ Rotl(b, 29) ^ 0xd1342543de82ef95ULL;
  return Rng(seed);
}

}  // namespace common
}  // namespace exsample
