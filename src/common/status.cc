#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace exsample {
namespace common {

void FatalError(const char* what) {
  std::fprintf(stderr, "exsample: fatal: %s\n", what);
  std::fflush(stderr);
  std::abort();
}

void CheckOk(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "exsample: fatal: %s: %s\n", what, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace common
}  // namespace exsample
