#ifndef EXSAMPLE_COMMON_GEOMETRY_H_
#define EXSAMPLE_COMMON_GEOMETRY_H_

#include <algorithm>
#include <string>

namespace exsample {
namespace common {

/// \brief An axis-aligned bounding box in normalized image coordinates.
///
/// `(x, y)` is the top-left corner; `w`/`h` are width and height. The library
/// works in a normalized [0,1]x[0,1] image plane, but nothing below depends on
/// that convention.
struct Box {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  /// \brief Box area (0 for degenerate boxes).
  double Area() const { return std::max(0.0, w) * std::max(0.0, h); }

  /// \brief True when the box has positive area.
  bool IsValid() const { return w > 0.0 && h > 0.0; }

  /// \brief Center x coordinate.
  double CenterX() const { return x + w / 2.0; }
  /// \brief Center y coordinate.
  double CenterY() const { return y + h / 2.0; }

  /// \brief Returns this box translated by (dx, dy).
  Box Translated(double dx, double dy) const { return Box{x + dx, y + dy, w, h}; }

  /// \brief Returns this box scaled about its center by `factor` (> 0).
  Box ScaledAboutCenter(double factor) const;

  /// \brief Compact debug representation "[x,y,w,h]".
  std::string ToString() const;

  bool operator==(const Box& other) const {
    return x == other.x && y == other.y && w == other.w && h == other.h;
  }
};

/// \brief Intersection box of `a` and `b` (degenerate when disjoint).
Box Intersect(const Box& a, const Box& b);

/// \brief Intersection-over-union of two boxes, in [0, 1].
///
/// Returns 0 when either box is degenerate.
double Iou(const Box& a, const Box& b);

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_GEOMETRY_H_
