#ifndef EXSAMPLE_COMMON_RNG_H_
#define EXSAMPLE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace exsample {
namespace common {

/// \brief Deterministic pseudo-random number generator (xoshiro256++) with the
/// distribution samplers the library needs.
///
/// Every stochastic component in the library takes an `Rng&` (or a seed it
/// expands into one) so that experiments, tests, and benchmarks are exactly
/// reproducible across runs and platforms. The generator is not
/// cryptographically secure and is not thread-safe; use `Fork()` to derive
/// independent streams for parallel work.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Next raw 64-bit output.
  uint64_t NextU64();

  /// \brief Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  ///
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform integer in [lo, hi). Requires lo < hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// \brief Standard normal variate (Marsaglia polar method).
  double Normal();

  /// \brief Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// \brief Exponential variate with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// \brief Number of Bernoulli(p) trials up to and including the first
  /// success (support {1, 2, ...}).
  ///
  /// Returns a saturating large count when `p` is 0 or denormally small, so
  /// callers can treat "never" as "beyond any horizon of interest".
  uint64_t GeometricTrials(double p);

  /// \brief Gamma variate with the given shape and rate (mean shape/rate).
  ///
  /// Marsaglia–Tsang squeeze method; shapes below 1 use the standard
  /// `U^{1/shape}` boosting transformation. Both parameters must be > 0.
  double Gamma(double shape, double rate);

  /// \brief Log-normal variate: exp(Normal(mu_log, sigma_log)).
  double LogNormal(double mu_log, double sigma_log);

  /// \brief Poisson variate with the given mean.
  ///
  /// Knuth's product method for small means; larger means are split
  /// recursively (Poisson(a+b) = Poisson(a) + Poisson(b)), which stays exact.
  uint64_t Poisson(double mean);

  /// \brief Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// \brief Derives an independent child generator.
  ///
  /// The child stream is a deterministic function of the parent state, so a
  /// forked hierarchy of generators is reproducible from the root seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_RNG_H_
