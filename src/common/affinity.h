#ifndef EXSAMPLE_COMMON_AFFINITY_H_
#define EXSAMPLE_COMMON_AFFINITY_H_

/// \file affinity.h
/// \brief CPU affinity / thread placement helpers.
///
/// Linux gets real pinning via pthread_setaffinity_np; every other
/// platform gets a graceful no-op (calls succeed logically but report
/// Supported() == false, so callers can warn instead of failing).
/// Placement is always best-effort: a failed pin must never take the
/// engine down, because correctness does not depend on placement —
/// only tail latency does.
///
/// The string grammar accepted by ParseCpuList matches taskset(1):
/// comma-separated entries, each a single CPU index or an inclusive
/// range, e.g. "0-3,8,10-11".

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace exsample {
namespace common {
namespace affinity {

/// \brief True when this build can actually pin threads (Linux).
bool Supported();

/// \brief Number of hardware threads visible to this process.
/// Falls back to 1 when the runtime reports 0 (unknown).
int HardwareThreads();

/// \brief Pin the calling thread to \p cpu. Best-effort: returns a
/// non-OK Status on failure (unsupported platform, cpu out of range,
/// kernel rejection) and the caller decides whether to warn.
Status PinCurrentThread(int cpu);

/// \brief Pin \p thread to \p cpu. Same best-effort contract.
Status PinThread(std::thread& thread, int cpu);

/// \brief Parse a taskset-style CPU list ("0-3,8") into indices.
/// Duplicates are removed, order of first appearance is preserved so
/// "2,0" pins thread 0 to CPU 2 and thread 1 to CPU 0.
Result<std::vector<int>> ParseCpuList(const std::string& spec);

}  // namespace affinity
}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_AFFINITY_H_
