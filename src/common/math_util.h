#ifndef EXSAMPLE_COMMON_MATH_UTIL_H_
#define EXSAMPLE_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace exsample {
namespace common {

/// \brief Arithmetic mean of `values` (0 for an empty vector).
double Mean(const std::vector<double>& values);

/// \brief Unbiased sample variance of `values` (0 when fewer than 2 values).
double SampleVariance(const std::vector<double>& values);

/// \brief Square root of `SampleVariance`.
double SampleStdDev(const std::vector<double>& values);

/// \brief Geometric mean of strictly positive values (0 if any value <= 0 or
/// the vector is empty).
double GeometricMean(const std::vector<double>& values);

/// \brief Median of `values` (copies and sorts; 0 for an empty vector).
double Median(std::vector<double> values);

/// \brief Linear-interpolation quantile of `values` for `q` in [0, 1].
///
/// Copies and sorts the input. Uses the common "linear between closest ranks"
/// definition (R type 7). Returns 0 for an empty vector.
double Quantile(std::vector<double> values, double q);

/// \brief `count` evenly spaced values covering [lo, hi] inclusive.
std::vector<double> Linspace(double lo, double hi, size_t count);

/// \brief `count` log-spaced values covering [lo, hi] inclusive (lo, hi > 0).
std::vector<double> Logspace(double lo, double hi, size_t count);

/// \brief True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double rel_tol = 1e-9, double abs_tol = 1e-12);

/// \brief Clamps `v` into [lo, hi].
double Clamp(double v, double lo, double hi);

/// \brief Computes `(1 - p)^n` accurately for tiny `p` via expm1/log1p.
double PowOneMinus(double p, double n);

/// \brief Converts a LogNormal's target arithmetic mean and the sigma of the
/// underlying normal into the normal's mu: mu = ln(mean) - sigma^2 / 2.
double LogNormalMuForMean(double mean, double sigma_log);

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_MATH_UTIL_H_
