#ifndef EXSAMPLE_COMMON_STATUS_H_
#define EXSAMPLE_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace exsample {
namespace common {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions across its public API. Fallible
/// operations return `Status` (or `Result<T>` when they also produce a value),
/// following the RocksDB / Arrow idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief A success-or-error outcome with an optional message.
///
/// `Status::OK()` is cheap (no allocation). Error statuses carry a message
/// describing what went wrong; callers are expected to check `ok()` before
/// using any associated outputs.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \brief Returns the OK status.
  static Status OK() { return Status(); }
  /// \brief Returns an InvalidArgument error with the given message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// \brief Returns a NotFound error with the given message.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// \brief Returns an OutOfRange error with the given message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// \brief Returns a FailedPrecondition error with the given message.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// \brief Returns an Internal error with the given message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// \brief True when the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// \brief The status code.
  StatusCode code() const { return code_; }
  /// \brief The error message (empty for OK).
  const std::string& message() const { return message_; }
  /// \brief Formats the status as "CODE: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Aborts the process with `what` on stderr.
///
/// For invariant violations that must not be survivable in *any* build mode:
/// unlike `assert`, this fires under NDEBUG too, so release builds cannot
/// silently continue with corrupted state.
[[noreturn]] void FatalError(const char* what);

/// \brief Aborts with `what` and the status message unless `status` is OK.
///
/// Used where a `Status`-returning dependency is called from an infallible
/// context (e.g. strategy feedback paths): propagating the error is
/// impossible and ignoring it would corrupt statistics, so the only safe
/// option is to stop.
void CheckOk(const Status& status, const char* what);

/// \brief Aborts with `what` unless `condition` holds (NDEBUG-proof assert).
inline void Check(bool condition, const char* what) {
  if (!condition) FatalError(what);
}

/// \brief Either a value of type `T` or an error `Status`.
///
/// Modeled after `arrow::Result`. Access to the value asserts success in
/// debug builds; callers should branch on `ok()` first.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : inner_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : inner_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(inner_).ok());
  }

  /// \brief True when a value is present.
  bool ok() const { return std::holds_alternative<T>(inner_); }

  /// \brief The status: OK when a value is present, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(inner_);
  }

  /// \brief Borrows the value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(inner_);
  }
  /// \brief Borrows the value mutably. Requires `ok()`.
  T& value() & {
    assert(ok());
    return std::get<T>(inner_);
  }
  /// \brief Moves the value out. Requires `ok()`.
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(inner_));
  }

  /// \brief Returns the value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(inner_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> inner_;
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_STATUS_H_
