#ifndef EXSAMPLE_COMMON_THREAD_POOL_H_
#define EXSAMPLE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace exsample {
namespace common {

/// \brief Fixed-size worker pool for data-parallel fan-out.
///
/// The execution pipeline uses one pool for the whole engine: the detector
/// stage fans a batch of independent per-frame calls across the workers while
/// everything order-sensitive (Thompson sampling, discriminator updates, cost
/// accounting) stays on the caller thread. `ParallelFor` assigns work by
/// index, so results written to index `i` of a pre-sized output land in a
/// deterministic slot regardless of which worker ran them — thread count can
/// never change what a computation produces, only how fast.
///
/// One caller drives the pool at a time (`ParallelFor` is not re-entrant and
/// must not be invoked concurrently from two threads). Tasks must not throw.
///
/// Beyond the blocking `ParallelFor`, the pool accepts fire-and-forget work
/// via `Submit` — the seam the decode prefetcher uses to push frame decodes
/// ahead of the detect stage. Workers service both kinds of work: queued
/// tasks take priority, and a `ParallelFor` driven from the caller thread
/// still completes even while every worker is busy with submitted tasks
/// (the caller participates in its own job).
class ThreadPool {
 public:
  /// \brief Starts `num_threads` workers. 0 means one worker per hardware
  /// thread; 1 means no workers at all (every ParallelFor runs inline on the
  /// caller, which keeps single-threaded runs free of synchronization).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Total threads that execute work (workers plus the calling
  /// thread). A pool constructed with 1 reports 1.
  size_t NumThreads() const { return workers_.size() + 1; }

  /// \brief Runs `fn(0) .. fn(n-1)` across the pool and blocks until all have
  /// completed. The caller thread participates. Indices are claimed
  /// dynamically, so per-index cost imbalance self-balances.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// \brief Enqueues `task` to run asynchronously on a worker and returns
  /// immediately. A pool without workers (constructed with 1) runs the task
  /// inline before returning — the deterministic single-threaded fallback.
  ///
  /// Completion is the submitter's business: tasks carry their own signaling
  /// (the prefetcher marks a slot ready and notifies a condition variable).
  /// Destruction drains the queue — every submitted task runs before the
  /// workers exit — but callers that *wait* on task side effects must not
  /// destroy the pool from inside that wait. Tasks must not throw and must
  /// not call `ParallelFor` or `Submit` on their own pool.
  void Submit(std::function<void()> task);

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  void RunJob(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_cv_;   // Workers wait here for a new job/task.
  std::condition_variable done_cv_;   // ParallelFor waits here for completion.
  std::shared_ptr<Job> job_;          // Current job, null between jobs.
  std::deque<std::function<void()>> tasks_;  // Submitted fire-and-forget work.
  uint64_t generation_ = 0;           // Bumped per job so workers wake once each.
  bool stop_ = false;
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_THREAD_POOL_H_
