#ifndef EXSAMPLE_COMMON_THREAD_POOL_H_
#define EXSAMPLE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parking.h"
#include "common/ring_buffer.h"

namespace exsample {
namespace common {

/// \brief Fixed-size worker pool for data-parallel fan-out.
///
/// The execution pipeline uses one pool for the whole engine: the detector
/// stage fans a batch of independent per-frame calls across the workers while
/// everything order-sensitive (Thompson sampling, discriminator updates, cost
/// accounting) stays on the caller thread. `ParallelFor` assigns work by
/// index, so results written to index `i` of a pre-sized output land in a
/// deterministic slot regardless of which worker ran them — thread count can
/// never change what a computation produces, only how fast.
///
/// One caller drives the pool at a time (`ParallelFor` is not re-entrant and
/// must not be invoked concurrently from two threads; violations die loudly
/// via `FatalError`). Tasks must not throw.
///
/// Beyond the blocking `ParallelFor`, the pool accepts fire-and-forget work
/// via `Submit` — the seam the decode prefetcher uses to push frame decodes
/// ahead of the detect stage. Workers service both kinds of work: queued
/// tasks take priority, and a `ParallelFor` driven from the caller thread
/// still completes even while every worker is busy with submitted tasks
/// (the caller participates in its own job).
///
/// ## Hot-path design (lock-free)
///
/// Neither `Submit` nor `ParallelFor` index dispatch takes a mutex while
/// workers are live. Submitted tasks travel through bounded MPSC rings —
/// one per worker (round-robin target, stealable by the others) plus a
/// shared injection ring — and spill to a mutex-guarded overflow deque
/// only when every ring is full. `ParallelFor` publishes its job through
/// a single packed generation/index word that workers claim with one CAS
/// per index. Idle workers spin briefly, then park on a waiter-counted
/// `Parker`; a producer pays for a wakeup syscall only when someone is
/// actually parked. The mutex/CV pair survives solely for park/unpark,
/// overflow spill, and shutdown — exactly the cold paths.
class ThreadPool {
 public:
  /// \brief Construction knobs beyond thread count.
  struct Options {
    /// 0 = one worker per hardware thread; 1 = no workers (inline).
    size_t num_threads = 0;
    /// When non-empty, worker i is pinned to pin_cpus[i % size()]
    /// (best-effort; failures are ignored — placement is a latency
    /// optimization, never a correctness requirement).
    std::vector<int> pin_cpus;
  };

  /// \brief Starts `num_threads` workers. 0 means one worker per hardware
  /// thread; 1 means no workers at all (every ParallelFor runs inline on the
  /// caller, which keeps single-threaded runs free of synchronization).
  explicit ThreadPool(size_t num_threads = 0);

  /// \brief Starts workers per \p options (thread count plus CPU pinning).
  explicit ThreadPool(const Options& options);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Total threads that execute work (workers plus the calling
  /// thread). A pool constructed with 1 reports 1.
  size_t NumThreads() const { return workers_.size() + 1; }

  /// \brief Runs `fn(0) .. fn(n-1)` across the pool and blocks until all have
  /// completed. The caller thread participates. Indices are claimed
  /// dynamically, so per-index cost imbalance self-balances.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// \brief Enqueues `task` to run asynchronously on a worker and returns
  /// immediately. A pool without workers (constructed with 1) runs the task
  /// inline before returning — the deterministic single-threaded fallback.
  ///
  /// Completion is the submitter's business: tasks carry their own signaling
  /// (the prefetcher marks a slot ready and notifies its parker).
  /// Destruction drains the queues — every submitted task runs before the
  /// workers exit — but callers that *wait* on task side effects must not
  /// destroy the pool from inside that wait. Tasks must not throw and must
  /// not call `ParallelFor` or `Submit` on their own pool.
  void Submit(std::function<void()> task);

 private:
  using Task = std::function<void()>;
  using TaskRing = MpscRingBuffer<Task>;

  /// Sentinel low word of job_claim_: no claimable indices.
  static constexpr uint32_t kIdleIndex = 0xFFFFFFFFu;

  void WorkerLoop(size_t self);
  /// Pop and run one submitted task (own ring, injection ring, steal,
  /// overflow — in that order). Returns true if a task ran.
  bool RunOneTask(size_t self);
  /// Claim and run indices of the active ParallelFor job, if any.
  /// Returns true if at least one index ran.
  bool RunJobIndices();
  /// Conservative work check used under the parker before sleeping.
  bool HasVisibleWork() const;

  std::vector<std::thread> workers_;

  // --- Submitted-task plumbing -------------------------------------------
  std::vector<std::unique_ptr<TaskRing>> worker_rings_;
  std::unique_ptr<TaskRing> injection_ring_;
  std::atomic<size_t> submit_cursor_{0};  // Round-robin ring target.
  std::mutex overflow_mu_;                // Guards overflow_ only.
  std::deque<Task> overflow_;             // Spill when every ring is full.
  std::atomic<size_t> overflow_size_{0};  // Lock-free emptiness probe.

  // --- ParallelFor job slot (single driver at a time) --------------------
  // Publication order: fn/n/done are written first, then job_claim_ gets
  // (generation << 32 | 0) with release. Workers claim index i by CASing
  // (gen, i) -> (gen, i+1); the generation half makes a stale claim from a
  // previous job fail instead of touching the new job's state. After the
  // final index completes, the driver stores (gen, kIdleIndex) so no CAS
  // can succeed between jobs. fn/n are atomics only so a stale-generation
  // reader is a benign race instead of UB — the CAS gate, not their
  // ordering, is what guards the dereference.
  std::atomic<uint64_t> job_claim_{kIdleIndex};
  std::atomic<const std::function<void(size_t)>*> job_fn_{nullptr};
  std::atomic<size_t> job_n_{0};
  std::atomic<size_t> job_done_{0};
  std::atomic<bool> parallel_for_active_{false};  // Concurrent-caller trap.

  // --- Cold-path signaling ------------------------------------------------
  Parker wake_parker_;  // Idle workers park here.
  Parker done_parker_;  // The ParallelFor driver parks here.
  std::atomic<bool> stop_{false};
};

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_THREAD_POOL_H_
