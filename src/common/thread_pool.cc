#include "common/thread_pool.h"

#include <utility>

#include "common/affinity.h"
#include "common/status.h"

namespace exsample {
namespace common {

namespace {

/// Per-worker ring capacity. Small on purpose: the rings are a fast lane,
/// not a backlog store — sustained overload spills to the overflow deque,
/// which is the correct place for unbounded queueing to pay a lock.
constexpr size_t kWorkerRingCapacity = 256;

/// Shared injection ring capacity (second chance before the overflow lock).
constexpr size_t kInjectionRingCapacity = 512;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(Options{num_threads, {}}) {}

ThreadPool::ThreadPool(const Options& options) {
  size_t num_threads = options.num_threads;
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 0 ? hw : 1;
  }
  const size_t num_workers = num_threads - 1;
  injection_ring_ = std::make_unique<TaskRing>(kInjectionRingCapacity);
  worker_rings_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    worker_rings_.push_back(std::make_unique<TaskRing>(kWorkerRingCapacity));
  }
  // The caller thread is worker number one; spawn the rest. Rings must all
  // exist before the first thread starts (workers steal from every ring).
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
    if (!options.pin_cpus.empty()) {
      // Best-effort placement; a rejected pin must never take the pool down.
      (void)affinity::PinThread(workers_.back(),
                               options.pin_cpus[i % options.pin_cpus.size()]);
    }
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  wake_parker_.WakeAll();
  for (std::thread& worker : workers_) worker.join();
  // Workers drained the rings and overflow before exiting (the destructor
  // contract: every submitted task runs). A pool that never had workers
  // ran everything inline, so there is nothing left either way.
}

bool ThreadPool::RunOneTask(size_t self) {
  Task task;
  if (self < worker_rings_.size() && worker_rings_[self]->TryPop(task)) {
    task();
    return true;
  }
  if (injection_ring_->TryPop(task)) {
    task();
    return true;
  }
  // Steal: sweep the other workers' rings. Start past self so two idle
  // workers don't hammer the same victim.
  const size_t rings = worker_rings_.size();
  for (size_t k = 1; k <= rings; ++k) {
    const size_t victim = (self + k) % rings;
    if (victim == self) continue;
    if (worker_rings_[victim]->TryPop(task)) {
      task();
      return true;
    }
  }
  if (overflow_size_.load(std::memory_order_acquire) > 0) {
    bool popped = false;
    {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      if (!overflow_.empty()) {
        task = std::move(overflow_.front());
        overflow_.pop_front();
        overflow_size_.fetch_sub(1, std::memory_order_release);
        popped = true;
      }
    }
    if (popped) {
      task();
      return true;
    }
  }
  return false;
}

bool ThreadPool::RunJobIndices() {
  bool ran = false;
  uint64_t word = job_claim_.load(std::memory_order_acquire);
  for (;;) {
    const uint32_t idx = static_cast<uint32_t>(word & 0xFFFFFFFFull);
    if (idx == kIdleIndex) return ran;  // No job published.
    // A stale `word` can pair with the *next* job's n here; the CAS below
    // fails in that case (generation mismatch), so the comparison only has
    // to be safe, not current.
    if (static_cast<size_t>(idx) >= job_n_.load(std::memory_order_relaxed)) {
      return ran;
    }
    if (job_claim_.compare_exchange_weak(word, word + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      // The claim succeeded against the live generation, which pins the
      // job fields: they cannot be rewritten until job_done_ reaches n,
      // and that requires the increment we perform below.
      const std::function<void(size_t)>* fn =
          job_fn_.load(std::memory_order_relaxed);
      const size_t n = job_n_.load(std::memory_order_relaxed);
      (*fn)(static_cast<size_t>(idx));
      ran = true;
      if (job_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        done_parker_.WakeAll();  // No syscall unless the driver parked.
      }
      word = job_claim_.load(std::memory_order_acquire);
    }
    // CAS failure reloaded `word` (acquire); loop with the fresh view.
  }
}

bool ThreadPool::HasVisibleWork() const {
  if (!injection_ring_->Empty()) return true;
  for (const auto& ring : worker_rings_) {
    if (!ring->Empty()) return true;
  }
  if (overflow_size_.load(std::memory_order_acquire) > 0) return true;
  const uint64_t word = job_claim_.load(std::memory_order_acquire);
  const uint32_t idx = static_cast<uint32_t>(word & 0xFFFFFFFFull);
  if (idx != kIdleIndex &&
      static_cast<size_t>(idx) < job_n_.load(std::memory_order_relaxed)) {
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  int idle_spins = 0;
  for (;;) {
    if (RunOneTask(self) || RunJobIndices()) {
      idle_spins = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Shutdown: drain every queue before exiting so no submitted task is
      // stranded. Tasks cannot enqueue onto their own pool (documented),
      // so one empty sweep means empty for good.
      while (RunOneTask(self)) {
      }
      return;
    }
    if (++idle_spins < Parker::kSpinIterations) {
      // Yield inside the spin: on an oversubscribed host the producer we
      // are waiting on may need this very core.
      std::this_thread::yield();
      continue;
    }
    idle_spins = 0;
    Parker::WaitGuard guard(wake_parker_);
    // Registered as a waiter (seq_cst) — re-check before sleeping. Any
    // producer that published after this point must see our registration
    // past its fence and will notify.
    if (HasVisibleWork() || stop_.load(std::memory_order_acquire)) {
      continue;  // ~WaitGuard deregisters.
    }
    guard.Wait();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers to hand off to: run inline, preserving the invariant that a
    // submitted task has run (or is running) once Submit returns control flow
    // to a single-threaded program.
    task();
    return;
  }
  // Fast path: bounded rings, no mutex. Round-robin a home ring so
  // submissions spread across workers; fall back to the shared injection
  // ring, and only then pay the overflow lock (ring exhaustion means the
  // pool is already saturated, so the lock is off the critical path).
  const size_t home =
      submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
      worker_rings_.size();
  if (!worker_rings_[home]->TryPush(std::move(task))) {
    if (!injection_ring_->TryPush(std::move(task))) {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      overflow_.push_back(std::move(task));
      overflow_size_.fetch_add(1, std::memory_order_release);
    }
  }
  wake_parker_.WakeOne();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline execution touches no shared job state, so concurrent inline
    // calls (distinct drivers on a workerless pool) are harmless.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (parallel_for_active_.exchange(true, std::memory_order_acq_rel)) {
    FatalError(
        "ThreadPool::ParallelFor is not re-entrant: a second caller entered "
        "while a job was in flight. Drive each pool from one thread at a "
        "time (nested/concurrent ParallelFor on the same pool corrupts the "
        "shared job slot).");
  }
  Check(n < static_cast<size_t>(kIdleIndex),
        "ThreadPool::ParallelFor: n exceeds the claimable index range");

  // Publish: fields first, then the claim word (release). Workers claim
  // indices straight off job_claim_ — no mutex, no per-worker handshake.
  job_fn_.store(&fn, std::memory_order_relaxed);
  job_n_.store(n, std::memory_order_relaxed);
  job_done_.store(0, std::memory_order_relaxed);
  const uint64_t generation =
      (job_claim_.load(std::memory_order_relaxed) >> 32) + 1;
  job_claim_.store(generation << 32, std::memory_order_release);
  wake_parker_.WakeAll();

  // The driver is worker number one in its own job.
  RunJobIndices();

  // Completion: spin briefly (the tail of the last index is usually
  // short), then park on the done parker.
  int idle_spins = 0;
  while (job_done_.load(std::memory_order_acquire) != n) {
    if (++idle_spins < Parker::kSpinIterations) {
      std::this_thread::yield();
      continue;
    }
    idle_spins = 0;
    Parker::WaitGuard guard(done_parker_);
    if (job_done_.load(std::memory_order_acquire) == n) break;
    guard.Wait();
  }

  // Retire the generation: park the claim word on kIdleIndex so no stale
  // CAS can touch the slot between jobs (see header comment).
  job_claim_.store((generation << 32) | kIdleIndex,
                   std::memory_order_release);
  parallel_for_active_.store(false, std::memory_order_release);
}

}  // namespace common
}  // namespace exsample
