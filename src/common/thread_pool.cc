#include "common/thread_pool.h"

namespace exsample {
namespace common {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 0 ? hw : 1;
  }
  // The caller thread is worker number one; spawn the rest.
  workers_.reserve(num_threads - 1);
  for (size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunJob(Job& job) {
  for (;;) {
    const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    (*job.fn)(i);
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] {
        return stop_ || !tasks_.empty() || generation_ != seen_generation;
      });
      if (!tasks_.empty()) {
        // Submitted tasks take priority, and are drained even during
        // shutdown: a submitter may be blocked waiting on a task's side
        // effect, so dropping queued work could strand it.
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (stop_) {
        return;
      } else {
        seen_generation = generation_;
        job = job_;  // May be null if the job finished before we woke.
      }
    }
    if (task) {
      task();
    } else if (job != nullptr) {
      RunJob(*job);
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers to hand off to: run inline, preserving the invariant that a
    // submitted task has run (or is running) once Submit returns control flow
    // to a single-threaded program.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  wake_cv_.notify_all();
  RunJob(*job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job->done.load(std::memory_order_acquire) == job->n; });
    job_.reset();
  }
}

}  // namespace common
}  // namespace exsample
