#include "common/format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace exsample {
namespace common {

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 0.0) seconds = 0.0;
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
    return buf;
  }
  const uint64_t total = static_cast<uint64_t>(std::llround(seconds));
  const uint64_t hours = total / 3600;
  const uint64_t minutes = (total % 3600) / 60;
  const uint64_t secs = total % 60;
  if (hours > 0) {
    if (minutes > 0) {
      std::snprintf(buf, sizeof(buf), "%lluh%llum", static_cast<unsigned long long>(hours),
                    static_cast<unsigned long long>(minutes));
    } else {
      std::snprintf(buf, sizeof(buf), "%lluh", static_cast<unsigned long long>(hours));
    }
    return buf;
  }
  if (minutes > 0) {
    if (secs > 0) {
      std::snprintf(buf, sizeof(buf), "%llum%llus",
                    static_cast<unsigned long long>(minutes),
                    static_cast<unsigned long long>(secs));
    } else {
      std::snprintf(buf, sizeof(buf), "%llum", static_cast<unsigned long long>(minutes));
    }
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%llus", static_cast<unsigned long long>(secs));
  return buf;
}

std::string FormatCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int until_comma = static_cast<int>(digits.size() % 3);
  if (until_comma == 0) until_comma = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (until_comma == 0) {
      out.push_back(',');
      until_comma = 3;
    }
    out.push_back(digits[i]);
    --until_comma;
  }
  return out;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  if (ratio >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.0fx", ratio);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2gx", ratio);
  }
  return buf;
}

void TextTable::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{true, {}}); }

size_t TextTable::row_count() const {
  size_t count = 0;
  for (const Row& row : rows_) {
    if (!row.separator) ++count;
  }
  return count;
}

std::string TextTable::ToString() const {
  size_t columns = header_.size();
  for (const Row& row : rows_) columns = std::max(columns, row.cells.size());
  std::vector<size_t> widths(columns, 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const Row& row : rows_) {
    if (!row.separator) widen(row.cells);
  }

  size_t total_width = 0;
  for (size_t w : widths) total_width += w + 2;
  if (total_width >= 2) total_width -= 2;

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << cell;
      if (i + 1 < columns) os << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total_width, '-') << '\n';
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      os << std::string(total_width, '-') << '\n';
    } else {
      emit(row.cells);
    }
  }
  return os.str();
}

void TextTable::Print(std::ostream& os) const { os << ToString(); }

}  // namespace common
}  // namespace exsample
