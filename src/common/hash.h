#ifndef EXSAMPLE_COMMON_HASH_H_
#define EXSAMPLE_COMMON_HASH_H_

#include <cstdint>

namespace exsample {
namespace common {

/// \brief SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Combines two 64-bit values into one hash.
///
/// Used to derive per-frame deterministic randomness (seed x frame id), so a
/// simulated detector returns identical output every time the same frame is
/// processed — the idempotence a real detector has.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ Mix64(value));
}

}  // namespace common
}  // namespace exsample

#endif  // EXSAMPLE_COMMON_HASH_H_
