// Dashcam search: compare ExSample against uniform random sampling on the
// emulated dashcam dataset (the paper's Sec. V setting), printing discovery
// curves as an ASCII chart.
//
// The dashcam dataset is a moving-camera repository where classes like
// "bicycle" cluster in the urban segments of drives (published skew S = 14),
// which is exactly where adaptive chunk sampling pays off.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "exsample/exsample.h"

namespace {

using namespace exsample;

query::QueryTrace RunOne(const datasets::BuiltDataset& ds, int32_t class_id,
                         query::SearchStrategy* strategy, uint64_t target) {
  detect::DetectorOptions det_opts;
  det_opts.target_class = class_id;
  det_opts.miss_prob = 0.05;
  detect::SimulatedDetector detector(&ds.truth(), det_opts);
  track::OracleDiscriminator discriminator;
  query::RunnerOptions opts;
  opts.recall_class = class_id;
  opts.true_distinct_target = target;
  opts.max_samples = ds.repo().TotalFrames();
  query::QueryRunner runner(&ds.truth(), &detector, &discriminator, opts);
  return runner.Run(strategy);
}

void PrintCurve(const char* label, const query::QueryTrace& trace,
                const std::vector<uint64_t>& grid, uint64_t n_total) {
  std::printf("%-10s|", label);
  for (uint64_t samples : grid) {
    const uint64_t found = trace.TrueDistinctAtSamples(samples);
    const int bars = static_cast<int>(10.0 * static_cast<double>(found) /
                                      static_cast<double>(n_total));
    std::printf(" %4llu%-3s", static_cast<unsigned long long>(found),
                std::string(std::min(bars / 3, 3), '*').c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace exsample;

  std::printf("building dashcam dataset emulation (1/10 scale)...\n");
  auto built = datasets::BuiltDataset::Build(datasets::DashcamSpec(), /*seed=*/7,
                                             /*scale=*/0.1);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const datasets::BuiltDataset& ds = built.value();

  const datasets::QuerySpec* bicycle = ds.spec().FindQuery("bicycle");
  const uint64_t n = bicycle->instance_count;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(0.9 * static_cast<double>(n)));  // 90% recall.
  std::printf("query: distinct '%s' instances (N = %llu, skew S target = %.1f)\n",
              bicycle->class_name.c_str(), static_cast<unsigned long long>(n),
              bicycle->skew_s);

  samplers::UniformRandomStrategy random(&ds.repo(), 17);
  core::ExSampleStrategy exsample(&ds.chunking());
  samplers::RandomPlusStrategy random_plus(&ds.repo(), 18);

  const query::QueryTrace random_trace = RunOne(ds, bicycle->class_id, &random, target);
  const query::QueryTrace plus_trace =
      RunOne(ds, bicycle->class_id, &random_plus, target);
  const query::QueryTrace ex_trace = RunOne(ds, bicycle->class_id, &exsample, target);

  // Discovery curves on a log-ish sample grid.
  std::vector<uint64_t> grid;
  for (double s : common::Logspace(100, 100000, 8)) {
    grid.push_back(static_cast<uint64_t>(s));
  }
  std::printf("\ninstances found vs frames sampled:\n");
  std::printf("%-10s|", "samples");
  for (uint64_t s : grid) std::printf(" %7llu", static_cast<unsigned long long>(s));
  std::printf("\n");
  PrintCurve("random", random_trace, grid, n);
  PrintCurve("random+", plus_trace, grid, n);
  PrintCurve("exsample", ex_trace, grid, n);

  std::printf("\ntime to recall (detector at 20 fps):\n");
  common::TextTable table;
  table.SetHeader({"strategy", "10%", "50%", "90%"});
  for (const auto* trace : {&random_trace, &plus_trace, &ex_trace}) {
    std::vector<std::string> row{trace->strategy_name};
    for (double recall : {0.1, 0.5, 0.9}) {
      const auto seconds = trace->SecondsToRecall(recall);
      row.push_back(seconds ? common::FormatDuration(*seconds) : "-");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());

  const auto random_90 = random_trace.SecondsToRecall(0.9);
  const auto ex_90 = ex_trace.SecondsToRecall(0.9);
  if (random_90 && ex_90 && *ex_90 > 0.0) {
    std::printf("\nExSample savings at 90%% recall: %s\n",
                common::FormatRatio(*random_90 / *ex_90).c_str());
  }
  return 0;
}
