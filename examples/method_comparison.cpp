// Method comparison via the high-level SearchEngine facade: run the same
// distinct-object query with every available frame-selection method and
// export the discovery traces as CSV for external plotting.
//
// This is the "which knob should I turn" tour for a new user: one engine,
// one query, seven methods (the paper's algorithm, its two Sec. VII
// extensions, and four baselines).

#include <cstdio>
#include <fstream>

#include "exsample/exsample.h"

int main() {
  using namespace exsample;

  // A 90-minute synthetic drive with 300 stop signs clustered in the middle
  // eighth of the timeline.
  const uint64_t kFrames = 90 * 60 * 30;
  common::Rng rng(2024);
  auto chunking = video::MakeFixedCountChunks(kFrames, 24).value();
  scene::SceneSpec spec;
  spec.total_frames = kFrames;
  scene::ClassPopulationSpec cls;
  cls.class_id = 0;
  cls.name = "stop sign";
  cls.instance_count = 300;
  cls.duration.mean_frames = 90.0;
  cls.placement = scene::PlacementSpec::NormalCenter(1.0 / 8);
  spec.classes.push_back(cls);
  auto truth = scene::GenerateScene(spec, &chunking, rng);
  if (!truth.ok()) {
    std::fprintf(stderr, "scene: %s\n", truth.status().ToString().c_str());
    return 1;
  }
  video::VideoRepository repo = video::VideoRepository::SingleClip(kFrames);

  engine::EngineConfig config;
  config.discriminator = engine::EngineConfig::DiscriminatorKind::kOracle;
  config.detector = detect::DetectorOptions::Perfect(0);
  engine::SearchEngine search(&repo, &chunking, &truth.value(), config);

  const std::vector<engine::Method> methods{
      engine::Method::kExSample,  engine::Method::kExSampleAdaptive,
      engine::Method::kHybrid,    engine::Method::kRandom,
      engine::Method::kRandomPlus, engine::Method::kSequential,
      engine::Method::kProxyGuided};

  std::printf("query: 50%% of 300 distinct stop signs in %s frames\n\n",
              common::FormatCount(kFrames).c_str());
  common::TextTable table;
  table.SetHeader({"method", "detector frames", "model time", "notes"});
  std::vector<query::QueryTrace> traces;
  for (engine::Method method : methods) {
    engine::QueryOptions options;
    options.method = method;
    auto trace = search.RunToRecall(/*class_id=*/0, /*recall=*/0.5, options);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s: %s\n", engine::MethodName(method),
                   trace.status().ToString().c_str());
      return 1;
    }
    const query::QueryTrace& t = trace.value();
    std::string note;
    if (method == engine::Method::kProxyGuided) note = "includes full scoring scan";
    if (method == engine::Method::kHybrid) note = "scores 8 candidates per frame";
    table.AddRow({engine::MethodName(method), common::FormatCount(t.final.samples),
                  common::FormatDuration(t.final.seconds), note});
    traces.push_back(std::move(trace).value());
  }
  std::printf("%s\n", table.ToString().c_str());

  // Machine-readable traces for plotting.
  const char* csv_path = "method_comparison_traces.csv";
  std::ofstream csv(csv_path);
  query::WriteTracesCsv(traces, csv);
  std::printf("discovery traces written to %s (long-format CSV)\n", csv_path);
  return 0;
}
