// Chunk tuning: how the number of chunks — ExSample's one user-chosen knob —
// affects search cost (the user-facing version of the paper's Sec. IV-C).
//
// Too few chunks cap the exploitable skew (2 chunks can never save more than
// 2x); too many dilute the per-chunk statistics (each chunk needs samples
// before its estimate means anything). The sweet spot is wide: the paper
// varies M across three orders of magnitude and still beats random.

#include <cstdio>

#include "exsample/exsample.h"

int main() {
  using namespace exsample;

  const uint64_t kFrames = 1 << 20;
  common::Rng rng(13);

  // A skewed scene: 95% of 500 objects inside 1/32 of the timeline.
  scene::SceneSpec spec;
  spec.total_frames = kFrames;
  scene::ClassPopulationSpec cls;
  cls.instance_count = 500;
  cls.duration.mean_frames = 200.0;
  cls.placement = scene::PlacementSpec::NormalCenter(1.0 / 32.0);
  spec.classes.push_back(cls);
  auto truth = scene::GenerateScene(spec, nullptr, rng);
  if (!truth.ok()) {
    std::fprintf(stderr, "scene failed: %s\n", truth.status().ToString().c_str());
    return 1;
  }
  video::VideoRepository repo = video::VideoRepository::SingleClip(kFrames);

  const uint64_t target = 250;  // 50% recall.
  std::printf("scene: %llu frames, 500 instances concentrated in 1/32 of the "
              "timeline; goal: %llu distinct instances\n\n",
              static_cast<unsigned long long>(kFrames),
              static_cast<unsigned long long>(target));

  common::TextTable table;
  table.SetHeader({"chunks", "median frames to 50% recall", "vs random"});
  std::optional<double> random_baseline;

  for (size_t chunks : {1, 2, 16, 128, 1024}) {
    std::vector<query::QueryTrace> runs;
    auto chunking = video::MakeFixedCountChunks(kFrames, chunks).value();
    for (uint64_t seed = 0; seed < 5; ++seed) {
      detect::SimulatedDetector detector(&truth.value(),
                                         detect::DetectorOptions::Perfect(0));
      track::OracleDiscriminator discrim;
      query::RunnerOptions opts;
      opts.true_distinct_target = target;
      opts.max_samples = kFrames;
      query::QueryRunner runner(&truth.value(), &detector, &discrim, opts);
      core::ExSampleOptions ex_opts;
      ex_opts.seed = 1000 + seed;
      core::ExSampleStrategy strategy(&chunking, ex_opts);
      runs.push_back(runner.Run(&strategy));
    }
    const auto median = query::MedianSamplesToRecall(runs, 0.5);
    if (chunks == 1 && median) random_baseline = median;  // M=1 == random.
    std::string versus = "-";
    if (median && random_baseline) {
      versus = common::FormatRatio(*random_baseline / *median);
    }
    table.AddRow({std::to_string(chunks),
                  median ? common::FormatCount(static_cast<uint64_t>(*median)) : "-",
                  versus});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("one chunk IS random sampling; the savings plateau spans ~16-128\n"
              "chunks and erodes at 1024 where per-chunk evidence gets thin.\n");
  return 0;
}
