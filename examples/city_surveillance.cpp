// City surveillance: static-camera search on the amsterdam dataset emulation.
//
// Demonstrates two regimes the paper analyzes:
//   * "boat" — long-lived objects with almost no temporal skew (published
//     S = 1.6). This is the paper's worst case for ExSample (0.75x): random
//     is already near-optimal, and the example shows ExSample staying close
//     rather than winning.
//   * "motorcycle" — rare and moderately skewed, where adaptation helps.
// It also contrasts both with the proxy-scan cost (the Table I argument).

#include <cstdio>

#include "exsample/exsample.h"

namespace {

using namespace exsample;

struct QueryResult {
  std::string strategy;
  std::optional<double> t10, t50, t90;
};

QueryResult RunOne(const datasets::BuiltDataset& ds, int32_t class_id,
                   query::SearchStrategy* strategy) {
  detect::DetectorOptions det_opts;
  det_opts.target_class = class_id;
  detect::SimulatedDetector detector(&ds.truth(), det_opts);
  track::OracleDiscriminator discriminator;
  query::RunnerOptions opts;
  opts.recall_class = class_id;
  opts.true_distinct_target =
      ds.truth().NumInstances(class_id) * 9 / 10 + 1;
  opts.max_samples = ds.repo().TotalFrames();
  query::QueryRunner runner(&ds.truth(), &detector, &discriminator, opts);
  const query::QueryTrace trace = runner.Run(strategy);
  return QueryResult{trace.strategy_name, trace.SecondsToRecall(0.1),
                     trace.SecondsToRecall(0.5), trace.SecondsToRecall(0.9)};
}

std::string Fmt(const std::optional<double>& seconds) {
  return seconds ? common::FormatDuration(*seconds) : "-";
}

}  // namespace

int main() {
  using namespace exsample;

  std::printf("building amsterdam dataset emulation (1/20 scale)...\n");
  auto built = datasets::BuiltDataset::Build(datasets::AmsterdamSpec(), /*seed=*/3,
                                             /*scale=*/0.05);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const datasets::BuiltDataset& ds = built.value();

  // Cost of a proxy scoring scan over the full (unscaled) dataset.
  const double scan_seconds =
      datasets::AmsterdamSpec().ProxyScanSeconds(query::kProxyScanFps);
  std::printf("proxy scoring scan of the full dataset would take: %s\n\n",
              common::FormatDuration(scan_seconds).c_str());

  for (const char* class_name : {"boat", "motorcycle"}) {
    const datasets::QuerySpec* q = ds.spec().FindQuery(class_name);
    const auto counts = scene::ChunkInstanceCounts(ds.truth().Trajectories(),
                                                   ds.chunking(), q->class_id);
    std::printf("=== query: '%s' (N = %llu, measured chunk skew S = %.2f) ===\n",
                class_name, static_cast<unsigned long long>(q->instance_count),
                scene::SkewMetric(counts));

    samplers::UniformRandomStrategy random(&ds.repo(), 31);
    core::ExSampleStrategy exsample(&ds.chunking());

    common::TextTable table;
    table.SetHeader({"strategy", "to 10%", "to 50%", "to 90%"});
    for (query::SearchStrategy* s :
         std::initializer_list<query::SearchStrategy*>{&random, &exsample}) {
      const QueryResult r = RunOne(ds, q->class_id, s);
      table.AddRow({r.strategy, Fmt(r.t10), Fmt(r.t50), Fmt(r.t90)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf(
      "note: every row above finishes long before the %s proxy scan —\n"
      "sampling strategies return results immediately, proxies cannot.\n",
      common::FormatDuration(scan_seconds).c_str());
  return 0;
}
