// Quickstart: find 20 distinct "traffic lights" in a 2-hour synthetic dashcam
// repository without scanning it.
//
// This is the paper's motivating query ("find 100 traffic lights in dashcam
// video") at toy scale. It shows the full public API surface:
//   1. describe the repository and chunk it,
//   2. generate (or, in a real deployment, *have*) the video content,
//   3. plug a detector + discriminator into the shared query runner,
//   4. run the ExSample strategy with a result limit.

#include <cstdio>

#include "exsample/exsample.h"

int main() {
  using namespace exsample;

  // --- 1. Repository: one 2-hour clip at 30 fps, chunked into 12 pieces. ---
  const uint64_t kTotalFrames = 2 * 3600 * 30;
  video::VideoRepository repo = video::VideoRepository::SingleClip(kTotalFrames);
  auto chunking = video::MakeFixedCountChunks(repo, 12);
  if (!chunking.ok()) {
    std::fprintf(stderr, "chunking failed: %s\n", chunking.status().ToString().c_str());
    return 1;
  }

  // --- 2. Content: 150 traffic lights, visible ~8 s each, clustered in the
  //        city portion of the drive (middle quarter of the timeline). ------
  common::Rng rng(42);
  scene::SceneSpec scene_spec;
  scene_spec.total_frames = kTotalFrames;
  scene::ClassPopulationSpec lights;
  lights.class_id = 0;
  lights.name = "traffic light";
  lights.instance_count = 150;
  lights.duration.mean_frames = 8 * 30;
  lights.placement = scene::PlacementSpec::NormalCenter(0.25);
  scene_spec.classes.push_back(lights);
  auto truth = scene::GenerateScene(scene_spec, &chunking.value(), rng);
  if (!truth.ok()) {
    std::fprintf(stderr, "scene failed: %s\n", truth.status().ToString().c_str());
    return 1;
  }

  // --- 3. Detector (simulated Faster-RCNN: 20 fps, 5% misses) and the
  //        tracker-based distinct-object discriminator. ---------------------
  detect::DetectorOptions det_opts;
  det_opts.target_class = 0;
  det_opts.miss_prob = 0.05;
  detect::SimulatedDetector detector(&truth.value(), det_opts);
  track::IouTrackerDiscriminator discriminator(&truth.value(), {});

  // --- 4. The query: find 20 distinct traffic lights. ----------------------
  query::RunnerOptions run_opts;
  run_opts.result_limit = 20;
  run_opts.recall_class = 0;
  query::QueryRunner runner(&truth.value(), &detector, &discriminator, run_opts);

  core::ExSampleStrategy strategy(&chunking.value());
  const query::QueryTrace trace = runner.Run(&strategy);

  std::printf("query: find 20 distinct traffic lights in %s frames of video\n",
              common::FormatCount(kTotalFrames).c_str());
  std::printf("strategy: %s\n", strategy.name().c_str());
  std::printf("frames processed by the detector: %llu (%.4f%% of the video)\n",
              static_cast<unsigned long long>(trace.final.samples),
              100.0 * static_cast<double>(trace.final.samples) /
                  static_cast<double>(kTotalFrames));
  std::printf("results returned: %llu (%llu truly distinct)\n",
              static_cast<unsigned long long>(trace.final.reported_results),
              static_cast<unsigned long long>(trace.final.true_distinct));
  std::printf("estimated wall clock at 20 fps detection: %s\n",
              common::FormatDuration(trace.final.seconds).c_str());
  std::printf("(a full scan would cost %s)\n\n",
              common::FormatDuration(static_cast<double>(kTotalFrames) /
                                     query::kDetectorFps)
                  .c_str());

  // Show where ExSample spent its samples: the learned chunk allocation.
  common::TextTable table;
  table.SetHeader({"chunk", "frames sampled", "N1", "R-hat"});
  const core::ChunkStatsTable& stats = strategy.Stats();
  for (size_t j = 0; j < stats.NumChunks(); ++j) {
    const core::ChunkState& state = stats.State(j);
    char rhat[32];
    std::snprintf(rhat, sizeof(rhat), "%.4f",
                  core::PointEstimate(stats.N1NonNegative(j), state.n));
    table.AddRow({std::to_string(j), std::to_string(state.n),
                  std::to_string(state.n1), rhat});
  }
  std::printf("per-chunk statistics after the run:\n%s", table.ToString().c_str());
  return 0;
}
