// Reproduces Fig. 2 (Sec. III-D): empirical validation of the Gamma belief
// Eq. III.4 against the true sampling distribution of R(n+1).
//
// Setup mirrors the paper: 1000 LogNormal p_i (mean 3e-3, stddev 8e-3, max
// 0.15), repeated simulated sampling runs up to n = 180,000. For each of the
// paper's six (n, N1) panels we histogram the true R(n+1) over runs whose
// observed N1 matches, and compare against Gamma(N1 + 0.1, n + 1).
//
// Default: 3000 runs (--full: 10000, the paper's count).

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

struct Panel {
  uint64_t n;
  uint64_t n1;
};

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(3000, 10000);

  common::Rng rng(config.seed);
  const std::vector<double> probs =
      sim::LogNormalProbabilities(1000, 3e-3, 8e-3, 0.15, rng);
  sim::BernoulliOccupancyModel model(probs);

  std::printf("=== Fig. 2: belief validation (Sec. III-D) ===\n");
  std::printf("population: N=1000 LogNormal p_i; min=%.2g max=%.2g mean=%.2g\n",
              *std::min_element(probs.begin(), probs.end()), model.MaxP(),
              model.MeanP());
  std::printf("runs: %d\n\n", runs);

  // The paper's six panels. Exact N1 matches are rare for the early-n panels
  // (N1 ~ 120), so we accept a +/-2 window there and exact elsewhere.
  const std::vector<Panel> panels{{82, 0},     {100, 0},    {14093, 58},
                                  {120911, 4}, {172085, 5}, {179601, 0}};
  // For the n<=100 panels the paper observed N1 near E[N1(n)]; recompute the
  // representative N1 from the model instead of hard-coding.
  std::vector<Panel> resolved = panels;
  resolved[0].n1 = static_cast<uint64_t>(std::llround(model.ExpectedN1(82)));
  resolved[1].n1 = static_cast<uint64_t>(std::llround(model.ExpectedN1(100)));

  std::vector<uint64_t> query_points;
  for (const Panel& p : resolved) query_points.push_back(p.n);
  std::sort(query_points.begin(), query_points.end());

  // Collect (per panel) the true R(n+1) of matching runs.
  std::vector<std::vector<double>> matching(resolved.size());
  for (int run = 0; run < runs; ++run) {
    const auto records = model.RunAtPoints(query_points, rng);
    for (size_t i = 0; i < resolved.size(); ++i) {
      for (const auto& rec : records) {
        if (rec.n != resolved[i].n) continue;
        const uint64_t window = resolved[i].n1 > 20 ? 2 : 0;
        if (rec.n1 + window >= resolved[i].n1 && rec.n1 <= resolved[i].n1 + window) {
          matching[i].push_back(rec.r_next);
        }
      }
    }
  }

  common::TextTable table;
  table.SetHeader({"n", "N1", "matches", "true R: median [q05, q95]",
                   "belief: mean [q05, q95]", "covered"});
  for (size_t i = 0; i < resolved.size(); ++i) {
    const Panel& panel = resolved[i];
    const stats::GammaBelief belief =
        core::MakeBelief(panel.n1, panel.n, core::BeliefParams{});
    std::vector<double>& values = matching[i];
    char true_cell[96] = "-";
    char covered_cell[32] = "-";
    if (!values.empty()) {
      const double med = common::Quantile(values, 0.5);
      const double q05 = common::Quantile(values, 0.05);
      const double q95 = common::Quantile(values, 0.95);
      std::snprintf(true_cell, sizeof(true_cell), "%.3g [%.3g, %.3g]", med, q05, q95);
      // Coverage of the central 98% belief interval (paper reports ~80% for
      // its 95% bound on BDD MOT).
      const double lo = belief.Quantile(0.01);
      const double hi = belief.Quantile(0.99);
      int covered = 0;
      for (double r : values) {
        if (r >= lo && r <= hi) ++covered;
      }
      std::snprintf(covered_cell, sizeof(covered_cell), "%.0f%%",
                    100.0 * covered / static_cast<double>(values.size()));
    }
    char belief_cell[96];
    std::snprintf(belief_cell, sizeof(belief_cell), "%.3g [%.3g, %.3g]",
                  belief.Mean(), belief.Quantile(0.05), belief.Quantile(0.95));
    table.AddRow({std::to_string(panel.n), std::to_string(panel.n1),
                  std::to_string(values.size()), true_cell, belief_cell,
                  covered_cell});
  }
  std::printf("%s\n", table.ToString().c_str());

  // One detailed panel: histogram of true R(n+1) with the belief density,
  // mirroring the visual comparison of Fig. 2 (mid-range n fits well).
  const size_t detail = 2;  // n=14093, N1=58.
  if (!matching[detail].empty()) {
    const Panel& panel = resolved[detail];
    const stats::GammaBelief belief =
        core::MakeBelief(panel.n1, panel.n, core::BeliefParams{});
    const double lo = common::Quantile(matching[detail], 0.005);
    const double hi = common::Quantile(matching[detail], 0.995) * 1.05;
    auto hist = stats::Histogram::Make(lo, hi, 18).value();
    for (double r : matching[detail]) hist.Add(r);
    std::printf("panel n=%llu N1=%llu: true R(n+1) histogram (#) vs belief "
                "density (column 'pdf'):\n",
                static_cast<unsigned long long>(panel.n),
                static_cast<unsigned long long>(panel.n1));
    for (size_t b = 0; b < hist.NumBins(); ++b) {
      const double x = hist.BinLeft(b) + hist.BinWidth() / 2;
      std::printf("%10.3e | %-30s pdf=%.1f\n", x,
                  std::string(static_cast<size_t>(std::min(
                                  30.0, hist.Density(b) * hist.BinWidth() * 300)),
                              '#')
                      .c_str(),
                  belief.Pdf(x));
    }
  }
  std::printf("\nPASS criteria (paper): mid-range n fits well; early n (<=100) "
              "belief is wider than truth; N1=0 panels keep non-zero mass.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
