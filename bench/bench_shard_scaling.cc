// Shard scaling: detect-stage throughput vs shard count.
//
// A sharded repository gives every shard its own detector context and worker
// pool — the in-process stand-in for "one query spans machines". Under a
// latency-bound detector (GPU inference or a remote model server), the
// dispatcher overlaps the shards' sub-batches, so the detect stage's
// frames/sec should scale with shard count while calls stay latency-bound.
//
// Companion to bench_ablation_batching's detect-stage table: that bench
// scales threads within one detector; this one scales detector contexts.
// Equivalence (shard count never changes a trace) is proven by
// tests/test_shard_equivalence.cc; this reports what sharding buys in
// wall-clock.

#include <chrono>

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

void ShardScalingSweep(const BenchConfig& config) {
  // Every Detect call costs ~2 ms of wall-clock regardless of CPU, the
  // regime where dispatch parallelism is visible.
  const double kLatencySeconds = 0.002;
  const size_t kThreadsPerShard = 2;
  const size_t kBatch = 64;
  const uint64_t kFramesToProcess = config.full ? 2048 : 512;
  const uint64_t kFrames = 96'000;

  auto workload = Workload::Simulated(kFrames, 8, 50, 300.0, 1.0, config.seed);
  // Re-home the workload's frames in a 16-clip repository so clip-aligned
  // sharding has boundaries to cut at (frame ids are unchanged).
  const video::VideoRepository repo = video::VideoRepository::UniformClips(16, kFrames / 16);

  std::printf("=== Shard scaling: detect-stage frames/sec vs shard count ===\n");
  std::printf("latency-bound detector (%.1f ms/call); %zu threads per shard;\n"
              "batch %zu; %llu frames per cell.\n\n",
              kLatencySeconds * 1e3, kThreadsPerShard, kBatch,
              static_cast<unsigned long long>(kFramesToProcess));

  common::TextTable table;
  table.SetHeader({"shards", "threads total", "frames/sec", "speedup vs 1 shard"});
  double baseline_fps = 0.0;
  for (const size_t shards : {1, 2, 4, 8}) {
    auto sharded = video::ShardedRepository::ShardByClips(repo, shards).value();

    // One detector context per shard: simulated detections wrapped in the
    // latency decorator, plus a private pool per shard.
    std::vector<std::unique_ptr<detect::SimulatedDetector>> bases;
    std::vector<std::unique_ptr<detect::ThrottledDetector>> throttled;
    std::vector<std::unique_ptr<common::ThreadPool>> pools;
    std::vector<query::ShardContext> contexts(shards);
    for (uint32_t s = 0; s < shards; ++s) {
      bases.push_back(std::make_unique<detect::SimulatedDetector>(
          &workload->truth, detect::DetectorOptions::Perfect(0)));
      throttled.push_back(
          std::make_unique<detect::ThrottledDetector>(bases.back().get(), kLatencySeconds));
      pools.push_back(std::make_unique<common::ThreadPool>(kThreadsPerShard));
      contexts[s].detector = throttled.back().get();
      contexts[s].pool = pools.back().get();
    }
    query::ShardDispatcher dispatcher(&sharded, std::move(contexts),
                                      /*parallel_shards=*/true);

    // Strided frame walk spreading every batch across all shards, as a
    // strategy's global picks do.
    std::vector<video::FrameId> frames;
    uint64_t processed = 0;
    video::FrameId frame = 0;
    const auto start = std::chrono::steady_clock::now();
    while (processed < kFramesToProcess) {
      frames.clear();
      for (size_t b = 0; b < kBatch; ++b) {
        frame = (frame + 104729) % kFrames;
        frames.push_back(frame);
      }
      dispatcher.DetectBatch(frames);
      processed += frames.size();
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const double fps = static_cast<double>(processed) / seconds;
    if (shards == 1) baseline_fps = fps;

    char fps_buf[32], speedup_buf[32];
    std::snprintf(fps_buf, sizeof(fps_buf), "%.0f", fps);
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx",
                  baseline_fps > 0.0 ? fps / baseline_fps : 0.0);
    table.AddRow({std::to_string(shards), std::to_string(shards * kThreadsPerShard),
                  fps_buf, speedup_buf});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: ~linear in shard count while calls stay\n"
              "latency-bound (each shard adds its own pool), flattening once\n"
              "the batch no longer fills every shard's workers.\n");
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  ShardScalingSweep(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
