// Ablation: chunk-selection policy and within-chunk sampling.
//
// The paper motivates Thompson sampling over the raw point estimate ("could
// get stuck sampling chunks with an early lucky result", Sec. III-B) and
// reports Bayes-UCB as an equivalent alternative (Sec. III-C); random+ is its
// within-chunk sampler (Sec. III-F). This bench quantifies each choice on one
// skewed workload: median samples to 10%/50% recall for
//   thompson / bayes-ucb / greedy / uniform-chunk  x  {random+, uniform}
// plus the global random and random+ baselines.

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(5, 15);
  const uint64_t kFrames = 4'000'000;
  const uint64_t kInstances = 1000;
  const size_t kChunks = 64;
  const uint64_t kMax = 400'000;

  auto workload = Workload::Simulated(kFrames, kChunks, kInstances, 300.0,
                                      1.0 / 32, config.seed);
  const uint64_t t50 = RecallCount(kInstances, 0.5);

  std::printf("=== Ablation: belief policy x within-chunk sampler ===\n");
  std::printf("skew 1/32, duration 300, %zu chunks, %d runs\n\n", kChunks, runs);

  common::TextTable table;
  table.SetHeader({"strategy", "median samples to 10%", "to 50%"});

  auto report = [&](const std::string& name,
                    const std::vector<query::QueryTrace>& traces) {
    table.AddRow({name, OrDash(query::MedianSamplesToRecall(traces, 0.1)),
                  OrDash(query::MedianSamplesToRecall(traces, 0.5))});
  };

  // Baselines.
  {
    std::vector<query::QueryTrace> traces;
    for (int run = 0; run < runs; ++run) {
      samplers::UniformRandomStrategy s(&workload->repo, config.seed + 10 + run);
      traces.push_back(RunOracleQuery(workload->truth, 0, &s, t50, kMax));
    }
    report("random", traces);
  }
  {
    std::vector<query::QueryTrace> traces;
    for (int run = 0; run < runs; ++run) {
      samplers::RandomPlusStrategy s(&workload->repo, config.seed + 20 + run);
      traces.push_back(RunOracleQuery(workload->truth, 0, &s, t50, kMax));
    }
    report("random+ (global)", traces);
  }
  table.AddSeparator();

  for (auto policy : {core::ExSampleOptions::Policy::kThompson,
                      core::ExSampleOptions::Policy::kBayesUcb,
                      core::ExSampleOptions::Policy::kGreedy,
                      core::ExSampleOptions::Policy::kUniform}) {
    for (auto within : {core::WithinChunkSampling::kStratified,
                        core::WithinChunkSampling::kUniform}) {
      std::vector<query::QueryTrace> traces;
      std::string name;
      for (int run = 0; run < runs; ++run) {
        core::ExSampleOptions options;
        options.policy = policy;
        options.within_chunk = within;
        options.seed = config.seed + 30 + run;
        core::ExSampleStrategy s(&workload->chunking, options);
        if (run == 0) name = s.name();
        traces.push_back(RunOracleQuery(workload->truth, 0, &s, t50, kMax));
      }
      report(name, traces);
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: thompson ~ bayes-ucb (paper found no\n"
              "difference); greedy is erratic/slower; uniform-chunk ~ random;\n"
              "random+ within chunks edges out uniform within chunks.\n");
  // The interesting auxiliary number: how unevenly Thompson allocated.
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
