// Ablation: batched sampling (Sec. III-F).
//
// GPU inference prefers batches, so ExSample can draw B Thompson samples per
// belief refresh instead of one. Batching delays feedback (the statistics
// only update after each frame's detections return), so very large B should
// cost some sample efficiency. Part 1 sweeps B through the batch-first
// runner pipeline and reports (a) median samples to 50% recall and (b) the
// number of belief refreshes — the per-frame scheduling overhead batching
// removes.
//
// Part 2 measures what batching buys in wall-clock: frames/sec through the
// parallel detect stage (DetectBatch over the shared thread pool) with a
// latency-bound detector, versus the single-frame baseline.

#include <chrono>

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

void SampleEfficiencySweep(const BenchConfig& config) {
  const int runs = config.Runs(5, 15);
  const uint64_t kFrames = 4'000'000;
  const uint64_t kInstances = 1000;
  const uint64_t kMax = 400'000;

  auto workload =
      Workload::Simulated(kFrames, 64, kInstances, 300.0, 1.0 / 32, config.seed);
  const uint64_t target = RecallCount(kInstances, 0.5);

  std::printf("=== Ablation: batch size B (Sec. III-F) ===\n");
  std::printf("%d runs; B is the runner's pipeline batch (the strategy draws B\n"
              "Thompson samples per belief refresh). Updates to (n, N1) are\n"
              "additive, so batched state matches unbatched bookkeeping exactly.\n\n",
              runs);

  common::TextTable table;
  table.SetHeader({"B", "median samples to 50%", "belief refreshes",
                   "efficiency vs B=1"});
  std::optional<double> base_median;
  for (size_t batch : {1, 4, 16, 64, 256}) {
    std::vector<query::QueryTrace> traces;
    for (int run = 0; run < runs; ++run) {
      core::ExSampleOptions options;
      options.seed = config.seed + 100 + run;
      core::ExSampleStrategy s(&workload->chunking, options);
      traces.push_back(
          RunOracleQuery(workload->truth, 0, &s, target, kMax, batch));
    }
    const auto median = query::MedianSamplesToRecall(traces, 0.5);
    if (batch == 1) base_median = median;
    std::string efficiency = "-";
    if (median && base_median && *median > 0.0) {
      efficiency = common::FormatRatio(*base_median / *median);
    }
    const std::string refreshes =
        median ? std::to_string(static_cast<uint64_t>(
                     std::ceil(*median / static_cast<double>(batch))))
               : "-";
    table.AddRow({std::to_string(batch), OrDash(median), refreshes, efficiency});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: small B costs nothing; even B=64+ stays within\n"
              "a modest factor of B=1 while cutting scheduling work by B.\n\n");
}

void DetectStageThroughput(const BenchConfig& config) {
  // A detector bound by device latency (GPU inference or a remote model
  // server): every call costs ~2 ms of wall-clock regardless of CPU. This is
  // the regime the paper's Sec. III-F batching targets — calls overlap
  // across the pool, so the detect stage's throughput scales with threads.
  const double kLatencySeconds = 0.002;
  const uint64_t kFramesToProcess = config.full ? 1024 : 256;

  auto workload = Workload::Simulated(100'000, 8, 50, 300.0, 1.0, config.seed);
  detect::SimulatedDetector base(&workload->truth,
                                 detect::DetectorOptions::Perfect(0));
  detect::ThrottledDetector detector(&base, kLatencySeconds);

  std::printf("=== Parallel detect stage: frames/sec vs threads and batch ===\n");
  std::printf("latency-bound detector (%.1f ms/call); %llu frames per cell.\n\n",
              kLatencySeconds * 1e3,
              static_cast<unsigned long long>(kFramesToProcess));

  common::TextTable table;
  table.SetHeader({"threads", "batch", "frames/sec", "speedup vs 1x1"});
  double baseline_fps = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    common::ThreadPool pool(threads);
    for (size_t batch : {1, 8, 32}) {
      if (threads == 1 && batch > 1) continue;  // Same path as 1x1.
      std::vector<video::FrameId> frames;
      uint64_t processed = 0;
      video::FrameId frame = 0;
      const auto start = std::chrono::steady_clock::now();
      while (processed < kFramesToProcess) {
        frames.clear();
        for (size_t b = 0; b < batch; ++b) {
          frame = (frame + 104729) % 100'000;
          frames.push_back(frame);
        }
        detector.DetectBatch(frames, &pool);
        processed += frames.size();
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const double fps = static_cast<double>(processed) / seconds;
      if (threads == 1 && batch == 1) baseline_fps = fps;
      char fps_buf[32], speedup_buf[32];
      std::snprintf(fps_buf, sizeof(fps_buf), "%.0f", fps);
      std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx",
                    baseline_fps > 0.0 ? fps / baseline_fps : 0.0);
      table.AddRow({std::to_string(threads), std::to_string(batch), fps_buf,
                    speedup_buf});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: throughput ~flat in batch for batch >= threads,\n"
              "and ~linear in threads while calls stay latency-bound.\n");
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  SampleEfficiencySweep(config);
  DetectStageThroughput(config);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
