// Ablation: batched sampling (Sec. III-F).
//
// GPU inference prefers batches, so ExSample can draw B Thompson samples per
// belief refresh instead of one. Batching delays feedback (the statistics
// only update after each frame's detections return), so very large B should
// cost some sample efficiency. This bench sweeps B and reports (a) median
// samples to 50% recall and (b) the number of belief refreshes — the measure
// of per-frame scheduling overhead batching removes.

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(5, 15);
  const uint64_t kFrames = 4'000'000;
  const uint64_t kInstances = 1000;
  const uint64_t kMax = 400'000;

  auto workload =
      Workload::Simulated(kFrames, 64, kInstances, 300.0, 1.0 / 32, config.seed);
  const uint64_t target = RecallCount(kInstances, 0.5);

  std::printf("=== Ablation: batch size B (Sec. III-F) ===\n");
  std::printf("%d runs; updates to (n, N1) are additive, so batched state\n"
              "matches unbatched bookkeeping exactly (commutativity).\n\n",
              runs);

  common::TextTable table;
  table.SetHeader({"B", "median samples to 50%", "belief refreshes",
                   "efficiency vs B=1"});
  std::optional<double> base_median;
  for (size_t batch : {1, 4, 16, 64, 256}) {
    std::vector<query::QueryTrace> traces;
    for (int run = 0; run < runs; ++run) {
      core::ExSampleOptions options;
      options.batch_size = batch;
      options.seed = config.seed + 100 + run;
      core::ExSampleStrategy s(&workload->chunking, options);
      traces.push_back(RunOracleQuery(workload->truth, 0, &s, target, kMax));
    }
    const auto median = query::MedianSamplesToRecall(traces, 0.5);
    if (batch == 1) base_median = median;
    std::string efficiency = "-";
    if (median && base_median && *median > 0.0) {
      efficiency = common::FormatRatio(*base_median / *median);
    }
    const std::string refreshes =
        median ? std::to_string(static_cast<uint64_t>(
                     std::ceil(*median / static_cast<double>(batch))))
               : "-";
    table.AddRow({std::to_string(batch), OrDash(median), refreshes, efficiency});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: small B costs nothing; even B=64+ stays within\n"
              "a modest factor of B=1 while cutting scheduling work by B.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
