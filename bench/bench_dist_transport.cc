// Distributed shard transport: what the wire costs, what the flush policy
// buys, and what a shard failure costs to survive.
//
// Three questions:
//
//   1. Wire overhead + bit-identity: running the shared detect stage over
//      the loopback transport (every device batch serialized onto per-shard
//      runner threads and back) must produce traces bit-identical to the
//      in-process path — the contract that makes distribution an engineering
//      decision instead of a semantics change. Enforced fatally (exit 3).
//
//   2. Flush policy: with barrier-only flushing, a submitted ticket waits
//      for the whole scheduling round before its batch ships — at 1-2
//      sessions that is almost pure queueing delay on an idle detector. The
//      latency-aware policy (ship on wire-batch fill or deadline) must cut
//      p95 ticket latency by >= 1.2x at 1 and 2 sessions (exit 1 below),
//      and the bench reports the fill-rate price paid for it.
//
//   3. Failure recovery: kill one shard runner of four mid-workload and
//      measure the wall-clock overhead of retry + requeue onto survivors —
//      with the traces again bit-identical to the no-failure run (exit 3).
//
//   4. Real sockets: the same questions against actual `exsample_shardd`
//      subprocesses over localhost TCP — wire overhead vs local, and
//      SIGKILL + restart of one server mid-workload (connection drop,
//      reconnect, registration replay, inferred failures). Traces must stay
//      bit-identical to the local run through all of it (exit 3).
//
// --quick (the default scale; CI passes it explicitly) finishes in seconds;
// --full scales the workload up. --json=PATH writes the measurements
// (CI uploads BENCH_dist_transport.json per PR).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include "bench_common.h"
#include "datasets/scenarios.h"
#include "testutil/shardd_harness.h"

namespace exsample {
namespace bench {
namespace {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

engine::EngineConfig BaseConfig() {
  engine::EngineConfig config;
  config.discriminator = engine::EngineConfig::DiscriminatorKind::kOracle;
  config.detector = detect::DetectorOptions::Perfect(0);
  config.coalesce_detect = true;
  config.device_batch = 32;
  return config;
}

std::vector<engine::QuerySpec> MakeSpecs(size_t sessions, uint64_t limit,
                                         uint64_t seed) {
  std::vector<engine::QuerySpec> specs;
  for (size_t i = 0; i < sessions; ++i) {
    engine::QuerySpec spec;
    spec.class_id = 0;
    spec.limit = limit;
    spec.options.batch_size = 4;
    spec.options.max_samples = 3000;
    spec.options.exsample.seed = seed + i;
    specs.push_back(spec);
  }
  return specs;
}

bool SameTraces(const std::vector<query::QueryTrace>& a,
                const std::vector<query::QueryTrace>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!query::TracesBitIdentical(a[i], b[i])) return false;
  }
  return true;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(index, values.size() - 1)];
}

// --- Part 1: loopback vs local — overhead and bit-identity ------------------

struct WirePart {
  bool identical = false;
  double local_wall = 0.0;
  double loopback_wall = 0.0;
  uint64_t wire_batches = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

WirePart RunWireOverhead(Workload& workload, size_t sessions, uint64_t limit,
                         uint64_t seed) {
  const std::vector<engine::QuerySpec> specs = MakeSpecs(sessions, limit, seed);
  WirePart part;

  engine::SearchEngine local(&workload.repo, &workload.chunking, &workload.truth,
                             BaseConfig());
  double start = WallSeconds();
  auto local_traces = local.RunConcurrent(specs);
  part.local_wall = WallSeconds() - start;
  common::CheckOk(local_traces.status(), "local workload failed");

  engine::EngineConfig loopback_config = BaseConfig();
  loopback_config.transport = engine::TransportKind::kLoopback;
  engine::SearchEngine loopback(&workload.repo, &workload.chunking,
                                &workload.truth, loopback_config);
  start = WallSeconds();
  auto loopback_traces = loopback.RunConcurrent(specs);
  part.loopback_wall = WallSeconds() - start;
  common::CheckOk(loopback_traces.status(), "loopback workload failed");

  part.identical = SameTraces(local_traces.value(), loopback_traces.value());
  const query::TransportStats wire = loopback.shard_transport()->Stats();
  part.wire_batches = wire.requests;
  part.bytes_sent = wire.bytes_sent;
  part.bytes_received = wire.bytes_received;
  return part;
}

// --- Part 2: flush-policy ticket latency ------------------------------------

struct PolicyRun {
  double p95_latency = 0.0;
  double mean_latency = 0.0;
  double fill_rate = 0.0;
  std::vector<query::QueryTrace> traces;
};

/// Drives `sessions` sessions round by round through the engine's shared
/// service, simulating per-session coordinator work (scheduling, decode
/// planning of *other* tenants) between submissions: after each session's
/// BeginStep the driver "thinks" for `think_seconds`, polling the service as
/// a live coordinator would. Under barrier-only flushing every ticket waits
/// out the full round of think time; the latency-aware policy ships it as
/// soon as the deadline elapses.
PolicyRun DrivePolicy(Workload& workload, size_t sessions, double flush_deadline,
                      double think_seconds, uint64_t seed) {
  engine::EngineConfig config = BaseConfig();
  config.device_batch = 64;  // Never fills at batch 4: the deadline is the lever.
  config.flush_deadline_seconds = flush_deadline;
  config.transport = engine::TransportKind::kLoopback;
  config.loopback.latency_seconds = 0.0001;
  engine::SearchEngine engine(&workload.repo, &workload.chunking, &workload.truth,
                              config);

  const std::vector<engine::QuerySpec> specs = MakeSpecs(sessions, /*limit=*/8, seed);
  std::vector<std::unique_ptr<engine::QuerySession>> live;
  for (const engine::QuerySpec& spec : specs) {
    auto session = engine.CreateSession(spec.class_id, spec.limit, spec.options);
    common::CheckOk(session.status(), "session creation failed");
    live.push_back(std::move(session).value());
  }
  query::DetectorService* service = engine.detector_service();

  const int kMaxRounds = 24;
  const auto think = [&] {
    const double until = WallSeconds() + think_seconds;
    while (WallSeconds() < until) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      service->Poll();
    }
  };
  for (int round = 0; round < kMaxRounds; ++round) {
    std::vector<engine::QuerySession*> stepped;
    for (auto& session : live) {
      if (session->Done()) continue;
      if (session->BeginStep()) stepped.push_back(session.get());
      think();
    }
    if (stepped.empty()) break;
    service->Flush();
    common::CheckOk(service->transport_status(), "transport failed");
    for (engine::QuerySession* session : stepped) session->FinishStep();
  }

  PolicyRun run;
  double sum = 0.0;
  for (const double latency : service->TicketLatencies()) sum += latency;
  run.p95_latency = Percentile(service->TicketLatencies(), 0.95);
  run.mean_latency = service->TicketLatencies().empty()
                         ? 0.0
                         : sum / static_cast<double>(service->TicketLatencies().size());
  run.fill_rate = service->FillRate();
  for (auto& session : live) run.traces.push_back(session->Finish());
  return run;
}

// --- Part 3: failure-recovery overhead --------------------------------------

struct FailurePart {
  bool identical = false;
  double healthy_wall = 0.0;
  double failure_wall = 0.0;
  uint64_t retries = 0;
  uint64_t requeues = 0;
};

FailurePart RunFailureRecovery(Workload& workload, size_t num_shards,
                               size_t sessions, uint64_t limit, uint64_t seed) {
  const std::vector<engine::QuerySpec> specs = MakeSpecs(sessions, limit, seed);
  FailurePart part;

  // The shared workload is single-clip; sharding is clip-aligned, so give
  // this part a multi-clip view of the same frame space (the ground truth
  // addresses global frames and carries over unchanged).
  const video::VideoRepository multi_clip = video::VideoRepository::UniformClips(
      2 * num_shards, workload.repo.TotalFrames() / (2 * num_shards));

  engine::EngineConfig healthy_config = BaseConfig();
  healthy_config.num_shards = num_shards;
  healthy_config.transport = engine::TransportKind::kLoopback;
  healthy_config.loopback.latency_seconds = 0.0001;
  engine::SearchEngine healthy(&multi_clip, &workload.chunking, &workload.truth,
                               healthy_config);
  double start = WallSeconds();
  auto healthy_traces = healthy.RunConcurrent(specs);
  part.healthy_wall = WallSeconds() - start;
  common::CheckOk(healthy_traces.status(), "healthy workload failed");

  engine::EngineConfig failing_config = healthy_config;
  failing_config.transport_max_retries = 1;
  failing_config.loopback.fail_shard = 1;
  failing_config.loopback.fail_after_requests = 3;
  engine::SearchEngine failing(&multi_clip, &workload.chunking, &workload.truth,
                               failing_config);
  start = WallSeconds();
  auto failing_traces = failing.RunConcurrent(specs);
  part.failure_wall = WallSeconds() - start;
  common::CheckOk(failing_traces.status(), "failure workload did not recover");

  part.identical = SameTraces(healthy_traces.value(), failing_traces.value());
  part.retries = failing.detector_service()->stats().wire_retries;
  part.requeues = failing.detector_service()->stats().wire_requeues;
  return part;
}

// --- Part 4: real sockets — shardd fleet, kill + restart --------------------

struct SocketPart {
  bool identical = false;
  bool disrupted_identical = false;
  double local_wall = 0.0;
  double socket_wall = 0.0;
  double disrupted_wall = 0.0;
  uint64_t wire_batches = 0;
  uint64_t bytes_sent = 0;
  uint64_t control_messages = 0;
  uint64_t connects = 0;
  uint64_t reconnects = 0;
  uint64_t inferred_failures = 0;
  uint64_t retries = 0;
  uint64_t requeues = 0;
};

SocketPart RunSocketProfile(uint64_t frames, uint64_t scenario_seed,
                            uint64_t spec_seed) {
  // The shardd fleet rebuilds this exact scenario from (--frames, --seed):
  // the only state shared with the servers is the recipe.
  const datasets::DistScenario scenario =
      datasets::BuildDistScenario(frames, scenario_seed);
  const size_t kShards = 4;
  const auto sharded =
      video::ShardedRepository::ShardByClips(scenario.repo, kShards).value();
  const std::vector<engine::QuerySpec> specs =
      MakeSpecs(/*sessions=*/4, /*limit=*/10, spec_seed);
  SocketPart part;

  engine::SearchEngine local(&sharded, &scenario.chunking, &scenario.truth,
                             BaseConfig());
  double start = WallSeconds();
  auto local_traces = local.RunConcurrent(specs);
  part.local_wall = WallSeconds() - start;
  common::CheckOk(local_traces.status(), "local workload failed");

  testutil::ShardServer::Options server_options;
  server_options.frames = frames;
  server_options.seed = scenario_seed;

  const auto socket_config = [&](const testutil::ShardFleet& fleet) {
    engine::EngineConfig config = BaseConfig();
    config.transport = engine::TransportKind::kSocket;
    config.socket.hosts = fleet.Hosts();
    return config;
  };

  {
    testutil::ShardFleet fleet(EXSAMPLE_SHARDD_PATH, kShards, server_options);
    engine::SearchEngine socket(&sharded, &scenario.chunking, &scenario.truth,
                                socket_config(fleet));
    start = WallSeconds();
    auto socket_traces = socket.RunConcurrent(specs);
    part.socket_wall = WallSeconds() - start;
    common::CheckOk(socket_traces.status(), "socket workload failed");
    part.identical = SameTraces(local_traces.value(), socket_traces.value());
    const query::TransportStats wire = socket.shard_transport()->Stats();
    part.wire_batches = wire.requests;
    part.bytes_sent = wire.bytes_sent;
    part.control_messages = wire.control_messages;
    part.connects = wire.connects;
  }

  {
    // The disruption run: SIGKILL server 2 mid-workload, revive it a few
    // steps later on the same port. Depending on timing the blip is absorbed
    // by reconnect + retry or the shard's batches requeue onto survivors —
    // both recoveries must leave every trace bit-identical to the local run.
    testutil::ShardFleet fleet(EXSAMPLE_SHARDD_PATH, kShards, server_options);
    engine::SearchEngine disrupted(&sharded, &scenario.chunking,
                                   &scenario.truth, socket_config(fleet));
    size_t steps = 0;
    start = WallSeconds();
    auto disrupted_traces = disrupted.RunConcurrent(
        specs, [&](size_t, const engine::QuerySession&) {
          ++steps;
          if (steps == 5) fleet.server(2).Kill();
          if (steps == 9) fleet.server(2).Restart();
        });
    part.disrupted_wall = WallSeconds() - start;
    common::CheckOk(disrupted_traces.status(),
                    "socket workload did not survive the kill + restart");
    part.disrupted_identical =
        SameTraces(local_traces.value(), disrupted_traces.value());
    const query::TransportStats wire = disrupted.shard_transport()->Stats();
    part.reconnects = wire.reconnects;
    part.inferred_failures = wire.inferred_failures;
    part.retries = disrupted.detector_service()->stats().wire_retries;
    part.requeues = disrupted.detector_service()->stats().wire_requeues;
  }
  return part;
}

int Run(const BenchConfig& config, const std::string& json_path) {
  const uint64_t kFrames = config.full ? 120000 : 50000;
  auto workload = Workload::Simulated(kFrames, /*chunks=*/16, /*instances=*/80,
                                      /*duration=*/150.0, /*skew_fraction=*/0.4,
                                      config.seed);

  std::printf("=== Distributed shard transport: wire, flush policy, failure ===\n\n");

  // --- Part 1 ---------------------------------------------------------------
  const WirePart wire =
      RunWireOverhead(*workload, /*sessions=*/4, /*limit=*/10, config.seed);
  {
    common::TextTable table;
    table.SetHeader({"path", "wall", "wire batches", "bytes sent", "bytes recv"});
    char local_wall[32], loopback_wall[32];
    std::snprintf(local_wall, sizeof(local_wall), "%.0f ms", 1e3 * wire.local_wall);
    std::snprintf(loopback_wall, sizeof(loopback_wall), "%.0f ms",
                  1e3 * wire.loopback_wall);
    table.AddRow({"local (in-process)", local_wall, "-", "-", "-"});
    table.AddRow({"loopback (serialized)", loopback_wall,
                  std::to_string(wire.wire_batches), std::to_string(wire.bytes_sent),
                  std::to_string(wire.bytes_received)});
    std::printf("--- wire overhead: 4 sessions, limit 10 ---\n%s", table.ToString().c_str());
    std::printf("loopback traces bit-identical to local: %s\n\n",
                wire.identical ? "yes" : "NO — BUG");
  }

  // --- Part 2 ---------------------------------------------------------------
  const double kThink = 0.003;     // Coordinator work per session per round.
  const double kDeadline = 0.0004; // Latency-aware flush deadline.
  const size_t kSessionCounts[] = {1, 2};
  bool policy_traces_identical = true;
  bool p95_improves = true;
  double speedups[2] = {0.0, 0.0};
  struct PolicyRow {
    size_t sessions;
    PolicyRun barrier, deadline;
  };
  std::vector<PolicyRow> policy_rows;
  {
    common::TextTable table;
    table.SetHeader({"sessions", "p95 (barrier)", "p95 (deadline)", "speedup",
                     "fill (barrier)", "fill (deadline)"});
    for (size_t i = 0; i < 2; ++i) {
      const size_t n = kSessionCounts[i];
      PolicyRow row;
      row.sessions = n;
      row.barrier = DrivePolicy(*workload, n, /*flush_deadline=*/0.0, kThink,
                                config.seed);
      row.deadline = DrivePolicy(*workload, n, kDeadline, kThink, config.seed);
      if (!SameTraces(row.barrier.traces, row.deadline.traces)) {
        policy_traces_identical = false;
      }
      speedups[i] = row.deadline.p95_latency > 0.0
                        ? row.barrier.p95_latency / row.deadline.p95_latency
                        : 0.0;
      if (speedups[i] < 1.2) p95_improves = false;
      char b95[32], d95[32], sp[32], bf[32], df[32];
      std::snprintf(b95, sizeof(b95), "%.2f ms", 1e3 * row.barrier.p95_latency);
      std::snprintf(d95, sizeof(d95), "%.2f ms", 1e3 * row.deadline.p95_latency);
      std::snprintf(sp, sizeof(sp), "%.2fx", speedups[i]);
      std::snprintf(bf, sizeof(bf), "%.0f%%", 100.0 * row.barrier.fill_rate);
      std::snprintf(df, sizeof(df), "%.0f%%", 100.0 * row.deadline.fill_rate);
      table.AddRow({std::to_string(n), b95, d95, sp, bf, df});
      policy_rows.push_back(std::move(row));
    }
    std::printf(
        "--- flush policy: ticket latency from submit to completed flush\n"
        "    (%.1f ms coordinator think time per session per round;\n"
        "    deadline flush at %.1f ms; device batch 64 never fills) ---\n%s",
        1e3 * kThink, 1e3 * kDeadline, table.ToString().c_str());
    std::printf("deadline flush >= 1.20x better p95 at 1-2 sessions: %s\n",
                p95_improves ? "PASS" : "FAIL");
    std::printf("flush policy left every trace bit-identical: %s\n\n",
                policy_traces_identical ? "yes" : "NO — BUG");
  }

  // --- Part 3 ---------------------------------------------------------------
  const FailurePart failure = RunFailureRecovery(
      *workload, /*num_shards=*/4, /*sessions=*/4, /*limit=*/16, config.seed);
  {
    const double overhead =
        failure.healthy_wall > 0.0
            ? (failure.failure_wall - failure.healthy_wall) / failure.healthy_wall
            : 0.0;
    std::printf("--- failure recovery: 4 shards, runner 1 dies mid-workload ---\n");
    std::printf("healthy %.0f ms, with failure %.0f ms (%.0f%% overhead); "
                "%llu retries, %llu requeues\n",
                1e3 * failure.healthy_wall, 1e3 * failure.failure_wall,
                100.0 * overhead, static_cast<unsigned long long>(failure.retries),
                static_cast<unsigned long long>(failure.requeues));
    std::printf("failure-run traces bit-identical to healthy run: %s\n\n",
                failure.identical ? "yes" : "NO — BUG");
  }

  // --- Part 4 ---------------------------------------------------------------
  const SocketPart socket = RunSocketProfile(kFrames, config.seed, config.seed);
  {
    common::TextTable table;
    table.SetHeader({"path", "wall", "wire batches", "bytes sent", "control msgs"});
    char local_wall[32], socket_wall[32], disrupted_wall[32];
    std::snprintf(local_wall, sizeof(local_wall), "%.0f ms", 1e3 * socket.local_wall);
    std::snprintf(socket_wall, sizeof(socket_wall), "%.0f ms",
                  1e3 * socket.socket_wall);
    std::snprintf(disrupted_wall, sizeof(disrupted_wall), "%.0f ms",
                  1e3 * socket.disrupted_wall);
    table.AddRow({"local (in-process)", local_wall, "-", "-", "-"});
    table.AddRow({"socket (4x shardd, TCP)", socket_wall,
                  std::to_string(socket.wire_batches),
                  std::to_string(socket.bytes_sent),
                  std::to_string(socket.control_messages)});
    table.AddRow({"socket, kill+restart one", disrupted_wall, "-", "-", "-"});
    std::printf("--- real sockets: 4 exsample_shardd servers over localhost ---\n%s",
                table.ToString().c_str());
    std::printf("disruption recovery: %llu reconnects, %llu inferred failures, "
                "%llu retries, %llu requeues\n",
                static_cast<unsigned long long>(socket.reconnects),
                static_cast<unsigned long long>(socket.inferred_failures),
                static_cast<unsigned long long>(socket.retries),
                static_cast<unsigned long long>(socket.requeues));
    std::printf("socket traces bit-identical to local: %s\n",
                socket.identical ? "yes" : "NO — BUG");
    std::printf("kill+restart traces bit-identical to local: %s\n\n",
                socket.disrupted_identical ? "yes" : "NO — BUG");
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    json << "{\n  \"bench\": \"dist_transport\",\n";
    json << "  \"full\": " << (config.full ? "true" : "false") << ",\n";
    json << "  \"loopback_bit_identical\": " << (wire.identical ? "true" : "false")
         << ",\n";
    json << "  \"wire\": {\"local_wall_s\": " << wire.local_wall
         << ", \"loopback_wall_s\": " << wire.loopback_wall
         << ", \"batches\": " << wire.wire_batches
         << ", \"bytes_sent\": " << wire.bytes_sent
         << ", \"bytes_received\": " << wire.bytes_received << "},\n";
    json << "  \"flush_policy\": {\"traces_bit_identical\": "
         << (policy_traces_identical ? "true" : "false") << ", \"runs\": [\n";
    for (size_t i = 0; i < policy_rows.size(); ++i) {
      const PolicyRow& row = policy_rows[i];
      json << "    {\"sessions\": " << row.sessions
           << ", \"barrier_p95_s\": " << row.barrier.p95_latency
           << ", \"deadline_p95_s\": " << row.deadline.p95_latency
           << ", \"speedup\": " << speedups[i]
           << ", \"barrier_fill\": " << row.barrier.fill_rate
           << ", \"deadline_fill\": " << row.deadline.fill_rate << "}"
           << (i + 1 < policy_rows.size() ? "," : "") << "\n";
    }
    json << "  ]},\n";
    json << "  \"failure\": {\"traces_bit_identical\": "
         << (failure.identical ? "true" : "false")
         << ", \"healthy_wall_s\": " << failure.healthy_wall
         << ", \"failure_wall_s\": " << failure.failure_wall
         << ", \"retries\": " << failure.retries
         << ", \"requeues\": " << failure.requeues << "},\n";
    json << "  \"socket\": {\"traces_bit_identical\": "
         << (socket.identical ? "true" : "false")
         << ", \"disrupted_traces_bit_identical\": "
         << (socket.disrupted_identical ? "true" : "false")
         << ", \"local_wall_s\": " << socket.local_wall
         << ", \"socket_wall_s\": " << socket.socket_wall
         << ", \"disrupted_wall_s\": " << socket.disrupted_wall
         << ", \"batches\": " << socket.wire_batches
         << ", \"bytes_sent\": " << socket.bytes_sent
         << ", \"control_messages\": " << socket.control_messages
         << ", \"connects\": " << socket.connects
         << ", \"reconnects\": " << socket.reconnects
         << ", \"inferred_failures\": " << socket.inferred_failures
         << ", \"retries\": " << socket.retries
         << ", \"requeues\": " << socket.requeues << "}\n}\n";
    std::printf("json written to %s\n", json_path.c_str());
  }

  // Exit enforcement: bit-identity is a correctness bug, not a perf miss.
  if (!wire.identical || !policy_traces_identical || !failure.identical ||
      !socket.identical || !socket.disrupted_identical) {
    return 3;
  }
  return p95_improves ? 0 : 1;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    // --quick is the default scale; accepted explicitly for CI clarity.
  }
  return Run(config, json_path);
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
