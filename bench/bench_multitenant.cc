// Multi-tenant serving: what the admission/WFQ/shedding layer guarantees on
// a shared engine, measured in *simulated* detector-seconds (bit-exact, so
// the acceptance lines are CI-stable). Three profiles, three exit-enforced
// claims:
//
//   1. Isolation does not change computation: every admitted-and-completed
//      query's trace is bit-identical to a solo run of the same spec and
//      seed on a fresh engine (exit 3 on divergence — the MergeShardTraces
//      contract, one layer up).
//
//   2. Weighted fairness: three tenants with weights 4/2/1 submitting
//      identical bursty work split the charged detector-seconds measured
//      over the contended window (while all three still have live sessions)
//      within 10% relative of their configured shares (exit 2).
//
//   3. Overload protection: an adversarial best-effort flood against an
//      interactive SLO tenant is shed/rejected (never hung), and the SLO
//      tenant's p95 time-to-first-result stays <= 1.3x its uncontended run
//      (exit 1). A scavenger profile additionally checks best-effort work
//      still completes when the engine is not saturated, and that the SLO
//      tenant's mean time-to-first-result beats the scavengers'.
//
// --quick is accepted as an explicit marker for the default reduced scale
// (the CI bench-smoke lane passes it); --full runs the paper-scale scene.
// --json=PATH writes the measurements (CI uploads BENCH_multitenant.json
// per PR).

#include <algorithm>
#include <cstring>
#include <fstream>

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

/// The serving scene: an abundant class (cheap first results, the
/// interactive tenants' target), a medium class for scavengers, and a rare
/// class so costs are not uniform.
struct ServeWorkload {
  video::VideoRepository repo;
  video::Chunking chunking;
  scene::GroundTruth truth;

  ServeWorkload(video::VideoRepository r, video::Chunking c, scene::GroundTruth t)
      : repo(std::move(r)), chunking(std::move(c)), truth(std::move(t)) {}

  static std::unique_ptr<ServeWorkload> Make(uint64_t frames, uint64_t seed) {
    const uint64_t counts[] = {120, 40, 10};
    common::Rng rng(seed);
    auto chunking = video::MakeFixedCountChunks(frames, 16).value();
    scene::SceneSpec spec;
    spec.total_frames = frames;
    for (size_t c = 0; c < sizeof(counts) / sizeof(counts[0]); ++c) {
      scene::ClassPopulationSpec cls;
      cls.class_id = static_cast<int32_t>(c);
      cls.instance_count = counts[c];
      cls.duration.mean_frames = 150.0;
      spec.classes.push_back(cls);
    }
    return std::make_unique<ServeWorkload>(
        video::VideoRepository::SingleClip(frames), std::move(chunking),
        std::move(scene::GenerateScene(spec, &chunking, rng)).value());
  }
};

engine::EngineConfig BaseConfig() {
  engine::EngineConfig config;
  config.discriminator = engine::EngineConfig::DiscriminatorKind::kOracle;
  config.detector = detect::DetectorOptions::Perfect(scene::GroundTruth::kAllClasses);
  config.coalesce_detect = true;
  config.device_batch = 16;
  return config;
}

serve::TenantQuery MakeQuery(const std::string& tenant, double arrival,
                             int32_t class_id, uint64_t limit,
                             uint64_t max_samples, uint64_t seed,
                             uint64_t batch = 4) {
  serve::TenantQuery q;
  q.tenant = tenant;
  q.arrival_seconds = arrival;
  q.spec.class_id = class_id;
  q.spec.limit = limit;
  q.spec.options.batch_size = batch;
  q.spec.options.max_samples = max_samples;
  q.spec.options.exsample.seed = seed;
  return q;
}

double Percentile95(std::vector<double> values) {
  if (values.empty()) return -1.0;
  std::sort(values.begin(), values.end());
  const size_t rank =
      static_cast<size_t>(std::ceil(0.95 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

/// Re-runs every completed query solo on a fresh engine and compares traces
/// bit-for-bit — tenancy may refuse or reorder work, never change it.
bool SoloTracesIdentical(const ServeWorkload& workload,
                         const std::vector<serve::TenantQuery>& queries,
                         const std::vector<serve::QueryOutcome>& outcomes) {
  engine::SearchEngine reference(&workload.repo, &workload.chunking,
                                 &workload.truth, BaseConfig());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].kind != serve::OutcomeKind::kCompleted) continue;
    auto solo = reference.FindDistinct(queries[i].spec.class_id,
                                       queries[i].spec.limit,
                                       queries[i].spec.options);
    common::CheckOk(solo.status(), "solo reference run failed");
    if (!query::TracesBitIdentical(solo.value(), outcomes[i].trace)) {
      std::fprintf(stderr, "FATAL: query %zu trace diverged from solo run\n", i);
      return false;
    }
  }
  return true;
}

// --- Profile 1: weighted-fair shares over a bursty burst ---------------------

struct FairnessResult {
  std::vector<double> shares;    // Measured share per tenant over the window.
  std::vector<double> expected;  // weight / sum(weights).
  double window_seconds = 0.0;
  bool within_tolerance = true;
  bool traces_identical = true;
};

FairnessResult RunFairness(const ServeWorkload& workload, uint64_t seed) {
  const double kWeights[] = {4.0, 2.0, 1.0};
  const char* kIds[] = {"gold", "silver", "bronze"};
  const size_t kTenants = 3;
  const size_t kSessionsPerTenant = 3;
  const uint64_t kSamplesPerSession = 600;

  engine::SearchEngine engine(&workload.repo, &workload.chunking,
                              &workload.truth, BaseConfig());
  serve::TenantServer server(&engine, {});
  for (size_t t = 0; t < kTenants; ++t) {
    serve::TenantSpec spec;
    spec.id = kIds[t];
    spec.weight = kWeights[t];
    common::CheckOk(server.AddTenant(spec).status(), "AddTenant failed");
  }

  // Identical sample-capped sessions per tenant, all arriving at t=0: the
  // only thing separating the tenants is their configured weight.
  std::vector<serve::TenantQuery> queries;
  std::vector<size_t> query_tenant;
  for (size_t t = 0; t < kTenants; ++t) {
    for (size_t s = 0; s < kSessionsPerTenant; ++s) {
      queries.push_back(MakeQuery(kIds[t], 0.0, /*class_id=*/0,
                                  /*limit=*/1000000, kSamplesPerSession,
                                  seed + 100 * t + s));
      query_tenant.push_back(t);
    }
  }

  // Record every step's charged-seconds delta with its global timestamp so
  // the share can be measured over exactly the contended window.
  struct StepEvent {
    size_t tenant;
    double now;
    double delta;
  };
  std::vector<StepEvent> events;
  std::vector<double> last_seconds(queries.size(), 0.0);
  const auto observer = [&](size_t i, const engine::QuerySession& session,
                            double now) {
    const double seconds = session.Trace().final.seconds;
    events.push_back({query_tenant[i], now, seconds - last_seconds[i]});
    last_seconds[i] = seconds;
  };
  auto outcomes = server.Serve(queries, observer);
  common::CheckOk(outcomes.status(), "fairness profile failed");

  // Contended window: [0, T) where T is the first moment some tenant has no
  // live sessions left — until then, every tenant is backlogged and the WFQ
  // pick alone decides the split.
  FairnessResult result;
  std::vector<double> last_finish(kTenants, 0.0);
  for (size_t i = 0; i < queries.size(); ++i) {
    common::Check(outcomes.value()[i].kind == serve::OutcomeKind::kCompleted,
                  "fairness profile query did not complete");
    last_finish[query_tenant[i]] = std::max(
        last_finish[query_tenant[i]], outcomes.value()[i].finished_seconds);
  }
  result.window_seconds =
      *std::min_element(last_finish.begin(), last_finish.end());

  std::vector<double> charged(kTenants, 0.0);
  double total = 0.0;
  for (const StepEvent& e : events) {
    if (e.now > result.window_seconds) continue;
    charged[e.tenant] += e.delta;
    total += e.delta;
  }
  double weight_sum = 0.0;
  for (const double w : kWeights) weight_sum += w;
  for (size_t t = 0; t < kTenants; ++t) {
    result.shares.push_back(total > 0.0 ? charged[t] / total : 0.0);
    result.expected.push_back(kWeights[t] / weight_sum);
    const double deviation =
        std::fabs(result.shares[t] - result.expected[t]) / result.expected[t];
    if (deviation > 0.10) result.within_tolerance = false;
  }
  result.traces_identical =
      SoloTracesIdentical(workload, queries, outcomes.value());

  common::TextTable table;
  table.SetHeader({"tenant", "weight", "expected share", "measured share"});
  for (size_t t = 0; t < kTenants; ++t) {
    char expected_buf[32], measured_buf[32], weight_buf[32];
    std::snprintf(weight_buf, sizeof(weight_buf), "%.0f", kWeights[t]);
    std::snprintf(expected_buf, sizeof(expected_buf), "%.1f%%",
                  100.0 * result.expected[t]);
    std::snprintf(measured_buf, sizeof(measured_buf), "%.1f%%",
                  100.0 * result.shares[t]);
    table.AddRow({kIds[t], weight_buf, expected_buf, measured_buf});
  }
  std::printf("--- bursty burst: %zu tenants x %zu sessions, shares over the\n"
              "    contended window (first %.1f simulated seconds) ---\n%s\n",
              kTenants, kSessionsPerTenant, result.window_seconds,
              table.ToString().c_str());
  return result;
}

// --- Profiles 2+3: SLO protection under flood / alongside scavengers ---------

struct FloodResult {
  double uncontended_p95 = 0.0;
  double contended_p95 = 0.0;
  double ratio = 0.0;
  uint64_t flood_rejected = 0;
  uint64_t flood_shed = 0;
  bool slo_all_completed = true;
  bool protected_ok = true;
  bool traces_identical = true;
};

FloodResult RunFlood(const ServeWorkload& workload, uint64_t seed) {
  const size_t kSloQueries = 6;
  const size_t kFloodQueries = 10;

  // The SLO tenant searches the medium-abundance class: its first result
  // takes long enough that the measured p95 reflects scheduling, not round
  // granularity, while the flood hammers the cheap abundant class.
  const auto slo_queries = [&]() {
    std::vector<serve::TenantQuery> queries;
    for (size_t i = 0; i < kSloQueries; ++i) {
      queries.push_back(MakeQuery("user", 0.0, /*class_id=*/1, /*limit=*/3,
                                  /*max_samples=*/4000, seed + 500 + i));
    }
    return queries;
  };

  const auto run = [&](bool with_flood) {
    engine::SearchEngine engine(&workload.repo, &workload.chunking,
                                &workload.truth, BaseConfig());
    serve::ServeOptions options;
    options.admission.saturation_pending_frames = 24.0;
    options.admission.shed_over_factor = 1.5;
    serve::TenantServer server(&engine, options);
    serve::TenantSpec user;
    user.id = "user";
    user.weight = 8.0;
    common::CheckOk(server.AddTenant(user).status(), "AddTenant failed");
    std::vector<serve::TenantQuery> queries = slo_queries();
    if (with_flood) {
      serve::TenantSpec flood;
      flood.id = "flood";
      flood.weight = 1.0;
      flood.slo = serve::SloClass::kBestEffort;
      flood.max_concurrent_sessions = 6;
      flood.max_queued = 2;
      common::CheckOk(server.AddTenant(flood).status(), "AddTenant failed");
      for (size_t i = 0; i < kFloodQueries; ++i) {
        queries.push_back(MakeQuery("flood", 0.0, /*class_id=*/0,
                                    /*limit=*/1000000, /*max_samples=*/2000,
                                    seed + 700 + i, /*batch=*/8));
      }
    }
    auto outcomes = server.Serve(queries);
    common::CheckOk(outcomes.status(), "flood profile failed");
    struct RunResult {
      std::vector<serve::TenantQuery> queries;
      std::vector<serve::QueryOutcome> outcomes;
      serve::TenantUsage flood_usage;
    };
    RunResult result;
    result.queries = std::move(queries);
    result.outcomes = std::move(outcomes).value();
    if (with_flood) result.flood_usage = server.tenants().usage(1);
    return result;
  };

  const auto slo_first_results = [&](const std::vector<serve::QueryOutcome>& o) {
    std::vector<double> ttfr;
    for (size_t i = 0; i < kSloQueries; ++i) {
      ttfr.push_back(o[i].first_result_seconds);
    }
    return ttfr;
  };

  const auto uncontended = run(/*with_flood=*/false);
  const auto contended = run(/*with_flood=*/true);

  FloodResult result;
  for (size_t i = 0; i < kSloQueries; ++i) {
    if (contended.outcomes[i].kind != serve::OutcomeKind::kCompleted ||
        contended.outcomes[i].first_result_seconds < 0.0) {
      result.slo_all_completed = false;
    }
  }
  result.uncontended_p95 = Percentile95(slo_first_results(uncontended.outcomes));
  result.contended_p95 = Percentile95(slo_first_results(contended.outcomes));
  result.ratio = result.uncontended_p95 > 0.0
                     ? result.contended_p95 / result.uncontended_p95
                     : 0.0;
  result.flood_rejected = contended.flood_usage.rejected;
  result.flood_shed = contended.flood_usage.shed;
  result.protected_ok = result.slo_all_completed && result.ratio <= 1.3 &&
                        result.flood_rejected + result.flood_shed > 0;
  result.traces_identical =
      SoloTracesIdentical(workload, contended.queries, contended.outcomes);

  std::printf("--- adversarial flood: %zu best-effort arrivals against an\n"
              "    interactive tenant (weight 8) ---\n", kFloodQueries);
  std::printf("SLO tenant p95 time-to-first-result: uncontended %.1fs, "
              "contended %.1fs — %.2fx (target <= 1.30x)\n",
              result.uncontended_p95, result.contended_p95, result.ratio);
  std::printf("flood outcomes: %llu rejected, %llu shed (engine sheds, "
              "never hangs)\n\n",
              static_cast<unsigned long long>(result.flood_rejected),
              static_cast<unsigned long long>(result.flood_shed));
  return result;
}

struct ScavengerResult {
  double slo_mean_ttfr = 0.0;
  double scavenger_mean_ttfr = 0.0;
  bool all_completed = true;
  bool ordering_ok = true;
};

ScavengerResult RunScavengers(const ServeWorkload& workload, uint64_t seed) {
  engine::SearchEngine engine(&workload.repo, &workload.chunking,
                              &workload.truth, BaseConfig());
  serve::TenantServer server(&engine, {});
  serve::TenantSpec app;
  app.id = "app";
  app.weight = 6.0;
  common::CheckOk(server.AddTenant(app).status(), "AddTenant failed");
  for (const char* id : {"scav1", "scav2"}) {
    serve::TenantSpec scav;
    scav.id = id;
    scav.weight = 1.0;
    scav.slo = serve::SloClass::kBestEffort;
    common::CheckOk(server.AddTenant(scav).status(), "AddTenant failed");
  }

  std::vector<serve::TenantQuery> queries;
  for (size_t i = 0; i < 4; ++i) {
    queries.push_back(MakeQuery("app", 0.0, /*class_id=*/0, /*limit=*/4,
                                /*max_samples=*/4000, seed + 900 + i));
  }
  for (size_t i = 0; i < 4; ++i) {
    queries.push_back(MakeQuery(i % 2 == 0 ? "scav1" : "scav2", 0.0,
                                /*class_id=*/1, /*limit=*/3,
                                /*max_samples=*/4000, seed + 950 + i));
  }
  auto outcomes = server.Serve(queries);
  common::CheckOk(outcomes.status(), "scavenger profile failed");

  ScavengerResult result;
  std::vector<double> slo_ttfr, scav_ttfr;
  for (size_t i = 0; i < queries.size(); ++i) {
    const serve::QueryOutcome& o = outcomes.value()[i];
    if (o.kind != serve::OutcomeKind::kCompleted ||
        o.first_result_seconds < 0.0) {
      result.all_completed = false;
      continue;
    }
    (i < 4 ? slo_ttfr : scav_ttfr).push_back(o.first_result_seconds);
  }
  result.slo_mean_ttfr = common::Mean(slo_ttfr);
  result.scavenger_mean_ttfr = common::Mean(scav_ttfr);
  result.ordering_ok =
      result.all_completed && result.slo_mean_ttfr <= result.scavenger_mean_ttfr;

  std::printf("--- batch scavengers: best-effort work drains without "
              "starving the SLO tenant ---\n");
  std::printf("mean time-to-first-result: SLO %.1fs, scavengers %.1fs; all "
              "completed: %s\n\n",
              result.slo_mean_ttfr, result.scavenger_mean_ttfr,
              result.all_completed ? "yes" : "NO — FAIL");
  return result;
}

int Run(const BenchConfig& config, const std::string& json_path) {
  const uint64_t kFrames = config.full ? 120000 : 60000;
  auto workload = ServeWorkload::Make(kFrames, config.seed);

  std::printf("=== Multi-tenant serving: admission, weighted shares, "
              "overload shedding ===\n\n");

  const FairnessResult fairness = RunFairness(*workload, config.seed);
  const FloodResult flood = RunFlood(*workload, config.seed);
  const ScavengerResult scavengers = RunScavengers(*workload, config.seed);

  const bool traces_identical =
      fairness.traces_identical && flood.traces_identical;
  std::printf("completed traces bit-identical to solo runs: %s\n",
              traces_identical ? "yes" : "NO — BUG");
  std::printf("weighted shares within 10%% of configured weights: %s\n",
              fairness.within_tolerance ? "yes" : "NO — FAIL");
  std::printf("SLO tenant protected under flood (p95 <= 1.3x, flood shed): %s\n",
              flood.protected_ok ? "yes" : "NO — FAIL");
  std::printf("scavengers complete without beating the SLO tenant: %s\n",
              scavengers.ordering_ok ? "yes" : "NO — FAIL");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    json << "{\n  \"bench\": \"multitenant\",\n";
    json << "  \"full\": " << (config.full ? "true" : "false") << ",\n";
    json << "  \"traces_bit_identical\": "
         << (traces_identical ? "true" : "false") << ",\n";
    json << "  \"fairness\": {\"window_seconds\": " << fairness.window_seconds
         << ", \"within_tolerance\": "
         << (fairness.within_tolerance ? "true" : "false")
         << ", \"tenants\": [\n";
    const char* ids[] = {"gold", "silver", "bronze"};
    for (size_t t = 0; t < fairness.shares.size(); ++t) {
      json << "    {\"tenant\": \"" << ids[t]
           << "\", \"expected_share\": " << fairness.expected[t]
           << ", \"measured_share\": " << fairness.shares[t] << "}"
           << (t + 1 < fairness.shares.size() ? "," : "") << "\n";
    }
    json << "  ]},\n";
    json << "  \"flood\": {\"uncontended_p95\": " << flood.uncontended_p95
         << ", \"contended_p95\": " << flood.contended_p95
         << ", \"ratio\": " << flood.ratio
         << ", \"flood_rejected\": " << flood.flood_rejected
         << ", \"flood_shed\": " << flood.flood_shed
         << ", \"protected\": " << (flood.protected_ok ? "true" : "false")
         << "},\n";
    json << "  \"scavengers\": {\"slo_mean_ttfr\": " << scavengers.slo_mean_ttfr
         << ", \"scavenger_mean_ttfr\": " << scavengers.scavenger_mean_ttfr
         << ", \"ok\": " << (scavengers.ordering_ok ? "true" : "false")
         << "}\n}\n";
    std::printf("json written to %s\n", json_path.c_str());
  }

  if (!traces_identical) return 3;
  if (!fairness.within_tolerance) return 2;
  if (!flood.protected_ok || !scavengers.ordering_ok) return 1;
  return 0;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    // --quick is the explicit spelling of the default reduced scale; the CI
    // bench-smoke lane passes it so the intent is visible in the logs.
  }
  return Run(config, json_path);
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
