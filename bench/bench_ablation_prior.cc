// Ablation: sensitivity to the Gamma prior pseudo-counts alpha0, beta0.
//
// The paper uses alpha0 = 0.1, beta0 = 1 and notes "we did not observe a
// strong dependence on this value choice" (Sec. III-C). This bench sweeps a
// 3x3 grid around that point on a skewed workload and reports median samples
// to 50% recall — the spread across the grid should stay small compared to
// the gap to random sampling.

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(5, 15);
  const uint64_t kFrames = 4'000'000;
  const uint64_t kInstances = 1000;
  const uint64_t kMax = 400'000;

  auto workload =
      Workload::Simulated(kFrames, 64, kInstances, 300.0, 1.0 / 32, config.seed);
  const uint64_t target = RecallCount(kInstances, 0.5);

  std::printf("=== Ablation: prior strength (alpha0, beta0) ===\n");
  std::printf("paper default: alpha0=0.1, beta0=1; %d runs\n\n", runs);

  // Random baseline for context.
  std::vector<query::QueryTrace> random_traces;
  for (int run = 0; run < runs; ++run) {
    samplers::UniformRandomStrategy s(&workload->repo, config.seed + 10 + run);
    random_traces.push_back(RunOracleQuery(workload->truth, 0, &s, target, kMax));
  }
  const auto random_median = query::MedianSamplesToRecall(random_traces, 0.5);
  std::printf("random baseline: %s samples to 50%% recall\n\n",
              OrDash(random_median).c_str());

  common::TextTable table;
  table.SetHeader({"alpha0", "beta0", "median samples to 50%", "vs random"});
  std::vector<double> medians;
  for (double alpha0 : {0.01, 0.1, 1.0}) {
    for (double beta0 : {0.1, 1.0, 10.0}) {
      std::vector<query::QueryTrace> traces;
      for (int run = 0; run < runs; ++run) {
        core::ExSampleOptions options;
        options.belief.alpha0 = alpha0;
        options.belief.beta0 = beta0;
        options.seed = config.seed + 100 + run;
        core::ExSampleStrategy s(&workload->chunking, options);
        traces.push_back(RunOracleQuery(workload->truth, 0, &s, target, kMax));
      }
      const auto median = query::MedianSamplesToRecall(traces, 0.5);
      if (median) medians.push_back(*median);
      char a[16], b[16];
      std::snprintf(a, sizeof(a), "%.2f", alpha0);
      std::snprintf(b, sizeof(b), "%.1f", beta0);
      std::string versus = "-";
      if (median && random_median) {
        versus = common::FormatRatio(*random_median / *median);
      }
      table.AddRow({a, b, OrDash(median), versus});
    }
  }
  std::printf("%s", table.ToString().c_str());
  if (!medians.empty()) {
    const double spread = *std::max_element(medians.begin(), medians.end()) /
                          *std::min_element(medians.begin(), medians.end());
    std::printf("\nmax/min spread across the prior grid: %.2fx "
                "(paper: no strong dependence)\n",
                spread);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
