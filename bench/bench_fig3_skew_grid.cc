// Reproduces Fig. 3 (Sec. IV-B): simulated savings of ExSample over random as
// a function of instance skew (columns) and mean instance duration (rows).
//
// Paper setup: N = 2000 instances in 16M frames, durations LogNormal with
// means {14, 100, 700, 4900}, placement Normal with 95% of instances in
// {all, 1/4, 1/32, 1/256} of the dataset, 128 chunks, 21 runs, median curves.
// We print, per grid cell, the median samples needed to reach 10 / 100 / 1000
// results for random and ExSample, the savings ratios (the in-plot labels of
// Fig. 3), and the Eq. IV.1 optimal-allocation sample count (dashed line).
//
// Default: 3 runs and a 150k-sample cap (--full: 21 runs, 1M cap).

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

// Finds the smallest n (on a log grid) at which the Eq. IV.1 optimal
// allocation expects >= target results.
std::optional<double> OptimalSamplesToTarget(const opt::ChunkProbabilityMatrix& matrix,
                                             double target, double max_n) {
  double prev_n = 0.0;
  for (double n : common::Logspace(10.0, max_n, 60)) {
    const auto result = opt::OptimalWeights(matrix, n);
    if (result.expected_discoveries >= target) {
      // One bisection-ish refinement between prev_n and n.
      return prev_n > 0.0 ? std::sqrt(prev_n * n) : n;
    }
    prev_n = n;
  }
  return std::nullopt;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(3, 21);
  const uint64_t max_samples = config.full ? 1'000'000 : 150'000;
  const uint64_t kFrames = 16'000'000;
  const uint64_t kInstances = 2000;
  const size_t kChunks = 128;

  const std::vector<double> durations{14, 100, 700, 4900};
  const std::vector<std::pair<const char*, double>> skews{
      {"none", 1.0}, {"1/4", 0.25}, {"1/32", 1.0 / 32}, {"1/256", 1.0 / 256}};
  const std::vector<uint64_t> targets{10, 100, 1000};

  std::printf("=== Fig. 3: savings grid, skew x duration (Sec. IV-B) ===\n");
  std::printf("N=%llu instances, %llu frames, %zu chunks, %d runs, cap %llu "
              "samples\n\n",
              static_cast<unsigned long long>(kInstances),
              static_cast<unsigned long long>(kFrames), kChunks, runs,
              static_cast<unsigned long long>(max_samples));

  common::TextTable table;
  table.SetHeader({"duration", "skew", "target", "random", "exsample", "savings",
                   "optimal(IV.1)"});
  for (double duration : durations) {
    for (const auto& [skew_name, skew_fraction] : skews) {
      auto workload =
          Workload::Simulated(kFrames, kChunks, kInstances, duration, skew_fraction,
                              config.seed + static_cast<uint64_t>(duration));
      std::vector<query::QueryTrace> random_runs, exsample_runs;
      for (int run = 0; run < runs; ++run) {
        samplers::UniformRandomStrategy random(&workload->repo,
                                               config.seed + 100 + run);
        random_runs.push_back(RunOracleQuery(workload->truth, 0, &random,
                                             targets.back(), max_samples));
        core::ExSampleOptions options;
        options.seed = config.seed + 200 + run;
        core::ExSampleStrategy strategy(&workload->chunking, options);
        exsample_runs.push_back(RunOracleQuery(workload->truth, 0, &strategy,
                                               targets.back(), max_samples));
      }
      const opt::ChunkProbabilityMatrix matrix(workload->truth.Trajectories(),
                                               workload->chunking, 0);
      for (uint64_t target : targets) {
        const double recall =
            static_cast<double>(target) / static_cast<double>(kInstances);
        const auto r_median = query::MedianSamplesToRecall(random_runs, recall);
        const auto e_median = query::MedianSamplesToRecall(exsample_runs, recall);
        std::string savings = "-";
        if (r_median && e_median && *e_median > 0.0) {
          savings = common::FormatRatio(*r_median / *e_median);
        }
        const auto optimal = OptimalSamplesToTarget(
            matrix, static_cast<double>(target), static_cast<double>(max_samples));
        table.AddRow({std::to_string(static_cast<int>(duration)), skew_name,
                      std::to_string(target), OrDash(r_median), OrDash(e_median),
                      savings, OrDash(optimal)});
      }
      table.AddSeparator();
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexpected shape (paper Fig. 3): savings grow with skew (left->right)\n"
      "and with duration (top->bottom), from ~1x (no skew / rare results) to\n"
      "tens of x; ExSample approaches but does not beat the optimal line.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
