// Microbenchmarks (google-benchmark): the per-operation costs that determine
// how much CPU overhead ExSample adds on top of the detector.
//
// The paper's premise is that the detector dominates (50 ms/frame at 20 fps);
// these benchmarks verify the sampling machinery is orders of magnitude
// cheaper — a Thompson step over 128 chunks should cost microseconds.

#include <benchmark/benchmark.h>

#include "exsample/exsample.h"

namespace exsample {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  common::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_GammaSample(benchmark::State& state) {
  common::Rng rng(2);
  const double shape = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Gamma(shape, 1.0));
  }
}
BENCHMARK(BM_GammaSample)->Arg(1)->Arg(10)->Arg(100);  // shape .1, 1, 10.

void BM_GammaQuantile(benchmark::State& state) {
  const stats::GammaBelief belief(5.1, 101.0);
  double q = 0.001;
  for (auto _ : state) {
    q += 0.0001;
    if (q >= 0.999) q = 0.001;
    benchmark::DoNotOptimize(belief.Quantile(q));
  }
}
BENCHMARK(BM_GammaQuantile);

void BM_ThompsonPick(benchmark::State& state) {
  const size_t chunks = static_cast<size_t>(state.range(0));
  core::ChunkStatsTable stats(chunks);
  common::Rng rng(3);
  for (size_t j = 0; j < chunks; ++j) {
    for (int i = 0; i < 10; ++i) {
      stats.Update(j, rng.Bernoulli(0.1) ? 1 : 0, 0);
    }
  }
  core::ThompsonPolicy policy;
  std::vector<bool> eligible(chunks, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.PickChunk(stats, eligible, rng));
  }
  state.SetItemsProcessed(state.iterations() * chunks);
}
BENCHMARK(BM_ThompsonPick)->Arg(16)->Arg(128)->Arg(1024);

void BM_BayesUcbPick(benchmark::State& state) {
  const size_t chunks = static_cast<size_t>(state.range(0));
  core::ChunkStatsTable stats(chunks);
  common::Rng rng(4);
  for (size_t j = 0; j < chunks; ++j) stats.Update(j, 1, 0);
  core::BayesUcbPolicy policy;
  std::vector<bool> eligible(chunks, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.PickChunk(stats, eligible, rng));
  }
}
BENCHMARK(BM_BayesUcbPick)->Arg(128);

void BM_PermutationLookup(benchmark::State& state) {
  common::RandomPermutation perm(1'000'003, 5);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm(i));
    if (++i >= 1'000'003) i = 0;
  }
}
BENCHMARK(BM_PermutationLookup);

void BM_StratifiedSamplerNext(benchmark::State& state) {
  core::StratifiedFrameSampler sampler(0, 1'000'000'000, 7);
  common::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Next(rng));
  }
}
BENCHMARK(BM_StratifiedSamplerNext);

void BM_IntervalIndexQuery(benchmark::State& state) {
  common::Rng rng(7);
  scene::SceneSpec spec;
  spec.total_frames = 16'000'000;
  scene::ClassPopulationSpec cls;
  cls.instance_count = 2000;
  cls.duration.mean_frames = 700.0;
  spec.classes.push_back(cls);
  const scene::GroundTruth truth =
      std::move(scene::GenerateScene(spec, nullptr, rng)).value();
  uint64_t frame = 0;
  uint64_t count = 0;
  for (auto _ : state) {
    frame = (frame + 7919 * 1013) % spec.total_frames;
    truth.ForEachVisible(frame, [&count](const scene::Trajectory&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_IntervalIndexQuery);

void BM_DetectorDetect(benchmark::State& state) {
  common::Rng rng(8);
  scene::SceneSpec spec;
  spec.total_frames = 1'000'000;
  scene::ClassPopulationSpec cls;
  cls.instance_count = 1000;
  cls.duration.mean_frames = 500.0;
  spec.classes.push_back(cls);
  const scene::GroundTruth truth =
      std::move(scene::GenerateScene(spec, nullptr, rng)).value();
  detect::SimulatedDetector detector(&truth, detect::DetectorOptions{});
  uint64_t frame = 0;
  for (auto _ : state) {
    frame = (frame + 104729) % spec.total_frames;
    benchmark::DoNotOptimize(detector.Detect(frame));
  }
}
BENCHMARK(BM_DetectorDetect);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  // Fixed cost of fanning a batch across the pool (empty tasks): the
  // overhead DetectBatch pays before any detection work starts.
  common::ThreadPool pool(static_cast<size_t>(state.range(0)));
  const size_t batch = 32;
  for (auto _ : state) {
    pool.ParallelFor(batch, [](size_t i) { benchmark::DoNotOptimize(i); });
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_DetectBatch(benchmark::State& state) {
  // Batch entry point vs. a Detect loop (same simulated detector): measures
  // the per-batch overhead of the batch-first pipeline, and with threads > 1
  // the parallel fan-out of a latency-free (CPU-bound) detector.
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  common::Rng rng(12);
  scene::SceneSpec spec;
  spec.total_frames = 1'000'000;
  scene::ClassPopulationSpec cls;
  cls.instance_count = 1000;
  cls.duration.mean_frames = 500.0;
  spec.classes.push_back(cls);
  const scene::GroundTruth truth =
      std::move(scene::GenerateScene(spec, nullptr, rng)).value();
  detect::SimulatedDetector detector(&truth, detect::DetectorOptions{});
  common::ThreadPool pool(threads);
  std::vector<video::FrameId> frames(batch);
  uint64_t frame = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      frame = (frame + 104729) % spec.total_frames;
      frames[i] = frame;
    }
    benchmark::DoNotOptimize(detector.DetectBatch(frames, &pool));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DetectBatch)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({8, 4})
    ->Args({32, 4})
    ->UseRealTime();

void BM_ThrottledDetectBatch(benchmark::State& state) {
  // The latency-bound regime (GPU/remote inference, 1 ms per call): the
  // reason the pipeline is batch-first. Frames/sec = items_per_second.
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  common::Rng rng(13);
  scene::SceneSpec spec;
  spec.total_frames = 100'000;
  scene::ClassPopulationSpec cls;
  cls.instance_count = 100;
  cls.duration.mean_frames = 500.0;
  spec.classes.push_back(cls);
  const scene::GroundTruth truth =
      std::move(scene::GenerateScene(spec, nullptr, rng)).value();
  detect::SimulatedDetector base(&truth, detect::DetectorOptions{});
  detect::ThrottledDetector detector(&base, 1e-3);
  common::ThreadPool pool(threads);
  std::vector<video::FrameId> frames(batch);
  uint64_t frame = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      frame = (frame + 104729) % spec.total_frames;
      frames[i] = frame;
    }
    benchmark::DoNotOptimize(detector.DetectBatch(frames, &pool));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ThrottledDetectBatch)
    ->Args({1, 1})
    ->Args({8, 4})
    ->Args({16, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DiscriminatorObserve(benchmark::State& state) {
  common::Rng rng(9);
  scene::SceneSpec spec;
  spec.total_frames = 1'000'000;
  scene::ClassPopulationSpec cls;
  cls.instance_count = 1000;
  cls.duration.mean_frames = 500.0;
  spec.classes.push_back(cls);
  const scene::GroundTruth truth =
      std::move(scene::GenerateScene(spec, nullptr, rng)).value();
  detect::SimulatedDetector detector(&truth, detect::DetectorOptions{});
  track::IouTrackerDiscriminator discrim(&truth, {});
  uint64_t frame = 0;
  for (auto _ : state) {
    frame = (frame + 104729) % spec.total_frames;
    benchmark::DoNotOptimize(discrim.Observe(frame, detector.Detect(frame)));
  }
}
BENCHMARK(BM_DiscriminatorObserve);

void BM_SimplexProjection(benchmark::State& state) {
  common::Rng rng(10);
  std::vector<double> v(static_cast<size_t>(state.range(0)));
  for (double& x : v) x = rng.Normal(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::ProjectToSimplex(v));
  }
}
BENCHMARK(BM_SimplexProjection)->Arg(128)->Arg(1024);

void BM_BernoulliModelRun(benchmark::State& state) {
  common::Rng rng(11);
  const auto probs = sim::LogNormalProbabilities(1000, 3e-3, 8e-3, 0.15, rng);
  sim::BernoulliOccupancyModel model(probs);
  const std::vector<uint64_t> points{100, 10000, 180000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.RunAtPoints(points, rng));
  }
}
BENCHMARK(BM_BernoulliModelRun);

}  // namespace
}  // namespace exsample

BENCHMARK_MAIN();
