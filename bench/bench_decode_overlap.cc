// Decode/detect overlap: end-to-end frames/sec, synchronous vs prefetching
// decode.
//
// The pipelined decode stage (`query::DecodePrefetcher`) decodes ahead of the
// detect stage on an I/O pool, bounded by the prefetch depth. This bench
// measures what that overlap buys end to end — a full query loop (pick →
// prefetch → detect → discriminate) with *real* wall-clock costs on both
// stages: the store spends `wall_clock_scale`-scaled time per decoded frame
// and the detector is latency-bound (`ThrottledDetector`) — under three cost
// profiles:
//
//   decode-bound  the regime EKO names: decode dominates, the detector
//                 starves. Overlap + decode fan-out should win big (the
//                 acceptance line: >= 1.5x at depth 4; expected ~3-4x).
//   detect-bound  inference dominates; overlap can only hide the small
//                 decode cost behind the detector.
//   balanced      both stages comparable; pipelining approaches the
//                 max(decode, detect) bound instead of their sum.
//
// Traces are asserted bit-identical across depths — the speedup must come
// from scheduling alone. Equivalence across methods/shards is proven by
// tests/test_decode_prefetch.cc; this reports the wall-clock.
//
// --json=PATH writes the measurements as JSON (CI uploads it per PR to track
// the perf trajectory).

#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

struct Profile {
  const char* name;
  double detect_latency_seconds;  // Wall-clock per Detect call.
  double wall_clock_scale;        // Store charge -> wall-clock multiplier.
};

struct Cell {
  size_t depth;
  double fps;
  double speedup;
};

struct ProfileResult {
  Profile profile;
  double avg_decode_wall_ms = 0.0;
  std::vector<Cell> cells;
};

struct RunResult {
  query::QueryTrace trace;
  double wall_seconds = 0.0;
  double decode_wall_seconds = 0.0;  // Total store wall time (charged * scale).
};

RunResult RunQuery(const Workload& workload, const Profile& profile, size_t depth,
                   uint64_t frames_to_process, uint64_t seed) {
  const size_t kBatch = 32;
  const size_t kDetectThreads = 4;
  const size_t kIoThreads = 4;

  samplers::UniformRandomStrategy strategy(&workload.repo, seed);
  detect::SimulatedDetector base(&workload.truth, detect::DetectorOptions::Perfect(0));
  detect::ThrottledDetector detector(&base, profile.detect_latency_seconds);
  track::OracleDiscriminator discriminator;

  video::DecodeCostModel cost;
  cost.wall_clock_scale = profile.wall_clock_scale;
  video::SimulatedVideoStore store(&workload.repo, cost);

  common::ThreadPool detect_pool(kDetectThreads);
  common::ThreadPool io_pool(kIoThreads);

  query::RunnerOptions options;
  options.recall_class = 0;
  options.max_samples = frames_to_process;
  options.batch_size = kBatch;
  options.thread_pool = &detect_pool;
  options.video_store = &store;
  options.prefetch_depth = depth;
  options.decode_pool = &io_pool;

  query::QueryExecution execution(&workload.truth, &detector, &discriminator,
                                  &strategy, options);
  const auto start = std::chrono::steady_clock::now();
  RunResult result{execution.Finish(), 0.0, 0.0};
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.decode_wall_seconds =
      store.Stats().total_seconds * store.Cost().wall_clock_scale;
  return result;
}

int OverlapSweep(const BenchConfig& config, const std::string& json_path) {
  const uint64_t kFrames = 20000;
  const uint64_t frames_to_process = config.full ? 1536 : 384;
  const size_t kDepths[] = {0, 1, 4};

  // The average *charged* random read under the default cost model is
  // ~22.5 ms (2 ms seek + ~10.5 warmup frames at 500 fps); the scales below
  // put its wall-clock cost around 2.2 ms / 0.2 ms / 1.1 ms.
  const Profile kProfiles[] = {
      {"decode-bound", 0.0002, 0.10},
      {"detect-bound", 0.0020, 0.01},
      {"balanced", 0.0010, 0.05},
  };

  auto workload = Workload::Simulated(kFrames, 8, 50, 300.0, 1.0, config.seed);

  std::printf("=== Decode/detect overlap: end-to-end frames/sec, sync vs prefetch ===\n");
  std::printf("batch 32; 4 detect threads; 4 I/O threads; %llu frames per run;\n"
              "depth 0 = synchronous decode (plan+perform inline, the legacy\n"
              "schedule); depth d decodes up to d frames ahead of the detector.\n\n",
              static_cast<unsigned long long>(frames_to_process));

  std::vector<ProfileResult> results;
  bool traces_identical = true;
  for (const Profile& profile : kProfiles) {
    ProfileResult pr;
    pr.profile = profile;
    common::TextTable table;
    table.SetHeader({"depth", "frames/sec", "speedup vs sync"});
    query::QueryTrace reference;
    double sync_fps = 0.0;
    for (const size_t depth : kDepths) {
      const RunResult run =
          RunQuery(*workload, profile, depth, frames_to_process, config.seed);
      if (depth == 0) {
        reference = run.trace;
        pr.avg_decode_wall_ms = 1e3 * run.decode_wall_seconds /
                                static_cast<double>(run.trace.final.samples);
      } else if (!query::TracesBitIdentical(reference, run.trace)) {
        // The whole point of the prefetcher: depth must never leak into the
        // trace. A mismatch is a correctness bug, not a perf regression.
        std::fprintf(stderr, "FATAL: depth %zu changed the trace (%s)\n", depth,
                     profile.name);
        traces_identical = false;
      }
      const double fps =
          static_cast<double>(run.trace.final.samples) / run.wall_seconds;
      if (depth == 0) sync_fps = fps;
      char fps_buf[32], speedup_buf[32];
      std::snprintf(fps_buf, sizeof(fps_buf), "%.0f", fps);
      std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx",
                    sync_fps > 0.0 ? fps / sync_fps : 0.0);
      table.AddRow({std::to_string(depth), fps_buf, speedup_buf});
      pr.cells.push_back(Cell{depth, fps, sync_fps > 0.0 ? fps / sync_fps : 0.0});
    }
    std::printf("--- %s: %.1f ms detect latency, ~%.1f ms decode wall/frame ---\n",
                profile.name, profile.detect_latency_seconds * 1e3,
                pr.avg_decode_wall_ms);
    std::printf("%s\n", table.ToString().c_str());
    results.push_back(std::move(pr));
  }

  // Acceptance line: the decode-bound profile must clear 1.5x at depth 4 —
  // the overlap has to be real, not a rounding artifact.
  double decode_bound_speedup = 0.0;
  for (const ProfileResult& pr : results) {
    if (std::strcmp(pr.profile.name, "decode-bound") != 0) continue;
    for (const Cell& cell : pr.cells) {
      if (cell.depth == 4) decode_bound_speedup = cell.speedup;
    }
  }
  std::printf("decode-bound speedup at depth 4: %.2fx (target >= 1.50x) — %s\n",
              decode_bound_speedup, decode_bound_speedup >= 1.5 ? "PASS" : "FAIL");
  std::printf("traces bit-identical across depths: %s\n",
              traces_identical ? "yes" : "NO — BUG");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    json << "{\n  \"bench\": \"decode_overlap\",\n";
    json << "  \"full\": " << (config.full ? "true" : "false") << ",\n";
    json << "  \"frames_per_run\": " << frames_to_process << ",\n";
    json << "  \"traces_bit_identical\": " << (traces_identical ? "true" : "false")
         << ",\n";
    json << "  \"decode_bound_speedup_depth4\": " << decode_bound_speedup << ",\n";
    json << "  \"profiles\": [\n";
    for (size_t p = 0; p < results.size(); ++p) {
      const ProfileResult& pr = results[p];
      json << "    {\"name\": \"" << pr.profile.name << "\", "
           << "\"detect_latency_ms\": " << pr.profile.detect_latency_seconds * 1e3
           << ", \"decode_wall_ms_per_frame\": " << pr.avg_decode_wall_ms
           << ", \"rows\": [";
      for (size_t c = 0; c < pr.cells.size(); ++c) {
        json << "{\"depth\": " << pr.cells[c].depth
             << ", \"fps\": " << pr.cells[c].fps
             << ", \"speedup\": " << pr.cells[c].speedup << "}"
             << (c + 1 < pr.cells.size() ? ", " : "");
      }
      json << "]}" << (p + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("json written to %s\n", json_path.c_str());
  }

  if (!traces_identical) return 2;
  return decode_bound_speedup >= 1.5 ? 0 : 1;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  return OverlapSweep(config, json_path);
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
