// Observability overhead: the unified counter registry and per-stage latency
// histograms must be effectively free on the detect-bound profile, and — the
// hard contract — collecting them must not change a single trace bit.
//
// Two questions:
//
//   1. Trace neutrality: the same concurrent workload on a stats-on and a
//      stats-off engine must produce bit-identical traces for every session
//      (exit 3 below — instrumentation that changes answers is a correctness
//      bug, not a perf miss). A stats-on run that records nothing is the
//      same class of bug: it means the wiring came apart and the overhead
//      number enforces nothing.
//
//   2. Overhead: best (minimum) wall-clock of the stats-on workload over the
//      repetitions must stay within 3% of the stats-off best (exit 1). The
//      workload is deterministic and CPU-bound, so the minimum is the
//      noise-robust estimator — everything above it is scheduler/cache
//      interference, which hits both arms. Arm order alternates per rep so
//      drift (thermal, frequency scaling) cancels too.
//
// --quick (the default scale; CI passes it explicitly) finishes in seconds;
// --full scales the workload and repetitions up. --json=PATH writes the
// measurements (CI uploads BENCH_observability.json per PR).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

engine::EngineConfig BaseConfig(bool collect_stats) {
  engine::EngineConfig config;
  config.discriminator = engine::EngineConfig::DiscriminatorKind::kOracle;
  config.detector = detect::DetectorOptions::Perfect(0);
  config.coalesce_detect = true;  // The detect-bound profile: every frame
  config.device_batch = 64;       // rides the shared service's hot path at
                                  // paper-scale GPU batch sizes.
  config.collect_stats = collect_stats;
  return config;
}

std::vector<engine::QuerySpec> MakeSpecs(size_t sessions, uint64_t limit,
                                         uint64_t max_samples, uint64_t seed) {
  std::vector<engine::QuerySpec> specs;
  for (size_t i = 0; i < sessions; ++i) {
    engine::QuerySpec spec;
    spec.class_id = 0;
    spec.limit = limit;
    spec.options.batch_size = 32;
    spec.options.max_samples = max_samples;
    spec.options.exsample.seed = seed + i;
    specs.push_back(spec);
  }
  return specs;
}

struct RunResult {
  std::vector<query::QueryTrace> traces;
  double wall_seconds = 0.0;
  uint64_t steps_counted = 0;  // From the registry; 0 on the stats-off arm.
  uint64_t detect_records = 0;
};

RunResult RunOnce(Workload& workload, const std::vector<engine::QuerySpec>& specs,
                  bool collect_stats) {
  engine::SearchEngine engine(&workload.repo, &workload.chunking, &workload.truth,
                              BaseConfig(collect_stats));
  const auto start = std::chrono::steady_clock::now();
  auto traces = engine.RunConcurrent(specs);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  common::CheckOk(traces.status(), "workload failed");

  RunResult result;
  result.traces = std::move(traces).value();
  result.wall_seconds = std::chrono::duration<double>(elapsed).count();
  if (collect_stats) {
    stats::StatsSnapshot snap = engine.counter_registry()->Sync();
    const auto it = snap.counters.find("execution.steps");
    result.steps_counted = it != snap.counters.end() ? it->second : 0;
    result.detect_records = engine.stage_timer().Count(stats::Stage::kDetect);
  }
  return result;
}

bool SameTraces(const std::vector<query::QueryTrace>& a,
                const std::vector<query::QueryTrace>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!query::TracesBitIdentical(a[i], b[i])) return false;
  }
  return true;
}

double Best(const std::vector<double>& values) {
  return *std::min_element(values.begin(), values.end());
}

int Run(const BenchConfig& config, const std::string& json_path) {
  // Limits just under the instance count, so every session spends most of
  // its steps tail-hunting the last instances up to its sample budget: the
  // measured region is thousands of steps of steady-state pipeline work, not
  // engine setup.
  const uint64_t kFrames = config.full ? 200000 : 80000;
  const uint64_t kLimit = 118;
  const uint64_t kMaxSamples = config.full ? 40000 : 16000;
  const size_t kSessions = 6;
  const int kReps = config.Runs(/*reduced=*/9, /*full_runs=*/21);
  constexpr double kMaxOverhead = 1.03;

  auto workload = Workload::Simulated(kFrames, /*chunks=*/16, /*instances=*/120,
                                      /*duration=*/150.0, /*skew_fraction=*/0.4,
                                      config.seed);
  const std::vector<engine::QuerySpec> specs =
      MakeSpecs(kSessions, kLimit, kMaxSamples, config.seed);

  std::printf("=== Observability: trace neutrality and registry overhead ===\n\n");
  std::printf("workload: %zu sessions x limit %llu over %llu frames, %d reps "
              "per arm\n\n",
              kSessions, static_cast<unsigned long long>(kLimit),
              static_cast<unsigned long long>(kFrames), kReps);

  // Warm both arms once (allocator, page cache) before timing anything.
  RunOnce(*workload, specs, /*collect_stats=*/false);
  RunOnce(*workload, specs, /*collect_stats=*/true);

  std::vector<double> off_seconds;
  std::vector<double> on_seconds;
  bool identical = true;
  uint64_t steps_counted = 0;
  uint64_t detect_records = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    RunResult off;
    RunResult on;
    if (rep % 2 == 0) {
      off = RunOnce(*workload, specs, /*collect_stats=*/false);
      on = RunOnce(*workload, specs, /*collect_stats=*/true);
    } else {
      on = RunOnce(*workload, specs, /*collect_stats=*/true);
      off = RunOnce(*workload, specs, /*collect_stats=*/false);
    }
    off_seconds.push_back(off.wall_seconds);
    on_seconds.push_back(on.wall_seconds);
    identical = identical && SameTraces(off.traces, on.traces);
    steps_counted = on.steps_counted;
    detect_records = on.detect_records;
  }

  const double off_best = Best(off_seconds);
  const double on_best = Best(on_seconds);
  const double ratio = off_best > 0.0 ? on_best / off_best : 0.0;
  const bool collected = steps_counted > 0 && detect_records > 0;

  std::printf("stats off: best %.1f ms   stats on: best %.1f ms   "
              "overhead %.3fx (<= %.2fx required): %s\n",
              off_best * 1e3, on_best * 1e3, ratio, kMaxOverhead,
              ratio <= kMaxOverhead ? "PASS" : "FAIL");
  std::printf("stats-on traces bit-identical to stats-off: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("instrumentation live: %llu steps counted, %llu detect-stage "
              "latencies recorded: %s\n",
              static_cast<unsigned long long>(steps_counted),
              static_cast<unsigned long long>(detect_records),
              collected ? "yes" : "NO — BUG");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    json << "{\n  \"bench\": \"observability\",\n";
    json << "  \"full\": " << (config.full ? "true" : "false") << ",\n";
    json << "  \"reps\": " << kReps << ",\n";
    json << "  \"traces_identical\": " << (identical ? "true" : "false") << ",\n";
    json << "  \"instrumentation_live\": " << (collected ? "true" : "false")
         << ",\n";
    json << "  \"off_best_s\": " << off_best << ",\n";
    json << "  \"on_best_s\": " << on_best << ",\n";
    json << "  \"overhead_ratio\": " << ratio << ",\n";
    json << "  \"steps_counted\": " << steps_counted << ",\n";
    json << "  \"detect_records\": " << detect_records << "\n}\n";
    std::printf("json written to %s\n", json_path.c_str());
  }

  if (!identical || !collected) return 3;
  return ratio <= kMaxOverhead ? 0 : 1;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    // --quick is the default scale; accepted explicitly for CI clarity.
  }
  return Run(config, json_path);
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
