// Lock-free hot path: what the ring-buffer task queues, spin-then-park
// wakeups, and placement-aware pools guarantee under contention. Three
// exit-enforced claims:
//
//   1. Lock-freedom does not change computation: for all 7 methods and
//      shard counts {1, 2, 5}, a query on a fully contended engine (8
//      pool threads, decode prefetch, per-shard pools, coalesced detect
//      over loopback runner rings) produces a trace bit-identical to a
//      sequential single-threaded run of the same spec and seed (exit 3
//      on divergence). Queue mechanics move work between threads; they
//      must never reorder the computation the trace records.
//
//   2. The submit->grant hot path stays flat as sessions scale: the p95
//      wall-clock submit->grant latency of a coalesced loopback engine
//      serving 8 sessions over 8 shards stays within 1.25x of the
//      single-session run on the same 8-shard topology (exit 2). The
//      single-session baseline holds the per-flush work constant — a
//      ticket's flush fans out to all 8 shard runners regardless of
//      session count, and that fan-out costs real wall-clock on a
//      machine with fewer cores than runners — so the enforced ratio
//      isolates exactly what the rings changed: adding sessions must
//      add queue slots, not lock convoys. The 1x1 point is also
//      measured and reported for context.
//
//      The 1.25x bound is enforced per unit of offered load: on a
//      machine with fewer hardware threads than sessions, wall-clock
//      grant latency necessarily dilates by ~(sessions / cores) just
//      from time-slicing — queueing physics no queue design can beat —
//      so the allowance is 1.25x times max(1, sessions / hardware
//      threads). On hardware with >= 8 threads that is exactly the
//      strict 1.25x claim; on a one-core runner it degrades to "no
//      superlinear growth", which is the lock-convoy signature the
//      bound exists to catch. (Latencies here are microseconds; a small
//      absolute noise floor additionally forgives scheduler noise.)
//
//   3. The ring submit path beats the mutex+CV pool it replaced: 8
//      submitter threads pushing bursts of no-op tasks through the
//      lock-free pool sustain >= 2x the end-to-end task throughput of
//      the pre-refactor pool (replicated in-bench verbatim: one mutex
//      guarding a deque, a condition-variable wakeup on every submit)
//      at the same worker count (exit 1). Submitters yield between
//      bursts the way the engine's coordinator interleaves planning
//      with submission; the regime the rings win is precisely this one,
//      where spin-then-park workers absorb a burst with zero syscalls
//      while the CV pool pays a futex cycle per task.
//
// --quick is accepted as an explicit marker for the default reduced scale
// (the CI bench-smoke lane passes it); --full runs the paper-scale scene.
// --json=PATH writes the measurements (CI uploads BENCH_contention.json
// per PR).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <thread>

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

/// The shard fixture scene: a multi-clip repository (10 clips) so
/// clip-aligned sharding has real boundaries at every tested shard count.
std::unique_ptr<Workload> MakeContentionWorkload(uint64_t seed) {
  const uint64_t frames = 20000;
  common::Rng rng(seed);
  auto chunking = video::MakeFixedCountChunks(frames, 8).value();
  scene::SceneSpec spec;
  spec.total_frames = frames;
  scene::ClassPopulationSpec cls;
  cls.instance_count = 120;
  cls.duration.mean_frames = 90.0;
  spec.classes.push_back(cls);
  return std::make_unique<Workload>(
      video::VideoRepository::UniformClips(10, 2000), std::move(chunking),
      std::move(scene::GenerateScene(spec, nullptr, rng)).value());
}

const engine::Method kAllMethods[] = {
    engine::Method::kExSample,   engine::Method::kExSampleAdaptive,
    engine::Method::kRandom,     engine::Method::kRandomPlus,
    engine::Method::kSequential, engine::Method::kProxyGuided,
    engine::Method::kHybrid,
};

engine::QueryOptions MakeQueryOptions(engine::Method method, uint64_t max_samples,
                                      uint64_t seed) {
  engine::QueryOptions options;
  options.method = method;
  options.exsample.seed = seed;
  options.adaptive.seed = seed;
  options.adaptive.min_chunk_frames = 256;
  options.hybrid.seed = seed;
  options.batch_size = 16;
  options.max_samples = max_samples;
  return options;
}

/// Everything the lock-free paths touch, turned on at once: 8 pool
/// threads, overlapped decode, per-shard pools, and coalesced detect over
/// the loopback transport's runner rings.
engine::EngineConfig ContendedConfig() {
  engine::EngineConfig config;
  config.num_threads = 8;
  config.prefetch_depth = 4;
  config.io_threads = 2;
  config.threads_per_shard = 2;
  config.coalesce_detect = true;
  config.device_batch = 16;
  config.transport = engine::TransportKind::kLoopback;
  config.flush_deadline_seconds = 0.0005;
  return config;
}

// --- Profile 1: contended == sequential, bit for bit (exit 3) ----------------

struct IdentityResult {
  size_t runs = 0;
  size_t divergences = 0;
  bool identical() const { return divergences == 0; }
};

IdentityResult RunIdentity(const Workload& workload, uint64_t max_samples,
                           uint64_t seed) {
  IdentityResult result;
  common::TextTable table;
  table.SetHeader({"method", "shards=1", "shards=2", "shards=5"});
  engine::SearchEngine sequential(&workload.repo, &workload.chunking,
                                  &workload.truth);  // Defaults: 1 thread.
  for (const engine::Method method : kAllMethods) {
    const engine::QueryOptions options = MakeQueryOptions(method, max_samples, seed);
    auto base = sequential.FindDistinct(0, 20, options);
    common::CheckOk(base.status(), "sequential reference run failed");
    std::vector<std::string> row = {engine::MethodName(method)};
    for (const size_t shards : {1u, 2u, 5u}) {
      auto sharded = video::ShardedRepository::ShardByClips(workload.repo, shards);
      common::CheckOk(sharded.status(), "ShardByClips failed");
      engine::SearchEngine contended(&sharded.value(), &workload.chunking,
                                     &workload.truth, ContendedConfig());
      auto trace = contended.FindDistinct(0, 20, options);
      common::CheckOk(trace.status(), "contended run failed");
      const bool same = query::TracesBitIdentical(base.value(), trace.value());
      ++result.runs;
      if (!same) ++result.divergences;
      row.push_back(same ? "identical" : "DIVERGED");
    }
    table.AddRow(row);
  }
  std::printf("--- lock-free engine vs sequential reference: %zu runs ---\n%s\n",
              result.runs, table.ToString().c_str());
  return result;
}

// --- Profile 2: submit->grant p95 stays flat at 8x8 (exit 2) -----------------

struct ScalingPoint {
  double p95_seconds = 0.0;
  uint64_t grants = 0;
};

ScalingPoint RunScalingPoint(const Workload& workload, size_t sessions,
                             size_t shards, uint64_t max_samples, uint64_t seed) {
  auto sharded = video::ShardedRepository::ShardByClips(workload.repo, shards);
  common::CheckOk(sharded.status(), "ShardByClips failed");
  engine::EngineConfig config;
  config.num_threads = 4;
  config.coalesce_detect = true;
  config.device_batch = 16;  // == batch_size: every submit fills a batch.
  config.transport = engine::TransportKind::kLoopback;
  config.flush_deadline_seconds = 0.0005;
  engine::SearchEngine engine(&sharded.value(), &workload.chunking,
                              &workload.truth, config);
  std::vector<engine::QuerySpec> specs;
  for (size_t s = 0; s < sessions; ++s) {
    engine::QuerySpec spec;
    spec.class_id = 0;
    spec.limit = 1000000;  // Sample-capped, not result-capped.
    spec.options = MakeQueryOptions(engine::Method::kExSample, max_samples,
                                    seed + 40 + s);
    specs.push_back(spec);
  }
  common::CheckOk(engine.RunConcurrent(specs).status(), "scaling run failed");
  ScalingPoint point;
  point.p95_seconds =
      engine.stage_timer().ApproxQuantileSeconds(stats::Stage::kSubmitToGrant, 0.95);
  point.grants = engine.stage_timer().Count(stats::Stage::kSubmitToGrant);
  return point;
}

struct ScalingResult {
  ScalingPoint solo;       // 1 session x 1 shard (context only).
  ScalingPoint base;       // 1 session x 8 shards (the enforced baseline).
  ScalingPoint contended;  // 8 sessions x 8 shards.
  double ratio = 0.0;
  double allowed_ratio = 0.0;
  bool flat = false;
};

ScalingResult RunScaling(const Workload& workload, uint64_t max_samples,
                         uint64_t seed) {
  // Wall-clock p95s down at microseconds need a noise floor: on a busy
  // one-core runner a descheduled tick can double a tiny quantile without
  // any queueing regression. An absolute 150us allowance only forgives
  // scheduler noise — a real lock convoy at 8x8 costs far more.
  constexpr double kNoiseFloorSeconds = 150e-6;
  ScalingResult result;
  result.solo = RunScalingPoint(workload, 1, 1, max_samples, seed);
  result.base = RunScalingPoint(workload, 1, 8, max_samples, seed);
  result.contended = RunScalingPoint(workload, 8, 8, max_samples, seed);
  result.ratio = result.base.p95_seconds > 0.0
                     ? result.contended.p95_seconds / result.base.p95_seconds
                     : 0.0;
  // See the file comment: 1.25x per unit of offered load. With >= 8
  // hardware threads this is the strict 1.25x; below that, time-slicing
  // alone dilates wall-clock latency by ~(sessions / cores).
  const double oversubscription = std::max(
      1.0, 8.0 / static_cast<double>(common::affinity::HardwareThreads()));
  result.allowed_ratio = 1.25 * oversubscription;
  result.flat =
      result.ratio <= result.allowed_ratio ||
      (result.contended.p95_seconds - result.base.p95_seconds) <= kNoiseFloorSeconds;
  std::printf("--- submit->grant p95 as sessions scale on the 8-shard engine ---\n");
  std::printf("1 session  x 1 shard : p95 %8.1fus over %llu grants (context)\n",
              1e6 * result.solo.p95_seconds,
              static_cast<unsigned long long>(result.solo.grants));
  std::printf("1 session  x 8 shards: p95 %8.1fus over %llu grants (baseline)\n",
              1e6 * result.base.p95_seconds,
              static_cast<unsigned long long>(result.base.grants));
  std::printf("8 sessions x 8 shards: p95 %8.1fus over %llu grants — %.2fx "
              "(target <= %.2fx at %d hardware threads, or noise floor)\n\n",
              1e6 * result.contended.p95_seconds,
              static_cast<unsigned long long>(result.contended.grants),
              result.ratio, result.allowed_ratio,
              common::affinity::HardwareThreads());
  return result;
}

// --- Profile 3: ring submit beats the mutex pool it replaced (exit 1) --------

/// The pre-refactor pool's submit path, replicated verbatim: one mutex
/// guards a deque of tasks, every Submit takes the lock and notifies, every
/// worker pop takes the same lock. This is the baseline the ring-buffer
/// pool must beat — kept here (not in the library) so the comparison
/// survives the old implementation's deletion.
class MutexTaskPool {
 public:
  explicit MutexTaskPool(size_t workers) {
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~MutexTaskPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    wake_cv_.notify_one();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
        if (!tasks_.empty()) {
          task = std::move(tasks_.front());
          tasks_.pop_front();
        } else if (stop_) {
          return;
        }
      }
      if (task) task();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
};

/// 8 submitters push `tasks_per_submitter` no-op tasks each into `submit`
/// in bursts of `kBurst`, yielding between bursts (the coordinator's
/// pattern: plan a batch, submit it, plan the next); returns end-to-end
/// tasks/second (first Submit to last task executed).
template <typename SubmitFn>
double MeasureSubmitThroughput(size_t tasks_per_submitter, const SubmitFn& submit) {
  constexpr size_t kSubmitters = 8;
  constexpr size_t kBurst = 64;
  const size_t total = kSubmitters * tasks_per_submitter;
  std::atomic<size_t> executed{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      size_t in_burst = 0;
      for (size_t i = 0; i < tasks_per_submitter; ++i) {
        submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
        if (++in_burst >= kBurst) {
          in_burst = 0;
          std::this_thread::yield();
        }
      }
    });
  }
  const auto begin = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  for (std::thread& t : submitters) t.join();
  while (executed.load(std::memory_order_acquire) < total) {
    std::this_thread::yield();
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - begin;
  return static_cast<double>(total) / elapsed.count();
}

struct ThroughputResult {
  double mutex_tasks_per_second = 0.0;
  double lockfree_tasks_per_second = 0.0;
  double speedup = 0.0;
  bool fast_enough = false;
};

ThroughputResult RunThroughput(size_t tasks_per_submitter) {
  constexpr size_t kWorkers = 4;
  ThroughputResult result;
  // Best-of-three per pool: end-to-end throughput on a shared machine has
  // heavy-tailed noise (a descheduled worker stalls the drain), and the
  // claim is about the mechanism's capability, not the noisiest run.
  for (int rep = 0; rep < 3; ++rep) {
    {
      MutexTaskPool pool(kWorkers);
      result.mutex_tasks_per_second = std::max(
          result.mutex_tasks_per_second,
          MeasureSubmitThroughput(tasks_per_submitter, [&](std::function<void()> t) {
            pool.Submit(std::move(t));
          }));
    }
    {
      // kWorkers + 1 because ThreadPool counts the caller as a worker and
      // spawns n - 1 — this spawns the same 4 drain threads as the baseline.
      common::ThreadPool pool(kWorkers + 1);
      result.lockfree_tasks_per_second = std::max(
          result.lockfree_tasks_per_second,
          MeasureSubmitThroughput(tasks_per_submitter, [&](std::function<void()> t) {
            pool.Submit(std::move(t));
          }));
    }
  }
  result.speedup =
      result.mutex_tasks_per_second > 0.0
          ? result.lockfree_tasks_per_second / result.mutex_tasks_per_second
          : 0.0;
  result.fast_enough = result.speedup >= 2.0;
  std::printf("--- Submit throughput, 8 submitters x %zu tasks, %zu workers ---\n",
              tasks_per_submitter, kWorkers);
  std::printf("mutex+CV pool (pre-refactor): %10.0f tasks/s\n",
              result.mutex_tasks_per_second);
  std::printf("ring-buffer pool            : %10.0f tasks/s — %.2fx "
              "(target >= 2.0x)\n\n",
              result.lockfree_tasks_per_second, result.speedup);
  return result;
}

// -----------------------------------------------------------------------------

int Run(const BenchConfig& config, const std::string& json_path) {
  const uint64_t kIdentitySamples = config.full ? 3000 : 1500;
  const uint64_t kScalingSamples = config.full ? 1600 : 800;
  const size_t kThroughputTasks = config.full ? 50000 : 20000;
  auto workload = MakeContentionWorkload(config.seed + 76);

  std::printf("=== Lock-free hot path: determinism, grant latency, submit "
              "throughput ===\n\n");

  const IdentityResult identity =
      RunIdentity(*workload, kIdentitySamples, config.seed);
  const ScalingResult scaling =
      RunScaling(*workload, kScalingSamples, config.seed);
  const ThroughputResult throughput = RunThroughput(kThroughputTasks);

  std::printf("contended traces bit-identical to sequential runs: %s\n",
              identity.identical() ? "yes" : "NO — BUG");
  std::printf("submit->grant p95 flat at 8 sessions x 8 shards: %s\n",
              scaling.flat ? "yes" : "NO — FAIL");
  std::printf("ring submit >= 2x the mutex pool: %s\n",
              throughput.fast_enough ? "yes" : "NO — FAIL");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    json << "{\n  \"bench\": \"contention\",\n";
    json << "  \"full\": " << (config.full ? "true" : "false") << ",\n";
    json << "  \"identity\": {\"runs\": " << identity.runs
         << ", \"divergences\": " << identity.divergences
         << ", \"bit_identical\": " << (identity.identical() ? "true" : "false")
         << "},\n";
    json << "  \"submit_to_grant\": {\"solo_p95_seconds\": "
         << scaling.solo.p95_seconds << ", \"base_p95_seconds\": "
         << scaling.base.p95_seconds
         << ", \"contended_p95_seconds\": " << scaling.contended.p95_seconds
         << ", \"base_grants\": " << scaling.base.grants
         << ", \"contended_grants\": " << scaling.contended.grants
         << ", \"ratio\": " << scaling.ratio
         << ", \"allowed_ratio\": " << scaling.allowed_ratio
         << ", \"flat\": " << (scaling.flat ? "true" : "false") << "},\n";
    json << "  \"submit_throughput\": {\"mutex_tasks_per_second\": "
         << throughput.mutex_tasks_per_second
         << ", \"lockfree_tasks_per_second\": "
         << throughput.lockfree_tasks_per_second
         << ", \"speedup\": " << throughput.speedup
         << ", \"ok\": " << (throughput.fast_enough ? "true" : "false")
         << "}\n}\n";
    std::printf("json written to %s\n", json_path.c_str());
  }

  if (!identity.identical()) return 3;
  if (!scaling.flat) return 2;
  if (!throughput.fast_enough) return 1;
  return 0;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    // --quick is the explicit spelling of the default reduced scale; the CI
    // bench-smoke lane passes it so the intent is visible in the logs.
  }
  return Run(config, json_path);
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
