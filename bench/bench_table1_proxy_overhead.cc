// Reproduces Table I (Sec. V-B): the time a proxy-based approach spends just
// *scanning* the dataset to compute proxy scores, versus the time ExSample
// needs to reach 10% / 50% / 90% of all instances.
//
// As in the paper, the scan column is dataset_frames / 100 fps (the measured
// io+decode-bound scoring rate) and ExSample times are sampled frames /
// 20 fps (the measured end-to-end detection rate). The paper's claim: for
// every query, ExSample reaches 90% recall before the proxy finishes its
// scan, and reaches 10%/50% orders of magnitude earlier.
//
// Default: 2 runs at 1/10 scale (--full: 5 runs at 1/4 scale). The scan time
// uses the full-scale spec; ExSample sample counts are scale-invariant.

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(2, 5);
  const double scale = config.full ? 0.25 : 0.1;
  const std::vector<double> recalls{0.1, 0.5, 0.9};

  std::printf("=== Table I: proxy scan cost vs ExSample time-to-recall ===\n");
  std::printf("scan at %.0f fps; detection at %.0f fps; %d runs, scale %.2f\n\n",
              query::kProxyScanFps, query::kDetectorFps, runs, scale);

  common::TextTable table;
  table.SetHeader({"dataset", "(scan)", "category", "10%", "50%", "90%",
                   "90% < scan?"});
  int queries_total = 0, beat_scan = 0;

  for (const datasets::DatasetSpec& spec : datasets::AllDatasetSpecs()) {
    auto built = datasets::BuiltDataset::Build(spec, config.seed, scale);
    if (!built.ok()) {
      std::fprintf(stderr, "build %s failed\n", spec.name.c_str());
      return 1;
    }
    const datasets::BuiltDataset& ds = built.value();
    const double scan_seconds = spec.ProxyScanSeconds(query::kProxyScanFps);
    bool first_row = true;
    for (const datasets::QuerySpec& q : ds.spec().queries) {
      const uint64_t n_total = ds.truth().NumInstances(q.class_id);
      std::vector<query::QueryTrace> traces;
      for (int run = 0; run < runs; ++run) {
        core::ExSampleOptions options;
        options.seed = config.seed + 500 + run;
        core::ExSampleStrategy strategy(&ds.chunking(), options);
        traces.push_back(RunOracleQuery(ds.truth(), q.class_id, &strategy,
                                        RecallCount(n_total, recalls.back()),
                                        ds.repo().TotalFrames()));
      }
      std::vector<std::string> row{first_row ? spec.name : "",
                                   first_row
                                       ? common::FormatDuration(scan_seconds)
                                       : "",
                                   q.class_name};
      first_row = false;
      std::optional<double> t90;
      for (double recall : recalls) {
        const auto median = query::MedianSecondsToRecall(traces, recall);
        row.push_back(median ? common::FormatDuration(*median) : "-");
        if (recall == 0.9) t90 = median;
      }
      ++queries_total;
      if (t90 && *t90 < scan_seconds) ++beat_scan;
      row.push_back(t90 ? (*t90 < scan_seconds ? "yes" : "NO") : "-");
      table.AddRow(std::move(row));
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n%d / %d queries reach 90%% of instances before a proxy scan "
              "would even finish (paper: all).\n",
              beat_scan, queries_total);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
