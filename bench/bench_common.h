#ifndef EXSAMPLE_BENCH_BENCH_COMMON_H_
#define EXSAMPLE_BENCH_BENCH_COMMON_H_

// Shared helpers for the reproduction bench binaries. Each binary runs a
// reduced-scale configuration by default so the whole suite finishes in
// minutes; pass --full for paper-scale parameters (documented per bench).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exsample/exsample.h"

namespace exsample {
namespace bench {

/// Command-line configuration shared by the bench binaries.
struct BenchConfig {
  bool full = false;
  uint64_t seed = 1;
  int runs_override = -1;

  static BenchConfig Parse(int argc, char** argv) {
    BenchConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) config.full = true;
      if (std::strncmp(argv[i], "--seed=", 7) == 0) config.seed = std::atoll(argv[i] + 7);
      if (std::strncmp(argv[i], "--runs=", 7) == 0) {
        config.runs_override = std::atoi(argv[i] + 7);
      }
    }
    return config;
  }

  int Runs(int reduced, int full_runs) const {
    if (runs_override > 0) return runs_override;
    return full ? full_runs : reduced;
  }
};

/// A self-owning synthetic workload (repository + chunking + ground truth).
struct Workload {
  video::VideoRepository repo;
  video::Chunking chunking;
  scene::GroundTruth truth;

  Workload(video::VideoRepository r, video::Chunking c, scene::GroundTruth t)
      : repo(std::move(r)), chunking(std::move(c)), truth(std::move(t)) {}

  /// The Sec. IV simulation scene: `instances` objects with LogNormal
  /// durations (mean `duration`) placed by a Normal with 95% of the mass in
  /// the middle `skew_fraction` of `frames` (1.0 = no skew), split into
  /// `chunks` equal chunks.
  static std::unique_ptr<Workload> Simulated(uint64_t frames, size_t chunks,
                                             uint64_t instances, double duration,
                                             double skew_fraction, uint64_t seed) {
    common::Rng rng(seed);
    auto chunking = video::MakeFixedCountChunks(frames, chunks).value();
    scene::SceneSpec spec;
    spec.total_frames = frames;
    scene::ClassPopulationSpec cls;
    cls.instance_count = instances;
    cls.duration.mean_frames = duration;
    cls.duration.sigma_log = 0.8;  // ~50..5000 spread around mean 700 (Fig. 3).
    cls.placement = skew_fraction >= 1.0
                        ? scene::PlacementSpec::Uniform()
                        : scene::PlacementSpec::NormalCenter(skew_fraction);
    spec.classes.push_back(cls);
    return std::make_unique<Workload>(
        video::VideoRepository::SingleClip(frames), std::move(chunking),
        std::move(scene::GenerateScene(spec, &chunking, rng)).value());
  }
};

/// Runs one strategy with a perfect class-filtered detector and the oracle
/// discriminator until `target` distinct instances or `max_samples`.
/// `batch_size`/`pool` select the batch pipeline's fan-out (1/null = the
/// single-frame special case).
inline query::QueryTrace RunOracleQuery(const scene::GroundTruth& truth,
                                        int32_t class_id,
                                        query::SearchStrategy* strategy,
                                        uint64_t target, uint64_t max_samples,
                                        size_t batch_size = 1,
                                        common::ThreadPool* pool = nullptr) {
  detect::SimulatedDetector detector(&truth,
                                     detect::DetectorOptions::Perfect(class_id));
  track::OracleDiscriminator discrim;
  query::RunnerOptions options;
  options.recall_class = class_id;
  options.true_distinct_target = target;
  options.max_samples = max_samples;
  options.batch_size = batch_size;
  options.thread_pool = pool;
  query::QueryRunner runner(&truth, &detector, &discrim, options);
  return runner.Run(strategy);
}

/// Instance count corresponding to a recall fraction (matches
/// QueryTrace::RecallTargetCount).
inline uint64_t RecallCount(uint64_t total, double recall) {
  return std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(recall * static_cast<double>(total))));
}

/// Formats an optional count/ratio for table cells.
inline std::string OrDash(const std::optional<double>& v, const char* fmt = "%.0f") {
  if (!v.has_value()) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, *v);
  return buf;
}

}  // namespace bench
}  // namespace exsample

#endif  // EXSAMPLE_BENCH_BENCH_COMMON_H_
