// Reproduces Fig. 5 (Sec. V-C): time-savings ratio of ExSample over random
// sampling for every (dataset, class) query of the evaluation, at recall
// levels 0.1, 0.5, and 0.9.
//
// Datasets are the six emulations of Sec. V-A (sizes, chunk structures, and
// published N / skew values where the paper reports them). Ratios are
// medians over runs, computed on seconds at the paper's 20 fps detector rate.
// Paper's headline numbers for comparison: max ~6x, worst ~0.75x (amsterdam/
// boat), geometric mean 1.9x across all queries.
//
// Default: 2 runs at 1/10 linear scale (--full: 5 runs at 1/4 scale). Sample
// counts are approximately scale-invariant (see datasets/presets.h).

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(2, 5);
  const double scale = config.full ? 0.25 : 0.1;
  const std::vector<double> recalls{0.1, 0.5, 0.9};

  std::printf("=== Fig. 5: savings ratio ExSample vs random, all queries ===\n");
  std::printf("%d runs per strategy, datasets at %.2f linear scale\n\n", runs, scale);

  common::TextTable table;
  table.SetHeader({"dataset", "class", "N", "savings@.1", "savings@.5",
                   "savings@.9"});
  std::vector<double> all_ratios;
  double worst = 1e9, best = 0.0;
  std::string worst_name, best_name;

  for (const datasets::DatasetSpec& spec : datasets::AllDatasetSpecs()) {
    auto built = datasets::BuiltDataset::Build(spec, config.seed, scale);
    if (!built.ok()) {
      std::fprintf(stderr, "build %s failed: %s\n", spec.name.c_str(),
                   built.status().ToString().c_str());
      return 1;
    }
    const datasets::BuiltDataset& ds = built.value();
    for (const datasets::QuerySpec& q : ds.spec().queries) {
      const uint64_t n_total = ds.truth().NumInstances(q.class_id);
      const uint64_t target = RecallCount(n_total, recalls.back());
      std::vector<query::QueryTrace> random_runs, exsample_runs;
      for (int run = 0; run < runs; ++run) {
        samplers::UniformRandomStrategy random(&ds.repo(),
                                               config.seed + 300 + run);
        random_runs.push_back(RunOracleQuery(ds.truth(), q.class_id, &random,
                                             target, ds.repo().TotalFrames()));
        core::ExSampleOptions options;
        options.seed = config.seed + 400 + run;
        core::ExSampleStrategy strategy(&ds.chunking(), options);
        exsample_runs.push_back(RunOracleQuery(ds.truth(), q.class_id, &strategy,
                                               target, ds.repo().TotalFrames()));
      }
      std::vector<std::string> row{spec.name, q.class_name,
                                   common::FormatCount(q.instance_count)};
      for (double recall : recalls) {
        const auto ratio = query::SavingsRatio(random_runs, exsample_runs, recall);
        row.push_back(ratio ? common::FormatRatio(*ratio) : "-");
        if (ratio) {
          all_ratios.push_back(*ratio);
          const std::string name = spec.name + "/" + q.class_name;
          if (*ratio < worst) {
            worst = *ratio;
            worst_name = name;
          }
          if (*ratio > best) {
            best = *ratio;
            best_name = name;
          }
        }
      }
      table.AddRow(std::move(row));
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());

  std::printf("\nsummary over %zu (query, recall) ratios:\n", all_ratios.size());
  std::printf("  geometric mean: %s   (paper: 1.9x)\n",
              common::FormatRatio(common::GeometricMean(all_ratios)).c_str());
  std::printf("  best:  %s (%s)      (paper: ~6x)\n",
              common::FormatRatio(best).c_str(), best_name.c_str());
  std::printf("  worst: %s (%s)   (paper: 0.75x, amsterdam/boat)\n",
              common::FormatRatio(worst).c_str(), worst_name.c_str());
  std::printf("  p10: %s  p90: %s      (paper: 1.2x / 3.7x)\n",
              common::FormatRatio(common::Quantile(all_ratios, 0.1)).c_str(),
              common::FormatRatio(common::Quantile(all_ratios, 0.9)).c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
