// Reproduces Fig. 6 (Sec. V-C): per-chunk instance distributions, the skew
// metric S, and the realized savings for the paper's five representative
// queries:
//   A dashcam/bicycle      (paper: N=249,   S=14,  savings 7x)
//   B bdd1k/motor          (paper: N=509,   S=19,  savings 2x)
//   C night street/person  (paper: N=2078,  S=4.5, savings 3x)
//   D archie/car           (paper: N=33546, S=1.1, savings 1x)
//   E amsterdam/boat       (paper: N=588,   S=1.6, savings 0.9x)
//
// For each query we print N, K50 (the minimum chunk set covering half the
// instances — the blue bars), measured S, a sorted chunk-count profile, and
// the measured savings at 0.5 recall.

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

struct Representative {
  const char* label;
  datasets::DatasetSpec (*spec)();
  const char* class_name;
  double paper_s;
  double paper_savings;
};

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(3, 7);
  const double scale = config.full ? 0.25 : 0.1;

  const std::vector<Representative> reps{
      {"A dashcam/bicycle", &datasets::DashcamSpec, "bicycle", 14.0, 7.0},
      {"B bdd1k/motor", &datasets::Bdd1kSpec, "motor", 19.0, 2.0},
      {"C night street/person", &datasets::NightStreetSpec, "person", 4.5, 3.0},
      {"D archie/car", &datasets::ArchieSpec, "car", 1.1, 1.0},
      {"E amsterdam/boat", &datasets::AmsterdamSpec, "boat", 1.6, 0.9},
  };

  std::printf("=== Fig. 6: instance skew and savings, representative queries ===\n\n");
  for (const Representative& rep : reps) {
    auto built = datasets::BuiltDataset::Build(rep.spec(), config.seed, scale);
    if (!built.ok()) return 1;
    const datasets::BuiltDataset& ds = built.value();
    const datasets::QuerySpec* q = ds.spec().FindQuery(rep.class_name);

    const auto counts = scene::ChunkInstanceCounts(ds.truth().Trajectories(),
                                                   ds.chunking(), q->class_id);
    const size_t k50 = scene::MinChunksCoveringHalf(counts);
    const double s = scene::SkewMetric(counts);

    // Measured savings at 0.5 recall.
    const uint64_t n_total = ds.truth().NumInstances(q->class_id);
    const uint64_t target = RecallCount(n_total, 0.5);
    std::vector<query::QueryTrace> random_runs, ex_runs;
    for (int run = 0; run < runs; ++run) {
      samplers::UniformRandomStrategy random(&ds.repo(), config.seed + 600 + run);
      random_runs.push_back(RunOracleQuery(ds.truth(), q->class_id, &random,
                                           target, ds.repo().TotalFrames()));
      core::ExSampleOptions options;
      options.seed = config.seed + 700 + run;
      core::ExSampleStrategy strategy(&ds.chunking(), options);
      ex_runs.push_back(RunOracleQuery(ds.truth(), q->class_id, &strategy, target,
                                       ds.repo().TotalFrames()));
    }
    const auto ratio = query::SavingsRatio(random_runs, ex_runs, 0.5);

    std::printf("%-22s N=%-7llu K50=%-4zu S=%-5.2f (paper S=%.1f)  savings=%s "
                "(paper %.1fx)\n",
                rep.label, static_cast<unsigned long long>(n_total), k50, s,
                rep.paper_s, ratio ? common::FormatRatio(*ratio).c_str() : "-",
                rep.paper_savings);

    // Sorted per-chunk profile (descending), bucketed to <= 40 columns wide.
    std::vector<uint64_t> sorted(counts);
    std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
    const uint64_t peak = std::max<uint64_t>(1, sorted.front());
    const size_t cols = std::min<size_t>(sorted.size(), 40);
    std::printf("  chunk profile (sorted, %zu of %zu chunks): ", cols, sorted.size());
    const char* ramp = " .:-=+*#%@";
    for (size_t i = 0; i < cols; ++i) {
      // Sample the sorted list evenly.
      const uint64_t value = sorted[i * sorted.size() / cols];
      const size_t level =
          static_cast<size_t>(9.0 * static_cast<double>(value) /
                              static_cast<double>(peak));
      std::putchar(ramp[level]);
    }
    std::printf("\n\n");
  }
  std::printf("expected shape (paper Fig. 6): savings track S — high-skew\n"
              "queries (A, and B when chunk count does not dilute it) save the\n"
              "most; near-uniform queries (D, E) stay close to random.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
