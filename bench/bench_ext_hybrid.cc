// Extension bench (paper Sec. VII, "for scoring"): the ExSample + proxy
// fusion strategy — score-weighted sampling *within* Thompson-chosen chunks,
// with no dataset scan.
//
// The paper's future-work section observes that its Sec. III estimates stay
// valid under score-based within-chunk sampling and that the missing piece
// of proxy approaches is "predictive scoring of frames that avoids
// scanning". The hybrid scores only k candidate frames per detector call, so
// its scoring cost is k/100 fps per sample instead of a full upfront scan.
//
// Sweeps candidate count k on a sparse workload and compares wall-clock
// (scoring overhead included) against plain ExSample, random, and the
// scan-based proxy baseline.

#include "bench_common.h"

#include "samplers/hybrid_strategy.h"

namespace exsample {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(5, 15);
  const uint64_t kFrames = 2'000'000;
  const uint64_t kInstances = 300;
  const double kDuration = 100.0;  // Sparse: ~1.5% of frames occupied.
  const uint64_t kMax = kFrames;

  auto workload = Workload::Simulated(kFrames, 32, kInstances, kDuration,
                                      1.0 / 8, config.seed);
  detect::ProxyOptions popts;
  popts.target_class = 0;
  popts.noise_sigma = 0.1;
  detect::ProxyScorer scorer(&workload->truth, popts);
  const uint64_t target = RecallCount(kInstances, 0.5);

  std::printf("=== Extension: ExSample+proxy fusion, no scan (Sec. VII) ===\n");
  std::printf("N=%llu, duration %.0f, occupancy ~%.1f%%, %d runs\n\n",
              static_cast<unsigned long long>(kInstances), kDuration,
              100.0 * kInstances * kDuration / kFrames, runs);

  common::TextTable table;
  table.SetHeader({"strategy", "detector frames to 50%", "model seconds to 50%",
                   "upfront scan"});

  auto add_runs = [&](const std::string& name,
                      const std::vector<query::QueryTrace>& traces,
                      double upfront) {
    table.AddRow({name, OrDash(query::MedianSamplesToRecall(traces, 0.5)),
                  OrDash(query::MedianSecondsToRecall(traces, 0.5), "%.1f"),
                  upfront > 0.0 ? common::FormatDuration(upfront) : "none"});
  };

  {
    std::vector<query::QueryTrace> traces;
    for (int run = 0; run < runs; ++run) {
      samplers::UniformRandomStrategy s(&workload->repo, config.seed + 10 + run);
      traces.push_back(RunOracleQuery(workload->truth, 0, &s, target, kMax));
    }
    add_runs("random", traces, 0.0);
  }
  {
    std::vector<query::QueryTrace> traces;
    for (int run = 0; run < runs; ++run) {
      core::ExSampleOptions options;
      options.seed = config.seed + 20 + run;
      core::ExSampleStrategy s(&workload->chunking, options);
      traces.push_back(RunOracleQuery(workload->truth, 0, &s, target, kMax));
    }
    add_runs("exsample", traces, 0.0);
  }
  for (size_t k : {2, 4, 8, 16}) {
    std::vector<query::QueryTrace> traces;
    std::string name;
    for (int run = 0; run < runs; ++run) {
      samplers::HybridOptions options;
      options.candidates_per_pick = k;
      options.seed = config.seed + 30 + run;
      samplers::HybridProxyExSampleStrategy s(&workload->chunking, &scorer,
                                              options);
      if (run == 0) name = s.name();
      traces.push_back(RunOracleQuery(workload->truth, 0, &s, target, kMax));
    }
    add_runs(name, traces, 0.0);
  }
  {
    std::vector<query::QueryTrace> traces;
    double upfront = 0.0;
    for (int run = 0; run < runs; ++run) {
      samplers::ProxyGuidedStrategy s(&workload->repo, &scorer);
      upfront = s.UpfrontCostSeconds();
      traces.push_back(RunOracleQuery(workload->truth, 0, &s, target, kMax));
    }
    add_runs("proxy (scan)", traces, upfront);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexpected shape: the hybrid needs fewer detector frames than plain\n"
      "exsample (candidates are pre-screened) and beats the scan-based proxy\n"
      "on wall clock for limit queries because it never pays the scan.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
