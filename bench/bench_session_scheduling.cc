// Session scheduling + cross-session detector coalescing: what the shared
// detect stage buys a concurrent workload.
//
// Two questions, both answered in *simulated* detector-seconds (bit-exact,
// so the acceptance lines are CI-stable):
//
//   1. Fill rate: with per-session batching, a session stepping with batch B
//      occupies a `device_batch`-sized detector call alone. The shared
//      `query::DetectorService` merges the frames of every session the
//      scheduler stepped this round into full device batches — fill rate
//      must improve strictly with session count (exit code enforced).
//
//   2. Scheduling: fair round-robin spends detector slots on low-yield
//      queries while high-yield ones wait. The Thompson-style priority
//      scheduler steps sessions by sampled marginal result rate, so on a
//      skewed workload (sessions searching classes of very different
//      abundance) the aggregate time-to-first-result — the mean, over
//      sessions, of global detector-seconds consumed when the session
//      reports its first result — must improve >= 1.3x (exit code
//      enforced). Per-session traces are asserted bit-identical between the
//      two schedulers: scheduling reorders work, never changes it.
//
// --json=PATH writes the measurements (CI uploads BENCH_session_scheduling
// .json per PR).

#include <cstring>
#include <fstream>

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

/// A skewed concurrent workload: one class per session, abundance falling
/// steeply across sessions, so marginal result rates span two orders of
/// magnitude.
struct SkewedWorkload {
  video::VideoRepository repo;
  video::Chunking chunking;
  scene::GroundTruth truth;
  size_t num_classes;

  SkewedWorkload(video::VideoRepository r, video::Chunking c, scene::GroundTruth t,
                 size_t n)
      : repo(std::move(r)), chunking(std::move(c)), truth(std::move(t)), num_classes(n) {}

  static std::unique_ptr<SkewedWorkload> Make(uint64_t frames, uint64_t seed) {
    const uint64_t counts[] = {150, 100, 70, 45, 25, 12, 6, 3};
    common::Rng rng(seed);
    auto chunking = video::MakeFixedCountChunks(frames, 16).value();
    scene::SceneSpec spec;
    spec.total_frames = frames;
    for (size_t c = 0; c < sizeof(counts) / sizeof(counts[0]); ++c) {
      scene::ClassPopulationSpec cls;
      cls.class_id = static_cast<int32_t>(c);
      cls.instance_count = counts[c];
      cls.duration.mean_frames = 150.0;
      spec.classes.push_back(cls);
    }
    return std::make_unique<SkewedWorkload>(
        video::VideoRepository::SingleClip(frames), std::move(chunking),
        std::move(scene::GenerateScene(spec, &chunking, rng)).value(),
        sizeof(counts) / sizeof(counts[0]));
  }
};

engine::EngineConfig BaseConfig() {
  engine::EngineConfig config;
  config.discriminator = engine::EngineConfig::DiscriminatorKind::kOracle;
  config.detector = detect::DetectorOptions::Perfect(scene::GroundTruth::kAllClasses);
  return config;
}

struct DriveResult {
  std::vector<query::QueryTrace> traces;
  /// Global simulated seconds (summed over every session) when session i
  /// first reported a result / reached its limit; -1 if it never did.
  std::vector<double> first_result_cost;
  std::vector<double> completion_cost;
  double fill_rate = 0.0;
};

/// Runs `specs` through the engine's own `RunConcurrent` driver, watching
/// the global cost clock through its per-step observer so each session's
/// time-to-result is measurable — the gated numbers come from the shipped
/// scheduling loop, not a bench-side reimplementation of it.
DriveResult Drive(engine::SearchEngine& engine,
                  const std::vector<engine::QuerySpec>& specs) {
  const size_t n = specs.size();
  DriveResult result;
  result.first_result_cost.assign(n, -1.0);
  result.completion_cost.assign(n, -1.0);

  std::vector<double> session_seconds(n, 0.0);
  const auto observer = [&](size_t i, const engine::QuerySession& session) {
    const query::DiscoveryPoint& final = session.Trace().final;
    session_seconds[i] = final.seconds;
    double global = 0.0;
    for (const double s : session_seconds) global += s;
    if (final.reported_results >= 1 && result.first_result_cost[i] < 0.0) {
      result.first_result_cost[i] = global;
    }
    if (final.reported_results >= specs[i].limit &&
        result.completion_cost[i] < 0.0) {
      result.completion_cost[i] = global;
    }
  };

  auto traces = engine.RunConcurrent(specs, observer);
  common::CheckOk(traces.status(), "bench workload failed");
  result.traces = std::move(traces).value();
  if (engine.detector_service() != nullptr) {
    result.fill_rate = engine.detector_service()->FillRate();
  }
  return result;
}

double Mean(const std::vector<double>& values) {
  double sum = 0.0;
  for (const double v : values) sum += v < 0.0 ? 0.0 : v;
  return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
}

int Run(const BenchConfig& config, const std::string& json_path) {
  const uint64_t kFrames = config.full ? 120000 : 60000;
  const uint64_t kLimit = 3;          // "Find 3 distinct objects" per session.
  const uint64_t kMaxSamples = 4000;  // Safety cap; never reached in practice.
  auto workload = SkewedWorkload::Make(kFrames, config.seed);

  std::printf("=== Session scheduling: shared detect batches + step priority ===\n\n");

  // --- Part 1: device-batch fill rate vs session count ----------------------
  const size_t kSessionCounts[] = {1, 2, 4, 8};
  const size_t kDeviceBatch = 64;
  std::vector<double> fill_rates;
  {
    common::TextTable table;
    table.SetHeader({"sessions", "fill rate", "shared batches"});
    for (const size_t n : kSessionCounts) {
      engine::EngineConfig engine_config = BaseConfig();
      engine_config.coalesce_detect = true;
      engine_config.device_batch = kDeviceBatch;
      engine::SearchEngine engine(&workload->repo, &workload->chunking,
                                  &workload->truth, engine_config);
      std::vector<engine::QuerySpec> specs;
      for (size_t i = 0; i < n; ++i) {
        engine::QuerySpec spec;
        spec.class_id = 0;
        spec.limit = 1000000;  // Sample-capped: sessions run in lockstep.
        spec.options.batch_size = 8;
        spec.options.max_samples = 256;
        spec.options.exsample.seed = config.seed + i;
        specs.push_back(spec);
      }
      const DriveResult run = Drive(engine, specs);
      fill_rates.push_back(run.fill_rate);
      char fill_buf[32];
      std::snprintf(fill_buf, sizeof(fill_buf), "%.1f%%", 100.0 * run.fill_rate);
      table.AddRow({std::to_string(n), fill_buf,
                    std::to_string(engine.detector_service()->stats().shared_batches)});
    }
    std::printf("--- coalesced detect: device batch %zu, per-session batch 8 ---\n%s\n",
                kDeviceBatch, table.ToString().c_str());
  }
  bool fill_improves = true;
  for (size_t i = 1; i < fill_rates.size(); ++i) {
    if (fill_rates[i] <= fill_rates[i - 1]) fill_improves = false;
  }

  // --- Part 2: fair vs priority on the skewed workload ----------------------
  std::vector<engine::QuerySpec> specs;
  for (size_t c = 0; c < workload->num_classes; ++c) {
    engine::QuerySpec spec;
    spec.class_id = static_cast<int32_t>(c);
    spec.limit = kLimit;
    spec.options.batch_size = 4;
    spec.options.max_samples = kMaxSamples;
    spec.options.exsample.seed = config.seed;
    specs.push_back(spec);
  }
  const auto run_with = [&](query::SchedulerKind kind) {
    engine::EngineConfig engine_config = BaseConfig();
    engine_config.coalesce_detect = true;
    engine_config.device_batch = 32;
    engine_config.scheduler = kind;
    engine_config.scheduler_seed = config.seed;
    // A laxer starvation bound than the default: the skewed profile's point
    // is letting the scheduler commit to high-marginal-utility sessions, and
    // the guard only needs to keep the rare-class queries from stalling
    // outright.
    engine_config.scheduler_starvation_rounds = 8;
    engine::SearchEngine engine(&workload->repo, &workload->chunking,
                                &workload->truth, engine_config);
    return Drive(engine, specs);
  };
  const DriveResult fair = run_with(query::SchedulerKind::kFair);
  const DriveResult priority = run_with(query::SchedulerKind::kPriority);

  bool traces_identical = fair.traces.size() == priority.traces.size();
  for (size_t i = 0; traces_identical && i < fair.traces.size(); ++i) {
    traces_identical = query::TracesBitIdentical(fair.traces[i], priority.traces[i]);
  }
  if (!traces_identical) {
    // Scheduling may only reorder work. A diverged trace is a correctness
    // bug in the coalescing/scheduling path, not a perf result.
    std::fprintf(stderr, "FATAL: scheduler changed a session's trace\n");
  }

  {
    common::TextTable table;
    table.SetHeader({"session", "class abundance", "first result (fair)",
                     "first result (priority)", "to-3-results (fair)",
                     "to-3-results (priority)"});
    const uint64_t counts[] = {150, 100, 70, 45, 25, 12, 6, 3};
    for (size_t i = 0; i < specs.size(); ++i) {
      char fair_first[32], prio_first[32], fair_done[32], prio_done[32];
      std::snprintf(fair_first, sizeof(fair_first), "%.1fs", fair.first_result_cost[i]);
      std::snprintf(prio_first, sizeof(prio_first), "%.1fs",
                    priority.first_result_cost[i]);
      std::snprintf(fair_done, sizeof(fair_done), "%.1fs", fair.completion_cost[i]);
      std::snprintf(prio_done, sizeof(prio_done), "%.1fs",
                    priority.completion_cost[i]);
      table.AddRow({std::to_string(i), std::to_string(counts[i]) + " instances",
                    fair_first, prio_first, fair_done, prio_done});
    }
    std::printf(
        "--- skewed workload: %zu sessions, limit %llu each; costs are global\n"
        "    simulated detector-seconds at the moment the session got there ---\n%s\n",
        specs.size(), static_cast<unsigned long long>(kLimit),
        table.ToString().c_str());
  }

  const double fair_first = Mean(fair.first_result_cost);
  const double priority_first = Mean(priority.first_result_cost);
  const double fair_done = Mean(fair.completion_cost);
  const double priority_done = Mean(priority.completion_cost);
  const double speedup = priority_first > 0.0 ? fair_first / priority_first : 0.0;
  const double done_speedup = priority_done > 0.0 ? fair_done / priority_done : 0.0;

  std::printf("aggregate time-to-first-result: fair %.1fs, priority %.1fs — %.2fx "
              "(target >= 1.30x) — %s\n",
              fair_first, priority_first, speedup,
              speedup >= 1.3 ? "PASS" : "FAIL");
  std::printf("aggregate time-to-%llu-results: fair %.1fs, priority %.1fs — %.2fx\n",
              static_cast<unsigned long long>(kLimit), fair_done, priority_done,
              done_speedup);
  std::printf("fill rate strictly improves with session count: %s\n",
              fill_improves ? "yes" : "NO — FAIL");
  std::printf("traces bit-identical across schedulers: %s\n",
              traces_identical ? "yes" : "NO — BUG");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    json << "{\n  \"bench\": \"session_scheduling\",\n";
    json << "  \"full\": " << (config.full ? "true" : "false") << ",\n";
    json << "  \"traces_bit_identical\": " << (traces_identical ? "true" : "false")
         << ",\n";
    json << "  \"fill_rates\": [";
    for (size_t i = 0; i < fill_rates.size(); ++i) {
      json << "{\"sessions\": " << kSessionCounts[i]
           << ", \"fill\": " << fill_rates[i] << "}"
           << (i + 1 < fill_rates.size() ? ", " : "");
    }
    json << "],\n";
    json << "  \"fill_improves_with_sessions\": " << (fill_improves ? "true" : "false")
         << ",\n";
    json << "  \"aggregate_first_result\": {\"fair\": " << fair_first
         << ", \"priority\": " << priority_first << ", \"speedup\": " << speedup
         << "},\n";
    json << "  \"aggregate_completion\": {\"fair\": " << fair_done
         << ", \"priority\": " << priority_done
         << ", \"speedup\": " << done_speedup << "},\n";
    json << "  \"sessions\": [\n";
    for (size_t i = 0; i < specs.size(); ++i) {
      json << "    {\"class\": " << specs[i].class_id
           << ", \"fair_first\": " << fair.first_result_cost[i]
           << ", \"priority_first\": " << priority.first_result_cost[i]
           << ", \"fair_completion\": " << fair.completion_cost[i]
           << ", \"priority_completion\": " << priority.completion_cost[i] << "}"
           << (i + 1 < specs.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("json written to %s\n", json_path.c_str());
  }

  if (!traces_identical) return 3;
  if (!fill_improves) return 2;
  return speedup >= 1.3 ? 0 : 1;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  return Run(config, json_path);
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
