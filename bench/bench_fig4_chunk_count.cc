// Reproduces Fig. 4 (Sec. IV-C): the effect of the number of chunks on
// ExSample for a fixed workload (skew 1/32, mean duration 700 — the third
// row/column cell of Fig. 3).
//
// Prints median instances found vs samples for chunk counts {1, 2, 16, 128,
// 1024} plus random, and the Eq. IV.1 optimal-allocation expectation per
// chunk count (the dashed lines: for 2 and 16 chunks ExSample should track
// the optimum closely; at 128 and especially 1024 a gap opens).
//
// Default: 3 runs (--full: 21).

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(3, 21);
  const uint64_t kFrames = 16'000'000;
  const uint64_t kInstances = 2000;
  const uint64_t kMaxSamples = 30'000;  // Fig. 4's x-axis range.
  const std::vector<size_t> chunk_counts{1, 2, 16, 128, 1024};
  std::vector<uint64_t> sample_grid;
  for (uint64_t s : {1000, 3000, 10000, 30000}) sample_grid.push_back(s);

  std::printf("=== Fig. 4: varying the number of chunks (Sec. IV-C) ===\n");
  std::printf("skew 1/32, mean duration 700, %d runs\n\n", runs);

  // One scene shared by every chunking (the chunking does not affect the
  // ground truth, only the algorithm).
  auto base = Workload::Simulated(kFrames, 128, kInstances, 700.0, 1.0 / 32,
                                  config.seed);

  common::TextTable table;
  std::vector<std::string> header{"strategy"};
  for (uint64_t s : sample_grid) header.push_back("n=" + std::to_string(s));
  table.SetHeader(header);

  // Random baseline.
  {
    std::vector<query::QueryTrace> traces;
    for (int run = 0; run < runs; ++run) {
      samplers::UniformRandomStrategy random(&base->repo, config.seed + 50 + run);
      traces.push_back(
          RunOracleQuery(base->truth, 0, &random, kInstances, kMaxSamples));
    }
    const auto matrix = query::DistinctAtSampleGrid(traces, sample_grid);
    const auto band = stats::AggregateRuns(matrix);
    std::vector<std::string> row{"random"};
    for (double v : band.median) row.push_back(std::to_string(static_cast<int>(v)));
    table.AddRow(std::move(row));
    table.AddSeparator();
  }

  for (size_t chunks : chunk_counts) {
    auto chunking = video::MakeFixedCountChunks(kFrames, chunks).value();
    std::vector<query::QueryTrace> traces;
    for (int run = 0; run < runs; ++run) {
      core::ExSampleOptions options;
      options.seed = config.seed + 100 + run;
      core::ExSampleStrategy strategy(&chunking, options);
      traces.push_back(
          RunOracleQuery(base->truth, 0, &strategy, kInstances, kMaxSamples));
    }
    const auto matrix = query::DistinctAtSampleGrid(traces, sample_grid);
    const auto band = stats::AggregateRuns(matrix);
    std::vector<std::string> row{"exsample/" + std::to_string(chunks)};
    for (double v : band.median) row.push_back(std::to_string(static_cast<int>(v)));
    table.AddRow(std::move(row));

    // Eq. IV.1 optimum under this chunking, evaluated at the grid points.
    const opt::ChunkProbabilityMatrix prob_matrix(base->truth.Trajectories(),
                                                  chunking, 0);
    std::vector<std::string> opt_row{"optimal/" + std::to_string(chunks)};
    for (uint64_t s : sample_grid) {
      const auto result = opt::OptimalWeights(prob_matrix, static_cast<double>(s));
      opt_row.push_back(std::to_string(static_cast<int>(result.expected_discoveries)));
    }
    table.AddRow(std::move(opt_row));
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexpected shape (paper Fig. 4): more chunks help up to ~128 but 1024\n"
      "degrades (chunk statistics get too thin); optimal/2 and optimal/16\n"
      "are matched closely by ExSample, optimal/128+ are not.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
