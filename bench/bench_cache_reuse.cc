// Cross-query result reuse: what the detection cache, scanned sketch, and
// warm-started beliefs buy across queries — and that they buy it without
// changing a single answer.
//
// Three questions:
//
//   1. Repeated identical query: the second run of an identical query must
//      answer (nearly) entirely from the shared detection cache — charged
//      detector seconds drop by >= 10x (exit 1 below) — while reproducing
//      the cold run's discovery sequence exactly (exit 3: a reuse layer that
//      changes answers is a correctness bug, not a perf miss).
//
//   2. Overlapping workload: a second wave of queries where half the specs
//      repeat the first wave must finish >= 1.5x cheaper end-to-end (summed
//      simulated detector seconds) than the same wave on a reuse-free
//      engine, with the cold first wave still bit-identical to reuse-off
//      (exit 3).
//
//   3. Warm-started beliefs: after one query banks its chunk posteriors, a
//      fresh query for the same key must reach its first k results in fewer
//      samples than a cold-prior run (exit 1).
//
// --quick (the default scale; CI passes it explicitly) finishes in seconds;
// --full scales the workload up. --json=PATH writes the measurements
// (CI uploads BENCH_cache_reuse.json per PR).

#include <algorithm>
#include <cstring>
#include <fstream>

#include "bench_common.h"

namespace exsample {
namespace bench {
namespace {

engine::EngineConfig BaseConfig() {
  engine::EngineConfig config;
  config.discriminator = engine::EngineConfig::DiscriminatorKind::kOracle;
  config.detector = detect::DetectorOptions::Perfect(0);
  config.coalesce_detect = true;
  config.device_batch = 32;
  return config;
}

std::vector<engine::QuerySpec> MakeSpecs(size_t sessions, uint64_t limit,
                                         uint64_t seed) {
  std::vector<engine::QuerySpec> specs;
  for (size_t i = 0; i < sessions; ++i) {
    engine::QuerySpec spec;
    spec.class_id = 0;
    spec.limit = limit;
    spec.options.batch_size = 4;
    spec.options.max_samples = 3000;
    spec.options.exsample.seed = seed + i;
    specs.push_back(spec);
  }
  return specs;
}

// Reused detections are charged zero seconds, so a repeat run's trace differs
// from the cold run's in `seconds` alone; the *answers* — which frames were
// picked, what was discovered when — must match point for point.
bool SameDiscovery(const query::QueryTrace& a, const query::QueryTrace& b) {
  if (a.points.size() != b.points.size()) return false;
  for (size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].samples != b.points[i].samples ||
        a.points[i].reported_results != b.points[i].reported_results ||
        a.points[i].true_distinct != b.points[i].true_distinct) {
      return false;
    }
  }
  return a.final.samples == b.final.samples &&
         a.final.reported_results == b.final.reported_results &&
         a.final.true_distinct == b.final.true_distinct;
}

double SumSeconds(const std::vector<query::QueryTrace>& traces) {
  double sum = 0.0;
  for (const query::QueryTrace& trace : traces) sum += trace.final.seconds;
  return sum;
}

// --- Part 1: repeated identical query ---------------------------------------

struct RepeatPart {
  bool identical = false;
  double cold_charged = 0.0;
  double warm_charged = 0.0;
  double warm_saved = 0.0;
  uint64_t warm_hits = 0;
  uint64_t warm_misses = 0;
  double ratio = 0.0;
};

RepeatPart RunRepeatedQuery(Workload& workload, uint64_t limit, uint64_t seed) {
  engine::EngineConfig config = BaseConfig();
  config.reuse.cache = true;
  config.reuse.sketch = true;
  engine::SearchEngine engine(&workload.repo, &workload.chunking, &workload.truth,
                              config);

  engine::QueryOptions options;
  options.batch_size = 4;
  options.max_samples = 3000;
  options.exsample.seed = seed;

  RepeatPart part;
  query::QueryTrace traces[2];
  for (int run = 0; run < 2; ++run) {
    auto session = engine.CreateSession(/*class_id=*/0, limit, options);
    common::CheckOk(session.status(), "session creation failed");
    traces[run] = session.value()->Finish();
    const reuse::ReuseSessionStats& stats = session.value()->reuse_stats();
    if (run == 0) {
      part.cold_charged = stats.charged_detector_seconds;
    } else {
      part.warm_charged = stats.charged_detector_seconds;
      part.warm_saved = stats.saved_detector_seconds;
      part.warm_hits = stats.cache_hits;
      part.warm_misses = stats.cache_misses;
    }
  }
  part.identical = SameDiscovery(traces[0], traces[1]);
  // A perfect repeat charges zero: report the ratio against a floor of one
  // detector-second-per-frame epsilon so "infinitely cheaper" stays finite.
  const double floor = 1e-12;
  part.ratio = part.cold_charged / std::max(part.warm_charged, floor);
  return part;
}

// --- Part 2: 50%-overlap workload -------------------------------------------

struct OverlapPart {
  bool answers_identical = false;
  double off_seconds = 0.0;
  double on_seconds = 0.0;
  double speedup = 0.0;
  uint64_t cache_hits = 0;
  uint64_t sketch_skips = 0;
};

OverlapPart RunOverlapWorkload(Workload& workload, uint64_t limit, uint64_t seed) {
  // Wave 1 primes; wave 2 repeats half of wave 1's specs verbatim and brings
  // two fresh seeds — a 50%-overlap workload.
  const std::vector<engine::QuerySpec> wave1 = MakeSpecs(4, limit, seed);
  std::vector<engine::QuerySpec> wave2 = MakeSpecs(4, limit, seed + 100);
  wave2[0] = wave1[0];
  wave2[1] = wave1[1];

  engine::SearchEngine off(&workload.repo, &workload.chunking, &workload.truth,
                           BaseConfig());
  auto off1 = off.RunConcurrent(wave1);
  common::CheckOk(off1.status(), "reuse-off wave 1 failed");
  auto off2 = off.RunConcurrent(wave2);
  common::CheckOk(off2.status(), "reuse-off wave 2 failed");

  engine::EngineConfig on_config = BaseConfig();
  on_config.reuse.cache = true;
  on_config.reuse.sketch = true;
  engine::SearchEngine on(&workload.repo, &workload.chunking, &workload.truth,
                          on_config);
  auto on1 = on.RunConcurrent(wave1);
  common::CheckOk(on1.status(), "reuse-on wave 1 failed");
  auto on2 = on.RunConcurrent(wave2);
  common::CheckOk(on2.status(), "reuse-on wave 2 failed");

  OverlapPart part;
  // Concurrent sessions share the cache even within a wave, so reuse-on
  // traces may be *cheaper* than reuse-off from the first wave on — but the
  // answers (frames picked, discoveries made) must match point for point.
  part.answers_identical = true;
  for (size_t i = 0; i < wave1.size(); ++i) {
    if (!SameDiscovery(off1.value()[i], on1.value()[i]) ||
        !SameDiscovery(off2.value()[i], on2.value()[i])) {
      part.answers_identical = false;
    }
  }
  part.off_seconds = SumSeconds(off2.value());
  part.on_seconds = SumSeconds(on2.value());
  part.speedup = part.on_seconds > 0.0 ? part.off_seconds / part.on_seconds : 0.0;
  const reuse::DetectionCacheStats cache = on.reuse_manager()->cache().Stats();
  part.cache_hits = cache.hits;
  part.sketch_skips = on.reuse_manager()->sketch().Stats().known_empty;
  return part;
}

// --- Part 3: warm-started beliefs -------------------------------------------

struct WarmPart {
  double cold_mean_samples = 0.0;
  double warm_mean_samples = 0.0;
  uint64_t prime_samples = 0;
  size_t probes = 0;
};

// Thompson sampling is randomized, so one probe seed proves nothing either
// way: bank a few priming queries, then compare the *mean* samples-to-limit
// over several probe seeds against the same probes on cold priors.
WarmPart RunWarmStart(Workload& workload, uint64_t limit, uint64_t seed) {
  const size_t kPrimes = 3;
  const size_t kProbes = 5;
  engine::QueryOptions options;
  options.batch_size = 1;  // Algorithm-1 stepping: every sample informed.

  WarmPart part;
  part.probes = kProbes;

  engine::SearchEngine cold(&workload.repo, &workload.chunking, &workload.truth,
                            BaseConfig());
  engine::EngineConfig warm_config = BaseConfig();
  warm_config.reuse.warm_start = true;  // Beliefs only: frame picks change,
                                        // cost attribution stays real.
  engine::SearchEngine warm(&workload.repo, &workload.chunking, &workload.truth,
                            warm_config);
  for (size_t i = 0; i < kPrimes; ++i) {
    options.exsample.seed = seed + i;
    auto prime = warm.FindDistinct(/*class_id=*/0, limit, options);
    common::CheckOk(prime.status(), "warm prime failed");
    part.prime_samples += prime.value().final.samples;
  }
  for (size_t i = 0; i < kProbes; ++i) {
    options.exsample.seed = seed + 100 + i;
    auto cold_trace = cold.FindDistinct(/*class_id=*/0, limit, options);
    common::CheckOk(cold_trace.status(), "cold probe failed");
    part.cold_mean_samples += static_cast<double>(cold_trace.value().final.samples);
    auto warm_trace = warm.FindDistinct(/*class_id=*/0, limit, options);
    common::CheckOk(warm_trace.status(), "warm probe failed");
    part.warm_mean_samples += static_cast<double>(warm_trace.value().final.samples);
  }
  part.cold_mean_samples /= static_cast<double>(kProbes);
  part.warm_mean_samples /= static_cast<double>(kProbes);
  return part;
}

int Run(const BenchConfig& config, const std::string& json_path) {
  const uint64_t kFrames = config.full ? 120000 : 50000;
  const uint64_t kLimit = config.full ? 16 : 10;
  auto workload = Workload::Simulated(kFrames, /*chunks=*/16, /*instances=*/80,
                                      /*duration=*/150.0, /*skew_fraction=*/0.4,
                                      config.seed);

  std::printf("=== Cross-query reuse: cache, overlap workload, warm start ===\n\n");

  // --- Part 1 ---------------------------------------------------------------
  const RepeatPart repeat = RunRepeatedQuery(*workload, kLimit, config.seed);
  {
    common::TextTable table;
    table.SetHeader({"run", "charged det-s", "saved det-s", "hits", "misses"});
    char cold_charged[32], warm_charged[32], warm_saved[32];
    std::snprintf(cold_charged, sizeof(cold_charged), "%.3f", repeat.cold_charged);
    std::snprintf(warm_charged, sizeof(warm_charged), "%.3f", repeat.warm_charged);
    std::snprintf(warm_saved, sizeof(warm_saved), "%.3f", repeat.warm_saved);
    table.AddRow({"cold (empty cache)", cold_charged, "0.000", "-", "-"});
    table.AddRow({"repeat (same spec)", warm_charged, warm_saved,
                  std::to_string(repeat.warm_hits),
                  std::to_string(repeat.warm_misses)});
    std::printf("--- repeated identical query, limit %llu ---\n%s",
                static_cast<unsigned long long>(kLimit), table.ToString().c_str());
    std::printf("charged-seconds reduction: %.0fx (>= 10x required): %s\n",
                repeat.ratio, repeat.ratio >= 10.0 ? "PASS" : "FAIL");
    std::printf("repeat reproduced the cold discovery sequence: %s\n\n",
                repeat.identical ? "yes" : "NO — BUG");
  }

  // --- Part 2 ---------------------------------------------------------------
  const OverlapPart overlap = RunOverlapWorkload(*workload, kLimit, config.seed);
  {
    std::printf("--- 50%%-overlap workload: wave 2 = 2 repeats + 2 fresh ---\n");
    std::printf("wave-2 end-to-end: reuse off %.3f det-s, reuse on %.3f det-s "
                "(%.2fx; >= 1.5x required): %s\n",
                overlap.off_seconds, overlap.on_seconds, overlap.speedup,
                overlap.speedup >= 1.5 ? "PASS" : "FAIL");
    std::printf("shared cache: %llu hits, %llu proven-empty sketch entries\n",
                static_cast<unsigned long long>(overlap.cache_hits),
                static_cast<unsigned long long>(overlap.sketch_skips));
    std::printf("every query's discovery sequence matches reuse-off: %s\n\n",
                overlap.answers_identical ? "yes" : "NO — BUG");
  }

  // --- Part 3 ---------------------------------------------------------------
  // Warm starts pay off where beliefs carry real information: a sparse,
  // heavily skewed scene in which cold Thompson sampling must spend samples
  // discovering which chunks are empty before it can exploit the hot ones.
  const uint64_t kWarmLimit = 8;
  auto sparse = Workload::Simulated(kFrames, /*chunks=*/16, /*instances=*/16,
                                    /*duration=*/80.0, /*skew_fraction=*/0.15,
                                    config.seed);
  const WarmPart warm = RunWarmStart(*sparse, kWarmLimit, config.seed);
  {
    std::printf("--- warm-started beliefs: samples to first %llu results ---\n",
                static_cast<unsigned long long>(kWarmLimit));
    std::printf("cold priors %.1f samples; warm priors %.1f samples "
                "(mean of %zu probes; bank primed with %llu samples): %s\n\n",
                warm.cold_mean_samples, warm.warm_mean_samples, warm.probes,
                static_cast<unsigned long long>(warm.prime_samples),
                warm.warm_mean_samples < warm.cold_mean_samples ? "PASS" : "FAIL");
  }

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    json << "{\n  \"bench\": \"cache_reuse\",\n";
    json << "  \"full\": " << (config.full ? "true" : "false") << ",\n";
    json << "  \"repeat\": {\"discovery_identical\": "
         << (repeat.identical ? "true" : "false")
         << ", \"cold_charged_s\": " << repeat.cold_charged
         << ", \"warm_charged_s\": " << repeat.warm_charged
         << ", \"warm_saved_s\": " << repeat.warm_saved
         << ", \"cache_hits\": " << repeat.warm_hits
         << ", \"cache_misses\": " << repeat.warm_misses
         << ", \"charged_reduction\": " << repeat.ratio << "},\n";
    json << "  \"overlap\": {\"answers_identical\": "
         << (overlap.answers_identical ? "true" : "false")
         << ", \"off_seconds\": " << overlap.off_seconds
         << ", \"on_seconds\": " << overlap.on_seconds
         << ", \"speedup\": " << overlap.speedup
         << ", \"cache_hits\": " << overlap.cache_hits << "},\n";
    json << "  \"warm_start\": {\"cold_mean_samples\": " << warm.cold_mean_samples
         << ", \"warm_mean_samples\": " << warm.warm_mean_samples
         << ", \"probes\": " << warm.probes
         << ", \"prime_samples\": " << warm.prime_samples << "}\n}\n";
    std::printf("json written to %s\n", json_path.c_str());
  }

  // Exit enforcement: answer changes are correctness bugs, perf floors are
  // regressions.
  if (!repeat.identical || !overlap.answers_identical) return 3;
  const bool perf_ok = repeat.ratio >= 10.0 && overlap.speedup >= 1.5 &&
                       warm.warm_mean_samples < warm.cold_mean_samples;
  return perf_ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    // --quick is the default scale; accepted explicitly for CI clarity.
  }
  return Run(config, json_path);
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
