// Extension bench (paper Sec. VII, "automating chunking"): adaptive chunk
// splitting versus static chunkings across skew levels and recall targets.
//
// The static chunk count is a knob the user must guess (Fig. 4 shows both
// too-few and too-many hurt). The adaptive strategy starts coarse and splits
// sampled chunks, so one default should serve every skew level. We sweep
// skew in {1/8, 1/64, 1/512} and report median samples to 50% and 80% recall
// for random, static M in {8, 128, 1024}, and adaptive (init 8).

#include "bench_common.h"

#include "core/adaptive_exsample.h"

namespace exsample {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::Parse(argc, argv);
  const int runs = config.Runs(5, 15);
  const uint64_t kFrames = 8'000'000;
  const uint64_t kInstances = 1000;
  const uint64_t kMax = 2'000'000;

  std::printf("=== Extension: adaptive chunking vs static (Sec. VII) ===\n");
  std::printf("N=%llu, duration 300, %d runs\n\n",
              static_cast<unsigned long long>(kInstances), runs);

  common::TextTable table;
  table.SetHeader({"skew", "strategy", "to 50%", "to 80%", "final chunks"});
  for (double skew : {1.0 / 8, 1.0 / 64, 1.0 / 512}) {
    auto workload = Workload::Simulated(kFrames, 1024, kInstances, 300.0, skew,
                                        config.seed);
    const uint64_t t80 = RecallCount(kInstances, 0.8);
    char skew_label[16];
    std::snprintf(skew_label, sizeof(skew_label), "1/%d",
                  static_cast<int>(1.0 / skew));

    {
      std::vector<query::QueryTrace> traces;
      for (int run = 0; run < runs; ++run) {
        samplers::UniformRandomStrategy s(&workload->repo, config.seed + 10 + run);
        traces.push_back(RunOracleQuery(workload->truth, 0, &s, t80, kMax));
      }
      table.AddRow({skew_label, "random",
                    OrDash(query::MedianSamplesToRecall(traces, 0.5)),
                    OrDash(query::MedianSamplesToRecall(traces, 0.8)), "-"});
    }
    for (size_t chunks : {8, 128, 1024}) {
      auto chunking = video::MakeFixedCountChunks(kFrames, chunks).value();
      std::vector<query::QueryTrace> traces;
      for (int run = 0; run < runs; ++run) {
        core::ExSampleOptions options;
        options.seed = config.seed + 100 + run;
        core::ExSampleStrategy s(&chunking, options);
        traces.push_back(RunOracleQuery(workload->truth, 0, &s, t80, kMax));
      }
      table.AddRow({skew_label, "static/" + std::to_string(chunks),
                    OrDash(query::MedianSamplesToRecall(traces, 0.5)),
                    OrDash(query::MedianSamplesToRecall(traces, 0.8)),
                    std::to_string(chunks)});
    }
    {
      std::vector<query::QueryTrace> traces;
      uint64_t final_chunks = 0;
      for (int run = 0; run < runs; ++run) {
        core::AdaptiveExSampleOptions options;
        options.initial_chunks = 8;
        options.seed = config.seed + 200 + run;
        core::AdaptiveExSampleStrategy s(kFrames, options);
        traces.push_back(RunOracleQuery(workload->truth, 0, &s, t80, kMax));
        final_chunks = s.NumChunks();
      }
      table.AddRow({skew_label, "adaptive(8)",
                    OrDash(query::MedianSamplesToRecall(traces, 0.5)),
                    OrDash(query::MedianSamplesToRecall(traces, 0.8)),
                    std::to_string(final_chunks)});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nexpected shape: each static M wins at the skew it matches;\n"
              "adaptive(8) tracks the best static choice across all skews\n"
              "without tuning.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace exsample

int main(int argc, char** argv) { return exsample::bench::Main(argc, argv); }
