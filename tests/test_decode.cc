#include "video/decode.h"

#include <gtest/gtest.h>

namespace exsample {
namespace video {
namespace {

TEST(DecodeCostModelTest, RandomReadChargesKeyframeWarmup) {
  DecodeCostModel cost;
  cost.keyframe_interval = 20;
  cost.seek_seconds = 0.002;
  cost.decode_fps = 500.0;
  // On a keyframe: seek + decode 1 frame.
  EXPECT_DOUBLE_EQ(cost.RandomReadSeconds(0), 0.002 + 1.0 / 500.0);
  EXPECT_DOUBLE_EQ(cost.RandomReadSeconds(20), 0.002 + 1.0 / 500.0);
  // Worst case: 19 warmup frames + the target.
  EXPECT_DOUBLE_EQ(cost.RandomReadSeconds(19), 0.002 + 20.0 / 500.0);
}

TEST(DecodeCostModelTest, SequentialReadIsOneFrame) {
  DecodeCostModel cost;
  cost.decode_fps = 250.0;
  EXPECT_DOUBLE_EQ(cost.SequentialReadSeconds(), 1.0 / 250.0);
}

TEST(SimulatedVideoStoreTest, DistinguishesSequentialFromRandom) {
  VideoRepository repo = VideoRepository::SingleClip(1000);
  SimulatedVideoStore store(&repo, DecodeCostModel{});
  ASSERT_TRUE(store.ReadAndDecode(100).ok());  // Random.
  ASSERT_TRUE(store.ReadAndDecode(101).ok());  // Sequential.
  ASSERT_TRUE(store.ReadAndDecode(102).ok());  // Sequential.
  ASSERT_TRUE(store.ReadAndDecode(50).ok());   // Random (backwards).
  const DecodeStats& stats = store.Stats();
  EXPECT_EQ(stats.random_reads, 2u);
  EXPECT_EQ(stats.sequential_reads, 2u);
  EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(SimulatedVideoStoreTest, WarmupFramesAccounted) {
  VideoRepository repo = VideoRepository::SingleClip(1000);
  DecodeCostModel cost;
  cost.keyframe_interval = 10;
  SimulatedVideoStore store(&repo, cost);
  store.ReadAndDecode(15);  // 5 warmup frames + target = 6 decoded.
  EXPECT_EQ(store.Stats().frames_decoded, 6u);
}

TEST(SimulatedVideoStoreTest, RejectsOutOfRange) {
  VideoRepository repo = VideoRepository::SingleClip(10);
  SimulatedVideoStore store(&repo, DecodeCostModel{});
  EXPECT_FALSE(store.ReadAndDecode(10).ok());
  EXPECT_EQ(store.Stats().random_reads + store.Stats().sequential_reads, 0u);
}

TEST(SimulatedVideoStoreTest, ResetStatsKeepsPosition) {
  VideoRepository repo = VideoRepository::SingleClip(100);
  SimulatedVideoStore store(&repo, DecodeCostModel{});
  store.ReadAndDecode(10);
  store.ResetStats();
  EXPECT_EQ(store.Stats().random_reads, 0u);
  store.ReadAndDecode(11);  // Still sequential relative to pre-reset read.
  EXPECT_EQ(store.Stats().sequential_reads, 1u);
}

}  // namespace
}  // namespace video
}  // namespace exsample
