#include "opt/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace exsample {
namespace opt {
namespace {

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

TEST(ProjectToSimplexTest, AlreadyOnSimplexIsFixedPoint) {
  const std::vector<double> w{0.2, 0.3, 0.5};
  const auto p = ProjectToSimplex(w);
  for (size_t i = 0; i < w.size(); ++i) EXPECT_NEAR(p[i], w[i], 1e-12);
}

TEST(ProjectToSimplexTest, UniformFromEqualValues) {
  const auto p = ProjectToSimplex({7.0, 7.0, 7.0, 7.0});
  for (double x : p) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(ProjectToSimplexTest, DominantCoordinateSaturates) {
  const auto p = ProjectToSimplex({100.0, 0.0, 0.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  EXPECT_NEAR(p[2], 0.0, 1e-12);
}

TEST(ProjectToSimplexTest, NegativeEntriesClampToZero) {
  const auto p = ProjectToSimplex({0.5, -10.0, 0.7});
  EXPECT_NEAR(Sum(p), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(ProjectToSimplexTest, KnownSmallCase) {
  // Projection of (1, 0) onto the simplex is (1, 0); of (1, 1) is (.5, .5);
  // of (2, 1) is (1, 0) shifted: tau = (3-1)/2 = 1 -> (1, 0).
  auto p = ProjectToSimplex({2.0, 1.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  p = ProjectToSimplex({1.0, 1.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

class SimplexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexPropertyTest, ProjectionInvariants) {
  common::Rng rng(GetParam());
  const size_t d = 1 + rng.NextBounded(64);
  std::vector<double> v(d);
  for (double& x : v) x = rng.Normal(0.0, 3.0);
  const auto p = ProjectToSimplex(v);

  // 1. On the simplex.
  EXPECT_NEAR(Sum(p), 1.0, 1e-9);
  for (double x : p) EXPECT_GE(x, 0.0);

  // 2. Idempotent.
  const auto pp = ProjectToSimplex(p);
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(pp[i], p[i], 1e-9);

  // 3. Optimality: no feasible direction improves the distance. Verify
  //    against random simplex points: ||v - p|| <= ||v - q||.
  double dist_p = 0.0;
  for (size_t i = 0; i < d; ++i) dist_p += (v[i] - p[i]) * (v[i] - p[i]);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(d);
    double qs = 0.0;
    for (double& x : q) {
      x = rng.Exponential(1.0);
      qs += x;
    }
    for (double& x : q) x /= qs;
    double dist_q = 0.0;
    for (size_t i = 0; i < d; ++i) dist_q += (v[i] - q[i]) * (v[i] - q[i]);
    EXPECT_LE(dist_p, dist_q + 1e-9);
  }

  // 4. Order preserving: larger inputs never get smaller outputs.
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      if (v[i] > v[j]) {
        EXPECT_GE(p[i], p[j] - 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(UniformWeightsTest, SumsToOne) {
  const auto w = UniformWeights(7);
  EXPECT_EQ(w.size(), 7u);
  EXPECT_NEAR(Sum(w), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(w[3], 1.0 / 7.0);
}

}  // namespace
}  // namespace opt
}  // namespace exsample
